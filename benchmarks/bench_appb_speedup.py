"""Appendix B — speedup of {AG_mcast, RS_INC} over {AG_ring, RS_ring}.

Both collectives run *concurrently on the same simulated fabric*, so they
genuinely contend for link bandwidth, exactly the FSDP interleaving
scenario.  Shape criteria: the measured makespan ratio grows with P and
tracks ``S = 2 − 2/P`` (the closed form assumes an RS input of N·(P−1);
ours is N·P, so the ideal ratio is ``2(P−1)/(P+1)``, shown alongside).
"""

from repro.bench import coarse_config, format_table, make_fabric, report
from repro.models import concurrent_speedup
from repro.units import KiB
from repro.workloads import run_concurrent_pair

CHUNK = 16 * KiB
AG_BYTES = 64 * KiB
SIZES = (4, 8, 16)


def run_appb():
    rows = []
    measured = {}
    for p in SIZES:
        f_ring = make_fabric(p, mtu=CHUNK)
        ring = run_concurrent_pair(f_ring, "ring", AG_BYTES)
        f_opt = make_fabric(p, mtu=CHUNK)
        # Maximal chain parallelism overlaps the chain-activation gaps
        # (§IV-A); the receive path remains the binding resource.
        opt = run_concurrent_pair(
            f_opt, "optimal", AG_BYTES, config=coarse_config(CHUNK, n_chains=p)
        )
        assert ring.correct and opt.correct
        s = ring.makespan / opt.makespan
        measured[p] = s
        rows.append(
            (
                p,
                f"{ring.makespan * 1e6:.0f}",
                f"{opt.makespan * 1e6:.0f}",
                f"{s:.2f}",
                f"{concurrent_speedup(p):.2f}",
                f"{2 * (p - 1) / (p + 1):.2f}",
            )
        )
    return rows, measured


def test_appb_speedup(benchmark):
    rows, measured = benchmark.pedantic(run_appb, rounds=1, iterations=1)
    report(
        "appb_speedup",
        format_table(
            ["P", "ring pair µs", "optimal pair µs", "measured S",
             "paper S=2-2/P", "ideal (N·P input)"],
            rows,
        ),
    )
    # Speedup grows with P...
    values = [measured[p] for p in SIZES]
    assert values == sorted(values)
    # ...exceeds 1 everywhere, and lands near the closed form at P=16
    # (ideal for our N·P-sized RS input: 2(P−1)/(P+1) ≈ 1.76; paper's
    # S = 2 − 2/P ≈ 1.88).
    assert all(v > 1.0 for v in values)
    ideal = 2 * (SIZES[-1] - 1) / (SIZES[-1] + 1)
    assert abs(measured[SIZES[-1]] - ideal) / ideal < 0.25
