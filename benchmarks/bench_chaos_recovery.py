"""Chaos recovery sweep — reliability slow path under fault severity × size.

Sweeps Gilbert–Elliott burst-loss severity against message size for both
Broadcast and Allgather on an 8-host leaf-spine, recording completion
time, recovery invocations, recovered chunks and fetch rounds, plus a
mid-collective link flap column at the highest severity.

A second table compares the adaptive cutoff estimator against the paper's
static α on identical fault schedules (same seeds): after clean warmups
the adaptive timer arms a tighter cutoff, enters recovery sooner, and
completes lossy collectives faster.

Shape criteria: every cell completes with verified payload (the harness
asserts data integrity, not just termination); recovery counters grow
monotonically with severity; the adaptive column never loses to static.
"""

import numpy as np

from repro.bench import format_table, report
from repro.core.communicator import CollectiveConfig, Communicator
from repro.net import Fabric, GilbertElliott, Topology
from repro.net.link import FaultSpec
from repro.sim import RandomStreams, Simulator
from repro.units import KiB, gbit_per_s, pretty_bytes

N_HOSTS = 8
SIZES = (64 * KiB, 256 * KiB)

#: (label, Gilbert–Elliott spec or None, add mid-collective flap)
SEVERITIES = (
    ("clean", None, False),
    ("2% burst", GilbertElliott(p_good_bad=0.004, p_bad_good=0.2, drop_bad=1.0), False),
    ("5% burst", GilbertElliott(p_good_bad=0.0105, p_bad_good=0.2, drop_bad=1.0), False),
    ("10% burst", GilbertElliott(p_good_bad=0.022, p_bad_good=0.2, drop_bad=1.0), False),
    ("5% + flap", GilbertElliott(p_good_bad=0.0105, p_bad_good=0.2, drop_bad=1.0), True),
)


def make_comm(config=None, seed=0):
    fabric = Fabric(
        Simulator(),
        Topology.leaf_spine(N_HOSTS, n_leaf=2, n_spine=2),
        link_bandwidth=gbit_per_s(56),
        streams=RandomStreams(seed=seed),
    )
    return Communicator(fabric, config=config)


def install_chaos(fabric, ge, flap):
    def factory(src, dst):
        if ge is None and not flap:
            return None
        windows = [(15e-6, 45e-6)] if (flap and dst == "h5") else []
        return FaultSpec(gilbert_elliott=ge, flap_windows=windows)

    fabric.set_fault_all(factory)


def run_cell(kind, nbytes, ge, flap, seed):
    comm = make_comm(seed=seed)
    install_chaos(comm.fabric, ge, flap)
    if kind == "broadcast":
        data = np.random.default_rng(seed).integers(0, 256, nbytes, dtype=np.uint8)
        result = comm.broadcast(0, data)
        assert result.verify_broadcast(data)
    else:
        shard = nbytes // N_HOSTS
        data = [np.full(shard, r % 251, dtype=np.uint8) for r in range(N_HOSTS)]
        result = comm.allgather(data)
        assert result.verify_allgather(data)
    return result


def sweep_rows():
    rows = []
    by_sev = {}
    for kind in ("broadcast", "allgather"):
        for nbytes in SIZES:
            for label, ge, flap in SEVERITIES:
                result = run_cell(kind, nbytes, ge, flap, seed=7)
                s = result.reliability_summary()
                by_sev.setdefault((kind, nbytes), []).append((label, s))
                rows.append(
                    (
                        kind,
                        pretty_bytes(nbytes),
                        label,
                        f"{result.duration * 1e6:.1f}",
                        result.traffic["fabric_drops"],
                        s["recoveries"],
                        s["recovered_chunks"],
                        s["fetch_rounds"],
                        s["neighbor_escalations"],
                    )
                )
    return rows, by_sev


def adaptive_rows():
    """Adaptive vs static cutoff on identical fault schedules."""
    rows = []
    wins = []
    ge = GilbertElliott(p_good_bad=0.0105, p_bad_good=0.2, drop_bad=1.0)
    for nbytes in SIZES:
        durations = {}
        for adaptive in (False, True):
            cfg = CollectiveConfig(adaptive_cutoff=adaptive)
            comm = make_comm(config=cfg, seed=11)
            data = np.random.default_rng(3).integers(0, 256, nbytes, dtype=np.uint8)
            for _ in range(2):  # clean warmups train (or no-op for static)
                assert comm.broadcast(0, data).verify_broadcast(data)
            install_chaos(comm.fabric, ge, flap=False)
            result = comm.broadcast(0, data)
            assert result.verify_broadcast(data)
            durations[adaptive] = result.duration
        speedup = durations[False] / durations[True]
        wins.append(speedup)
        rows.append(
            (
                pretty_bytes(nbytes),
                f"{durations[False] * 1e6:.1f}",
                f"{durations[True] * 1e6:.1f}",
                f"{speedup:.2f}x",
            )
        )
    return rows, wins


def run_chaos_sweep():
    return sweep_rows(), adaptive_rows()


def test_chaos_recovery_sweep(benchmark):
    (rows, by_sev), (a_rows, wins) = benchmark.pedantic(
        run_chaos_sweep, rounds=1, iterations=1
    )
    report(
        "chaos_recovery",
        "Recovery under fault severity x message size (8-host leaf-spine)\n"
        + format_table(
            ["collective", "msg", "severity", "time us", "drops",
             "recoveries", "recovered", "fetch rounds", "escalations"],
            rows,
        )
        + "\n\nAdaptive vs static cutoff (identical fault schedule, "
        "2 clean warmups, 5% burst loss)\n"
        + format_table(
            ["msg", "static us", "adaptive us", "speedup"], a_rows
        ),
    )
    # Clean cells never enter recovery; lossy cells always complete.
    for (kind, nbytes), cells in by_sev.items():
        clean = dict(cells)["clean"]
        assert clean["recoveries"] == 0, f"clean run recovered: {kind} {nbytes}"
        worst = dict(cells)["10% burst"]
        assert worst["recovered_chunks"] >= clean["recovered_chunks"]
    # The adaptive cutoff never loses to the static α under loss.
    for speedup in wins:
        assert speedup >= 1.0, f"adaptive slower than static: {speedup:.2f}x"
