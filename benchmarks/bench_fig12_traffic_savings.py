"""Figure 12 — switch-telemetry traffic savings across the 18 switches.

The paper scrapes the port counters of all 18 SX6036 switches while
running Broadcast and Allgather with 64 KiB messages (10 iterations) and
finds the multicast algorithms move 1.5–2× fewer bytes than the P2P
baselines.  We do the same against the simulated fabric's per-port
(xmit + rcv) counters.

Simulation granularity: one simulated packet per 64 KiB message — byte
counters are exact regardless of packetization.
"""

import numpy as np

from repro.bench import coarse_config, format_table, make_fabric, reference, report
from repro.core.baselines import binary_tree_broadcast, knomial_broadcast, ring_allgather
from repro.core.communicator import Communicator
from repro.units import KiB

P = 188
MSG = reference.FIG12["msg_bytes"]  # 64 KiB
ITERS = 3  # paper: 10; counters are deterministic here


def measure(fn):
    """Run `fn(fabric)` ITERS times on a fresh fabric; return per-iteration
    switch-port payload bytes."""
    fabric = make_fabric(P, mtu=MSG)
    for _ in range(ITERS):
        fn(fabric)
    return fabric.switch_port_traffic(payload_only=True) / ITERS


def run_fig12():
    data = np.arange(MSG, dtype=np.uint8)
    ag_data = [np.full(MSG, r % 251, dtype=np.uint8) for r in range(P)]

    def mcast_bcast(fabric):
        comm = getattr(fabric, "_bench_comm", None)
        if comm is None:
            comm = fabric._bench_comm = Communicator(fabric, config=coarse_config(MSG))
        res = comm.broadcast(0, data)
        assert res.verify_broadcast(data)

    def mcast_ag(fabric):
        comm = getattr(fabric, "_bench_comm", None)
        if comm is None:
            comm = fabric._bench_comm = Communicator(fabric, config=coarse_config(MSG))
        res = comm.allgather(ag_data)
        assert res.verify_allgather(ag_data)

    return {
        "bcast_mcast": measure(mcast_bcast),
        "bcast_knomial": measure(lambda f: knomial_broadcast(f, 0, data, radix=4)),
        "bcast_bintree": measure(lambda f: binary_tree_broadcast(f, 0, data,
                                                                 segment_bytes=MSG)),
        "ag_mcast": measure(mcast_ag),
        "ag_ring": measure(lambda f: ring_allgather(f, ag_data)),
    }


def test_fig12_traffic_savings(benchmark):
    t = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    bc_kn = t["bcast_knomial"] / t["bcast_mcast"]
    bc_bt = t["bcast_bintree"] / t["bcast_mcast"]
    ag = t["ag_ring"] / t["ag_mcast"]
    report(
        "fig12_traffic_savings",
        format_table(
            ["collective", "P2P algorithm", "P2P bytes", "mcast bytes", "savings"],
            [
                ("broadcast", "k-nomial", int(t["bcast_knomial"]),
                 int(t["bcast_mcast"]), f"{bc_kn:.2f}x"),
                ("broadcast", "binary tree", int(t["bcast_bintree"]),
                 int(t["bcast_mcast"]), f"{bc_bt:.2f}x"),
                ("allgather", "ring", int(t["ag_ring"]),
                 int(t["ag_mcast"]), f"{ag:.2f}x"),
            ],
        )
        + "\npaper: broadcast ~1.5x, allgather ~2x (range 1.5-2x)",
    )
    # Shape: multicast always saves; allgather lands right at the paper's
    # 2x.  Tree broadcasts pay per-hop retransmission — the binary tree's
    # topology-oblivious placement costs the most (our 4.9x vs the paper's
    # 1.5x suggests their P2P bcast baseline was more topology-aware).
    assert 1.3 < bc_kn < 3.5
    assert 1.3 < bc_bt < 6.0
    assert 1.7 < ag < 2.3
