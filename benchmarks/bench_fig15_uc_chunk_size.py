"""Figure 15 — UC multicast with multi-packet chunks (8 MiB buffer).

UC supports arbitrary-length RDMA writes, so a chunk (one CQE) can span
many MTU packets.  Shape criterion: larger chunks reach line rate with
fewer threads — 64 KiB chunks need a single thread.
"""

from repro.bench import format_table, reference, report
from repro.dpa import uc_chunk_size_sweep
from repro.units import KiB, pretty_bytes, to_gbit_per_s

CHUNKS = (4 * KiB, 8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB)
THREADS = (1, 2, 4)


def compute_fig15():
    return uc_chunk_size_sweep(chunk_sizes=CHUNKS, threads=THREADS)


def test_fig15_uc_chunk_size(benchmark):
    sweep = benchmark.pedantic(compute_fig15, rounds=1, iterations=1)
    rows = [
        (pretty_bytes(c), *(round(to_gbit_per_s(sweep[c][t]), 1) for t in THREADS))
        for c in CHUNKS
    ]
    report(
        "fig15_uc_chunk_size",
        format_table(["chunk", *(f"{t} thr" for t in THREADS)], rows),
    )
    # Bigger chunks help at fixed thread count.
    for t in THREADS:
        series = [sweep[c][t] for c in CHUNKS]
        assert all(b >= a * 0.98 for a, b in zip(series, series[1:]))
    # 64 KiB chunks reach line rate with one thread (paper Fig 15).
    big = reference.FIG15["big_chunk_single_thread_line_rate"]
    goodput = 200e9 / 8 * big / (big + 64)
    assert sweep[big][1] > goodput * 0.9
    # 4 KiB chunks do not.
    assert sweep[4 * KiB][1] < 200e9 / 8 * 0.6
