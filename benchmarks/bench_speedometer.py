"""Speedometer — the simulator's perf-regression harness.

Measures wall-clock, simulator events, and events/sec on four pinned
scenarios that together cover the hot paths the fast-path PR optimizes:

* ``ag16``        clean 16-rank allgather (NIC receive + DMA datapath)
* ``bcast188``    clean 188-node coarse broadcast (paper Fig 11 shape)
* ``bcast188hf``  clean 188-node *fine-grained* broadcast (mtu 4096,
                  1 MiB) — the headline scenario for the >=2x wall-clock
                  claim; dominated by per-packet channel/switch events
* ``lossy188``    Gilbert-Elliott lossy 188-node broadcast — exercises
                  the per-packet slow path + recovery machinery
* ``fsdp``        3-layer FSDP backward pipeline (overlapping AG+RS)
* ``bcast1024``   1024-host broadcast under the flow-level fast-forward
                  engine (``fast_forward="exact"``) — the Tbit-scale
                  configuration the packet-level engine cannot reach in CI
* ``ag1024``      1024-rank chain-scheduled allgather under exact
                  fast-forward — the scaling stress case for the
                  vectorized fold commit path
* ``ag1024shard`` the same allgather through the parallel-DES engine
                  (4 shards, inline backend) — virtual time and event
                  count must match ``ag1024`` bit-for-bit
* ``ar188``       188-host composed allreduce (INC reduce-scatter →
                  multicast allgather in one submission) — the paper
                  Appendix B shape at testbed scale
* ``a2a16``       16-rank personalized alltoall over unicast RC QPs
                  (the MoE expert-parallel exchange)

Virtual-time outputs (durations) and event counts are deterministic:
any change to either is a *semantic* change, not noise, and fails the
``--check`` gate outright.  Wall-clock is machine-dependent, so the gate
normalizes it by a calibration loop (pure-Python event churn) measured on
the same machine at the same moment, and compares the *normalized* cost
against the committed baseline with a tolerance (default 25%).

Usage::

    python benchmarks/bench_speedometer.py                  # table
    python benchmarks/bench_speedometer.py --json           # machine output
    python benchmarks/bench_speedometer.py --per-packet     # fast path off
    python benchmarks/bench_speedometer.py \
        --check benchmarks/results/speedometer_baseline.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from typing import Dict

import numpy as np

from repro.bench import coarse_config, format_table, make_fabric
from repro.core.communicator import CollectiveConfig, Communicator
from repro.net.faults import GilbertElliott
from repro.net.link import FaultSpec
from repro.sim.engine import Simulator
from repro.units import KiB, MiB
from repro.workloads.fsdp import run_fsdp_backward_pipeline

CALIBRATION_EVENTS = 200_000


def calibrate() -> float:
    """Seconds to churn a fixed number of no-op simulator events.

    A pure-Python measure of this machine's event-loop speed; dividing a
    scenario's wall-clock by this yields a dimensionless cost that is
    comparable across machines (same interpreter, same scenario).
    """
    sim = Simulator()

    def tick(n: int) -> None:
        if n > 0:
            sim.post_later(1e-9, tick, n - 1)

    tick(CALIBRATION_EVENTS)
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0


def _result(wall: float, res) -> Dict[str, float]:
    return {
        "wall_s": wall,
        "virtual_s": res.duration,
        "events": res.engine["sim_events"],
        "trains": res.engine["trains"],
        "train_packets": res.engine["train_packets"],
        "ff_phases": res.engine.get("ff_phases", 0),
    }


def _bcast(n_hosts: int, nbytes: int, chunk: int, coalescing: bool,
           batching: bool, fault_factory=None,
           coarse: bool = True, **cfg_kw) -> Dict[str, float]:
    fabric = make_fabric(n_hosts, mtu=chunk)
    fabric.set_coalescing(coalescing)
    if fault_factory is not None:
        fabric.set_fault_all(fault_factory)
    cfg = (coarse_config(chunk, recv_batching=batching, **cfg_kw) if coarse
           else CollectiveConfig(chunk_size=chunk, recv_batching=batching,
                                 **cfg_kw))
    comm = Communicator(fabric, config=cfg)
    data = (np.arange(nbytes, dtype=np.uint32) % 251).astype(np.uint8)
    t0 = time.perf_counter()
    res = comm.broadcast(0, data)
    wall = time.perf_counter() - t0
    assert res.verify_broadcast(data), "broadcast payload corrupted"
    return _result(wall, res)


def _ff_kw(ff: str | None, default: str = "off") -> Dict[str, str]:
    """Config override for a scenario's fast-forward mode.  ``ff`` is the
    run-wide ``--ff`` override; ``default`` is the scenario's pinned mode."""
    return {"fast_forward": default if ff is None else ff}


def scenario_ag16(coalescing: bool, batching: bool = True,
                  ff: str | None = None) -> Dict[str, float]:
    fabric = make_fabric(16, mtu=4096)
    fabric.set_coalescing(coalescing)
    comm = Communicator(fabric, config=CollectiveConfig(chunk_size=4096,
                                                       recv_batching=batching,
                                                       **_ff_kw(ff)))
    data = [np.full(64 * KiB, r % 251, dtype=np.uint8) for r in range(16)]
    t0 = time.perf_counter()
    res = comm.allgather(data)
    wall = time.perf_counter() - t0
    assert res.verify_allgather(data), "allgather payload corrupted"
    return _result(wall, res)


def scenario_bcast188(coalescing: bool, batching: bool = True,
                      ff: str | None = None) -> Dict[str, float]:
    return _bcast(188, MiB, 64 * KiB, coalescing, batching, **_ff_kw(ff))


def scenario_bcast188hf(coalescing: bool, batching: bool = True,
                        ff: str | None = None) -> Dict[str, float]:
    return _bcast(188, MiB, 4096, coalescing, batching, coarse=False,
                  **_ff_kw(ff))


def scenario_lossy188(coalescing: bool, batching: bool = True,
                      ff: str | None = None) -> Dict[str, float]:
    ge = GilbertElliott(p_good_bad=0.01, p_bad_good=0.3,
                        drop_good=0.001, drop_bad=0.10)
    return _bcast(188, 256 * KiB, 64 * KiB, coalescing, batching,
                  fault_factory=lambda s, d: FaultSpec(gilbert_elliott=ge),
                  **_ff_kw(ff))


def scenario_fsdp(coalescing: bool, batching: bool = True,
                  ff: str | None = None) -> Dict[str, float]:
    fabric = make_fabric(16, mtu=16 * KiB)
    fabric.set_coalescing(coalescing)
    sim = fabric.sim
    ev0 = sim.events_processed
    t0 = time.perf_counter()
    virtual = run_fsdp_backward_pipeline(
        fabric, "optimal", [64 * KiB, 64 * KiB, 32 * KiB],
        config=coarse_config(16 * KiB, recv_batching=batching, **_ff_kw(ff)),
    )
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "virtual_s": virtual,
        "events": sim.events_processed - ev0,
        "trains": fabric.total_trains(),
        "train_packets": fabric.total_train_packets(),
        "ff_phases": 0,
    }


def scenario_bcast1024(coalescing: bool, batching: bool = True,
                       ff: str | None = None) -> Dict[str, float]:
    # Pinned to exact fast-forward: packet-level 1024-host runs belong to
    # bench_ff_scaling.py, not the per-commit speedometer.
    return _bcast(1024, 512 * KiB, 4096, coalescing, batching, coarse=False,
                  transport="uc", **_ff_kw(ff, default="exact"))


def scenario_ag1024(coalescing: bool, batching: bool = True,
                    ff: str | None = None) -> Dict[str, float]:
    fabric = make_fabric(1024, mtu=4096)
    fabric.set_coalescing(coalescing)
    # The chain-serialized 1024-step schedule outruns the adaptive cutoff's
    # ``buffer/B + alpha`` deadline model (activation latency dominates at
    # this scale), so the scenario pins a static cutoff wide enough that no
    # spurious recovery fires — in either engine.
    cfg = CollectiveConfig(chunk_size=KiB, transport="uc",
                           recv_batching=batching,
                           adaptive_cutoff=False, cutoff_alpha=10e-3,
                           **_ff_kw(ff, default="exact"))
    comm = Communicator(fabric, config=cfg)
    data = [np.full(KiB, r % 251, dtype=np.uint8) for r in range(1024)]
    t0 = time.perf_counter()
    res = comm.allgather(data)
    wall = time.perf_counter() - t0
    assert res.verify_allgather(data), "allgather payload corrupted"
    return _result(wall, res)


def scenario_ag1024shard(coalescing: bool, batching: bool = True,
                         ff: str | None = None) -> Dict[str, float]:
    # ag1024 through the parallel-DES engine (4 shards, inline backend):
    # virtual time and event count must match the sequential scenario
    # bit-for-bit — this pins the shard merge determinism per commit.
    # The pipe backend is exercised by bench_ff_scaling --smoke and the
    # determinism tests; keeping the speedometer inline keeps its
    # wall-clock a single-interpreter signal.
    fabric = make_fabric(1024, mtu=4096)
    fabric.set_coalescing(coalescing)
    cfg = CollectiveConfig(chunk_size=KiB, transport="uc",
                           recv_batching=batching,
                           adaptive_cutoff=False, cutoff_alpha=10e-3,
                           parallel=4,
                           **_ff_kw(ff, default="exact"))
    comm = Communicator(fabric, config=cfg)
    data = [np.full(KiB, r % 251, dtype=np.uint8) for r in range(1024)]
    t0 = time.perf_counter()
    res = comm.allgather(data)
    wall = time.perf_counter() - t0
    assert res.verify_allgather(data), "allgather payload corrupted"
    return _result(wall, res)


def scenario_ar188(coalescing: bool, batching: bool = True,
                   ff: str | None = None) -> Dict[str, float]:
    fabric = make_fabric(188, mtu=4096)
    fabric.set_coalescing(coalescing)
    comm = Communicator(fabric, config=coarse_config(
        4096, n_chains=188, recv_batching=batching, **_ff_kw(ff)))
    # 1024 float32 elements per shard (4 KiB, one chunk) x 188 shards.
    elems = 188 * 1024
    data = [(np.arange(elems, dtype=np.float32) % 251) + r
            for r in range(188)]
    t0 = time.perf_counter()
    res = comm.allreduce(data, algorithm="inc")
    wall = time.perf_counter() - t0
    assert res.verify_allreduce(data), "allreduce payload corrupted"
    return _result(wall, res)


def scenario_a2a16(coalescing: bool, batching: bool = True,
                   ff: str | None = None) -> Dict[str, float]:
    fabric = make_fabric(16, mtu=4096)
    fabric.set_coalescing(coalescing)
    comm = Communicator(fabric, config=CollectiveConfig(chunk_size=4096,
                                                       recv_batching=batching,
                                                       **_ff_kw(ff)))
    data = [(np.arange(64 * KiB, dtype=np.uint32) % 251 + r).astype(np.uint8)
            for r in range(16)]
    t0 = time.perf_counter()
    res = comm.alltoall(data)
    wall = time.perf_counter() - t0
    assert res.verify_alltoall(data), "alltoall payload corrupted"
    return _result(wall, res)


SCENARIOS = {
    "ag16": scenario_ag16,
    "bcast188": scenario_bcast188,
    "bcast188hf": scenario_bcast188hf,
    "lossy188": scenario_lossy188,
    "fsdp": scenario_fsdp,
    "bcast1024": scenario_bcast1024,
    "ag1024": scenario_ag1024,
    "ag1024shard": scenario_ag1024shard,
    "ar188": scenario_ar188,
    "a2a16": scenario_a2a16,
}

#: Scenarios whose wall-clock is event-loop dominated and therefore a
#: meaningful simulator-speed signal.  ``bcast188`` (coarse),
#: ``bcast1024``, ``ag1024``, and ``ar188`` are excluded: their
#: wall-clock is dominated by first-touch page faults on the hundreds of
#: MiB of per-rank staging/user buffers they allocate — a memory-subsystem
#: measurement that swings 2x between runs.  Their *event count and
#: virtual time* are still gated exactly; the CI wall budget for the
#: 1024-host scale lives in ``bench_ff_scaling.py --smoke``.
WALL_GATED = frozenset({"ag16", "bcast188hf", "lossy188", "fsdp", "a2a16"})


def run_all(coalescing: bool, batching: bool = True,
            profile_top: int = 0, ff: str | None = None,
            skip: frozenset = frozenset()) -> Dict[str, object]:
    cal = calibrate()
    scenarios: Dict[str, Dict[str, float]] = {}
    for name, fn in SCENARIOS.items():
        if name in skip:
            continue
        if profile_top:
            prof = cProfile.Profile()
            prof.enable()
        r = fn(coalescing, batching, ff)
        if profile_top:
            prof.disable()
            _print_hotspots(name, prof, profile_top)
        r["events_per_s"] = r["events"] / r["wall_s"] if r["wall_s"] > 0 else 0.0
        r["normalized_cost"] = r["wall_s"] / cal
        scenarios[name] = r
    return {
        "coalescing": coalescing,
        "recv_batching": batching,
        "fast_forward": ff,
        "skipped": sorted(skip),
        "calibration_s": cal,
        "calibration_events": CALIBRATION_EVENTS,
        "scenarios": scenarios,
    }


def _print_hotspots(name: str, prof: cProfile.Profile, top: int) -> None:
    """Print the scenario's top-N hot spots by self time and by cumulative
    time (to stderr, so --json output stays parseable)."""
    for sort, title in (("tottime", "self time"), ("cumtime", "cumulative")):
        print(f"\n--- {name}: top {top} by {title} ---", file=sys.stderr)
        st = pstats.Stats(prof, stream=sys.stderr)
        st.sort_stats(sort).print_stats(top)


def check(results: Dict[str, object], baseline_path: str, tolerance: float) -> int:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    # When the run used a different fast-path configuration than the
    # committed baseline (--per-packet / --per-cqe / --ff), event counts
    # and wall-clock are not comparable — but virtual time still must
    # match *exactly*: the train, CQE-batch, and exact fast-forward
    # engines are all proven bit-equivalent to the slow path, so this
    # mode turns --check into an equivalence gate.
    same_config = (
        results.get("coalescing") == baseline.get("coalescing", True)
        and results.get("recv_batching") == baseline.get("recv_batching", True)
        and results.get("fast_forward") == baseline.get("fast_forward")
    )
    skipped = set(results.get("skipped", ()))
    failures = []
    for name, base in baseline["scenarios"].items():
        if name in skipped:
            continue
        cur = results["scenarios"].get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        # Event counts and virtual time are deterministic: exact match.
        if same_config and cur["events"] != base["events"]:
            failures.append(
                f"{name}: event count changed {base['events']} -> {cur['events']} "
                "(semantic change — regenerate the baseline deliberately)"
            )
        if cur["virtual_s"] != base["virtual_s"]:
            failures.append(
                f"{name}: virtual time changed {base['virtual_s']!r} -> "
                f"{cur['virtual_s']!r}"
            )
        # Wall-clock: compare calibration-normalized cost with tolerance.
        if not same_config or name not in WALL_GATED:
            continue
        limit = base["normalized_cost"] * (1.0 + tolerance)
        if cur["normalized_cost"] > limit:
            failures.append(
                f"{name}: perf regression — normalized cost "
                f"{cur['normalized_cost']:.2f} > {base['normalized_cost']:.2f} "
                f"* (1 + {tolerance:.2f})"
            )
    if failures:
        print("SPEEDOMETER CHECK FAILED")
        for f in failures:
            print("  -", f)
        return 1
    mode = "full" if same_config else "virtual-time equivalence only"
    print(f"speedometer check OK against {baseline_path} "
          f"({mode}, tolerance {tolerance:.0%})")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--json", action="store_true", help="emit JSON to stdout")
    ap.add_argument("--per-packet", action="store_true",
                    help="disable the packet-train fast path")
    ap.add_argument("--per-cqe", action="store_true",
                    help="disable the receiver-batch fast path")
    ap.add_argument("--ff", choices=("off", "exact", "banded"), default=None,
                    help="override every scenario's fast-forward mode "
                         "(default: each scenario's pinned mode); with "
                         "--check this is the flow-level equivalence gate")
    ap.add_argument("--skip", default="", metavar="NAMES",
                    help="comma-separated scenarios to leave out (the "
                         "check gate ignores their baseline entries)")
    ap.add_argument("--profile", type=int, default=0, metavar="N",
                    help="cProfile each scenario; print top-N hot spots "
                         "(self time and cumulative) to stderr")
    ap.add_argument("--check", metavar="BASELINE",
                    help="compare against a baseline JSON; exit 1 on regression")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed normalized wall-clock growth (default 0.25)")
    args = ap.parse_args(argv)

    skip = frozenset(n for n in args.skip.split(",") if n)
    unknown = skip - set(SCENARIOS)
    if unknown:
        ap.error(f"unknown scenario(s) in --skip: {', '.join(sorted(unknown))}")

    results = run_all(coalescing=not args.per_packet,
                      batching=not args.per_cqe,
                      profile_top=args.profile,
                      ff=args.ff, skip=skip)

    if args.check:
        return check(results, args.check, args.tolerance)

    if args.json:
        json.dump(results, sys.stdout, indent=2)
        print()
        return 0

    rows = []
    for name, r in results["scenarios"].items():
        rows.append((
            name,
            f"{r['wall_s']:.3f}",
            f"{r['virtual_s'] * 1e6:.1f}",
            f"{r['events']:,}",
            f"{r['events_per_s'] / 1e3:.0f}k",
            f"{r['normalized_cost']:.2f}",
            f"{r['trains']:,}",
        ))
    print(f"calibration: {results['calibration_s']:.3f}s "
          f"for {CALIBRATION_EVENTS:,} events "
          f"(coalescing={'on' if results['coalescing'] else 'off'}, "
          f"recv_batching={'on' if results['recv_batching'] else 'off'}, "
          f"ff={results['fast_forward'] or 'per-scenario'})")
    print(format_table(
        ("scenario", "wall s", "virt us", "events", "ev/s", "norm", "trains"),
        rows,
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
