"""Fail-stop recovery sweep — time-to-degraded-completion under crashes.

Two tables:

1. **Recovery latency vs crash injection time** — the paper's 188-host
   testbed running Broadcast under `failure_policy="degrade"`, with one
   non-root host fail-stopping at increasing fractions of the healthy
   completion time.  Early crashes are detected during the sync/activation
   phases and repaired before much data moved; late crashes strike after
   the data phase and cost almost nothing.  The interesting ridge is the
   middle: a mid-data crash pays detection (suspicion + probes) plus the
   degraded fetch among survivors.

2. **Survivor-count sweep** — 16-host leaf-spine Allgather with k hosts
   dying mid-collective: completion time and the surviving validity
   fraction as membership shrinks.

Shape criteria: every crashed cell terminates with a degraded result whose
dead-rank set names exactly the crashed hosts and whose validity holes
align with the dead ranks' shards; the healthy baseline never degrades.
"""

import numpy as np

from repro.bench import format_table, report
from repro.core.communicator import CollectiveConfig, Communicator
from repro.net import CrashSpec, Fabric, Topology
from repro.sim import RandomStreams, Simulator
from repro.units import KiB, gbit_per_s

BCAST_BYTES = 256 * KiB
AG_SHARD = 32 * KiB

#: crash instants as fractions of the healthy 188-host completion time
CRASH_FRACTIONS = (0.1, 0.3, 0.5, 0.7, 0.9)

#: survivor sweep: how many hosts die mid-allgather (root rank 0 survives)
KILL_COUNTS = (1, 2, 4)


def make_comm(topo, degrade=True, seed=0):
    cfg = CollectiveConfig(failure_policy="degrade") if degrade else None
    fabric = Fabric(
        Simulator(),
        topo,
        link_bandwidth=gbit_per_s(56),
        streams=RandomStreams(seed=seed),
    )
    return Communicator(fabric, config=cfg)


def bcast_payload(seed=5):
    return np.random.default_rng(seed).integers(0, 256, BCAST_BYTES, dtype=np.uint8)


def run_188_cell(crash_at):
    comm = make_comm(Topology.testbed_188(), seed=9)
    if crash_at is not None:
        comm.fabric.schedule_crash(CrashSpec(at=crash_at, host=100))
    data = bcast_payload()
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    return result


def crash_time_rows():
    healthy = run_188_cell(None)
    assert not healthy.degraded
    t_healthy = healthy.duration
    rows = [
        ("none", "-", f"{t_healthy * 1e6:.1f}", "-", 0,
         healthy.reliability_summary()["recoveries"])
    ]
    cells = []
    for frac in CRASH_FRACTIONS:
        crash_at = frac * t_healthy
        result = run_188_cell(crash_at)
        cells.append(result)
        overhead = result.duration - t_healthy
        rows.append(
            (
                f"{crash_at * 1e6:.1f}",
                f"{frac:.0%}",
                f"{result.duration * 1e6:.1f}",
                f"{overhead * 1e6:+.1f}",
                len(result.dead_ranks),
                result.reliability_summary()["recoveries"],
            )
        )
    return rows, t_healthy, cells


def survivor_rows():
    rows = []
    cells = []
    for k in KILL_COUNTS:
        comm = make_comm(Topology.leaf_spine(16, 4, 2), seed=13)
        # Stagger the deaths so detection overlaps the data phase.
        for i in range(k):
            comm.fabric.schedule_crash(
                CrashSpec(at=(12 + 3 * i) * 1e-6, host=15 - i)
            )
        send = [np.full(AG_SHARD, r % 251, dtype=np.uint8) for r in range(16)]
        result = comm.allgather(send)
        assert result.verify_allgather_degraded(send)
        cells.append((k, result))
        valid = 16 - len(result.dead_ranks)
        rows.append(
            (
                k,
                16 - k,
                f"{result.duration * 1e6:.1f}",
                f"{valid / 16:.0%}",
                result.reliability_summary()["recoveries"],
            )
        )
    return rows, cells


def run_crash_sweep():
    return crash_time_rows(), survivor_rows()


def test_crash_recovery_sweep(benchmark):
    (t_rows, t_healthy, t_cells), (s_rows, s_cells) = benchmark.pedantic(
        run_crash_sweep, rounds=1, iterations=1
    )
    report(
        "crash_recovery",
        "Degraded completion vs crash injection time "
        f"(188-host testbed broadcast, {BCAST_BYTES // KiB} KiB, host 100 dies, "
        "failure_policy=degrade)\n"
        + format_table(
            ["crash at us", "of healthy", "completion us", "overhead us",
             "dead", "recoveries"],
            t_rows,
        )
        + "\n\nSurvivor-count sweep (16-host leaf-spine allgather, "
        f"{AG_SHARD // KiB} KiB shards, staggered mid-collective deaths)\n"
        + format_table(
            ["killed", "survivors", "completion us", "valid shards", "recoveries"],
            s_rows,
        ),
    )
    # Every crashed 188-host cell degrades around exactly host 100.
    for result in t_cells:
        assert result.degraded and list(result.dead_ranks) == [100]
        assert result.duration >= t_healthy  # crashes never speed things up
    # The survivor sweep loses exactly the killed ranks, nothing else.
    for k, result in s_cells:
        assert sorted(result.dead_ranks) == sorted(15 - i for i in range(k))
