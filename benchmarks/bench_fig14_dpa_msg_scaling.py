"""Figure 14 — DPA throughput scaling with 4 KiB chunks across buffer
sizes and thread counts.

Shape criteria: throughput grows with buffer size (activation overhead
amortizes) and with threads until the link saturates; UD trails UC at
equal thread counts.
"""

from repro.bench import format_table, report
from repro.dpa import dpa_throughput
from repro.units import KiB, MiB, pretty_bytes, to_gbit_per_s

BUFFERS = (256 * KiB, MiB, 4 * MiB, 8 * MiB)
THREADS = (2, 8)


def compute_fig14():
    out = {}
    for transport in ("uc", "ud"):
        for t in THREADS:
            out[(transport, t)] = [
                dpa_throughput(transport, t, buffer_bytes=b) for b in BUFFERS
            ]
    return out


def test_fig14_dpa_msg_scaling(benchmark):
    data = benchmark.pedantic(compute_fig14, rounds=1, iterations=1)
    rows = []
    for i, b in enumerate(BUFFERS):
        rows.append(
            (
                pretty_bytes(b),
                round(to_gbit_per_s(data[("uc", 2)][i]), 1),
                round(to_gbit_per_s(data[("uc", 8)][i]), 1),
                round(to_gbit_per_s(data[("ud", 2)][i]), 1),
                round(to_gbit_per_s(data[("ud", 8)][i]), 1),
            )
        )
    report(
        "fig14_dpa_msg_scaling",
        format_table(
            ["buffer", "UC 2thr", "UC 8thr", "UD 2thr", "UD 8thr"], rows
        ),
    )
    for key, series in data.items():
        # Monotone non-decreasing in buffer size.
        assert all(b >= a * 0.98 for a, b in zip(series, series[1:])), key
    # UD trails UC at the same (small) thread count.
    assert data[("ud", 2)][-1] < data[("uc", 2)][-1]
    # 8 threads reach line rate for both at 8 MiB.
    goodput = 200e9 / 8 * 4096 / 4160
    assert data[("uc", 8)][-1] > goodput * 0.9
    assert data[("ud", 8)][-1] > goodput * 0.9
