"""Ablation — multicast subgroups & receive workers (paper §IV-C).

The Allgather receive path absorbs (P−1)× more bytes than the send path
injects, and a single worker's per-CQE software cost caps its rate.  This
ablation runs a Broadcast over a fast (200 Gbit/s) link where one worker
cannot keep up, and scales the subgroup/worker count: the paper's packet
parallelism restores line rate.  It also demonstrates the asymmetric
mapping (1 send worker, k receive workers).
"""

import numpy as np

from repro.bench import format_table, make_fabric, report
from repro.core.communicator import CollectiveConfig, Communicator
from repro.core.costmodel import HostCostModel
from repro.units import KiB, MiB, to_gbit_per_s

SIZE = 2 * MiB
CHUNK = 16 * KiB
WORKERS = (1, 2, 4)

#: inflated per-chunk costs: a "weak" progress core that a 200 Gbit/s link
#: outruns (models the CPU-starved deployments of §V-B)
WEAK_CORE = HostCostModel().scaled(8.0)


def run_sweep():
    out = {}
    data = np.random.default_rng(3).integers(0, 256, SIZE, dtype=np.uint8)
    for w in WORKERS:
        fabric = make_fabric(8, mtu=CHUNK, link_gbit=200)
        config = CollectiveConfig(
            chunk_size=CHUNK, n_subgroups=w, recv_workers=w, cost=WEAK_CORE
        )
        comm = Communicator(fabric, config=config)
        res = comm.broadcast(0, data)
        assert res.verify_broadcast(data)
        out[w] = res.throughput
    return out


def test_ablation_workers(benchmark):
    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [(w, f"{to_gbit_per_s(tp):.1f}") for w, tp in out.items()]
    report(
        "ablation_workers",
        format_table(["recv workers (=subgroups)", "throughput Gbit/s"], rows)
        + "\nweak progress core: one worker cannot sustain a 200 Gbit/s link;"
        "\npacket parallelism across multicast subgroups restores the rate.",
    )
    # Scaling from 1 → 4 workers must raise throughput substantially.
    assert out[4] > out[1] * 1.8
    assert out[2] > out[1] * 1.3
