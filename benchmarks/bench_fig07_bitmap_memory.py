"""Figure 7 — bitmap and receive-buffer sizing vs PSN bits.

Regenerates the sizing curves and checks the §III-D claim: a bitmap that
fits the DPA's 1.5 MB LLC addresses an Allgather receive buffer of
≈ 50 GB at 4 KiB chunks.
"""

from repro.bench import format_table, reference, report
from repro.models import DEVICE_MEMORY, bitmap_bytes, max_receive_buffer
from repro.models.memory import fig7_rows
from repro.units import GiB, pretty_bytes


def compute_fig7():
    return fig7_rows(chunk_bytes=4096, bits=range(10, 31, 2))


def test_fig07_bitmap_memory(benchmark):
    rows = benchmark(compute_fig7)
    table = [
        (bits, pretty_bytes(bm), pretty_bytes(buf)) for bits, bm, buf in rows
    ]
    llc = DEVICE_MEMORY["DPA LLC"]
    fitting = max(b for b in range(10, 31) if bitmap_bytes(b) <= llc)
    addressable = max_receive_buffer(fitting, 4096)
    report(
        "fig07_bitmap_memory",
        format_table(["PSN bits", "bitmap", "max recv buffer"], table)
        + f"\nLLC-resident bitmap ({pretty_bytes(llc)}): {fitting} PSN bits "
        f"→ {pretty_bytes(addressable)} addressable",
    )
    # Shape: doubling per bit; LLC addresses ~50 GB (paper §III-D).
    assert rows[1][2] == 4 * rows[0][2]
    assert 30 * GiB < addressable < 70 * GiB
    assert addressable >= reference.FIG7["llc_addressable_buffer_approx"] * 0.6
