"""Figure 5 — one CPU core vs one (multithreaded) DPA core at 200 Gbit/s.

Regenerates the message-size sweep: the single-threaded UCX-UD software
datapath (with its reliability layer) and the custom RC-chunked datapath
both plateau *below* the 200 Gbit/s link, while the DPA-offloaded
datapath (one core's 16 hardware threads) reaches the practical line rate.
"""

from repro.bench import format_table, report
from repro.dpa import cpu_datapath_throughput, dpa_throughput
from repro.units import KiB, MiB, pretty_bytes, to_gbit_per_s

SIZES = (16 * KiB, 64 * KiB, 256 * KiB, MiB, 4 * MiB, 8 * MiB)


def compute_fig5():
    rows = []
    for n in SIZES:
        ucx = cpu_datapath_throughput("ucx_ud", n)
        rc = cpu_datapath_throughput("rc_chunked", n)
        dpa = dpa_throughput("ud", n_threads=16, buffer_bytes=n)
        rows.append(
            (
                pretty_bytes(n),
                round(to_gbit_per_s(ucx), 1),
                round(to_gbit_per_s(rc), 1),
                round(to_gbit_per_s(dpa), 1),
            )
        )
    return rows


def test_fig05_cpu_vs_dpa(benchmark):
    rows = benchmark.pedantic(compute_fig5, rounds=1, iterations=1)
    report(
        "fig05_cpu_vs_dpa",
        format_table(
            ["msg size", "UCX UD Gbit/s", "RC-chunked Gbit/s", "DPA(16thr) Gbit/s"],
            rows,
        ),
    )
    largest = rows[-1]
    # Shape: neither CPU datapath reaches 200G; the DPA core does (~goodput).
    assert largest[1] < 180
    assert largest[2] < 180
    assert largest[3] > 185
    # SW reliability makes UCX-UD the slowest.
    assert largest[1] < largest[2]
    # Throughput rises with message size (per-message overheads amortize).
    assert rows[0][3] < rows[-1][3]
