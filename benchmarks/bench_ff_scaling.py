"""Fig. 16-style host-count scaling of the flow-level fast-forward engine.

Sweeps the multicast broadcast across host counts and simulation engines:

* ``pkt``    — packet-level reference: ``fast_forward='off'`` with train
  coalescing disabled; every wire packet is a simulated event.
* ``train``  — the packet-train engine (``fast_forward='off'``,
  coalescing on): clean runs ride the CQE-train/coalesced-DMA fast path.
* ``exact``  — flow-level fast-forward, bit-identical virtual time to
  ``pkt`` (the fold replays the per-packet arithmetic).
* ``banded`` — closed-form per-edge streams, ≤0.5% virtual-time band.

Every broadcast folds as a single phase (``staging_slots`` is sized to
the chunk count so the receive queue covers the whole payload), so the
wall-clock ratio ``pkt / exact`` measures exactly what the engine
replaces: O(packets) event simulation with O(links) arithmetic.

Entry modes:

* ``--smoke`` — the CI ``scaling-smoke`` job: banded broadcast +
  allgather at 1024 AND 4096 hosts, a shard-equivalence axis at 1024
  (``parallel`` in {1, 2, 4} plus the multiprocessing pipe backend must
  all be bit-identical in virtual time), an ag4096/ag1024 wall-clock
  scaling-ratio gate, a hard wall-clock budget, and ``ff_phases``
  assertions that fail loudly if the fold silently disengages.  The
  result table is persisted to
  ``benchmarks/results/ff_scaling_smoke.txt`` for artifact upload.
* default — the full sweep (minutes: the ``pkt`` column at 2048 hosts
  is the cost being amortized), persisted to
  ``benchmarks/results/ff_scaling.txt``; source of the EXPERIMENTS.md
  table.

Virtual time is printed for every cell: ``pkt``/``exact``/``banded``
agreement is the exactness contract, checked here on every run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.bench import format_table, make_fabric, report
from repro.core.communicator import CollectiveConfig, Communicator
from repro.units import KiB, MiB

#: engine mode -> (fast_forward knob, train coalescing)
MODES = {
    "pkt": ("off", False),
    "train": ("off", True),
    "exact": ("exact", False),
    "banded": ("banded", False),
}

BCAST_PAYLOAD = 4 * MiB
CHUNK = 4096
AG_PER_RANK = KiB


def run_broadcast(n_hosts: int, mode: str,
                  payload: int = BCAST_PAYLOAD) -> Dict[str, object]:
    ff, coalescing = MODES[mode]
    fabric = make_fabric(n_hosts, mtu=CHUNK)
    fabric.set_coalescing(coalescing)
    cfg = CollectiveConfig(
        chunk_size=CHUNK,
        transport="uc",
        fast_forward=ff,
        # Cover the whole payload with posted recv WRs so the phase is
        # fold-eligible end to end (the no-RNR gate needs the posted
        # depth to absorb every chunk of a folded phase).
        staging_slots=payload // CHUNK,
    )
    comm = Communicator(fabric, config=cfg)
    # Warm-up: establishes the lazily-built control-plane QP mesh so the
    # timed section measures the data path, not one-time setup.
    comm.broadcast(0, np.zeros(64 * KiB, dtype=np.uint8))
    data = np.arange(payload, dtype=np.uint8) % 251
    t0 = time.perf_counter()
    res = comm.broadcast(0, data)
    wall = time.perf_counter() - t0
    assert res.verify_broadcast(data), "broadcast payload corrupted"
    return {
        "wall_s": wall,
        "events": res.engine["sim_events"],
        "virtual_s": res.duration,
        "ff_phases": res.engine.get("ff_phases", 0),
    }


def run_allgather(n_ranks: int, mode: str,
                  per_rank: int = AG_PER_RANK,
                  cutoff_alpha: float = 10e-3,
                  parallel: object = "off",
                  force_process: bool = False) -> Dict[str, object]:
    ff, coalescing = MODES[mode]
    fabric = make_fabric(n_ranks, mtu=4096)
    fabric.set_coalescing(coalescing)
    cfg = CollectiveConfig(
        chunk_size=per_rank,
        transport="uc",
        fast_forward=ff,
        # The chain-serialized allgather is activation-latency bound; the
        # adaptive cutoff's bandwidth-based deadline under-estimates it
        # at this scale, so pin a static slack that covers the chain.
        # (4096-rank chains run ~13 ms of virtual time, so their callers
        # pass a wider slack than the 10 ms default here.)
        adaptive_cutoff=False,
        cutoff_alpha=cutoff_alpha,
        parallel=parallel,
    )
    comm = Communicator(fabric, config=cfg)
    if force_process and comm.ff is not None:
        comm.ff.force_process = True
    datas = [np.full(per_rank, r % 251, dtype=np.uint8) for r in range(n_ranks)]
    t0 = time.perf_counter()
    res = comm.allgather(datas)
    wall = time.perf_counter() - t0
    assert res.verify_allgather(datas), "allgather payload corrupted"
    return {
        "wall_s": wall,
        "events": res.engine["sim_events"],
        "virtual_s": res.duration,
        "ff_phases": res.engine.get("ff_phases", 0),
        "shards": res.engine.get("shards", 0),
        "sync_rounds": res.engine.get("sync_rounds", 0),
        "boundary_msgs": res.engine.get("boundary_msgs", 0),
    }


def _rows(kind: str, sizes: List[int], modes: List[str],
          runner) -> List[List[str]]:
    rows = []
    for n in sizes:
        base_wall: Optional[float] = None
        virts = {}
        for mode in modes:
            r = runner(n, mode)
            virts[mode] = r["virtual_s"]
            if mode == "pkt":
                base_wall = r["wall_s"]
            speedup = (f"{base_wall / r['wall_s']:.1f}x"
                       if base_wall and mode != "pkt" else "-")
            rows.append([kind, str(n), mode, f"{r['wall_s']:.2f}",
                         f"{r['events']:,}", f"{r['virtual_s'] * 1e6:.3f}",
                         str(r["ff_phases"]), speedup])
            print(f"  {kind} n={n} {mode}: wall={r['wall_s']:.2f}s "
                  f"events={r['events']:,} virt={r['virtual_s'] * 1e6:.3f}us "
                  f"ff_phases={r['ff_phases']}", flush=True)
        # Exactness contract: pkt and exact must agree bitwise; banded
        # stays inside its declared band.
        if "pkt" in virts and "exact" in virts:
            assert virts["exact"] == virts["pkt"], (
                f"{kind} n={n}: exact diverged from packet-level "
                f"({virts['exact']} != {virts['pkt']})")
        if "pkt" in virts and "banded" in virts:
            err = abs(virts["banded"] - virts["pkt"]) / virts["pkt"]
            assert err <= 5e-3, (
                f"{kind} n={n}: banded outside tolerance ({err:.2%})")
    return rows


HEADERS = ["collective", "hosts", "engine", "wall_s", "events",
           "virtual_us", "ff_phases", "speedup_vs_pkt"]


def full_sweep(bcast_hosts: List[int], ag_hosts: List[int]) -> int:
    rows = _rows("broadcast", bcast_hosts,
                 ["pkt", "train", "exact", "banded"], run_broadcast)
    rows += _rows("allgather", ag_hosts,
                  ["pkt", "exact", "banded"], run_allgather)
    report("ff_scaling", format_table(HEADERS, rows))
    return 0


def smoke(budget_s: float) -> int:
    """CI scaling-smoke: banded broadcast + allgather at 1024 AND 4096
    hosts, a shard-equivalence axis at 1024, a wall-clock budget, and
    fold-engagement assertions.

    The 4096-host rows are the headline of the parallel-DES work: the
    allgather chain is O(P) folds, so quadrupling the rank count must
    cost far less than the 16x a quadratic engine would pay.  The ratio
    is measured against a 1024-rank run with the *same* per-rank payload
    and cutoff so the comparison isolates scaling, not configuration.
    Payloads shrink at 4096 (1 MiB broadcast, 128 B/rank allgather):
    receive buffers are materialized per rank, so a 4 MiB broadcast at
    4096 ranks would page in 16 GB of payload state — the engine cost
    being measured here is per-chunk/per-link, not per-byte.
    """
    t0 = time.perf_counter()
    rows = []
    failures = []

    def row(kind, n, r, note="-"):
        rows.append([kind, str(n), "banded", f"{r['wall_s']:.2f}",
                     f"{r['events']:,}", f"{r['virtual_s'] * 1e6:.3f}",
                     str(r["ff_phases"]), note])
        print(f"  smoke {kind} n={n} ({note}): wall={r['wall_s']:.2f}s "
              f"ff_phases={r['ff_phases']}", flush=True)

    b = run_broadcast(1024, "banded")
    row("broadcast", 1024, b)
    if b["ff_phases"] != 1:
        failures.append(
            f"broadcast fold disengaged (ff_phases={b['ff_phases']}, "
            "expected 1) — the run fell back to packet level")

    a = run_allgather(1024, "banded")
    row("allgather", 1024, a)
    if a["ff_phases"] != 1024:
        failures.append(
            f"allgather folded {a['ff_phases']}/1024 phases — "
            "eligibility gates are rejecting clean phases")

    # --- 4096-host rows ----------------------------------------------------
    b4 = run_broadcast(4096, "banded", payload=MiB)
    row("broadcast", 4096, b4, note="1MiB")
    if b4["ff_phases"] != 1:
        failures.append(
            f"4096-host broadcast fold disengaged "
            f"(ff_phases={b4['ff_phases']}, expected 1)")

    # Matched-payload baseline for the scaling ratio: same 128 B/rank and
    # the same 100 ms static cutoff (a 4096-rank chain runs ~13 ms of
    # virtual time, past the 10 ms default slack).
    a1m = run_allgather(1024, "banded", per_rank=128, cutoff_alpha=100e-3)
    row("allgather", 1024, a1m, note="128B/rank")
    a4 = run_allgather(4096, "banded", per_rank=128, cutoff_alpha=100e-3)
    row("allgather", 4096, a4, note="128B/rank")
    if a4["ff_phases"] != 4096:
        failures.append(
            f"4096-rank allgather folded {a4['ff_phases']}/4096 phases — "
            "the chain fell back to packet level partway")
    ratio = a4["wall_s"] / max(a1m["wall_s"], 1e-9)
    rows.append(["ag4096/ag1024", "-", "-", f"{ratio:.2f}x",
                 "-", "-", "-", "wall ratio"])
    print(f"  smoke ag4096/ag1024 wall ratio: {ratio:.2f}x "
          "(a quadratic engine would pay 16x)", flush=True)
    if ratio >= 16.0:
        failures.append(
            f"allgather scaling regressed: 4096/1024 wall ratio "
            f"{ratio:.2f}x >= 16x — the chain is quadratic again")

    # --- shard-equivalence axis at 1024 ------------------------------------
    # The parallel engine must be bit-identical in virtual time to the
    # sequential fold for any shard count, including the multiprocessing
    # pipe backend.
    for shards, pipes in [(1, False), (2, False), (4, False), (4, True)]:
        r = run_allgather(1024, "banded", parallel=shards,
                          force_process=pipes)
        tag = f"shards={shards}" + ("+pipes" if pipes else "")
        row("allgather", 1024, r, note=tag)
        if r["virtual_s"] != a["virtual_s"]:
            failures.append(
                f"parallel engine diverged at {tag}: "
                f"{r['virtual_s']} != {a['virtual_s']}")
        if r["shards"] != shards:
            failures.append(f"{tag}: shards gauge reported {r['shards']}")
        if pipes and r["boundary_msgs"] == 0:
            failures.append(
                f"{tag}: pipe backend shipped no boundary messages — "
                "the run silently stayed inline")

    wall = time.perf_counter() - t0
    rows.append(["total", "-", "-", f"{wall:.2f}", "-", "-", "-", "-"])
    report("ff_scaling_smoke", format_table(HEADERS, rows))
    if wall > budget_s:
        failures.append(
            f"scaling smoke blew its wall-clock budget: {wall:.1f}s > "
            f"{budget_s:.0f}s")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print(f"scaling smoke OK in {wall:.1f}s (budget {budget_s:.0f}s)")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI mode: banded 1024-host broadcast + allgather "
                         "under a wall-clock budget")
    ap.add_argument("--budget", type=float, default=300.0,
                    help="smoke wall-clock budget in seconds (default 300)")
    ap.add_argument("--hosts", type=str, default="188,512,1024,2048",
                    help="broadcast sweep host counts (full mode)")
    ap.add_argument("--ag-hosts", type=str, default="1024",
                    help="allgather sweep rank counts (full mode)")
    args = ap.parse_args()
    if args.smoke:
        return smoke(args.budget)
    bcast_hosts = [int(x) for x in args.hosts.split(",") if x]
    ag_hosts = [int(x) for x in args.ag_hosts.split(",") if x]
    return full_sweep(bcast_hosts, ag_hosts)


if __name__ == "__main__":
    raise SystemExit(main())
