"""Ablation — broadcast-chain parallelism M (paper §IV-A, Appendix A).

The sequencer splits the Allgather ring into M parallel chains.  M=1
serializes the roots completely (per-step activation latency adds up);
M=P starts everyone at once (maximal overlap, maximal instantaneous
incast).  This ablation sweeps M at fixed P and shows completion time
improving as chain activation gaps overlap, while per-NIC traffic stays
constant (the schedule changes, the bytes do not).
"""

import numpy as np

from repro.bench import coarse_config, format_table, make_fabric, report
from repro.core.communicator import Communicator
from repro.units import KiB

P = 16
SHARD = 64 * KiB
CHUNK = 16 * KiB
CHAINS = (1, 2, 4, 8, 16)


def run_sweep():
    out = {}
    data = [np.full(SHARD, r % 251, dtype=np.uint8) for r in range(P)]
    for m in CHAINS:
        fabric = make_fabric(P, mtu=CHUNK)
        comm = Communicator(fabric, config=coarse_config(CHUNK, n_chains=m))
        res = comm.allgather(data)
        assert res.verify_allgather(data)
        out[m] = (
            res.duration,
            res.traffic["host_injected_bytes"] / P,
        )
    return out


def test_ablation_chains(benchmark):
    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (m, f"{dur * 1e6:.1f}", f"{int(inj)}")
        for m, (dur, inj) in out.items()
    ]
    report(
        "ablation_chains",
        format_table(["chains M", "duration µs", "injected B/NIC"], rows),
    )
    durations = [out[m][0] for m in CHAINS]
    # More chains → faster (activation gaps overlap), monotonically here.
    assert durations[-1] < durations[0] * 0.85
    # Traffic is schedule-independent: per-NIC injection ~constant.
    injections = [out[m][1] for m in CHAINS]
    assert max(injections) < min(injections) * 1.05
