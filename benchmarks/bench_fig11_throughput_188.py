"""Figure 11 — per-process throughput at the full 188-node testbed scale.

Left panel: Broadcast at 188 nodes — multicast vs k-nomial vs binary tree.
Right panel: Allgather — multicast vs ring.

Shape criteria (paper §VI-B): the multicast Broadcast is the fastest
(up to 1.3× over k-nomial and 4.75× over the binary tree on the paper's
hardware); Allgather multicast ≈ ring for FSDP-typical sizes (both are
receive-path bound).

Memory note: an Allgather materializes P² · N bytes of simulated buffers
(every rank holds everyone's data), so the 188-node Allgather points use
16 KiB shards (≈ 550 MB of buffers) and the paper's 128–256 KiB FSDP
shard sizes are validated at 32 nodes, where they fit comfortably.
Simulation granularity: one simulated chunk = up to 64 KiB of wire
traffic, with per-chunk software costs rescaled (see repro.bench).
"""

import numpy as np

from repro.bench import coarse_config, format_table, make_fabric, report
from repro.core.baselines import binary_tree_broadcast, knomial_broadcast, ring_allgather
from repro.core.communicator import Communicator
from repro.core.costmodel import HostCostModel
from repro.units import KiB, MiB, pretty_bytes, to_gbit_per_s

BCAST_P = 188
BCAST_CHUNK = 64 * KiB
BCAST_SIZES = (64 * KiB, 256 * KiB, MiB)

AG_POINTS = (  # (ranks, shard bytes, chunk bytes)
    (188, 16 * KiB, 16 * KiB),
    (32, 128 * KiB, 64 * KiB),
    (32, 256 * KiB, 64 * KiB),
)


def bcast_rows():
    rows = []
    ratios = {}
    cost = HostCostModel().scaled(BCAST_CHUNK / 4096)
    for n in BCAST_SIZES:
        data = np.random.default_rng(1).integers(0, 256, n, dtype=np.uint8)
        f1 = make_fabric(BCAST_P, mtu=BCAST_CHUNK)
        mc = Communicator(f1, config=coarse_config(BCAST_CHUNK)).broadcast(0, data)
        assert mc.verify_broadcast(data)
        f2 = make_fabric(BCAST_P, mtu=BCAST_CHUNK)
        kn = knomial_broadcast(f2, 0, data, cost=cost, radix=4)
        f3 = make_fabric(BCAST_P, mtu=BCAST_CHUNK)
        bt = binary_tree_broadcast(f3, 0, data, cost=cost, segment_bytes=BCAST_CHUNK)
        ratios[n] = (mc.throughput / kn.throughput, mc.throughput / bt.throughput)
        rows.append(
            (
                pretty_bytes(n),
                round(to_gbit_per_s(mc.throughput), 2),
                round(to_gbit_per_s(kn.throughput), 2),
                round(to_gbit_per_s(bt.throughput), 2),
                f"{ratios[n][0]:.2f}x",
                f"{ratios[n][1]:.2f}x",
            )
        )
    return rows, ratios


def ag_rows():
    rows = []
    ratios = {}
    for p, n, chunk in AG_POINTS:
        cost = HostCostModel().scaled(chunk / 4096)
        data = [np.full(n, r % 251, dtype=np.uint8) for r in range(p)]
        f1 = make_fabric(p, mtu=chunk)
        mc = Communicator(f1, config=coarse_config(chunk)).allgather(data)
        assert mc.verify_allgather(data)
        del f1
        f2 = make_fabric(p, mtu=chunk)
        ring = ring_allgather(f2, data, cost=cost)
        del f2
        ratios[(p, n)] = mc.throughput / ring.throughput
        rows.append(
            (
                p,
                pretty_bytes(n),
                round(to_gbit_per_s(mc.throughput), 2),
                round(to_gbit_per_s(ring.throughput), 2),
                f"{ratios[(p, n)]:.2f}x",
            )
        )
    return rows, ratios


def run_fig11():
    return bcast_rows(), ag_rows()


def test_fig11_throughput_188(benchmark):
    (b_rows, b_ratios), (a_rows, a_ratios) = benchmark.pedantic(
        run_fig11, rounds=1, iterations=1
    )
    report(
        "fig11_throughput_188",
        "Broadcast @188 nodes (paper: mcast up to 1.3x over k-nomial, "
        "4.75x over binary tree)\n"
        + format_table(
            ["msg", "mcast Gbit/s", "k-nomial Gbit/s", "bintree Gbit/s",
             "vs knomial", "vs bintree"],
            b_rows,
        )
        + "\n\nAllgather (paper: mcast ≈ ring at FSDP-typical sizes)\n"
        + format_table(
            ["ranks", "shard", "mcast Gbit/s", "ring Gbit/s", "mcast/ring"],
            a_rows,
        ),
    )
    # Multicast Broadcast beats both P2P trees at every size.
    for n, (vs_kn, vs_bt) in b_ratios.items():
        assert vs_kn > 1.0, f"knomial beat mcast at {n}"
        assert vs_bt > 1.0, f"bintree beat mcast at {n}"
    # The binary tree loses by more at the largest size (4.75x-style gap).
    assert b_ratios[BCAST_SIZES[-1]][1] > 1.5
    # Allgather: multicast at or above ring parity (paper: equal throughput
    # at FSDP sizes; our ring pays explicit per-step control latency, so
    # multicast comes out mildly ahead, never behind).
    for key, ratio in a_ratios.items():
        assert 0.9 < ratio < 1.8, f"AG parity broken at {key}: {ratio}"
