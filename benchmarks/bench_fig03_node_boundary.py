"""Figure 3 — data movement at the training-node boundary.

Regenerates the paper's table for {INC + Mcast} vs {Ring + Ring} and
cross-checks the *measured* NIC-boundary bytes of the simulator against
the closed-form entries.
"""

import numpy as np

from repro.bench import format_table, make_fabric, report
from repro.core.baselines import inc_reduce_scatter, ring_allgather, ring_reduce_scatter
from repro.core.communicator import Communicator
from repro.models import node_boundary_table
from repro.units import KiB


def model_rows(n=64 * KiB, p=16):
    table = node_boundary_table(n, p)
    return [
        (f"{coll}/{algo}", row.send, row.recv)
        for (coll, algo), row in sorted(table.items())
    ]


def measured_allgather_boundary(p=8, n=64 * KiB):
    """Per-NIC injected bytes for mcast vs ring allgather on the DES."""
    data = [np.full(n, r, dtype=np.uint8) for r in range(p)]
    out = {}
    for algo in ("mcast", "ring"):
        fabric = make_fabric(p, mtu=8 * KiB, link_gbit=56)
        if algo == "mcast":
            comm = Communicator(fabric)
            res = comm.allgather(data)
            assert res.verify_allgather(data)
        else:
            res = ring_allgather(fabric, data)
        out[algo] = fabric.host_injected_bytes(payload_only=True) / p
    return out


def test_fig03_node_boundary(benchmark):
    rows = model_rows()
    measured = benchmark.pedantic(measured_allgather_boundary, rounds=1, iterations=1)
    p, n = 8, 64 * KiB
    report(
        "fig03_node_boundary",
        format_table(["configuration", "NIC send", "NIC recv"], rows)
        + "\n\nmeasured per-NIC injection (P=8, 64 KiB):\n"
        + format_table(
            ["algorithm", "bytes/NIC", "model"],
            [
                ("allgather/mcast", int(measured["mcast"]), n),
                ("allgather/ring", int(measured["ring"]), n * (p - 1)),
            ],
        ),
    )
    # Multicast injects ~N per NIC (+ control), ring injects ~N(P-1).
    assert measured["mcast"] < n * 1.3
    assert measured["ring"] > n * (p - 1) * 0.95
    assert measured["ring"] / measured["mcast"] > (p - 1) * 0.7
