"""Topology-zoo sweep: achieved collective time vs the analytic bound.

Sweeps broadcast and allgather across host counts (16 / 64 / 188) and
topology families (fat-tree, torus, dragonfly, 2-rail multi-rail),
reporting the simulated completion time next to the family's analytic
single-port floor (:mod:`repro.models.traffic`) and the achieved
fraction of that bound.  The multi-rail rows additionally report the
measured speedup over the single-rail fat-tree base at the same size —
the acceptance figure for Nezha-style rail striping.

Runs coarse-grained (one simulated datagram per 64 KiB chunk, datapath
costs rescaled by :func:`repro.bench.coarse_config`) so the 188-host
cells finish in CI seconds.  ``--smoke`` trims the sweep to the 16-host
row per family for the CI ``topology-smoke`` job.

Results are persisted to ``benchmarks/results/topology_sweep.txt`` —
the source of the EXPERIMENTS.md achieved-vs-bound table.
"""

from __future__ import annotations

import argparse
from typing import Dict, Optional

import numpy as np

from repro.bench import coarse_config, format_table, make_fabric, report
from repro.core.communicator import Communicator
from repro.models import DragonflyTraffic, FatTreeTraffic, MultiRailTraffic, TorusTraffic
from repro.units import KiB, MiB, gbit_per_s

LINK_GBIT = 56.0
CHUNK = 64 * KiB
BCAST_PAYLOAD = 4 * MiB
AG_SHARD = 256 * KiB

#: family -> host count -> (topo kind, TopologySpec params, traffic model)
SHAPES: Dict[str, Dict[int, tuple]] = {
    "fat_tree": {
        16: ("auto", None,
             FatTreeTraffic(n_hosts=16, radix=8)),
        64: ("auto", None,
             FatTreeTraffic(n_hosts=64, radix=16)),
        188: ("auto", None,
              FatTreeTraffic(n_hosts=188, radix=32)),
    },
    "torus": {
        16: ("torus", {"dims": [4, 4]}, TorusTraffic((4, 4))),
        64: ("torus", {"dims": [8, 8]}, TorusTraffic((8, 8))),
        188: ("torus", {"dims": [47], "hosts_per_node": 4},
              TorusTraffic((47,), hosts_per_node=4)),
    },
    "dragonfly": {
        16: ("dragonfly",
             {"n_groups": 4, "routers_per_group": 2, "hosts_per_router": 2},
             DragonflyTraffic(4, 2, hosts_per_router=2)),
        64: ("dragonfly",
             {"n_groups": 4, "routers_per_group": 4, "hosts_per_router": 4},
             DragonflyTraffic(4, 4, hosts_per_router=4)),
        188: ("dragonfly",
              {"n_groups": 4, "routers_per_group": 47, "hosts_per_router": 1},
              DragonflyTraffic(4, 47)),
    },
    "multi_rail": {
        16: ("multi_rail",
             {"base_kind": "leaf_spine",
              "base_params": {"n_leaf": 4, "n_spine": 2}, "n_rails": 2},
             MultiRailTraffic(
                 FatTreeTraffic(n_hosts=16, radix=8), 2)),
        64: ("multi_rail",
             {"base_kind": "leaf_spine",
              "base_params": {"n_leaf": 8, "n_spine": 4}, "n_rails": 2},
             MultiRailTraffic(
                 FatTreeTraffic(n_hosts=64, radix=16), 2)),
        188: ("multi_rail",
              {"base_kind": "leaf_spine",
               "base_params": {"n_leaf": 12, "n_spine": 6}, "n_rails": 2},
              MultiRailTraffic(
                  FatTreeTraffic(n_hosts=188, radix=32), 2)),
    },
}


def _run(collective: str, kind: str, n_hosts: int,
         params: Optional[dict]) -> float:
    fabric = make_fabric(n_hosts, topo=kind, link_gbit=LINK_GBIT,
                         mtu=CHUNK, topo_params=params)
    # 4 subgroups: the paper's operating point, and on 2-rail fabrics
    # the striping needs a rail-count multiple to spread planes.
    cfg = coarse_config(CHUNK, n_subgroups=4)
    comm = Communicator(fabric, config=cfg)
    if collective == "broadcast":
        data = np.zeros(BCAST_PAYLOAD, dtype=np.uint8)
        res = comm.broadcast(0, data)
        assert res.verify_broadcast(data)
    else:
        send = [np.full(AG_SHARD, r % 251, dtype=np.uint8)
                for r in range(n_hosts)]
        res = comm.allgather(send)
        assert res.verify_allgather(send)
    return res.duration


def sweep(sizes, collectives) -> str:
    bw = gbit_per_s(LINK_GBIT)
    base_times: Dict[tuple, float] = {}
    rows = []
    for collective in collectives:
        nbytes = BCAST_PAYLOAD if collective == "broadcast" else AG_SHARD
        for family, by_size in SHAPES.items():
            for n_hosts in sizes:
                kind, params, model = by_size[n_hosts]
                achieved = _run(collective, kind, n_hosts, params)
                bound = (model.bcast_time_bound(nbytes, bw)
                         if collective == "broadcast"
                         else model.allgather_time_bound(nbytes, bw))
                if family == "fat_tree":
                    base_times[(collective, n_hosts)] = achieved
                speedup = ""
                if family == "multi_rail":
                    base = base_times.get((collective, n_hosts))
                    if base:
                        speedup = f"{base / achieved:.2f}x"
                rows.append([
                    collective, family, n_hosts,
                    f"{achieved * 1e6:.1f}",
                    f"{bound * 1e6:.1f}",
                    f"{bound / achieved:.2f}",
                    speedup,
                ])
    return format_table(
        ["collective", "family", "hosts", "achieved_us", "bound_us",
         "bound_frac", "vs_1rail"], rows)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="16-host row per family only (CI topology-smoke)")
    args = ap.parse_args()
    sizes = (16,) if args.smoke else (16, 64, 188)
    table = sweep(sizes, ("broadcast", "allgather"))
    report("topology_sweep" + ("_smoke" if args.smoke else ""), table)


if __name__ == "__main__":
    main()
