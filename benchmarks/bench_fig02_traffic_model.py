"""Figure 2 — theoretical traffic model on a 1024-node radix-32 fat-tree.

Regenerates the paper's cost-model curve: total/node-boundary bandwidth of
a P2P Allgather vs the multicast composition, sweeping the send size.
Shape criterion: the node-boundary savings ratio equals 2 − 2/P and
approaches 2× at the paper's 1024-node scale.
"""

from repro.bench import format_table, reference, report
from repro.models import FatTreeTraffic
from repro.units import KiB, MiB, pretty_bytes


def compute_fig2(sizes=(64 * KiB, 256 * KiB, MiB, 8 * MiB)):
    model = FatTreeTraffic(
        n_hosts=reference.FIG2["n_hosts"], radix=reference.FIG2["radix"]
    )
    rows = []
    for n in sizes:
        p2p = model.p2p_node_bytes(n)
        mc = model.mcast_node_bytes(n)
        rows.append(
            (
                pretty_bytes(n),
                pretty_bytes(p2p["tx"] + p2p["rx"]),
                pretty_bytes(mc["tx"] + mc["rx"]),
                round((p2p["tx"] + p2p["rx"]) / (mc["tx"] + mc["rx"]), 3),
            )
        )
    return model, rows


def test_fig02_traffic_model(benchmark):
    model, rows = benchmark(compute_fig2)
    report(
        "fig02_traffic_model",
        format_table(
            ["send size", "P2P node bytes", "mcast node bytes", "savings"], rows
        )
        + f"\nfabric-level savings: {model.fabric_savings():.2f}x",
    )
    # Shape: savings = 2 - 2/P for every size, ≈ 2 at 1024 nodes.
    for row in rows:
        assert abs(row[3] - (2 - 2 / 1024)) < 1e-3
    assert model.fabric_savings() > 1.5
