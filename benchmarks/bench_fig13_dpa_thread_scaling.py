"""Figure 13 — receive throughput vs DPA thread count (8 MiB / 4 KiB).

Shape criteria: UC saturates the 200 Gbit/s link with 4 threads, UD needs
8–16; both plateaus fit within a single DPA core's 16 hardware threads
and beat the single-CPU-core baseline by ≥ 25 %.
"""

from repro.bench import format_table, reference, report
from repro.dpa import cpu_datapath_throughput, dpa_thread_scaling
from repro.units import MiB, to_gbit_per_s

THREADS = (1, 2, 4, 8, 16)


def compute_fig13():
    return {
        "uc": dpa_thread_scaling("uc", THREADS),
        "ud": dpa_thread_scaling("ud", THREADS),
        "cpu": cpu_datapath_throughput("rc_chunked", 8 * MiB),
    }


def test_fig13_dpa_thread_scaling(benchmark):
    data = benchmark.pedantic(compute_fig13, rounds=1, iterations=1)
    rows = [
        (t, round(to_gbit_per_s(data["uc"][t]), 1), round(to_gbit_per_s(data["ud"][t]), 1))
        for t in THREADS
    ]
    cpu_g = to_gbit_per_s(data["cpu"])
    report(
        "fig13_dpa_thread_scaling",
        format_table(["threads", "UC Gbit/s", "UD Gbit/s"], rows)
        + f"\nsingle CPU core baseline: {cpu_g:.1f} Gbit/s",
    )
    goodput = 200e9 / 8 * 4096 / 4160
    assert data["uc"][reference.FIG13["uc_threads_to_line_rate"]] > goodput * 0.95
    lo, hi = reference.FIG13["ud_threads_to_line_rate_range"]
    assert data["ud"][lo // 2] < goodput * 0.95  # below the needed range: not enough
    assert data["ud"][hi] > goodput * 0.95
    # One DPA core (16 threads) beats the CPU core by ≥ 25 %.
    assert data["ud"][16] > data["cpu"] * 1.2
