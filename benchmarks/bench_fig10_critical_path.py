"""Figure 10 — protocol critical-path breakdown.

Regenerates the stacked breakdown of Allgather progress time into RNR
synchronization, multicast datapath and final handshake, across node
counts and message sizes.  Shape criteria: synchronization dominates only
small messages / small scale; from 16 nodes and large buffers the
datapath takes ~all of the time (paper: 99 %).

Simulation granularity: 16 KiB chunks (one simulated datagram stands for
four 4 KiB wire datagrams; per-chunk software costs are scaled to match).
"""

import numpy as np

from repro.bench import coarse_config, format_table, make_fabric, report
from repro.core.communicator import Communicator
from repro.units import KiB, pretty_bytes

NODES = (4, 16)
SIZES = (16 * KiB, 256 * KiB, 1024 * KiB)
CHUNK = 16 * KiB


def run_breakdown():
    rows = []
    fractions = {}
    for p in NODES:
        for n in SIZES:
            fabric = make_fabric(p, mtu=CHUNK)
            comm = Communicator(fabric, config=coarse_config(CHUNK))
            data = [np.full(n, r % 251, dtype=np.uint8) for r in range(p)]
            res = comm.allgather(data)
            assert res.verify_allgather(data)
            ph = res.phase_means()
            frac = ph.multicast / ph.total
            fractions[(p, n)] = frac
            rows.append(
                (
                    p,
                    pretty_bytes(n),
                    f"{ph.sync * 1e6:.1f}",
                    f"{ph.multicast * 1e6:.1f}",
                    f"{ph.handshake * 1e6:.1f}",
                    f"{frac * 100:.1f}%",
                )
            )
    return rows, fractions


def test_fig10_critical_path(benchmark):
    rows, fractions = benchmark.pedantic(run_breakdown, rounds=1, iterations=1)
    report(
        "fig10_critical_path",
        format_table(
            ["nodes", "msg", "sync µs", "multicast µs", "handshake µs",
             "datapath share"],
            rows,
        ),
    )
    # Datapath share grows with message size at fixed node count...
    for p in NODES:
        shares = [fractions[(p, n)] for n in SIZES]
        assert shares == sorted(shares), f"P={p}: {shares}"
    # ...and dominates at 16 nodes / 1 MiB (paper: 99 % from 16 nodes).
    assert fractions[(16, SIZES[-1])] > 0.95
    # Small message at small scale: synchronization clearly visible.
    assert fractions[(4, SIZES[0])] < 0.9
