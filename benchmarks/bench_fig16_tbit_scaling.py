"""Figure 16 — scaling the receive datapath to 1.6 Tbit/s links.

64 B chunks make CQEs arrive at the rate a 1.6 Tbit/s link would deliver
4 KiB MTU packets (≈ 48.8 M/s).  Shape criteria: the sustained chunk rate
scales with hardware threads, and 128 threads (half the DPA) sustain the
Tbit-class target on the *current-generation* DPA.
"""

from repro.bench import format_table, reference, report
from repro.dpa import chunk_rate_scaling

THREADS = (1, 4, 16, 32, 64, 128)


def compute_fig16():
    return {
        "ud": chunk_rate_scaling(threads=THREADS, transport="ud", n_items=16384),
        "uc": chunk_rate_scaling(threads=THREADS, transport="uc", n_items=16384),
    }


def test_fig16_tbit_scaling(benchmark):
    data = benchmark.pedantic(compute_fig16, rounds=1, iterations=1)
    target = reference.FIG16["target_rate_chunks_per_s"]
    rows = [
        (t, f"{data['uc'][t] / 1e6:.1f}", f"{data['ud'][t] / 1e6:.1f}")
        for t in THREADS
    ]
    report(
        "fig16_tbit_scaling",
        format_table(["threads", "UC Mchunks/s", "UD Mchunks/s"], rows)
        + f"\n1.6 Tbit/s target: {target / 1e6:.1f} Mchunks/s",
    )
    for transport in ("ud", "uc"):
        series = [data[transport][t] for t in THREADS]
        assert all(b > a for a, b in zip(series, series[1:])), transport
    # 128 threads sustain the 1.6 Tbit/s-equivalent arrival rate.
    assert data["ud"][128] > target
    assert data["uc"][128] > target
    # 16 threads (one core) do not — the headroom is in the core count.
    assert data["ud"][16] < target
