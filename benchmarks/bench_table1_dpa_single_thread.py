"""Table I — single DPA hardware-thread receive-datapath metrics.

Regenerates throughput, instructions/CQE, cycles/CQE and IPC for the UD
and UC datapaths (8 MiB receive buffer, 4 KiB chunks) and compares them
against the paper's measured values.
"""

from repro.bench import paper_vs_measured, reference, report
from repro.dpa import dpa_single_thread_metrics


def compute_table1():
    return {t: dpa_single_thread_metrics(t) for t in ("uc", "ud")}


def test_table1_dpa_single_thread(benchmark):
    metrics = benchmark.pedantic(compute_table1, rounds=1, iterations=1)
    rows = []
    for t in ("uc", "ud"):
        ref = reference.TABLE1[t]
        m = metrics[t]
        rows += [
            (f"{t} throughput GiB/s", ref["throughput_gib_s"],
             round(m.throughput_gib_s, 1)),
            (f"{t} instructions/CQE", ref["instr_per_cqe"], m.instructions_per_cqe),
            (f"{t} cycles/CQE", ref["cycles_per_cqe"], m.cycles_per_cqe),
            (f"{t} IPC", ref["ipc"], m.ipc),
        ]
    report("table1_dpa_single_thread", paper_vs_measured(rows))
    uc, ud = metrics["uc"], metrics["ud"]
    # Exact calibration on the counter metrics:
    assert uc.instructions_per_cqe == 66 and uc.cycles_per_cqe == 598
    assert ud.instructions_per_cqe == 113 and ud.cycles_per_cqe == 1084
    assert abs(uc.ipc - 0.11) < 0.01 and abs(ud.ipc - 0.10) < 0.01
    # Throughput shape: UC ≈ 2x UD; both within 15 % of the paper.
    assert abs(uc.throughput_gib_s - 11.9) / 11.9 < 0.15
    assert abs(ud.throughput_gib_s - 5.2) / 5.2 < 0.15
