#!/usr/bin/env python3
"""FSDP interleaving: concurrent Allgather + Reduce-Scatter (Appendix B).

In Fully Sharded Data Parallel training, the Allgather prefetching the
next layer's parameters overlaps the Reduce-Scatter of the previous
layer's gradients — and both compete for NIC bandwidth.  This example
runs that scenario on the simulated fabric in two configurations:

* ``ring``    — ring Allgather + ring Reduce-Scatter (NCCL-style),
* ``optimal`` — multicast Allgather (the paper's protocol) + SHARP-like
  in-network-compute Reduce-Scatter,

and reports the measured speedup against the paper's ``S = 2 − 2/P``.

Run:  python examples/fsdp_training_step.py
"""

from repro.bench import coarse_config, format_table, make_fabric
from repro.models import concurrent_speedup
from repro.units import KiB
from repro.workloads import run_concurrent_pair

LAYER_SHARD = 64 * KiB  # per-rank parameter shard per "layer"
CHUNK = 16 * KiB


def main() -> None:
    rows = []
    for p in (4, 8, 16):
        ring = run_concurrent_pair(make_fabric(p, mtu=CHUNK), "ring", LAYER_SHARD)
        optimal = run_concurrent_pair(
            make_fabric(p, mtu=CHUNK), "optimal", LAYER_SHARD,
            config=coarse_config(CHUNK, n_chains=p),
        )
        assert ring.correct and optimal.correct, "data verification failed"
        speedup = ring.makespan / optimal.makespan
        rows.append(
            (
                p,
                f"{ring.makespan * 1e6:.0f} µs",
                f"{optimal.makespan * 1e6:.0f} µs",
                f"{speedup:.2f}x",
                f"{concurrent_speedup(p):.2f}x",
            )
        )
    print("Concurrent {Allgather, Reduce-Scatter} — one FSDP layer step")
    print(f"(Allgather shard {LAYER_SHARD // 1024} KiB per rank; "
          "Reduce-Scatter input sized to match)\n")
    print(
        format_table(
            ["ranks", "{ring, ring}", "{mcast, INC}", "measured speedup",
             "paper S=2-2/P"],
            rows,
        )
    )
    print(
        "\nThe bandwidth-optimal pair wins because the two collectives "
        "stress opposite NIC\ndirections (Insight 2): the multicast "
        "Allgather is receive-bound, the in-network\nReduce-Scatter is "
        "send-bound — so they stop sharing a bottleneck."
    )


if __name__ == "__main__":
    main()
