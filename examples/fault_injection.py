#!/usr/bin/env python3
"""Reliability slow path under fabric faults (paper §III-C).

Injects packet drops and adaptive-routing reordering into the fabric and
broadcasts through it.  The multicast fast path delivers what survives;
the cutoff timer fires; missing chunks are fetched from ring neighbors
with selective RDMA READs — and the data always arrives intact.

Time-varying schedules (Gilbert–Elliott burst loss, link flaps, degraded
bandwidth, slow receivers) and the adaptive cutoff estimator are described
in DESIGN.md section "Reliability & fault model".

Run:  python examples/fault_injection.py
"""

import numpy as np

from repro import (
    Communicator,
    Fabric,
    FaultSpec,
    GilbertElliott,
    RandomStreams,
    Simulator,
    StragglerSpec,
    Topology,
)
from repro.units import KiB, gbit_per_s


def run_case(name, fault_factory, seed=7, straggler=None):
    sim = Simulator()
    fabric = Fabric(sim, Topology.leaf_spine(8, 2, 2),
                    link_bandwidth=gbit_per_s(56), streams=RandomStreams(seed))
    fabric.set_fault_all(fault_factory)
    if straggler is not None:
        fabric.set_straggler(*straggler)
    comm = Communicator(fabric)
    data = np.random.default_rng(seed).integers(0, 256, 256 * KiB, dtype=np.uint8)
    result = comm.broadcast(0, data)
    ok = result.verify_broadcast(data)
    print(f"{name: <42} "
          f"drops={result.traffic['fabric_drops']:>3}  "
          f"recovered={result.counter_total('recovered_chunks'):>3}  "
          f"recoveries={result.counter_total('recoveries'):>2}  "
          f"time={result.duration * 1e6:7.1f} µs  "
          f"data={'OK' if ok else 'CORRUPT'}")
    assert ok


def main() -> None:
    print("Broadcast of 256 KiB across 8 hosts under injected faults:\n")
    run_case("lossless fabric (baseline)", lambda s, d: None)
    run_case("drop 0.5% of multicast datagrams",
             lambda s, d: FaultSpec(drop_prob=0.005))
    run_case("drop 5% of multicast datagrams",
             lambda s, d: FaultSpec(drop_prob=0.05))
    run_case("adaptive routing: 20 µs reorder jitter",
             lambda s, d: FaultSpec(reorder_jitter=20e-6))
    run_case("3% drops + 10 µs reordering",
             lambda s, d: FaultSpec(drop_prob=0.03, reorder_jitter=10e-6))
    # A pathological case: the same chunks dropped toward *adjacent* ranks,
    # forcing the recursive fetch chain (a rank fetches from a neighbor
    # that is itself still recovering).
    def adjacent_drops(src, dst):
        if dst in ("h1", "h2"):
            return FaultSpec(drop_packet_seqs={0, 1, 2})
        return None

    run_case("same chunks lost at adjacent ranks", adjacent_drops)

    # --- time-varying chaos (see DESIGN.md "Reliability & fault model") ---
    ge = GilbertElliott(p_good_bad=0.0105, p_bad_good=0.2, drop_bad=1.0)
    run_case("Gilbert-Elliott bursts (~5% stationary loss)",
             lambda s, d: FaultSpec(gilbert_elliott=ge))
    run_case("link flap: h5 downlink dark for 15-45 µs",
             lambda s, d: FaultSpec(flap_windows=[(15e-6, 45e-6)])
             if d == "h5" else None)
    run_case("degraded fabric: 25% bandwidth for 60 µs",
             lambda s, d: FaultSpec(bandwidth_windows=[(0.0, 60e-6, 0.25)]))
    run_case("slow receiver: h3 pays +4 µs per CQE poll",
             lambda s, d: None,
             straggler=(3, StragglerSpec(windows=[(0.0, 60e-6)],
                                         extra_poll_delay=4e-6)))
    print("\nEvery case delivered bit-identical data: the fast path is "
          "lossless most of the\ntime, and the ring fetch layer repairs "
          "the rest without incasting the root.")


if __name__ == "__main__":
    main()
