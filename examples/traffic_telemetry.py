#!/usr/bin/env python3
"""Switch telemetry: where do the bytes actually go? (paper Fig 12)

Runs the multicast Allgather and the ring Allgather on the same 32-host
fat-tree, scrapes every switch's port counters, and shows the ~2x data
movement saving plus the per-switch distribution.

Run:  python examples/traffic_telemetry.py
"""

import numpy as np

from repro.bench import coarse_config, format_table, make_fabric
from repro.core.baselines import ring_allgather
from repro.core.communicator import Communicator
from repro.units import KiB, pretty_bytes

P = 32
MSG = 64 * KiB


def main() -> None:
    data = [np.full(MSG, r % 251, dtype=np.uint8) for r in range(P)]

    f_mc = make_fabric(P, mtu=MSG)
    comm = Communicator(f_mc, config=coarse_config(MSG))
    res = comm.allgather(data)
    assert res.verify_allgather(data)

    f_ring = make_fabric(P, mtu=MSG)
    ring = ring_allgather(f_ring, data)
    expected = np.concatenate(data)
    assert all(np.array_equal(b, expected) for b in ring.buffers)

    mc_total = f_mc.switch_port_traffic(payload_only=True)
    ring_total = f_ring.switch_port_traffic(payload_only=True)
    print(f"Allgather of {pretty_bytes(MSG)} per rank across {P} hosts\n")
    print(format_table(
        ["algorithm", "switch-port bytes", "per NIC injected", "time"],
        [
            ("multicast", pretty_bytes(mc_total),
             pretty_bytes(f_mc.host_injected_bytes(payload_only=True) / P),
             f"{res.duration * 1e6:.0f} µs"),
            ("ring (P2P)", pretty_bytes(ring_total),
             pretty_bytes(f_ring.host_injected_bytes(payload_only=True) / P),
             f"{ring.duration * 1e6:.0f} µs"),
        ],
    ))
    print(f"\ntraffic saving: {ring_total / mc_total:.2f}x "
          "(paper Fig 12: up to 2x)\n")

    print("per-switch egress (multicast run) — the spine carries each "
          "buffer once:")
    rows = [(name, pretty_bytes(b))
            for name, b in sorted(f_mc.per_switch_egress().items())]
    print(format_table(["switch", "egress bytes"], rows))


if __name__ == "__main__":
    main()
