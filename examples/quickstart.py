#!/usr/bin/env python3
"""Quickstart: multicast Broadcast and Allgather on a simulated fat-tree.

Builds an 16-host leaf-spine fabric, runs the paper's multicast Broadcast
and bandwidth-optimal Allgather, verifies the data, and prints timing,
phase breakdown and switch telemetry.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Communicator, Fabric, Simulator, Topology
from repro.units import KiB, pretty_bytes, pretty_rate, gbit_per_s


def main() -> None:
    # 1. A 16-host two-level fat-tree with 56 Gbit/s links (the link speed
    #    of the paper's 188-node testbed).
    sim = Simulator()
    fabric = Fabric(sim, Topology.leaf_spine(16, n_leaf=4, n_spine=2),
                    link_bandwidth=gbit_per_s(56))
    comm = Communicator(fabric)
    print(f"fabric: {fabric.n_hosts} hosts, "
          f"{len(fabric.switches)} switches, "
          f"{pretty_rate(fabric.link_bandwidth)} links")

    # 2. Broadcast 256 KiB from rank 0 to everyone.
    payload = np.random.default_rng(0).integers(0, 256, 256 * KiB, dtype=np.uint8)
    bcast = comm.broadcast(0, payload)
    assert bcast.verify_broadcast(payload), "broadcast corrupted data!"
    ph = bcast.phase_means()
    print(f"\nbroadcast of {pretty_bytes(payload.nbytes)}:")
    print(f"  completion time : {bcast.duration * 1e6:.1f} µs")
    print(f"  throughput      : {pretty_rate(bcast.throughput)}")
    print(f"  phases          : sync {ph.sync * 1e6:.1f} µs | "
          f"multicast {ph.multicast * 1e6:.1f} µs | "
          f"handshake {ph.handshake * 1e6:.1f} µs")
    print(f"  switch traffic  : {pretty_bytes(bcast.traffic['switch_payload_bytes'])} "
          f"(≈ (P-1)·N — every byte crosses each link once)")

    # 3. Allgather: every rank contributes 64 KiB.
    contributions = [np.full(64 * KiB, r % 251, dtype=np.uint8)
                     for r in range(comm.size)]
    ag = comm.allgather(contributions)
    assert ag.verify_allgather(contributions), "allgather corrupted data!"
    print(f"\nallgather of {pretty_bytes(64 * KiB)} per rank "
          f"({pretty_bytes(64 * KiB * comm.size)} total):")
    print(f"  completion time : {ag.duration * 1e6:.1f} µs")
    print(f"  throughput      : {pretty_rate(ag.throughput)}")
    # The defining property (Insight 1): each NIC injected ~N bytes, not
    # N·(P−1) as any point-to-point algorithm must.
    injected = ag.traffic["host_injected_bytes"] / comm.size
    print(f"  injected per NIC: {pretty_bytes(injected)} "
          f"(P2P lower bound would be {pretty_bytes(64 * KiB * (comm.size - 1))})")


if __name__ == "__main__":
    main()
