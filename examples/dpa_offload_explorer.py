#!/usr/bin/env python3
"""SmartNIC offload explorer: how many DPA threads does a link need?

Walks the paper's DPA study interactively: single-thread metrics
(Table I), thread scaling at 200 Gbit/s (Fig 13), chunk-size trade-offs
(Fig 15), and the 1.6 Tbit/s projection (Fig 16).

Run:  python examples/dpa_offload_explorer.py
"""

from repro.bench import format_table
from repro.dpa import (
    chunk_rate_scaling,
    cpu_datapath_throughput,
    dpa_single_thread_metrics,
    dpa_thread_scaling,
    uc_chunk_size_sweep,
)
from repro.units import KiB, MiB, pretty_bytes, to_gbit_per_s


def main() -> None:
    print("1. One hardware thread (Table I) — 8 MiB buffer, 4 KiB chunks")
    rows = []
    for t in ("uc", "ud"):
        m = dpa_single_thread_metrics(t)
        rows.append((t.upper(), f"{m.throughput_gib_s:.1f}",
                     m.instructions_per_cqe, m.cycles_per_cqe, m.ipc))
    print(format_table(
        ["datapath", "GiB/s", "instr/CQE", "cycles/CQE", "IPC"], rows))
    print("→ IPC ≈ 0.1: the datapath is ~90% memory stalls — exactly what "
          "hardware\n  multithreading can hide.\n")

    print("2. Thread scaling at 200 Gbit/s (Fig 13)")
    threads = (1, 2, 4, 8, 16)
    uc = dpa_thread_scaling("uc", threads)
    ud = dpa_thread_scaling("ud", threads)
    cpu = cpu_datapath_throughput("rc_chunked", 8 * MiB)
    print(format_table(
        ["threads", "UC Gbit/s", "UD Gbit/s"],
        [(t, f"{to_gbit_per_s(uc[t]):.0f}", f"{to_gbit_per_s(ud[t]):.0f}")
         for t in threads]))
    print(f"→ single x86 core: {to_gbit_per_s(cpu):.0f} Gbit/s — one DPA "
          f"core (16 threads, 1/16 of the\n  accelerator) beats it by "
          f"{ud[16] / cpu:.2f}x.\n")

    print("3. UC multi-packet chunks (Fig 15) — fewer CQEs per byte")
    sweep = uc_chunk_size_sweep(chunk_sizes=(4 * KiB, 16 * KiB, 64 * KiB),
                                threads=(1, 2))
    print(format_table(
        ["chunk", "1 thread", "2 threads"],
        [(pretty_bytes(c),
          f"{to_gbit_per_s(sweep[c][1]):.0f} Gbit/s",
          f"{to_gbit_per_s(sweep[c][2]):.0f} Gbit/s") for c in sweep]))
    print("→ 64 KiB chunks hit line rate with ONE thread.\n")

    print("4. Scaling to 1.6 Tbit/s links (Fig 16) — 64 B chunks emulate "
          "the CQE arrival\n   rate of 4 KiB packets on a Tbit link "
          "(≈ 48.8 M/s)")
    rates = chunk_rate_scaling(threads=(16, 64, 128), n_items=16384)
    target = 1600e9 / 8 / 4096
    print(format_table(
        ["threads", "Mchunks/s", "sustains 1.6 Tbit/s?"],
        [(t, f"{r / 1e6:.1f}", "yes" if r > target else "no")
         for t, r in rates.items()]))
    print("→ half of today's DPA already keeps up with a 1.6 Tbit/s link.")


if __name__ == "__main__":
    main()
