#!/usr/bin/env python3
"""Lint tracepoint call sites against the schema catalogue.

Scans ``src/repro`` for ``.instant(...)`` / ``.complete(...)`` /
``.counter(...)`` calls with a string-literal first argument and checks
that every name

* follows the ``subsystem.verb`` convention (:data:`repro.obs.schema.NAME_RE`),
* is registered in :data:`repro.obs.schema.TRACEPOINTS`.

Exit status 1 lists every violation; 0 means the catalogue is complete.
Run from the repo root: ``PYTHONPATH=src python tools/check_tracepoints.py``.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.schema import NAME_RE, TRACEPOINTS  # noqa: E402

CALL_RE = re.compile(
    r"\.(?:instant|complete|counter)\(\s*(['\"])([^'\"]+)\1"
)

#: tracepoints that must have at least one live emission site — the
#: fail-stop suite's CI assertions grep traces for these, so a refactor
#: that silently drops the call site must fail here, not in a flaky
#: downstream crash test.
REQUIRED_EMITTED = {
    "liveness.suspect",
    "liveness.confirm",
    "repair.replan",
    "repair.void",
    "engine.watchdog",
}


def main() -> int:
    violations = []
    used = set()
    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        text = path.read_text()
        for lineno, line in enumerate(text.splitlines(), 1):
            for m in CALL_RE.finditer(line):
                name = m.group(2)
                rel = path.relative_to(ROOT)
                used.add(name)
                if not NAME_RE.match(name):
                    violations.append(
                        f"{rel}:{lineno}: tracepoint {name!r} does not match "
                        f"subsystem.verb ({NAME_RE.pattern})")
                elif name not in TRACEPOINTS:
                    violations.append(
                        f"{rel}:{lineno}: tracepoint {name!r} is not registered "
                        f"in repro.obs.schema.TRACEPOINTS")
    missing_required = sorted(REQUIRED_EMITTED - set(TRACEPOINTS))
    for name in missing_required:
        violations.append(
            f"required tracepoint {name!r} is not registered in "
            f"repro.obs.schema.TRACEPOINTS")
    for name in sorted(REQUIRED_EMITTED & set(TRACEPOINTS) - used):
        violations.append(
            f"required tracepoint {name!r} is catalogued but has no "
            f"emission site under src/repro")
    for v in violations:
        print(v)
    unused = sorted(set(TRACEPOINTS) - used - REQUIRED_EMITTED)
    if unused:
        print(f"note: catalogued but never emitted: {', '.join(unused)}",
              file=sys.stderr)
    if violations:
        print(f"{len(violations)} tracepoint violation(s)", file=sys.stderr)
        return 1
    print(f"tracepoints OK: {len(used)} names in use, "
          f"{len(TRACEPOINTS)} catalogued")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
