"""Tests for the in-network-compute (SHARP-like) reduction substrate."""

import numpy as np
import pytest

from repro.net import Fabric, RecvWR, Topology, Transport
from repro.net.inc import IncTree
from repro.sim import Simulator
from repro.units import gbit_per_s
from repro.workloads import run_concurrent_pair
from repro.bench import coarse_config, make_fabric
from repro.units import KiB


def setup_tree(topo, members, shard_bytes, segment_bytes=4096):
    sim = Simulator()
    fabric = Fabric(sim, topo, link_bandwidth=gbit_per_s(56))
    rkey = 999_999
    qpn_of = {}
    bufs = {}
    for h in members:
        nic = fabric.nic(h)
        bufs[h] = nic.memory.register(shard_bytes, key=rkey)
        qp = nic.create_qp(Transport.RC)
        dummy = nic.memory.register(1)
        for i in range(128):
            qp.post_recv(RecvWR(wr_id=i, mr_key=dummy.key, offset=0, length=0))
        qpn_of[h] = qp.qpn
    tree = fabric.create_inc_tree(members, rkey, qpn_of, shard_bytes, segment_bytes)
    return sim, fabric, tree, bufs


def test_tree_structure_on_leaf_spine():
    topo = Topology.leaf_spine(8, 2, 2)
    sim, fabric, tree, _ = setup_tree(topo, list(range(8)), 4096)
    # Every switch in the tree except the root has a parent.
    roots = [n for n, role in tree.roles.items() if role.parent is None]
    assert len(roots) == 1
    root = roots[0]
    assert root.startswith("spine")
    # Leaves expect one contribution per attached member host.
    for name, role in tree.roles.items():
        if name.startswith("leaf"):
            assert role.expected == 4 + 0  # 4 hosts per leaf, no switch kids


def test_owner_mapping_and_segments():
    topo = Topology.star(4)
    sim, fabric, tree, _ = setup_tree(topo, [0, 1, 2, 3], 8192, 4096)
    assert tree.segs_per_shard == 2
    assert tree.n_segments == 8
    assert tree.owner_of(0) == (0, 0)
    assert tree.owner_of(1) == (0, 4096)
    assert tree.owner_of(2) == (1, 0)
    assert tree.owner_of(7) == (3, 4096)
    with pytest.raises(IndexError):
        tree.owner_of(8)


def test_switch_reduction_sums_contributions():
    topo = Topology.star(3)
    sim, fabric, tree, bufs = setup_tree(topo, [0, 1, 2], 4096, 4096)
    contributions = {
        h: np.full(1024, float(h + 1), dtype=np.float32) for h in (0, 1, 2)
    }
    # Each host injects its contribution for shard 0 (psn 0, owner host 0).
    for h in (0, 1, 2):
        tree.inject(h, 0, contributions[h].view(np.uint8))
    sim.run()
    result = bufs[0].buf.view(np.float32)
    np.testing.assert_allclose(result, 6.0)  # 1 + 2 + 3


def test_partial_contributions_do_not_emit():
    topo = Topology.star(3)
    sim, fabric, tree, bufs = setup_tree(topo, [0, 1, 2], 4096, 4096)
    tree.inject(0, 0, np.ones(1024, dtype=np.float32).view(np.uint8))
    tree.inject(1, 0, np.ones(1024, dtype=np.float32).view(np.uint8))
    sim.run()  # third contribution never arrives
    assert np.all(bufs[0].buf == 0)  # nothing delivered


def test_tree_validation():
    topo = Topology.star(4)
    sim = Simulator()
    fabric = Fabric(sim, topo)
    with pytest.raises(ValueError, match="float32"):
        IncTree(fabric, [0, 1], rkey=1, qpn_of={}, shard_bytes=1001)
    with pytest.raises(ValueError, match="MTU"):
        IncTree(fabric, [0, 1], rkey=1, qpn_of={}, shard_bytes=4096,
                segment_bytes=fabric.mtu * 2)
    with pytest.raises(ValueError, match="2 members"):
        IncTree(fabric, [0], rkey=1, qpn_of={}, shard_bytes=4096)


def test_fsdp_pair_modes_validated():
    with pytest.raises(ValueError, match="mode"):
        run_concurrent_pair(make_fabric(4, mtu=16 * KiB), "hybrid", 64 * KiB)


def test_fsdp_pair_ring_mode_correct():
    res = run_concurrent_pair(make_fabric(4, mtu=16 * KiB), "ring", 32 * KiB)
    assert res.correct
    assert res.makespan >= max(res.ag_duration, res.rs_duration) * 0.99


def test_fsdp_pair_optimal_mode_correct():
    res = run_concurrent_pair(
        make_fabric(4, mtu=16 * KiB), "optimal", 32 * KiB,
        config=coarse_config(16 * KiB, n_chains=4),
    )
    assert res.correct


def test_fsdp_backward_pipeline_optimal_beats_ring():
    """Multi-layer FSDP backward pass (§II-A): the bandwidth-optimal pair
    wins layer after layer, so the whole step's communication shrinks."""
    from repro.workloads import run_fsdp_backward_pipeline

    layers = [32 * KiB, 64 * KiB, 32 * KiB]
    t_ring = run_fsdp_backward_pipeline(
        make_fabric(8, mtu=16 * KiB), "ring", layers)
    t_opt = run_fsdp_backward_pipeline(
        make_fabric(8, mtu=16 * KiB), "optimal", layers,
        config=coarse_config(16 * KiB, n_chains=8))
    assert t_opt < t_ring
