"""Chaos harness: collectives under time-varying fault schedules.

The acceptance scenario of the adaptive reliability layer: bursty
(Gilbert–Elliott) loss, mid-collective link flaps, degraded-bandwidth
windows and slow-receiver injection, driven against Broadcast and
Allgather on an 8-host leaf-spine.  Every test verifies payload bytes —
a recovery path that "completes" with wrong data must fail here.

Fast cases are marked ``chaos_smoke`` so CI can run them standalone:
``pytest -m chaos_smoke``.
"""

import numpy as np
import pytest

from repro.core import CollectiveConfig, Communicator
from repro.core.reliability import ReliabilityError
from repro.net import Fabric, GilbertElliott, StragglerSpec, Topology
from repro.net.link import FaultSpec
from repro.sim import RandomStreams, Simulator
from repro.units import gbit_per_s, kib


def make_comm(n_hosts=8, topo=None, config=None, seed=0):
    sim = Simulator()
    fabric = Fabric(
        sim,
        topo or Topology.leaf_spine(n_hosts, n_leaf=2, n_spine=2),
        link_bandwidth=gbit_per_s(56),
        streams=RandomStreams(seed=seed),
    )
    return Communicator(fabric, config=config)


def rank_data(rank, nbytes):
    rng = np.random.default_rng(2000 + rank)
    return rng.integers(0, 256, size=nbytes, dtype=np.uint8)


#: ~5% stationary loss, mean burst of 5 packets — the soak-level severity.
GE_5PCT = GilbertElliott(p_good_bad=0.0105, p_bad_good=0.2, drop_bad=1.0)
#: heavier chain for the short smoke runs, so bursts are certain to occur
#: within a few dozen packets.
GE_SMOKE = GilbertElliott(p_good_bad=0.05, p_bad_good=0.25, drop_bad=1.0)


# ------------------------------------------------------------------- smoke


@pytest.mark.chaos_smoke
def test_smoke_broadcast_under_bursty_loss():
    comm = make_comm(4, topo=Topology.star(4), seed=11)
    comm.fabric.set_fault_all(lambda s, d: FaultSpec(gilbert_elliott=GE_SMOKE))
    data = rank_data(0, kib(128))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    assert result.traffic["fabric_drops"] > 0  # chaos actually happened


@pytest.mark.chaos_smoke
def test_smoke_allgather_with_link_flap():
    comm = make_comm(4, topo=Topology.star(4), seed=12)
    # One host's downlink goes dark mid-collective; ctrl traffic survives
    # (protect_reliable default) as on a QoS-protected virtual lane.
    comm.fabric.set_fault(
        "sw000", "h2", FaultSpec(flap_windows=[(10e-6, 40e-6)])
    )
    data = [rank_data(r, kib(16)) for r in range(4)]
    result = comm.allgather(data)
    assert result.verify_allgather(data)


@pytest.mark.chaos_smoke
def test_smoke_allreduce_under_bursty_loss():
    """The composed allreduce under bursty loss: the UD allgather phase
    takes real drops and recovers; the reduced sums still verify on every
    rank (the RC reduce-scatter phase is loss-immune by transport)."""
    comm = make_comm(4, topo=Topology.star(4), seed=11)
    comm.fabric.set_fault_all(lambda s, d: FaultSpec(gilbert_elliott=GE_SMOKE))
    rng = np.random.default_rng(2100)
    data = [rng.normal(size=kib(32)).astype(np.float32) for _ in range(4)]
    result = comm.allreduce(data)
    assert result.verify_allreduce(data)
    assert result.traffic["fabric_drops"] > 0  # chaos actually happened
    assert result.reliability_summary()["recoveries"] >= 1


@pytest.mark.chaos_smoke
def test_smoke_alltoall_rides_reliable_rc():
    """The unicast exchange rides RC queue pairs: a fault schedule that
    mauls UD traffic never drops an alltoall byte, and payloads land
    exactly."""
    comm = make_comm(4, topo=Topology.star(4), seed=12)
    comm.fabric.set_fault_all(lambda s, d: FaultSpec(gilbert_elliott=GE_SMOKE))
    data = [rank_data(r, kib(64)) for r in range(4)]
    result = comm.alltoall(data)
    assert result.verify_alltoall(data)
    assert result.traffic["fabric_drops"] == 0


@pytest.mark.chaos_smoke
def test_smoke_reliability_telemetry_populated():
    comm = make_comm(4, topo=Topology.star(4), seed=13)
    comm.fabric.set_fault("sw000", "h1", FaultSpec(drop_packet_seqs={0, 1}))
    data = rank_data(0, kib(64))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    summary = result.reliability_summary()
    assert summary["recoveries"] >= 1
    assert summary["recovered_chunks"] >= 2
    assert summary["fetch_rounds"] >= 1
    assert sum(summary["retry_histogram"].values()) >= 1
    # Every rank armed a cutoff timer and logged the decision.
    assert summary["max_timer_rearms"] >= 1
    for r in result.ranks:
        assert any(reason == "cutoff-arm" for _, _, reason in r.timer_trace)


# -------------------------------------------------------------------- soak


def test_soak_broadcast_ge_loss_plus_midstream_flap():
    """Acceptance soak: 5% bursty loss everywhere plus a mid-collective
    flap of one host's downlink, 256 KiB Broadcast on 8-host leaf-spine."""
    comm = make_comm(8, seed=21)

    def chaos(src, dst):
        spec = FaultSpec(gilbert_elliott=GE_5PCT)
        if dst == "h5":
            spec = FaultSpec(
                gilbert_elliott=GE_5PCT, flap_windows=[(15e-6, 45e-6)]
            )
        return spec

    comm.fabric.set_fault_all(chaos)
    data = rank_data(0, kib(256))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    assert result.traffic["fabric_drops"] > 0
    assert result.reliability_summary()["recoveries"] >= 1


def test_soak_allgather_ge_loss_plus_midstream_flap():
    comm = make_comm(8, seed=22)

    def chaos(src, dst):
        spec = FaultSpec(gilbert_elliott=GE_5PCT)
        if dst == "h3":
            spec = FaultSpec(
                gilbert_elliott=GE_5PCT, flap_windows=[(20e-6, 50e-6)]
            )
        return spec

    comm.fabric.set_fault_all(chaos)
    data = [rank_data(r, kib(32)) for r in range(8)]  # 256 KiB total
    result = comm.allgather(data)
    assert result.verify_allgather(data)
    assert result.traffic["fabric_drops"] > 0


def test_soak_back_to_back_collectives_on_degrading_fabric():
    """Several collectives on one communicator while the fault schedule
    evolves — the estimator state must survive op boundaries."""
    comm = make_comm(4, topo=Topology.star(4), seed=23)
    data = rank_data(0, kib(128))
    for _ in range(2):  # clean warmups train the estimator
        assert comm.broadcast(0, data).verify_broadcast(data)
    comm.fabric.set_fault_all(lambda s, d: FaultSpec(gilbert_elliott=GE_5PCT))
    for _ in range(3):
        assert comm.broadcast(0, data).verify_broadcast(data)
    engine = comm.engines[1]
    assert engine.cutoff.samples >= 2  # warmups observed
    assert engine.cutoff.slack() <= engine.cutoff.alpha_max


# -------------------------------------------------- adaptive vs static alpha


def _chaotic_broadcast_duration(adaptive, seed=31, warmups=2):
    """Same seed, same fault schedule, same op sequence — only the cutoff
    policy differs."""
    cfg = CollectiveConfig(adaptive_cutoff=adaptive)
    comm = make_comm(8, config=cfg, seed=seed)
    data = rank_data(0, kib(256))
    for _ in range(warmups):  # fault-free: no channel RNG draws, identical
        assert comm.broadcast(0, data).verify_broadcast(data)
    comm.fabric.set_fault_all(lambda s, d: FaultSpec(gilbert_elliott=GE_5PCT))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    assert result.reliability_summary()["recoveries"] >= 1
    return result


def test_adaptive_cutoff_tightens_vs_static_alpha():
    """The tentpole claim: after clean warmups the adaptive timer arms a
    tighter cutoff than the static α, so recovery starts sooner and the
    lossy collective finishes faster — on an identical fault schedule."""
    static = _chaotic_broadcast_duration(adaptive=False)
    adaptive = _chaotic_broadcast_duration(adaptive=True)
    cfg = CollectiveConfig()

    # The armed timeout itself is demonstrably tighter than N/B + α ...
    def armed_cutoff(result):
        return max(
            timeout
            for r in result.ranks
            for _, timeout, reason in r.timer_trace
            if reason == "cutoff-arm"
        )

    assert armed_cutoff(adaptive) < armed_cutoff(static)
    assert armed_cutoff(static) >= cfg.cutoff_alpha  # includes full static α
    # ... and the end-to-end completion is faster.
    assert adaptive.duration < static.duration


def test_adaptive_cutoff_backs_off_after_spurious_recovery():
    comm = make_comm(4, topo=Topology.star(4), seed=32)
    data = rank_data(0, kib(64))
    comm.broadcast(0, data)
    slack_before = comm.engines[2].cutoff.slack()
    comm.fabric.set_fault("sw000", "h2", FaultSpec(drop_packet_seqs={0}))
    comm.broadcast(0, data)
    assert comm.engines[2].cutoff.spurious == 1
    assert comm.engines[2].cutoff.slack() > slack_before


# ------------------------------------------------------- fetch escalation


def test_concurrent_recoveries_share_fetch_servers():
    """Three ranks lose their prefix simultaneously: all enter recovery at
    once and the ring of fetch servers serves overlapping sessions."""
    comm = make_comm(4, topo=Topology.star(4), seed=41)
    for h in ("h1", "h2", "h3"):
        comm.fabric.set_fault(
            "sw000", h, FaultSpec(drop_packet_seqs={0, 1, 2, 3})
        )
    data = rank_data(0, kib(128))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    summary = result.reliability_summary()
    assert summary["recoveries"] >= 3  # every non-root rank recovered
    assert summary["recovered_chunks"] >= 12


def test_unreachable_neighbors_raise_reliability_error():
    """When the whole fabric (including RC) dies mid-collective, recovery
    cannot succeed; the op must fail loudly within the configured deadline
    instead of hanging the simulation."""
    cfg = CollectiveConfig(
        recovery_deadline=3e-3, fetch_ack_timeout=200e-6, fetch_stall_rounds=2
    )
    comm = make_comm(4, topo=Topology.star(4), config=cfg, seed=42)
    # Total outage from 20 µs on (after barrier/activation, mid-data),
    # including reliable transports: hosts are truly unreachable.
    comm.fabric.set_fault_all(
        lambda s, d: FaultSpec(
            flap_windows=[(20e-6, 1e9)], protect_reliable=False
        )
    )
    data = rank_data(0, kib(256))
    with pytest.raises(ReliabilityError) as exc_info:
        comm.broadcast(0, data)
    err = exc_info.value
    assert err.missing_chunks > 0
    assert err.counters["fetch_ack_timeouts"] >= 1
    assert err.elapsed <= cfg.recovery_deadline + cfg.fetch_ack_timeout
    # ... and the failure arrived promptly, not after a hang.
    assert comm.sim.now < 0.1


def test_escalation_past_unresponsive_neighbor():
    """The preferred (ring-left) neighbor never answers FETCH_REQ; the
    requester must time out its FETCH_ACK and escalate to the next
    neighbor rather than retrying the dead one forever."""
    from repro.core.control import MSG_FETCH_REQ

    cfg = CollectiveConfig(fetch_ack_timeout=100e-6, fetch_stall_rounds=2)
    comm = make_comm(4, topo=Topology.star(4), config=cfg, seed=43)
    data = rank_data(0, kib(128))

    # Surgical outage: only rank 3's fetch requests toward rank 2 die (a
    # wedged fetch server); every other packet — barrier, final handshake,
    # rank 2's own traffic — is untouched.
    def is_r3_fetch_req(p, seq):
        if p.src != 3 or p.payload is None or p.payload.nbytes < 4:
            return False
        return int(np.asarray(p.payload[:4]).view(np.uint32)[0]) == MSG_FETCH_REQ

    comm.fabric.set_fault("sw000", "h3", FaultSpec(drop_packet_seqs=set(range(8))))
    comm.fabric.set_fault(
        "sw000", "h2",
        FaultSpec(drop_predicate=is_r3_fetch_req, protect_reliable=False),
    )
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    stats = result.ranks[3].counters
    assert stats["fetch_ack_timeouts"] >= 1
    assert stats["neighbor_escalations"] >= 1
    assert stats["recovered_chunks"] >= 1


# ------------------------------------------- stragglers & degraded bandwidth


def test_straggler_rank_backs_up_into_rnr_and_recovers():
    cfg = CollectiveConfig(staging_slots=16)
    comm = make_comm(4, topo=Topology.star(4), config=cfg, seed=51)
    comm.fabric.set_straggler(
        2, StragglerSpec(windows=[(0.0, 60e-6)], extra_poll_delay=4e-6)
    )
    data = rank_data(0, kib(256))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    # The slow receiver's staging ring overflowed into RNR drops, which the
    # reliability layer then absorbed.
    assert result.traffic["rnr_drops"] > 0
    assert result.ranks[2].counters["recovered_chunks"] > 0


def test_straggler_window_expires():
    """Outside its windows a straggler behaves normally: a window in the
    far future must not slow the collective at all."""
    comm_ref = make_comm(4, topo=Topology.star(4), seed=52)
    base = comm_ref.broadcast(0, rank_data(0, kib(64))).duration
    comm = make_comm(4, topo=Topology.star(4), seed=52)
    comm.fabric.set_straggler(
        1, StragglerSpec(windows=[(10.0, 11.0)], extra_poll_delay=1e-3)
    )
    result = comm.broadcast(0, rank_data(0, kib(64)))
    assert result.duration == pytest.approx(base)


def test_degraded_bandwidth_window_stretches_collective():
    data = rank_data(0, kib(128))
    comm_ref = make_comm(4, topo=Topology.star(4), seed=53)
    base = comm_ref.broadcast(0, data)
    assert base.verify_broadcast(data)
    comm = make_comm(4, topo=Topology.star(4), seed=53)
    comm.fabric.set_fault_all(
        lambda s, d: FaultSpec(bandwidth_windows=[(0.0, 1.0, 0.25)])
    )
    slow = comm.broadcast(0, data)
    assert slow.verify_broadcast(data)
    assert slow.duration > 2 * base.duration
