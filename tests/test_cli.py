"""Smoke tests for the ``python -m repro`` command-line interface."""

import json

from repro.__main__ import main


def test_cli_demo_runs_and_verifies(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "data OK" in out


def test_cli_experiments_lists_all_benches(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "bench_fig12_traffic_savings" in out
    assert out.count("pytest benchmarks/") == 15


def test_cli_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "598 cycles/CQE" in out and "1084 cycles/CQE" in out


def test_cli_speedup_small(capsys):
    assert main(["speedup", "4"]) == 0
    out = capsys.readouterr().out
    assert "P=4" in out and "1.50x" in out


def test_cli_help_and_unknown(capsys):
    assert main(["help"]) == 0
    assert main(["frobnicate"]) == 2


def test_cli_trace_writes_chrome_json(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    assert main(["trace", "--hosts", "8", "--bytes", "16384",
                 "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "data OK" in out and "trace:" in out
    doc = json.loads(out_path.read_text())
    assert doc["traceEvents"], "trace export is empty"
    assert any(e["ph"] == "M" for e in doc["traceEvents"])


def test_cli_tune_search_then_cache_hit(tmp_path, capsys):
    log_path = tmp_path / "search-log.json"
    argv = ["tune", "--hosts", "4", "--topo", "star", "--bytes", "16384",
            "--max-evals", "2", "--store", str(tmp_path / "store")]
    assert main(argv + ["--log", str(log_path)]) == 0
    out = capsys.readouterr().out
    assert "searched:" in out and "best knobs:" in out
    log = json.loads(log_path.read_text())
    assert log["cache_hit"] is False and log["log"]

    # Same key again: a pure cache hit, asserted by the CLI itself.
    assert main(argv + ["--expect-cache-hit"]) == 0
    out = capsys.readouterr().out
    assert "cache hit:" in out
    assert "evaluations=0, sim_events=0" in out


def test_cli_tune_expect_cache_hit_fails_on_miss(tmp_path, capsys):
    assert main(["tune", "--hosts", "4", "--topo", "star", "--bytes", "16384",
                 "--max-evals", "2", "--store", str(tmp_path / "store"),
                 "--expect-cache-hit"]) == 3
    assert "expected a cache hit" in capsys.readouterr().out


def test_cli_tune_list_and_show(capsys):
    assert main(["tune", "--list"]) == 0
    out = capsys.readouterr().out
    assert "allgather" in out and "188" in out and "gain" in out

    assert main(["tune", "--show", "allgather-testbed_188"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["key"]["n_hosts"] == 188
    assert main(["tune", "--show", "no-such-profile"]) == 1


def test_cli_collective_failure_exits_4_with_screen(capsys, monkeypatch):
    """A typed collective failure escaping any command produces a one-screen
    summary on stderr (rank, phase, retry histogram) and exit code 4."""
    import repro.__main__ as cli
    from repro.core.reliability import ReliabilityError

    def boom():
        raise ReliabilityError(
            "recovery deadline exceeded", rank=3, coll_id=7, kind="allgather",
            missing_chunks=5, n_chunks=32, elapsed=0.26, deadline=0.25,
            phase="recovery", retry_histogram=[4, 2, 2],
        )

    monkeypatch.setattr(cli, "_demo", boom)
    assert main(["demo"]) == cli.EXIT_COLLECTIVE_FAILURE
    err = capsys.readouterr().err
    assert "collective failure: ReliabilityError" in err
    assert "rank     : 3" in err
    assert "phase    : recovery" in err
    assert "missing  : 5/32 chunks" in err
    assert "retries  : [4, 2, 2] (3 recoveries, 8 fetch rounds)" in err


def test_cli_abort_failure_screen_names_dead_ranks(capsys, monkeypatch):
    import repro.__main__ as cli
    from repro.core.reliability import CollectiveAbortedError

    def boom():
        raise CollectiveAbortedError(
            "collective aborted on rank 0: peer(s) [2] fail-stopped",
            rank=0, coll_id=1, kind="broadcast", phase="data",
            dead_ranks={2}, missing_chunks=8, n_chunks=32,
        )

    monkeypatch.setattr(cli, "_demo", boom)
    assert main(["demo"]) == 4
    err = capsys.readouterr().err
    assert "CollectiveAbortedError" in err
    assert "op       : broadcast (coll_id=1)" in err
    assert "dead     : ranks [2]" in err
