"""Smoke tests for the ``python -m repro`` command-line interface."""

import json

from repro.__main__ import main


def test_cli_demo_runs_and_verifies(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "data OK" in out


def test_cli_experiments_lists_all_benches(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "bench_fig12_traffic_savings" in out
    assert out.count("pytest benchmarks/") == 15


def test_cli_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "598 cycles/CQE" in out and "1084 cycles/CQE" in out


def test_cli_speedup_small(capsys):
    assert main(["speedup", "4"]) == 0
    out = capsys.readouterr().out
    assert "P=4" in out and "1.50x" in out


def test_cli_help_and_unknown(capsys):
    assert main(["help"]) == 0
    assert main(["frobnicate"]) == 2


def test_cli_trace_writes_chrome_json(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    assert main(["trace", "--hosts", "8", "--bytes", "16384",
                 "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "data OK" in out and "trace:" in out
    doc = json.loads(out_path.read_text())
    assert doc["traceEvents"], "trace export is empty"
    assert any(e["ph"] == "M" for e in doc["traceEvents"])
