"""Ablation (§III-B): why the receive side *must* stage.

The paper argues the user buffer cannot be posted directly to the network
under out-of-order delivery: if chunk *i* is dropped or reordered, chunk
*i+1* matches receive request *i* and lands at the wrong offset,
corrupting the buffer.  This test demonstrates exactly that failure with
a naive zero-copy receiver on the raw verbs layer — and that the staging
protocol survives the identical fault pattern.
"""

import numpy as np
import pytest

from repro.core.communicator import Communicator
from repro.net import Fabric, RecvWR, SendWR, Topology, Transport
from repro.net.link import FaultSpec
from repro.sim import RandomStreams, Simulator
from repro.units import KiB, gbit_per_s

CHUNK = 4096
N_CHUNKS = 32


def _run_naive_zero_copy(fault):
    """Sender fragments a buffer into UD datagrams; the receiver posts its
    *user buffer* directly, sequentially — the naive zero-copy datapath."""
    sim = Simulator()
    fabric = Fabric(sim, Topology.back_to_back(), link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(5))
    fabric.set_fault("h0", "h1", fault)
    src = fabric.nic(0)
    dst = fabric.nic(1)
    data = np.random.default_rng(0).integers(0, 256, N_CHUNKS * CHUNK, dtype=np.uint8)
    s_mr = src.memory.register(data)
    r_mr = dst.memory.register(N_CHUNKS * CHUNK)
    sqp = src.create_qp(Transport.UD)
    rqp = dst.create_qp(Transport.UD)
    # Naive: receive request i points at user-buffer offset i*CHUNK.
    for i in range(N_CHUNKS):
        rqp.post_recv(RecvWR(wr_id=i, mr_key=r_mr.key, offset=i * CHUNK, length=CHUNK))
    for i in range(N_CHUNKS):
        sqp.post_send(SendWR(wr_id=i, verb="send", mr_key=s_mr.key,
                             offset=i * CHUNK, length=CHUNK, imm=i, dst=1,
                             dst_qpn=rqp.qpn))
    sim.run()
    return data, r_mr.buf


def test_naive_zero_copy_corrupts_on_drop():
    """One dropped datagram shifts every later chunk one slot early."""
    data, received = _run_naive_zero_copy(FaultSpec(drop_packet_seqs={3}))
    assert not np.array_equal(received, data)
    # Chunk 4's bytes sit where chunk 3 belongs — the §III-B scenario.
    assert np.array_equal(received[3 * CHUNK : 4 * CHUNK],
                          data[4 * CHUNK : 5 * CHUNK])


def test_naive_zero_copy_corrupts_on_reorder():
    data, received = _run_naive_zero_copy(FaultSpec(reorder_jitter=40e-6))
    assert not np.array_equal(received, data)


def test_naive_zero_copy_ok_on_clean_in_order_fabric():
    """Sanity: without faults the naive scheme happens to work — which is
    exactly why it is tempting, and wrong."""
    data, received = _run_naive_zero_copy(None)
    assert np.array_equal(received, data)


@pytest.mark.parametrize("fault", [
    FaultSpec(drop_packet_seqs={3}),
    FaultSpec(reorder_jitter=40e-6),
    FaultSpec(drop_prob=0.05, reorder_jitter=20e-6),
])
def test_staging_protocol_survives_same_faults(fault):
    """The PSN-indexed staging datapath delivers intact data under the
    exact fault patterns that corrupt the naive receiver."""
    sim = Simulator()
    fabric = Fabric(sim, Topology.back_to_back(), link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(5))
    fabric.set_fault("h0", "h1", fault)
    comm = Communicator(fabric)
    data = np.random.default_rng(0).integers(0, 256, N_CHUNKS * CHUNK, dtype=np.uint8)
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
