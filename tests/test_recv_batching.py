"""Receiver-batch fast path: unit tests and satellite regressions.

The end-to-end bit-equivalence battery lives in
``test_fastpath_equivalence.py``; this file covers the building blocks
(``wake_at``, passive parking, ``copy_runs``, bitmap ranges, bulk staging
and WR posting), the WR-exhaustion fallback, multicast fan-out ``ctx``
isolation, and the observability contracts (zero perturbation, telemetry
reconciliation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitmap import Bitmap
from repro.core.communicator import CollectiveConfig, Communicator
from repro.core.staging import StagingRing
from repro.net.dma import DmaEngine
from repro.net.fabric import Fabric
from repro.net.faults import StragglerSpec
from repro.net.nic import RecvWR, Transport
from repro.net.packet import Packet, PacketKind, PacketTrain
from repro.net.topology import Topology
from repro.obs import TraceConfig
from repro.sim.engine import Simulator
from repro.sim.events import PASSIVE_WAIT
from repro.sim.process import Process
from repro.sim.random import RandomStreams
from repro.units import KiB, gbit_per_s

# ------------------------------------------------------------- sim primitives


def test_wake_at_resumes_at_exact_instant():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.wake_at(3.5e-6)
        seen.append(sim.now)

    Process(sim, proc())
    sim.run()
    assert seen == [3.5e-6]


def test_wake_at_orders_fifo_with_same_instant_callbacks():
    """Same-instant dispatch follows post order (heap seq tie-break): the
    callback was queued before the process ran and called wake_at, so it
    fires first — the ordering contract the batch replay relies on."""
    sim = Simulator()
    order = []

    def proc():
        yield sim.wake_at(1e-6)
        order.append("proc")

    Process(sim, proc())
    sim.post_at(1e-6, lambda: order.append("cb"))
    sim.run()
    assert order == ["cb", "proc"]


def test_passive_wait_park_and_wake():
    sim = Simulator()
    log = []

    def proc():
        got = yield PASSIVE_WAIT
        log.append((sim.now, got))

    p = Process(sim, proc())
    sim.post_at(2e-6, lambda: log.append(("woke", p.wake("payload"))))
    sim.run()
    # wake() resumes through a zero-delay callback at the wake instant.
    assert log == [("woke", True), (2e-6, "payload")]


def test_wake_on_running_process_is_dropped():
    sim = Simulator()

    def proc():
        yield sim.wake_at(1e-6)

    p = Process(sim, proc())
    assert p.wake() is False  # not parked on PASSIVE_WAIT
    sim.run()


# --------------------------------------------------------------- dma batches


def _issue_schedule():
    # Issue instants with gaps and back-to-back stretches, sizes varied so
    # the busy-chain arithmetic is exercised in both regimes.
    return [(4096, 0.0), (4096, 0.0), (1024, 1e-6), (2048, 1.0e-6),
            (4096, 5e-6), (512, 5.2e-6)]


def test_copy_runs_matches_sequential_copy_bit_for_bit():
    sched = _issue_schedule()

    # Reference: one copy() per op, issued at its exact instant.
    sim_a = Simulator()
    eng_a = DmaEngine(sim_a)
    total = sum(n for n, _ in sched)
    src_a = np.arange(total, dtype=np.uint64).astype(np.uint8)
    dst_a = np.zeros(total, dtype=np.uint8)
    done_a = []
    off = 0
    for nbytes, when in sched:
        s, e = off, off + nbytes

        def issue(s=s, e=e):
            ev = eng_a.copy(src_a[s:e], dst_a[s:e])
            ev.subscribe(lambda _e: done_a.append(sim_a.now))

        sim_a.post_at(when, issue)
        off += nbytes
    sim_a.run()

    # Batched: same schedule through copy_runs as one span segment.
    sim_b = Simulator()
    eng_b = DmaEngine(sim_b)
    src_b = src_a.copy()
    dst_b = np.zeros(total, dtype=np.uint8)
    done_b = []

    def record(_):
        done_b.append(sim_b.now)

    ops = [(nbytes, when, record, (None,)) for nbytes, when in sched]
    last = eng_b.copy_runs([(src_b, dst_b, ops)])
    sim_b.run()

    assert done_b == done_a  # exact float equality, op for op
    assert last == done_a[-1]
    assert eng_b.busy_until == eng_a.busy_until
    assert eng_b.bytes_copied == eng_a.bytes_copied == total
    assert eng_b.ops == eng_a.ops == len(sched)
    assert np.array_equal(dst_b, src_b)


def test_copy_runs_places_span_at_first_completion():
    sim = Simulator()
    eng = DmaEngine(sim)
    src = np.full(8192, 7, dtype=np.uint8)
    dst = np.zeros(8192, dtype=np.uint8)
    snapshots = []

    def peek(_):
        snapshots.append(dst.copy())

    ops = [(4096, 0.0, peek, (None,)), (4096, 0.0, peek, (None,))]
    eng.copy_runs([(src, dst, ops)])
    sim.run()
    # Whole span already landed when the FIRST op's callback ran.
    assert np.array_equal(snapshots[0], src)
    assert len(snapshots) == 2


def test_copy_runs_rejects_size_mismatch():
    sim = Simulator()
    eng = DmaEngine(sim)
    with pytest.raises(ValueError):
        eng.copy_runs([(np.zeros(8, np.uint8), np.zeros(4, np.uint8), [])])


# ------------------------------------------------------------------- bitmap


def test_bitmap_set_range_counts_new_bits():
    bm = Bitmap(64)
    assert bm.set_range(8, 8) == 8
    assert bm.set_range(8, 8) == 0  # idempotent
    bm.set(20)
    assert bm.set_range(16, 8) == 7  # one already set
    assert bm.count == 16


def test_bitmap_any_set_in_range():
    bm = Bitmap(128)
    assert not bm.any_set_in_range(0, 128)
    bm.set(77)
    assert bm.any_set_in_range(77, 1)
    assert bm.any_set_in_range(64, 32)
    assert not bm.any_set_in_range(0, 77)
    assert not bm.any_set_in_range(78, 50)


# ------------------------------------------------- staging ring / bulk posts


def _ud_qp():
    sim = Simulator()
    fabric = Fabric(sim, Topology.star(2), link_bandwidth=gbit_per_s(100))
    nic = fabric.nic(0)
    return sim, nic, nic.create_qp(Transport.UD)


def test_on_cqe_batch_bulk_hold():
    _, nic, qp = _ud_qp()
    ring = StagingRing(nic, n_slots=8, slot_size=64)
    assert ring.prime(qp) == 8
    views = ring.on_cqe_batch([0, 3, 4])
    assert len(views) == 3 and all(v.nbytes == 64 for v in views)
    assert ring.held == 3 and ring.posted == 5
    with pytest.raises(RuntimeError):
        ring.on_cqe_batch([3])  # already held
    ring.repost(3, qp)
    assert ring.held == 2 and ring.posted == 6


def test_post_recv_batch_capacity_and_validation():
    _, nic, qp = _ud_qp()
    mr = nic.memory.register(1024)
    wrs = [RecvWR(wr_id=i, mr_key=mr.key, offset=i * 64, length=64)
           for i in range(4)]
    qp.post_recv_batch(wrs)
    assert len(qp.recv_queue) == 4
    qp.post_recv_batch([])
    assert len(qp.recv_queue) == 4
    bad = [RecvWR(wr_id=9, mr_key=mr.key, offset=1000, length=64)]
    with pytest.raises(IndexError):
        qp.post_recv_batch(bad)  # beyond the MR
    huge = [RecvWR(wr_id=100 + i, mr_key=mr.key, offset=0, length=64)
            for i in range(qp.max_recv_wr)]
    with pytest.raises(RuntimeError):
        qp.post_recv_batch(huge)  # exceeds queue capacity in one call


def test_post_recv_cached_skips_validation_but_honors_capacity():
    _, nic, qp = _ud_qp()
    mr = nic.memory.register(256)
    wr = RecvWR(wr_id=0, mr_key=mr.key, offset=0, length=64)
    qp.post_recv(wr)
    qp.recv_queue.popleft()
    qp.post_recv_cached(wr)  # cached repost of an already-validated WR
    assert len(qp.recv_queue) == 1
    qp.recv_queue.extend([wr] * (qp.max_recv_wr - 1))
    with pytest.raises(RuntimeError):
        qp.post_recv_cached(wr)


# ------------------------------------------- satellite 1: fan-out ctx clones


def test_packet_clone_for_fanout_copies_ctx():
    payload = np.zeros(16, dtype=np.uint8)
    pkt = Packet(src=0, dst=1, kind=PacketKind.UC_WRITE, payload=payload,
                 ctx={"remote_key": 5, "remote_offset": 128})
    clone = pkt.clone_for_fanout()
    assert clone.ctx == pkt.ctx
    clone.ctx["remote_offset"] = 999
    clone.ctx["extra"] = True
    # One receiver's NIC mutating its delivery state must not leak into
    # the sibling clone (regression: fan-out used to share one dict).
    assert pkt.ctx == {"remote_key": 5, "remote_offset": 128}
    assert clone.payload is pkt.payload  # data replication stays zero-copy


def test_train_clone_for_fanout_isolates_every_packet_ctx():
    pkts = [Packet(src=0, dst=1, kind=PacketKind.UC_WRITE,
                   payload=np.zeros(8, dtype=np.uint8),
                   ctx={"remote_offset": i}) for i in range(4)]
    train = PacketTrain(pkts, arrivals=[1e-6 * i for i in range(4)])
    clone = train.clone_for_fanout()
    assert clone.arrivals is train.arrivals  # read-only, shared
    for i, (orig, cp) in enumerate(zip(train.packets, clone.packets)):
        cp.ctx["remote_offset"] = -1
        assert orig.ctx["remote_offset"] == i


# ---------------------------------------- satellite 3: WR exhaustion fallback


def _exhaustion_run(batching: bool):
    sim = Simulator()
    fabric = Fabric(sim, Topology.leaf_spine(16, 2, 2),
                    link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(0), coalescing=True)
    # Host 5 stalls 3 µs per CQE poll mid-run: its staging ring drains,
    # trains stop fitting in the posted WR count, and the NIC train-
    # delivery gate must fall back to per-packet replay (RNR drops + the
    # reliability slow path) exactly as the per-CQE datapath does.
    fabric.set_straggler(5, StragglerSpec(windows=[(20e-6, 60e-6)],
                                          extra_poll_delay=3e-6))
    comm = Communicator(fabric, config=CollectiveConfig(
        chunk_size=4096, staging_slots=16, recv_batching=batching))
    data = np.arange(256 * KiB, dtype=np.uint32).astype(np.uint8)
    res = comm.broadcast(0, data)
    assert res.verify_broadcast(data)
    return fabric, res


def test_wr_exhaustion_mid_train_falls_back_per_cqe():
    fab_b, res_b = _exhaustion_run(batching=True)
    fab_s, res_s = _exhaustion_run(batching=False)

    # The scenario genuinely exhausts receive WRs…
    assert fab_b.total_rnr_drops() > 0
    # …and still engages batching outside the straggler window.
    assert res_b.engine["cqe_batches"] > 0

    # Identical datapath semantics: same drops, same recovery work, same
    # virtual timeline.
    assert fab_b.total_rnr_drops() == fab_s.total_rnr_drops()
    assert res_b.reliability_summary() == res_s.reliability_summary()
    assert res_b.duration == res_s.duration
    assert res_b.t_end == res_s.t_end


# ------------------------------- satellite 4: observability contracts


def _traced_run(traced: bool, batching: bool = True):
    sim = Simulator()
    fabric = Fabric(sim, Topology.leaf_spine(16, 2, 2),
                    link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(1), coalescing=True)
    comm = Communicator(
        fabric,
        config=CollectiveConfig(chunk_size=4096, recv_batching=batching),
        trace=TraceConfig() if traced else None,
    )
    data = np.arange(64 * KiB, dtype=np.uint8) % 251
    res = comm.broadcast(0, data)
    assert res.verify_broadcast(data)
    return res


def test_tracing_zero_perturbation_under_batch_fast_path():
    res_on = _traced_run(traced=True)
    res_off = _traced_run(traced=False)
    assert res_on.duration == res_off.duration
    assert res_on.engine["sim_events"] == res_off.engine["sim_events"]
    assert res_on.engine["cqe_batches"] == res_off.engine["cqe_batches"] > 0
    assert res_off.trace is None


def test_batch_tracepoints_emitted_and_reconciled():
    res = _traced_run(traced=True)
    batches = res.trace.count("cq.batch")
    runs = res.trace.count("dma.copy_runs")
    assert batches == res.engine["cqe_batches"] > 0
    assert runs > 0
    batched = sum(r.args["cqes"] for r in res.trace.select(name="cq.batch"))
    assert batched == res.engine["batched_cqes"]
    copies = sum(r.args["copies"] for r in res.trace.select(name="dma.copy_runs"))
    assert copies > 0
    # Run-coalescing never splits: segments per batch <= copies per batch.
    for r in res.trace.select(name="dma.copy_runs"):
        assert 1 <= r.args["segments"] <= r.args["copies"]


def test_telemetry_counters_off_when_batching_disabled():
    res = _traced_run(traced=True, batching=False)
    assert res.engine["cqe_batches"] == 0
    assert res.engine["batched_cqes"] == 0
    assert res.trace.count("cq.batch") == 0
    assert res.trace.count("dma.copy_runs") == 0
