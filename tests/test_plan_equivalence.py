"""Fat-tree plan-equivalence gate (ISSUE satellite / CI gate).

The planner's fat-tree family must reproduce the legacy spine-rooted
BFS **bit-identically**: same root, same tree adjacency, and therefore
the same programmed switches and the same virtual completion time for
any collective.  This is the contract that let the planner subsystem
replace the direct ``mcast_tree`` calls without perturbing a single
committed baseline.
"""

import numpy as np
import pytest

from repro.core import CollectiveConfig, Communicator
from repro.net import Fabric, Topology
from repro.net.plan import plan_mcast
from repro.sim import RandomStreams, Simulator
from repro.units import gbit_per_s, kib


FAT_TREE_SHAPES = [
    ("star", lambda: Topology.star(8)),
    ("leaf_spine", lambda: Topology.leaf_spine(16, n_leaf=4, n_spine=4)),
    ("back_to_back", lambda: Topology.back_to_back),
    ("testbed_188", lambda: Topology.testbed_188()),
]


@pytest.mark.parametrize(
    "name,make",
    [(n, m) for n, m in FAT_TREE_SHAPES if n != "back_to_back"],
    ids=[n for n, _ in FAT_TREE_SHAPES if n != "back_to_back"])
def test_planner_tree_matches_legacy_mcast_tree(name, make):
    topo = make()
    members = list(range(topo.n_hosts))
    for gid in range(4):
        plan = plan_mcast(topo, gid, members)
        legacy = topo.mcast_tree(gid, members)
        assert plan.tree == legacy
        assert plan.root == topo.mcast_root(gid)


def test_planner_tree_matches_legacy_on_subsets():
    topo = Topology.leaf_spine(16, n_leaf=4, n_spine=4)
    for gid, members in enumerate(([0, 3, 7, 12], [1, 2], list(range(8)))):
        assert plan_mcast(topo, gid, members).tree == topo.mcast_tree(gid, members)


def test_planner_tree_matches_legacy_under_exclusion():
    topo = Topology.leaf_spine(16, n_leaf=4, n_spine=4)
    dead = {"spine000"}
    members = list(range(16))
    plan = plan_mcast(topo, 0, members, exclude=dead)
    assert plan.tree == topo.mcast_tree(0, members, exclude=dead)
    assert plan.root == topo.mcast_root(0, exclude=dead)


def _run_broadcast(topo, nbytes=kib(256), n_subgroups=2):
    sim = Simulator()
    fabric = Fabric(sim, topo, link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(seed=0))
    comm = Communicator(fabric, config=CollectiveConfig(n_subgroups=n_subgroups))
    data = np.random.default_rng(42).integers(0, 256, nbytes, dtype=np.uint8)
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    return result.duration


def test_fat_tree_virtual_time_is_bit_identical(monkeypatch):
    """The gate proper: a broadcast through the planner completes at
    exactly the virtual time of one programmed straight from the legacy
    tree construction — not approximately, bit-identically."""
    import repro.net.fabric as fabric_mod
    from repro.net.plan.planners import _plan_fat_tree

    make = lambda: Topology.leaf_spine(16, n_leaf=4, n_spine=4)
    t_planner = _run_broadcast(make())

    # Force every group through the legacy delegate, bypassing dispatch.
    monkeypatch.setattr(
        fabric_mod, "plan_mcast",
        lambda topo, gid, members, exclude=None:
            _plan_fat_tree(topo, gid, members, exclude))
    t_legacy = _run_broadcast(make())
    assert t_planner == t_legacy


def test_fat_tree_virtual_time_is_deterministic():
    make = lambda: Topology.leaf_spine(16, n_leaf=4, n_spine=4)
    assert _run_broadcast(make()) == _run_broadcast(make())
