"""Property suite for the multicast planner (ISSUE satellite).

Every family x seeded member subset x gid must produce a plan that
passes the shared validator: spanning, tree-ness, plane purity, hosts
as leaves, per-link load.  Cross-gid overlays must respect each plan's
declared disjointness contract, and re-planning around dead nodes must
keep every invariant on the survivor graph.
"""

import random

import pytest

from repro.net.plan import MulticastPlan, PlanError, plan_mcast, validate_plan, validate_disjointness
from repro.net.topology import Topology, host_name


def _families():
    """(name, topology) pairs covering every planner family."""
    base = Topology.leaf_spine(16, n_leaf=4, n_spine=4)
    return [
        ("star", Topology.star(8)),
        ("leaf_spine", Topology.leaf_spine(16, n_leaf=4, n_spine=4)),
        ("torus", Topology.torus([4, 4])),
        ("torus3d", Topology.torus([2, 3, 4], hosts_per_node=2)),
        ("dragonfly", Topology.dragonfly(4, 3, hosts_per_router=2)),
        ("multi_rail", Topology.multi_rail(base, 2)),
        ("multi_rail3", Topology.multi_rail(base, 3)),
    ]


FAMILIES = _families()
SEEDS = (0, 1, 2)


@pytest.mark.parametrize("name,topo", FAMILIES, ids=[n for n, _ in FAMILIES])
@pytest.mark.parametrize("seed", SEEDS)
def test_plans_validate_on_random_member_subsets(name, topo, seed):
    rng = random.Random(1000 + seed)
    for gid in range(4):
        k = rng.randint(2, topo.n_hosts)
        members = sorted(rng.sample(range(topo.n_hosts), k))
        plan = plan_mcast(topo, gid, members)
        validate_plan(topo, plan)
        assert plan.members == tuple(members)
        # The chain hint always partitions the members evenly — the
        # sequencer (allgather's chain schedule) relies on it.
        chains = plan.chains()
        assert sorted(m for c in chains for m in c) == members


@pytest.mark.parametrize("name,topo", FAMILIES, ids=[n for n, _ in FAMILIES])
def test_full_membership_plans_are_disjoint_or_bounded(name, topo):
    members = list(range(topo.n_hosts))
    plans = [plan_mcast(topo, gid, members) for gid in range(4)]
    for plan in plans:
        validate_plan(topo, plan)
    # Overlay contract: exclusive-root plans keep their root edges
    # private; total per-link load never exceeds the tree count.
    load = validate_disjointness(topo, plans, max_link_load=len(plans))
    assert load


def test_fat_tree_roots_rotate_and_root_edges_exclusive():
    topo = Topology.leaf_spine(16, n_leaf=4, n_spine=4)
    members = list(range(16))
    plans = [plan_mcast(topo, gid, members) for gid in range(4)]
    assert len({p.root for p in plans}) == 4  # one spine per gid
    assert all(p.disjointness == "exclusive-root" for p in plans)
    validate_disjointness(topo, plans)


def test_multi_rail_stripes_gids_across_planes():
    base = Topology.leaf_spine(16, n_leaf=4, n_spine=4)
    topo = Topology.multi_rail(base, 2)
    members = list(range(16))
    plans = [plan_mcast(topo, gid, members) for gid in range(4)]
    for gid, plan in enumerate(plans):
        validate_plan(topo, plan)
        assert plan.rail == gid % 2
    # Trees in different planes share no switch-level edges at all: the
    # only common nodes are the hosts themselves.
    e0 = set(plans[0].tree_edges())
    e1 = set(plans[1].tree_edges())
    assert not (e0 & e1)


def test_torus_plan_uses_ecube_routes():
    topo = Topology.torus([4, 4])
    plan = plan_mcast(topo, 0, list(range(16)))
    validate_plan(topo, plan)
    # e-cube union over all members of a 4x4 torus from one root spans
    # every router exactly once (prefix-closed routes form a tree).
    routers = [n for n in plan.tree_nodes() if not n.startswith("h")]
    assert len(routers) == 16


def test_dragonfly_plan_spans_groups_via_single_globals():
    topo = Topology.dragonfly(4, 3, hosts_per_router=2)
    plan = plan_mcast(topo, 0, list(range(topo.n_hosts)))
    validate_plan(topo, plan)
    # Exactly one global (inter-group) edge per remote member group.
    globals_ = [e for e in plan.tree_edges()
                if not e[0].startswith("h") and not e[1].startswith("h")
                and e[0][:3] != e[1][:3]]
    assert len(globals_) == 3


@pytest.mark.parametrize("name,topo", FAMILIES, ids=[n for n, _ in FAMILIES])
@pytest.mark.parametrize("seed", SEEDS)
def test_replan_around_dead_switch_validates(name, topo, seed):
    if not topo.switch_names:
        pytest.skip("switchless")
    rng = random.Random(2000 + seed)
    dead = {rng.choice(topo.switch_names)}
    members = list(range(topo.n_hosts))
    try:
        plan = plan_mcast(topo, 1, members, exclude=dead)
    except (PlanError, ValueError):
        # Some deaths legitimately partition small shapes (e.g. a star's
        # only switch); the planner must say so, not emit a broken plan.
        return
    validate_plan(topo, plan)
    assert not dead & set(plan.tree_nodes())


def test_replan_around_dead_host_drops_it():
    topo = Topology.torus([4, 4])
    survivors = [m for m in range(16) if m != 5]
    plan = plan_mcast(topo, 0, survivors, exclude={host_name(5)})
    validate_plan(topo, plan)
    assert host_name(5) not in plan.tree_nodes()


def test_multi_rail_whole_plane_death_fails_over():
    base = Topology.leaf_spine(16, n_leaf=4, n_spine=4)
    topo = Topology.multi_rail(base, 2)
    dead = set(topo.rail_switches(0))
    plan = plan_mcast(topo, 0, list(range(16)), exclude=dead)  # home: plane 0
    validate_plan(topo, plan)
    assert plan.rail == 1
    assert plan.disjointness == "shared"  # squatting on plane 1's spines
    # Every plane dead: the planner must refuse, not partition silently.
    dead |= set(topo.rail_switches(1))
    with pytest.raises(PlanError):
        plan_mcast(topo, 0, list(range(16)), exclude=dead)


def test_validator_rejects_corrupt_plans():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    good = plan_mcast(topo, 0, list(range(8)))
    # Non-spanning: drop a member from the tree.
    tree = {n: set(v) for n, v in good.tree.items()}
    victim = host_name(7)
    for nbr in tree.pop(victim):
        tree[nbr].discard(victim)
    broken = MulticastPlan(
        gid=0, kind="fat_tree", root=good.root, tree=tree,
        members=good.members, edge_rails=dict(good.edge_rails))
    with pytest.raises(PlanError):
        validate_plan(topo, broken)
    # Phantom edge: a tree edge the topology does not have.
    tree2 = {n: set(v) for n, v in good.tree.items()}
    tree2[host_name(0)].add(host_name(1))
    tree2[host_name(1)].add(host_name(0))
    with pytest.raises(PlanError):
        validate_plan(topo, MulticastPlan(
            gid=0, kind="fat_tree", root=good.root, tree=tree2,
            members=good.members, edge_rails=dict(good.edge_rails)))
