"""Edge-case tests for the event layer: failures, defusing, subscriptions."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Simulator, Timeout
from repro.sim.process import ProcessKilled


def test_unhandled_event_failure_crashes_the_run():
    """A failure nobody waits for must be loud, not silent."""
    sim = Simulator()
    ev = Event(sim)
    ev.fail(RuntimeError("lost failure"))
    with pytest.raises(RuntimeError, match="lost failure"):
        sim.run()


def test_defused_failure_is_quiet():
    sim = Simulator()
    ev = Event(sim)
    ev.fail(RuntimeError("handled elsewhere")).defuse()
    sim.run()  # no raise
    assert ev.triggered and not ev.ok


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_subscribe_after_fire_bounces_asynchronously():
    sim = Simulator()
    ev = Event(sim)
    ev.succeed("v")
    sim.run()
    seen = []
    ev.subscribe(lambda e: seen.append(e.value))
    assert seen == []  # not synchronous
    sim.run()
    assert seen == ["v"]


def test_succeed_with_delay():
    sim = Simulator()
    ev = Event(sim)
    ev.succeed("later", delay=5.0)

    def waiter():
        value = yield ev
        return (sim.now, value)

    assert sim.run_process(waiter()) == (5.0, "later")


def test_anyof_value_is_the_winning_event():
    sim = Simulator()
    fast = Timeout(sim, 1.0, value="payload")

    def racer():
        winner = yield AnyOf(sim, [Timeout(sim, 9.0), fast])
        return winner

    assert sim.run_process(racer()) is fast


def test_anyof_with_pre_fired_event():
    sim = Simulator()
    ev = Event(sim)
    ev.succeed("early")
    sim.run()

    def racer():
        winner = yield AnyOf(sim, [ev, Timeout(sim, 100.0)])
        return winner.value, sim.now

    value, resumed_at = sim.run_process(racer())
    assert value == "early"
    assert resumed_at < 100.0  # did not wait for the losing timeout


def test_allof_failure_preempts_remaining():
    sim = Simulator()
    bad = Event(sim)
    sim.call_later(1.0, lambda: bad.fail(KeyError("boom")))

    def gather():
        try:
            yield AllOf(sim, [Timeout(sim, 50.0), bad])
        except KeyError:
            return sim.now

    assert sim.run_process(gather()) == 1.0  # did not wait for the 50 s


def test_nested_conditions():
    sim = Simulator()

    def proc():
        inner = AnyOf(sim, [Timeout(sim, 2.0, value="a"), Timeout(sim, 3.0)])
        values = yield AllOf(sim, [inner, Timeout(sim, 1.0, value="b")])
        return (sim.now, values[1])

    t, v = sim.run_process(proc())
    assert t == 2.0 and v == "b"


def test_process_kill_mid_generator_runs_finally():
    sim = Simulator()
    cleaned = []

    def worker():
        try:
            yield sim.timeout(100.0)
        finally:
            cleaned.append(sim.now)

    proc = sim.spawn(worker())
    sim.call_later(2.0, proc.kill)
    sim.run()
    assert cleaned == [2.0]
    assert proc.ok


def test_process_catching_kill_still_terminates():
    sim = Simulator()

    def stubborn():
        while True:
            try:
                yield sim.timeout(1.0)
            except ProcessKilled:
                pass  # swallow — the engine must still retire us

    proc = sim.spawn(stubborn())
    sim.call_later(0.5, proc.kill)
    sim.run()
    assert proc.triggered


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.spawn(quick())
    sim.run()
    proc.interrupt("too late")  # must not raise
    sim.run()


def test_event_repr_states():
    sim = Simulator()
    ev = Event(sim)
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
    sim.run()
    assert "processed" in repr(ev)
