"""Cross-validation: the closed-form time models vs the packet-level DES.

DESIGN.md promises the two fidelities agree on small configurations —
these tests hold the simulator to the alpha-beta arithmetic (and vice
versa): ring Allgather to its (P−1)·N/B form, multicast Broadcast to its
constant-time N/B form, the traffic counters to the Fig 2 byte model.
"""

import numpy as np
import pytest

from repro.core.baselines import ring_allgather
from repro.core.communicator import CollectiveConfig, Communicator
from repro.core.costmodel import HostCostModel
from repro.models import (
    FatTreeTraffic,
    time_mcast_bcast,
    time_ring_allgather,
)
from repro.net import Fabric, Topology
from repro.sim import Simulator
from repro.units import KiB, gbit_per_s


def star_fabric(n, link=gbit_per_s(56)):
    return Fabric(Simulator(), Topology.star(n), link_bandwidth=link)


def test_ring_allgather_matches_alpha_beta():
    p, n = 8, 256 * KiB
    fabric = star_fabric(p)
    data = [np.full(n, r, dtype=np.uint8) for r in range(p)]
    res = ring_allgather(fabric, data, cost=HostCostModel.free())
    model = time_ring_allgather(
        n, p,
        bandwidth=fabric.link_bandwidth,
        latency=2 * fabric.link_latency,  # two hops per step on a star
    )
    # Wire model within 15% (header overhead + switch delay are extra).
    assert res.duration == pytest.approx(model, rel=0.15)
    assert res.duration >= model  # the DES can only add overheads


def test_mcast_broadcast_matches_constant_time_model():
    n = 512 * KiB
    durations = {}
    for p in (4, 16):
        fabric = star_fabric(p)
        comm = Communicator(fabric, config=CollectiveConfig(cost=HostCostModel.free()))
        data = np.random.default_rng(0).integers(0, 256, n, dtype=np.uint8)
        res = comm.broadcast(0, data)
        assert res.verify_broadcast(data)
        durations[p] = res.duration
    model = time_mcast_bcast(n, 16, bandwidth=gbit_per_s(56))
    # Constant in P and within 25% of N/B (sync + per-chunk pipeline on top).
    assert durations[16] == pytest.approx(durations[4], rel=0.1)
    assert durations[16] == pytest.approx(model, rel=0.25)


def test_switch_counters_match_traffic_model():
    """Measured multicast Allgather bytes = P · N · (tree links) exactly."""
    p, n = 16, 64 * KiB
    fabric = Fabric(Simulator(), Topology.star(p), link_bandwidth=gbit_per_s(56))
    comm = Communicator(fabric, config=CollectiveConfig(chunk_size=4096))
    data = [np.full(n, r, dtype=np.uint8) for r in range(p)]
    res = comm.allgather(data)
    assert res.verify_allgather(data)
    # Star: the multicast tree has exactly P host links; every sender's
    # buffer leaves the switch P−1 times (no self-delivery).
    payload = res.traffic["switch_payload_bytes"]
    exact = p * (p - 1) * n
    assert payload == pytest.approx(exact, rel=0.02)  # + control messages


def test_node_boundary_measured_equals_closed_form():
    p, n = 8, 32 * KiB
    model = FatTreeTraffic(n_hosts=p, radix=32).mcast_node_bytes(n)
    fabric = star_fabric(p)
    comm = Communicator(fabric)
    data = [np.full(n, r, dtype=np.uint8) for r in range(p)]
    res = comm.allgather(data)
    assert res.verify_allgather(data)
    injected_per_nic = res.traffic["host_injected_bytes"] / p
    assert injected_per_nic == pytest.approx(model["tx"], rel=0.05)


def test_des_duration_scales_linearly_with_buffer():
    """Both models predict time ∝ N at fixed P; the DES must agree."""
    p = 4
    durations = []
    # Sizes large enough that wire time dwarfs the fixed sync/handshake.
    for n in (512 * KiB, 1024 * KiB, 2048 * KiB):
        fabric = star_fabric(p)
        comm = Communicator(fabric, config=CollectiveConfig(cost=HostCostModel.free()))
        data = np.random.default_rng(1).integers(0, 256, n, dtype=np.uint8)
        durations.append(comm.broadcast(0, data).duration)
    r1 = durations[1] / durations[0]
    r2 = durations[2] / durations[1]
    assert r1 == pytest.approx(2.0, rel=0.15)
    assert r2 == pytest.approx(2.0, rel=0.15)
