"""The autotuning subsystem: key determinism, search-space validity,
store round-trips, cache-hit semantics, API/CLI resolution, and the
188-node acceptance point (tuned never loses to the untuned default).
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.core.communicator import CollectiveConfig, Communicator
from repro.net.fabric import Fabric
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.tune import (
    ProfileStore,
    Scenario,
    SearchSpace,
    TuningProfile,
    autotune,
    config_from_knobs,
    evaluate,
    predict_time,
    prune,
    resolve_config,
    size_bucket,
)
from repro.units import KiB

TINY = Scenario(collective="allgather", n_hosts=8, topo="star",
                msg_bytes=64 * KiB, seed=0)


# ------------------------------------------------------------------ scenario


def test_size_bucket_power_of_two_ceiling():
    assert size_bucket(1) == 1
    assert size_bucket(4096) == 4096
    assert size_bucket(4097) == 8192
    assert size_bucket(100_000) == 128 * 1024
    with pytest.raises(ValueError):
        size_bucket(0)


def test_cache_key_deterministic_and_seed_independent():
    a = Scenario(collective="allgather", n_hosts=16, msg_bytes=60_000, seed=0)
    b = Scenario(collective="allgather", n_hosts=16, msg_bytes=64 * KiB, seed=7)
    # Same bucket, different seed/exact size -> same key.
    assert a.cache_key() == b.cache_key()
    assert a.cache_key() == a.cache_key()
    for other in (
        dataclasses.replace(a, transport="uc"),
        dataclasses.replace(a, fault_profile="burst"),
        dataclasses.replace(a, msg_bytes=128 * KiB),
        dataclasses.replace(a, n_hosts=32),
        dataclasses.replace(a, collective="broadcast"),
    ):
        assert other.cache_key() != a.cache_key()


def test_scenario_rejects_unknown_members():
    with pytest.raises(ValueError):
        Scenario(collective="scan")
    with pytest.raises(ValueError):
        Scenario(transport="rc")
    with pytest.raises(ValueError):
        Scenario(fault_profile="apocalypse")


def test_resolved_topo_mirrors_bench_auto():
    assert Scenario(n_hosts=188).resolved_topo == "testbed_188"
    assert Scenario(n_hosts=4).resolved_topo == "star"
    assert Scenario(n_hosts=32).resolved_topo == "leaf_spine"


# --------------------------------------------------------------------- space


def test_candidates_are_valid_configs():
    space = SearchSpace.default(TINY)
    cands = space.candidates()
    assert cands, "empty search space"
    fabric = Fabric(Simulator(), Topology.back_to_back(), mtu=64 * KiB)
    for knobs in cands:
        cfg = config_from_knobs(knobs)
        cfg.validate(fabric)  # raises on an invalid candidate
        # Structural constraints the Communicator relies on.
        assert TINY.bucket % cfg.chunk_size == 0
        assert cfg.n_subgroups <= max(TINY.bucket // cfg.chunk_size, 1)
        assert knobs["transport"] == TINY.transport


def test_space_trims_chains_for_broadcast_and_small_groups():
    bc = SearchSpace.default(dataclasses.replace(TINY, collective="broadcast"))
    assert bc.domains["n_chains"].values == (1,)
    tiny = SearchSpace.default(dataclasses.replace(TINY, n_hosts=2))
    assert max(tiny.domains["n_chains"].values) <= 2


def test_lossy_scenarios_search_the_cutoff_family():
    lossy = SearchSpace.default(
        dataclasses.replace(TINY, fault_profile="bernoulli"))
    assert "cutoff_alpha" in lossy.domains
    assert "adaptive_cutoff" in lossy.domains
    assert "cutoff_alpha" not in SearchSpace.default(TINY).domains


def test_baseline_knobs_equal_stock_config():
    knobs = SearchSpace.default(TINY).baseline_knobs()
    cfg = config_from_knobs(knobs)
    stock = CollectiveConfig()
    assert cfg.chunk_size == stock.chunk_size
    assert cfg.n_chains == stock.n_chains
    assert cfg.batch_size == stock.batch_size
    assert cfg.cost == stock.cost  # chunk 4096 -> scale factor 1


# ---------------------------------------------------------------- cost model


def test_predict_time_positive_and_deterministic():
    space = SearchSpace.default(TINY)
    for knobs in space.candidates()[:10]:
        est = predict_time(TINY, knobs)
        assert est.total > 0
        assert est.total == predict_time(TINY, knobs).total
        assert est.total >= max(est.wire, est.software)


def test_prune_deterministic_and_diverse():
    space = SearchSpace.default(TINY)
    cands = space.candidates()
    ranked = prune(TINY, cands, keep=5)
    assert len(ranked) == 5
    totals = [est.total for _, est in ranked]
    assert totals == sorted(totals)
    assert len(set(totals)) == 5, "pruner kept model-indistinguishable points"
    again = prune(TINY, cands, keep=5)
    assert [k for k, _ in ranked] == [k for k, _ in again]


def test_lossy_prediction_adds_recovery_cost():
    clean = predict_time(TINY, SearchSpace.default(TINY).baseline_knobs())
    lossy_scn = dataclasses.replace(TINY, fault_profile="burst")
    lossy = predict_time(lossy_scn, SearchSpace.default(lossy_scn).baseline_knobs())
    assert clean.recovery == 0.0
    assert lossy.recovery > 0.0


# ----------------------------------------------------------------- evaluator


def test_evaluate_measures_and_verifies():
    m = evaluate(TINY, SearchSpace.default(TINY).baseline_knobs())
    assert m.verified
    assert m.duration > 0 and m.sim_events > 0
    assert 0.0 < m.link_util_peak <= 1.0
    assert 0.0 <= m.staging_peak_frac <= 1.0
    # Bit-reproducible: same scenario + knobs -> identical measurement.
    assert evaluate(TINY, SearchSpace.default(TINY).baseline_knobs()) == m


def test_evaluate_without_trace_same_virtual_time():
    knobs = SearchSpace.default(TINY).baseline_knobs()
    traced = evaluate(TINY, knobs, trace=True)
    untraced = evaluate(TINY, knobs, trace=False)
    assert untraced.duration == traced.duration
    assert untraced.link_util_peak == 0.0  # metrics need the tracer


TINY_AR = Scenario(collective="allreduce", n_hosts=8, topo="star",
                   msg_bytes=64 * KiB, seed=0)
TINY_A2A = Scenario(collective="alltoall", n_hosts=8, topo="star",
                    msg_bytes=64 * KiB, seed=0)


def test_new_kinds_key_cleanly_and_evaluate():
    """allreduce/alltoall are first-class tuning keys: distinct digests,
    collective-named slugs, and evaluations that run (and verify) through
    the unified submission surface."""
    for scn in (TINY_AR, TINY_A2A):
        assert scn.cache_key() != TINY.cache_key()
        assert scn.collective in scn.slug()
        m = evaluate(scn, SearchSpace.default(scn).baseline_knobs())
        assert m.verified
        assert m.duration > 0 and m.sim_events > 0
        # Bit-reproducible like the engine kinds.
        assert evaluate(scn, SearchSpace.default(scn).baseline_knobs()) == m


def test_allreduce_space_is_shard_aligned():
    """Candidate chunks must keep the allgather-over-shards phase
    chunk-aligned: every enumerated point satisfies the same eager check
    Communicator._launch_allreduce applies."""
    space = SearchSpace.default(TINY_AR)
    cands = space.candidates()
    assert cands
    shard = (TINY_AR.bucket // 4 // TINY_AR.n_hosts) * 4
    for knobs in cands:
        chunk = int(knobs["chunk_size"])
        assert shard % min(chunk, shard) == 0
    # Chains search the allgather phase of the composed collective...
    assert any(int(k["n_chains"]) > 1 for k in cands)
    # ...while alltoall has no chain machinery to search.
    assert all(int(k["n_chains"]) == 1
               for k in SearchSpace.default(TINY_A2A).candidates())


def test_autotune_allreduce_key_roundtrip(tmp_path):
    """The CI tune-smoke contract for the new kind: search once, then a
    byte-identical pure cache hit on the same allreduce key."""
    store = ProfileStore(str(tmp_path))
    first = autotune(TINY_AR, store=store, max_evals=2)
    assert not first.cache_hit
    assert first.profile.key["collective"] == "allreduce"
    second = autotune(TINY_AR, store=store, max_evals=2)
    assert second.cache_hit
    assert second.evaluations == 0 and second.sim_events == 0
    assert second.profile.to_json() == first.profile.to_json()


# ------------------------------------------------------------ search + store


def test_autotune_search_then_pure_cache_hit(tmp_path):
    store = ProfileStore(str(tmp_path))
    first = autotune(TINY, store=store, max_evals=3)
    assert not first.cache_hit
    assert first.evaluations == 4  # budget + the baseline riding along
    assert first.sim_events > 0
    assert os.path.isfile(first.store_path)
    blob = open(first.store_path).read()

    second = autotune(TINY, store=store, max_evals=3)
    assert second.cache_hit
    assert second.evaluations == 0 and second.sim_events == 0
    assert second.profile.to_json() == first.profile.to_json()
    assert open(second.store_path).read() == blob

    # A fresh store instance (new process, same directory) also hits.
    third = autotune(TINY, store=ProfileStore(str(tmp_path)), max_evals=3)
    assert third.cache_hit
    assert third.profile.to_json() == first.profile.to_json()


def test_autotune_never_loses_to_default(tmp_path):
    result = autotune(TINY, store=ProfileStore(str(tmp_path)), max_evals=3)
    profile = result.profile
    assert profile.best["duration"] <= profile.baseline["duration"]
    assert profile.improvement >= 1.0
    assert profile.best["verified"] and profile.baseline["verified"]


def test_profile_roundtrip_byte_stable(tmp_path):
    result = autotune(TINY, store=ProfileStore(str(tmp_path)), max_evals=2)
    text = result.profile.to_json()
    reloaded = TuningProfile.from_json(text)
    assert reloaded.to_json() == text
    reloaded.validate()


def test_profile_schema_rejections():
    with pytest.raises(ValueError, match="schema"):
        TuningProfile.from_json(json.dumps({"schema": 999}))
    with pytest.raises(ValueError, match="unknown profile fields"):
        TuningProfile.from_json(json.dumps({
            "schema": 1, "key": {}, "cache_key": "x", "slug": "s",
            "scenario": {}, "knobs": {}, "baseline": {}, "best": {},
            "search": {}, "bogus": 1}))


# ------------------------------------------------------- committed profiles


def committed_store():
    store = ProfileStore.default()
    profiles = store.profiles()
    assert profiles, "no committed tuning profiles"
    return store, profiles


def test_committed_profiles_roundtrip_and_validate():
    store, profiles = committed_store()
    for profile in profiles:
        profile.validate()
        path = store.path_for(profile)
        blob = open(path).read()
        assert TuningProfile.from_json(blob).to_json() == blob, (
            f"{profile.slug} is not byte-stable")
        # The stored knobs materialize into a validating config.
        cfg = profile.config()
        mtu = cfg.chunk_size if cfg.transport == "ud" else 4096
        cfg.validate(Fabric(Simulator(), Topology.back_to_back(), mtu=mtu))


def test_committed_profiles_cover_the_188_node_points():
    _, profiles = committed_store()
    keys = {(p.key["collective"], p.key["n_hosts"], p.key["topology"])
            for p in profiles}
    assert ("allgather", 188, "testbed_188") in keys
    assert ("broadcast", 188, "testbed_188") in keys


def test_committed_profile_lookup_is_cache_hit():
    store, profiles = committed_store()
    for profile in profiles:
        scn = Scenario(
            collective=profile.key["collective"],
            n_hosts=profile.key["n_hosts"],
            topo=profile.key["topology"],
            link_gbit=profile.key["link_gbit"],
            transport=profile.key["transport"],
            msg_bytes=profile.key["bucket"],
            fault_profile=profile.key["fault_profile"],
            # Zoo profiles carry their build params in the key; the
            # spec normalizer must round-trip them to the same digest.
            topo_params=profile.key.get("topo_params", ""),
        )
        assert scn.cache_key() == profile.cache_key
        result = autotune(scn, store=store)
        assert result.cache_hit and result.sim_events == 0


# ---------------------------------------------------------------- resolution


def test_resolve_config_falls_back_to_default(tmp_path):
    fabric = Fabric(Simulator(), Topology.star(8))
    cfg = resolve_config(fabric, store=ProfileStore(str(tmp_path / "empty")))
    assert cfg == CollectiveConfig()
    # Custom topologies never resolve (no key to look up).
    custom = Fabric(Simulator(), Topology(2, [("h0", "s"), ("h1", "s")]))
    assert resolve_config(custom) == CollectiveConfig()


def test_resolve_config_uses_store_and_clamps_chunk(tmp_path):
    store = ProfileStore(str(tmp_path))
    autotune(TINY, store=store, max_evals=3)
    fabric = Fabric(Simulator(), Topology.star(8), mtu=64 * KiB)
    cfg = resolve_config(fabric, msg_bytes=64 * KiB, store=store)
    tuned = store.profiles()[0]
    assert cfg.chunk_size == tuned.knobs["chunk_size"]
    assert cfg.n_chains == tuned.knobs["n_chains"]
    # A 4 KiB-MTU fabric clamps a wider tuned UD chunk down.
    small = Fabric(Simulator(), Topology.star(8), mtu=4096)
    clamped = resolve_config(small, msg_bytes=64 * KiB, store=store)
    assert clamped.chunk_size <= 4096
    clamped.validate(small)


def test_communicator_config_auto_runs(tmp_path, monkeypatch):
    import repro.tune.store as store_mod

    store = ProfileStore(str(tmp_path))
    autotune(TINY, store=store, max_evals=3)
    monkeypatch.setattr(store_mod, "DEFAULT_PROFILE_DIR", str(tmp_path))
    fabric = Fabric(Simulator(), Topology.star(8), mtu=64 * KiB)
    comm = Communicator(fabric, config="auto")
    tuned = store.profiles()[0]
    assert comm.config.n_chains == tuned.knobs["n_chains"]
    data = [np.full(64 * KiB, r % 251, dtype=np.uint8) for r in range(8)]
    res = comm.allgather(data)
    assert res.verify_allgather(data)


def test_resolve_config_matches_committed_testbed_profile():
    """Topology.testbed_188() reports kind 'leaf_spine'; resolution must
    still find the profiles keyed under 'testbed_188'."""
    store, _ = committed_store()
    profile = store.lookup(Scenario(collective="allgather", n_hosts=188,
                                    msg_bytes=16 * KiB))
    fabric = Fabric(Simulator(), Topology.testbed_188(),
                    mtu=profile.knobs["chunk_size"])
    cfg = resolve_config(fabric, msg_bytes=16 * KiB, store=store)
    assert cfg.chunk_size == profile.knobs["chunk_size"]
    assert cfg.n_chains == profile.knobs["n_chains"]


def test_communicator_rejects_unknown_preset():
    fabric = Fabric(Simulator(), Topology.star(4))
    with pytest.raises(ValueError, match="preset"):
        Communicator(fabric, config="fastest")


# --------------------------------------------------- 188-node acceptance


def test_tuned_beats_default_on_fig11_allgather_188():
    """Acceptance: on the fig11-style 188-node allgather point, the
    committed profile's simulated completion time is <= the stock
    default's, measured through the same evaluator plumbing."""
    store, _ = committed_store()
    scn = Scenario(collective="allgather", n_hosts=188, msg_bytes=16 * KiB)
    profile = store.lookup(scn)
    assert profile is not None, "missing committed 188-node allgather profile"
    space = SearchSpace.default(scn)
    default = evaluate(scn, space.baseline_knobs(), trace=False)
    tuned = evaluate(scn, profile.knobs, trace=False)
    assert default.verified and tuned.verified
    assert tuned.duration <= default.duration
    # The committed measurement is reproducible on this machine too.
    assert tuned.duration == pytest.approx(profile.best["duration"], rel=1e-9)
