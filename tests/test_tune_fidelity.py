"""Cost-model fidelity: the analytic pre-pruner only earns its place if
its ranking of the knob grid agrees with what the simulator actually
measures. Cross-validate ``predict_time`` against simulated runtimes
over the tuner's own candidate grid and assert rank correlation.
"""

import dataclasses

from repro.tune import SearchSpace, Scenario, evaluate, predict_time, prune
from repro.units import KiB

SCN = Scenario(collective="allgather", n_hosts=8, topo="star",
               msg_bytes=64 * KiB, seed=0)


def _ranks(values):
    """Average ranks (1-based) with tie handling, enough for Spearman."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def spearman(xs, ys):
    rx, ry = _ranks(xs), _ranks(ys)
    n = len(xs)
    mx = sum(rx) / n
    my = sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    return cov / (vx * vy) ** 0.5


def test_spearman_helper_on_known_inputs():
    assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0
    assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == -1.0


def grid(scenario, max_points=18):
    """A deterministic, diverse slice of the candidate grid: the pruner's
    top picks plus its rejects, so the correlation is tested across the
    full predicted-time range rather than only among near-winners."""
    cands = SearchSpace.default(scenario).candidates()
    ranked = prune(scenario, cands, keep=len(cands))
    if len(ranked) <= max_points:
        return ranked
    stride = len(ranked) / max_points
    return [ranked[int(i * stride)] for i in range(max_points)]


def test_cost_model_rank_correlates_with_simulation():
    points = grid(SCN)
    assert len(points) >= 8, "grid too small to establish a ranking"
    predicted = [est.total for _, est in points]
    measured = []
    for knobs, _ in points:
        m = evaluate(SCN, knobs, trace=False)
        assert m.verified
        measured.append(m.duration)
    rho = spearman(predicted, measured)
    assert rho >= 0.5, (
        f"cost model disagrees with simulation: Spearman rho={rho:.3f}\n"
        f"predicted={predicted}\nmeasured={measured}")


def test_true_optimum_survives_pruning():
    """The pruner's keep-set must contain the simulated optimum of the
    measured grid — otherwise pre-pruning silently caps achievable
    quality and the search budget is wasted on also-rans."""
    points = grid(SCN)
    measured = [(evaluate(SCN, knobs, trace=False).duration, knobs)
                for knobs, _ in points]
    best_duration, best_knobs = min(measured, key=lambda t: t[0])
    kept = prune(SCN, [k for k, _ in points], keep=6)
    kept_durations = [evaluate(SCN, knobs, trace=False).duration
                      for knobs, _ in kept]
    # The kept set need not contain the exact argmin knobs, but its best
    # measured time must match the grid optimum (within one chunk's slack).
    assert min(kept_durations) <= best_duration * 1.05, (
        f"pruner dropped the optimum: grid best {best_duration * 1e6:.1f} µs "
        f"({best_knobs}), kept best {min(kept_durations) * 1e6:.1f} µs")


def test_model_orders_the_chain_knob_correctly():
    """n_chains is the paper's headline allgather knob (Fig 11): more
    chains -> more concurrent inter-subtree traffic. The model must get
    this single-knob direction right on its own."""
    base = SearchSpace.default(SCN).baseline_knobs()
    one = predict_time(SCN, {**base, "n_chains": 1})
    four = predict_time(SCN, {**base, "n_chains": 4})
    assert four.total < one.total
    m1 = evaluate(SCN, {**base, "n_chains": 1}, trace=False)
    m4 = evaluate(SCN, {**base, "n_chains": 4}, trace=False)
    assert m4.duration < m1.duration


def test_model_tracks_transport_cost_structure():
    """UC amortizes per-CQE software cost over multi-MTU chunks (Fig 15):
    the model's software term must fall as UC chunk size grows."""
    uc = dataclasses.replace(SCN, transport="uc")
    base = SearchSpace.default(uc).baseline_knobs()
    small = predict_time(uc, {**base, "chunk_size": 4096})
    large = predict_time(uc, {**base, "chunk_size": 16 * KiB})
    assert large.software < small.software
