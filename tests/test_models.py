"""Tests for the analytical models (Figs 2, 3, 7; Appendix B)."""

import pytest

from repro.models import (
    DEVICE_MEMORY,
    FatTreeTraffic,
    bitmap_bytes,
    concurrent_speedup,
    max_receive_buffer,
    node_boundary_table,
    time_knomial_bcast,
    time_mcast_allgather,
    time_mcast_bcast,
    time_pipelined_tree_bcast,
    time_ring_allgather,
)
from repro.models.memory import fig7_rows
from repro.models.speedup import bandwidth_shares_optimal, bandwidth_shares_ring
from repro.units import GiB, KiB, MiB, gbit_per_s


# ------------------------------------------------------------------- Fig 2


def test_fig2_savings_ratio_formula():
    m = FatTreeTraffic(n_hosts=1024, radix=32)
    assert m.savings_ratio() == pytest.approx(2 - 2 / 1024)


def test_fig2_savings_approach_two():
    small = FatTreeTraffic(n_hosts=4, radix=32).savings_ratio()
    large = FatTreeTraffic(n_hosts=1024, radix=32).savings_ratio()
    assert small < large < 2.0


def test_fig2_fabric_savings_between_1_and_hops():
    m = FatTreeTraffic(n_hosts=1024, radix=32)
    assert 1.5 < m.fabric_savings() < 6.0


def test_fig2_levels():
    assert FatTreeTraffic(16, 32).levels == 1
    assert FatTreeTraffic(188, 36).levels == 2
    assert FatTreeTraffic(1024, 32).levels == 3


def test_fig2_node_bytes():
    m = FatTreeTraffic(n_hosts=8, radix=32)
    n = KiB
    assert m.p2p_node_bytes(n) == {"tx": 7 * n, "rx": 7 * n}
    assert m.mcast_node_bytes(n) == {"tx": n, "rx": 7 * n}


def test_fig2_mcast_fabric_counts_tree_links_once():
    m = FatTreeTraffic(n_hosts=16, radix=32)  # single switch
    assert m.mcast_fabric_bytes(1) == 16 * 16  # P senders x P host links


def test_fig2_invalid_params():
    with pytest.raises(ValueError):
        FatTreeTraffic(1, 32)


# ------------------------------------------------------------------- Fig 3


def test_fig3_table_values():
    n, p = 1024, 16
    table = node_boundary_table(n, p)
    assert table[("reduce_scatter", "inc")].send == n * 15
    assert table[("reduce_scatter", "inc")].recv == n
    assert table[("allgather", "mcast")].send == n
    assert table[("allgather", "mcast")].recv == n * 15
    assert table[("allgather", "ring")].send == n * 15
    assert table[("reduce_scatter", "ring")].total == 2 * n * 15


def test_fig3_complementary_bottlenecks():
    """Insight 2: INC RS + Mcast AG never stress the same NIC direction."""
    table = node_boundary_table(1, 64)
    inc = table[("reduce_scatter", "inc")]
    mc = table[("allgather", "mcast")]
    assert inc.send > inc.recv
    assert mc.recv > mc.send


def test_fig3_validation():
    with pytest.raises(ValueError):
        node_boundary_table(1024, 1)


# ------------------------------------------------------------------- Fig 7


def test_fig7_bitmap_sizes():
    assert bitmap_bytes(23) == MiB  # 2^23 bits = 1 MiB
    assert bitmap_bytes(13) == KiB


def test_fig7_dpa_llc_addresses_about_50gb():
    """Paper §III-D: a bitmap fitting the 1.5 MB LLC addresses ≈ 50 GB."""
    # Largest psn_bits whose bitmap fits in the LLC:
    fitting = [b for b in range(10, 31) if bitmap_bytes(b) <= DEVICE_MEMORY["DPA LLC"]]
    best = max(fitting)
    addressable = max_receive_buffer(best, 4096)
    assert 30 * GiB < addressable < 70 * GiB


def test_fig7_buffer_grows_with_psn_bits():
    rows = fig7_rows()
    buffers = [r[2] for r in rows]
    assert all(b2 == 2 * b1 for b1, b2 in zip(buffers, buffers[1:]))


def test_fig7_chunk_scaling():
    assert max_receive_buffer(20, 8192) == 2 * max_receive_buffer(20, 4096)


# -------------------------------------------------------------- Appendix B


def test_speedup_formula():
    assert concurrent_speedup(2) == 1.0
    assert concurrent_speedup(4) == 1.5
    assert concurrent_speedup(1024) == pytest.approx(2.0, abs=0.01)


def test_bandwidth_shares_sum_to_nic():
    b = gbit_per_s(400)
    ring = bandwidth_shares_ring(b)
    assert ring["ag_send"] + ring["rs_send"] == pytest.approx(b)
    opt = bandwidth_shares_optimal(b, 16)
    assert opt["ag_send"] + opt["rs_send"] == pytest.approx(b)
    assert opt["ag_recv"] + opt["rs_recv"] == pytest.approx(b)


def test_speedup_equals_time_ratio():
    """S must equal T_ring_pair / T_optimal_pair from first principles."""
    n, p, b = MiB, 64, gbit_per_s(100)
    t_ring_pair = n * (p - 1) / (b / 2)
    t_opt_pair = n * (p - 1) / (b * (1 - 1 / p))
    assert t_ring_pair / t_opt_pair == pytest.approx(concurrent_speedup(p))


# -------------------------------------------------------- alpha-beta models


def test_time_models_basic_shapes():
    b = gbit_per_s(56)
    n = MiB
    # Multicast bcast is ~constant in P; knomial grows with log P.
    assert time_mcast_bcast(n, 8, b) == pytest.approx(time_mcast_bcast(n, 512, b))
    assert time_knomial_bcast(n, 512, 4, b) > time_knomial_bcast(n, 8, 4, b)
    # Ring AG and mcast AG are both receive-bound: comparable at large N.
    ring = time_ring_allgather(n, 32, b)
    mc = time_mcast_allgather(n, 32, b)
    assert mc / ring == pytest.approx(32 / 31, rel=0.01)
    # Pipelined tree pays the 2x interior-node send tax.
    tree = time_pipelined_tree_bcast(n, 32, b, segment=64 * KiB)
    assert tree > 2 * time_mcast_bcast(n, 32, b)


def test_time_models_degenerate_p():
    assert time_ring_allgather(MiB, 1, 1e9) == 0.0
    assert time_knomial_bcast(MiB, 1, 2, 1e9) == 0.0
    assert time_pipelined_tree_bcast(MiB, 1, 1e9, KiB) == 0.0
