"""Tests for the DPA/SmartNIC cycle-approximate model."""

import pytest

from repro.dpa import (
    DPA_BF3,
    MTCoreSim,
    Segment,
    Trace,
    chunk_rate_scaling,
    cpu_datapath_throughput,
    dpa_single_thread_metrics,
    dpa_thread_scaling,
    dpa_throughput,
    dpa_uc_trace,
    dpa_ud_trace,
    uc_chunk_size_sweep,
)
from repro.units import MiB, gbit_per_s, to_gbit_per_s, to_gib_per_s


# -------------------------------------------------------------------- traces


def test_ud_trace_matches_table1_calibration():
    t = dpa_ud_trace()
    assert t.compute_cycles == 113  # instructions/CQE
    assert t.total_cycles == 1084  # cycles/CQE
    assert round(t.ipc, 2) == 0.10


def test_uc_trace_matches_table1_calibration():
    t = dpa_uc_trace()
    assert t.compute_cycles == 66
    assert t.total_cycles == 598
    assert round(t.ipc, 2) == 0.11


def test_trace_validation():
    with pytest.raises(ValueError):
        Segment("warp", 10)
    with pytest.raises(ValueError):
        Segment("compute", -1)


def test_trace_scaled():
    t = dpa_uc_trace().scaled(compute_factor=2.0)
    assert t.compute_cycles == 132
    assert t.stall_cycles == dpa_uc_trace().stall_cycles


# ---------------------------------------------------------------- core model


def test_single_thread_rate_matches_cycle_arithmetic():
    trace = dpa_ud_trace()
    sim = MTCoreSim(DPA_BF3.freq_hz)
    run = sim.run(trace, n_threads=1, n_items=256, chunk_bytes=4096)
    expected = DPA_BF3.freq_hz / trace.effective_cycles
    assert run.items_per_second == pytest.approx(expected, rel=0.01)


def test_threads_hide_stalls_linearly_at_first():
    trace = dpa_ud_trace()
    sim = MTCoreSim(DPA_BF3.freq_hz)
    r1 = sim.run(trace, 1, 512, 4096).items_per_second
    r4 = sim.run(trace, 4, 512, 4096).items_per_second
    assert r4 > 3.5 * r1  # near-linear while stalls dominate


def test_issue_pipeline_caps_per_core_rate():
    trace = dpa_ud_trace()
    sim = MTCoreSim(DPA_BF3.freq_hz, threads_per_core=16)
    r16 = sim.run(trace, 16, 4096, 64).items_per_second
    cap = DPA_BF3.freq_hz / trace.compute_cycles  # 1 core's issue limit
    assert r16 <= cap * 1.01
    assert r16 > cap * 0.85  # and it gets close


def test_second_core_doubles_ceiling():
    trace = dpa_ud_trace()
    sim = MTCoreSim(DPA_BF3.freq_hz, threads_per_core=16)
    r16 = sim.run(trace, 16, 8192, 64).items_per_second
    r32 = sim.run(trace, 32, 8192, 64).items_per_second
    assert r32 > r16 * 1.7


def test_arrival_gating_caps_at_link_rate():
    trace = dpa_uc_trace()
    sim = MTCoreSim(DPA_BF3.freq_hz)
    interval = 4160 / gbit_per_s(200)  # 4 KiB + header on 200G
    run = sim.run(trace, 16, 2048, 4096, arrival_interval=interval)
    assert run.bytes_per_second <= 4096 / interval * 1.01


# --------------------------------------------------------------- Table I


def test_table1_throughputs():
    uc = dpa_single_thread_metrics("uc")
    ud = dpa_single_thread_metrics("ud")
    # UC ≈ 11.5 GiB/s, UD ≈ 5.2 GiB/s on our model (paper: 11.9 / 5.2);
    # the ~2x UC-over-UD relation is the shape that must hold.
    assert 10.0 < uc.throughput_gib_s < 13.5
    assert 4.5 < ud.throughput_gib_s < 6.5
    assert uc.throughput > 1.6 * ud.throughput
    assert ud.cycles_per_cqe == pytest.approx(2 * uc.cycles_per_cqe, rel=0.1)


def test_single_thread_below_200g_link():
    """Fig 5/13: one thread cannot saturate the 200 Gbit/s link..."""
    for transport in ("ud", "uc"):
        m = dpa_single_thread_metrics(transport)
        assert to_gbit_per_s(m.throughput) < 200


# ------------------------------------------------------------ thread scaling


def test_fig13_uc_saturates_with_4_threads():
    scaling = dpa_thread_scaling("uc", threads=(1, 2, 4, 8))
    goodput = 200e9 / 8 * 4096 / 4160
    assert to_gbit_per_s(scaling[4]) > to_gbit_per_s(goodput) * 0.95


def test_fig13_ud_needs_8_to_16_threads():
    scaling = dpa_thread_scaling("ud", threads=(4, 8, 16))
    goodput = 200e9 / 8 * 4096 / 4160
    assert scaling[4] < goodput * 0.95  # 4 threads not enough for UD
    assert scaling[16] > goodput * 0.95


def test_fig13_monotone_nondecreasing():
    scaling = dpa_thread_scaling("ud", threads=(1, 2, 4, 8, 16))
    values = list(scaling.values())
    assert all(b >= a * 0.99 for a, b in zip(values, values[1:]))


def test_one_dpa_core_beats_single_cpu_core():
    """§VI-C(d): 16 threads (1 core) outperform a CPU core by ~25 %."""
    dpa = dpa_throughput("ud", 16)
    cpu = cpu_datapath_throughput("rc_chunked", 8 * MiB)
    assert dpa > cpu * 1.1


# ------------------------------------------------------------------- Fig 15


def test_fig15_bigger_chunks_need_fewer_threads():
    sweep = uc_chunk_size_sweep(chunk_sizes=(4096, 65536), threads=(1, 2))
    goodput_64k = 200e9 / 8 * 65536 / (65536 + 64)
    # 64 KiB chunks reach line rate with a single thread...
    assert sweep[65536][1] > goodput_64k * 0.9
    # ...4 KiB chunks with one thread do not.
    assert sweep[4096][1] < 200e9 / 8 * 0.6


# ------------------------------------------------------------------- Fig 16


def test_fig16_128_threads_sustain_tbit_rate():
    """64 B chunks model the CQE arrival rate of a 1.6 Tbit/s link with
    4 KiB MTU packets: ≈ 48.8 M chunks/s."""
    target = 1600e9 / 8 / 4096  # chunk arrivals per second at 1.6 Tbit/s
    rates = chunk_rate_scaling(threads=(16, 128), n_items=16384)
    assert rates[128] > target
    assert rates[16] < rates[128]


def test_fig16_rate_scales_with_cores():
    rates = chunk_rate_scaling(threads=(16, 32, 64), n_items=8192)
    assert rates[32] > rates[16] * 1.6
    assert rates[64] > rates[32] * 1.6


# -------------------------------------------------------------------- Fig 5


def test_fig5_single_cpu_core_below_line_rate():
    for dp in ("ucx_ud", "rc_chunked"):
        tput = cpu_datapath_throughput(dp, 8 * MiB)
        assert to_gbit_per_s(tput) < 180, dp


def test_fig5_ucx_ud_slower_than_rc_chunked():
    """The software reliability layer costs throughput."""
    ud = cpu_datapath_throughput("ucx_ud", 8 * MiB)
    rc = cpu_datapath_throughput("rc_chunked", 8 * MiB)
    assert ud < rc


def test_fig5_throughput_rises_with_message_size():
    small = cpu_datapath_throughput("ucx_ud", 16 * 1024)
    large = cpu_datapath_throughput("ucx_ud", 8 * MiB)
    assert large > small


def test_unknown_transport_rejected():
    with pytest.raises(ValueError):
        dpa_single_thread_metrics("rc")
    with pytest.raises(ValueError):
        cpu_datapath_throughput("dpdk", 4096)
