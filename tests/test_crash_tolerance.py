"""Fail-stop fault tolerance: crash detection, repair, degraded completion.

The acceptance suite of the fail-stop layer (DESIGN.md "Fail-stop
tolerance"): mid-collective host deaths under both
:class:`~repro.core.communicator.FailurePolicy` values, a spine switch
hard-down rerouted by the SM sweep, the simulator hang watchdog on a
deliberately-deadlocked fixture, and a watchdog-never-fires property
sweep across the chaos matrix.  Fast cases carry ``crash_smoke`` so CI
can run them standalone: ``pytest -m crash_smoke``.
"""

import numpy as np
import pytest

from repro.core import CollectiveConfig, Communicator, FailurePolicy
from repro.core.reliability import CollectiveAbortedError
from repro.net import CrashSpec, Fabric, GilbertElliott, StragglerSpec, Topology
from repro.net.faults import normalize_windows
from repro.net.link import FaultSpec
from repro.sim import RandomStreams, Simulator
from repro.sim.engine import WatchdogError
from repro.units import gbit_per_s, kib


def make_comm(n_hosts=8, topo=None, config=None, seed=0):
    sim = Simulator()
    fabric = Fabric(
        sim,
        topo or Topology.leaf_spine(n_hosts, n_leaf=2, n_spine=2),
        link_bandwidth=gbit_per_s(56),
        streams=RandomStreams(seed=seed),
    )
    return Communicator(fabric, config=config)


def rank_data(rank, nbytes):
    rng = np.random.default_rng(3000 + rank)
    return rng.integers(0, 256, size=nbytes, dtype=np.uint8)


# ------------------------------------------------------------ crash vocabulary


def test_crash_spec_requires_exactly_one_target():
    with pytest.raises(ValueError):
        CrashSpec(at=1e-6)
    with pytest.raises(ValueError):
        CrashSpec(at=1e-6, host=0, switch="sw000")
    assert CrashSpec(at=1e-6, host=3).target == 3
    assert CrashSpec(at=1e-6, switch="spine000").target == "spine000"


def test_schedule_crash_validates_target_names():
    comm = make_comm(4, topo=Topology.star(4))
    with pytest.raises(ValueError):
        comm.fabric.schedule_crash(CrashSpec(at=1e-6, switch="nope"))
    with pytest.raises(ValueError):
        comm.fabric.schedule_crash(CrashSpec(at=1e-6, host=99))
    with pytest.raises(ValueError):
        comm.fabric.schedule_crash(CrashSpec(at=1e-6, link=("h0", "h3")))


# ------------------------------------------------- degraded-mode completion


@pytest.mark.crash_smoke
def test_broadcast_degrades_around_dead_leaf():
    """A non-root rank fail-stops mid-broadcast; the survivors detect the
    silence, re-plan the tree, and finish with correct payloads."""
    cfg = CollectiveConfig(failure_policy=FailurePolicy.DEGRADE)
    comm = make_comm(4, topo=Topology.star(4), config=cfg, seed=101)
    comm.fabric.schedule_crash(CrashSpec(at=10e-6, host=2))
    data = rank_data(0, kib(128))
    result = comm.broadcast(0, data)
    assert result.degraded and result.dead_ranks == [2]
    assert result.verify_broadcast(data)  # every survivor has every byte
    assert all(r.rank != 2 for r in result.ranks)


@pytest.mark.crash_smoke
def test_allgather_degrades_with_validity_masks():
    """A contributor dies mid-allgather: survivors complete with the dead
    rank's shard marked missing in their validity masks and every other
    shard byte-correct."""
    cfg = CollectiveConfig(failure_policy="degrade")  # plain string accepted
    comm = make_comm(4, topo=Topology.star(4), config=cfg, seed=102)
    comm.fabric.schedule_crash(CrashSpec(at=10e-6, host=3))
    send = [rank_data(r, kib(32)) for r in range(4)]
    result = comm.allgather(send)
    assert result.degraded and result.dead_ranks == [3]
    assert result.validity is not None
    assert result.verify_allgather_degraded(send)
    chunks_per_rank = len(result.validity[0]) // 4
    for r in (0, 1, 2):
        mask = result.validity[r]
        # Holes live exactly in (a subset of) the dead rank's shard.
        assert not mask[3 * chunks_per_rank:].all()
        assert mask[: 3 * chunks_per_rank].all()


def test_allgather_16_hosts_mid_crash_deterministic():
    """The ISSUE acceptance point: 16-host allgather, mid-collective host
    death, DEGRADE — correct validity masks, bit-identical across reruns."""

    def run():
        cfg = CollectiveConfig(failure_policy="degrade")
        comm = make_comm(16, topo=Topology.leaf_spine(16, 4, 2),
                         config=cfg, seed=103)
        comm.fabric.schedule_crash(CrashSpec(at=15e-6, host=7))
        send = [rank_data(r, kib(16)) for r in range(16)]
        result = comm.allgather(send)
        return result, send, comm.sim.now

    r1, send, t1 = run()
    r2, _, t2 = run()
    assert r1.dead_ranks == [7]
    assert r1.verify_allgather_degraded(send)
    assert t1 == t2 and r1.dead_ranks == r2.dead_ranks
    assert all(
        (m1 is None and m2 is None) or np.array_equal(m1, m2)
        for m1, m2 in zip(r1.validity, r2.validity)
    )


def test_broadcast_188_hosts_mid_crash_degrades():
    """188-host testbed broadcast with a mid-collective host crash must
    terminate in degraded mode with every survivor byte-correct."""
    cfg = CollectiveConfig(failure_policy="degrade")
    comm = make_comm(188, topo=Topology.testbed_188(), config=cfg, seed=104)
    comm.fabric.schedule_crash(CrashSpec(at=20e-6, host=100))
    data = rank_data(0, kib(256))
    result = comm.broadcast(0, data)
    assert result.degraded and result.dead_ranks == [100]
    assert result.verify_broadcast(data)


def test_degraded_allgather_composes_with_chaos_loss():
    """CrashSpec composes with the chaos schedules: bursty loss keeps
    running on the survivors while one rank fail-stops."""
    cfg = CollectiveConfig(failure_policy="degrade")
    comm = make_comm(4, topo=Topology.star(4), config=cfg, seed=105)
    comm.fabric.set_fault_all(lambda s, d: FaultSpec(gilbert_elliott=GilbertElliott(
        p_good_bad=0.02, p_bad_good=0.3, drop_bad=1.0)))
    comm.fabric.schedule_crash(CrashSpec(at=12e-6, host=1))
    send = [rank_data(r, kib(32)) for r in range(4)]
    result = comm.allgather(send)
    assert result.dead_ranks == [1]
    assert result.verify_allgather_degraded(send)


def test_rank_dead_before_submission_is_pre_voided():
    """A collective submitted after a death never involves the dead rank:
    its shard is voided up front and the chain schedule skips it."""
    cfg = CollectiveConfig(failure_policy="degrade")
    comm = make_comm(4, topo=Topology.star(4), config=cfg, seed=106)
    comm.fabric.schedule_crash(CrashSpec(at=5e-6, host=2))
    first = comm.broadcast(0, rank_data(0, kib(64)))
    assert first.dead_ranks == [2]
    send = [rank_data(r, kib(16)) for r in range(4)]
    result = comm.allgather(send)
    assert result.dead_ranks == [2]
    assert result.verify_allgather_degraded(send)
    # Dead root is rejected loudly, not hung.
    with pytest.raises(ValueError):
        comm.broadcast(2, rank_data(2, kib(16)))


# ----------------------------------------------------------------- ABORT


@pytest.mark.crash_smoke
def test_abort_policy_raises_typed_error():
    cfg = CollectiveConfig(failure_policy=FailurePolicy.ABORT)
    comm = make_comm(4, topo=Topology.star(4), config=cfg, seed=111)
    comm.fabric.schedule_crash(CrashSpec(at=10e-6, host=1))
    with pytest.raises(CollectiveAbortedError) as exc_info:
        comm.broadcast(0, rank_data(0, kib(128)))
    err = exc_info.value
    assert err.dead_ranks == (1,)
    assert err.kind == "broadcast"
    assert err.phase
    assert comm.sim.now < 0.1  # prompt, not a hang


def test_abort_allgather_16_hosts():
    cfg = CollectiveConfig(failure_policy="abort")
    comm = make_comm(16, topo=Topology.leaf_spine(16, 4, 2),
                     config=cfg, seed=112)
    comm.fabric.schedule_crash(CrashSpec(at=15e-6, host=9))
    send = [rank_data(r, kib(16)) for r in range(16)]
    with pytest.raises(CollectiveAbortedError) as exc_info:
        comm.allgather(send)
    assert exc_info.value.dead_ranks == (9,)


# ------------------------------------------------------- switch/link crashes


@pytest.mark.crash_smoke
def test_spine_down_reroutes_and_completes():
    """A spine dies mid-broadcast: the SM sweep reroutes via the surviving
    spine and rebuilds the multicast tree; the cutoff/fetch recovery then
    re-delivers what the dead spine black-holed.  No liveness layer needed
    — no host died."""
    comm = make_comm(8, seed=121)
    comm.fabric.schedule_crash(CrashSpec(at=10e-6, switch="spine000"))
    data = rank_data(0, kib(128))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    assert result.dead_ranks == []  # all hosts survived
    assert result.reliability_summary()["recoveries"] >= 1
    assert "spine000" in comm.fabric.dead_switches


def test_spine_down_mid_allgather_completes():
    """A spine dies mid-allgather.  Control packets routed through it
    (activation/final tokens) are black-holed during the 1 ms pre-sweep
    window and RC retransmission is not modeled, so completion relies on
    the liveness layer's escalation: probes answered alive bound the wait
    and the collective proceeds without the lost token."""
    cfg = CollectiveConfig(failure_policy="degrade")
    comm = make_comm(8, config=cfg, seed=122)
    comm.fabric.schedule_crash(CrashSpec(at=12e-6, switch="spine001"))
    send = [rank_data(r, kib(32)) for r in range(8)]
    result = comm.allgather(send)
    assert result.verify_allgather(send)
    assert result.dead_ranks == []  # every host survived the switch death


def test_link_down_heals_via_recovery():
    """A single host's access link hard-down is indistinguishable from a
    host death to its peers; with DEGRADE the survivors complete around
    the unreachable rank."""
    cfg = CollectiveConfig(failure_policy="degrade")
    comm = make_comm(4, topo=Topology.star(4), config=cfg, seed=123)
    comm.fabric.schedule_crash(CrashSpec(at=10e-6, link=("sw000", "h2")))
    data = rank_data(0, kib(128))
    result = comm.broadcast(0, data)
    assert result.dead_ranks == [2]
    assert result.verify_broadcast(data)


# ------------------------------------------------------------------ watchdog


@pytest.mark.crash_smoke
def test_watchdog_fires_on_deadlocked_fixture_with_diagnostics():
    """The deliberately-deadlocked fixture: the broadcast root dies with
    the liveness layer off, so the survivors' recovery churns events
    without progress forever.  The watchdog must convert that hang into a
    typed error carrying the per-rank diagnostic dump."""
    comm = make_comm(4, topo=Topology.star(4), seed=131)  # policy=None
    comm.sim.install_watchdog(5e-3)
    comm.fabric.schedule_crash(CrashSpec(at=5e-6, host=0))
    with pytest.raises(WatchdogError) as exc_info:
        comm.broadcast(0, rank_data(0, kib(128)))
    report = exc_info.value.report
    assert "dead_ranks=[0]" in report
    for r in range(4):
        assert f"rank {r}" in report  # per-rank state present
    assert "holes:" in report and "last phase:" in report


def test_watchdog_never_fires_on_clean_run():
    comm = make_comm(4, topo=Topology.star(4), seed=132)
    comm.sim.install_watchdog(1e-3)
    data = rank_data(0, kib(128))
    assert comm.broadcast(0, data).verify_broadcast(data)


GE_CHAOS = GilbertElliott(p_good_bad=0.02, p_bad_good=0.25, drop_bad=1.0)

_CHAOS_REGIMES = {
    "bursty": lambda comm: comm.fabric.set_fault_all(
        lambda s, d: FaultSpec(gilbert_elliott=GE_CHAOS)),
    "flap": lambda comm: comm.fabric.set_fault(
        "sw000", "h2", FaultSpec(flap_windows=[(10e-6, 40e-6)])),
    "straggler": lambda comm: comm.fabric.set_straggler(
        1, StragglerSpec(windows=[(0.0, 50e-6)], extra_poll_delay=2e-6)),
}


@pytest.mark.parametrize("seed", [201, 202, 203])
@pytest.mark.parametrize("regime", sorted(_CHAOS_REGIMES))
@pytest.mark.parametrize("collective", ["broadcast", "allgather"])
def test_watchdog_never_fires_under_chaos(seed, regime, collective):
    """Property sweep: across seeds × chaos regimes × collectives, a run
    that merely *recovers* (no fail-stop) must never trip the watchdog —
    recovery makes progress, and the watchdog only converts genuine
    no-progress hangs."""
    comm = make_comm(4, topo=Topology.star(4), seed=seed)
    comm.sim.install_watchdog(2e-3)
    _CHAOS_REGIMES[regime](comm)
    if collective == "broadcast":
        data = rank_data(0, kib(64))
        assert comm.broadcast(0, data).verify_broadcast(data)
    else:
        send = [rank_data(r, kib(16)) for r in range(4)]
        assert comm.allgather(send).verify_allgather(send)


# --------------------------------------------------------- liveness plumbing


def test_death_confirmation_is_agreed_and_tracked():
    """Membership agreement is *eventual*: the probing rank confirms the
    death immediately and updates the shared membership; MSG_DEATH notices
    still in flight when the op completes are consumed on the next drain,
    after which every survivor's engine holds the same confirmed-dead set."""
    cfg = CollectiveConfig(failure_policy="degrade")
    comm = make_comm(4, topo=Topology.star(4), config=cfg, seed=141)
    comm.fabric.schedule_crash(CrashSpec(at=10e-6, host=2))
    data = rank_data(0, kib(128))
    assert comm.broadcast(0, data).verify_broadcast(data)
    # The communicator-level membership is updated by the first confirmer
    # before the op completes ...
    assert comm.dead_ranks == {2}
    confirmers = [r for r in (0, 1, 3)
                  if comm.engines[r].confirmed_dead == {2}]
    assert confirmers  # ... and at least one engine confirmed it first-hand.
    # A follow-up collective drains the in-flight MSG_DEATH notices; after
    # it, agreement is total.
    assert comm.broadcast(0, data).verify_broadcast(data)
    for r in (0, 1, 3):
        assert comm.engines[r].confirmed_dead == {2}


def test_back_to_back_collectives_after_repair():
    """The repaired communicator keeps working: collectives submitted after
    a degraded completion run among the survivors without re-detecting."""
    cfg = CollectiveConfig(failure_policy="degrade")
    comm = make_comm(8, config=cfg, seed=142)
    comm.fabric.schedule_crash(CrashSpec(at=10e-6, host=5))
    data = rank_data(0, kib(64))
    first = comm.broadcast(0, data)
    assert first.dead_ranks == [5]
    t_mid = comm.sim.now
    second = comm.broadcast(0, data)
    assert second.verify_broadcast(data)
    assert second.dead_ranks == [5]
    # No fresh suspicion cycle: the second op finishes in healthy time.
    assert comm.sim.now - t_mid < comm.config.suspicion_timeout


# ------------------------------------------------------- window validation


def test_normalize_windows_rejects_zero_length():
    with pytest.raises(ValueError, match=r"zero-length window \[3e-06, 3e-06\)"):
        normalize_windows([(1e-6, 2e-6), (3e-6, 3e-6)])


def test_normalize_windows_rejects_overlap_naming_pair():
    with pytest.raises(ValueError, match=r"\[0.0, 5e-06\) and \[4e-06, 6e-06\)"):
        normalize_windows([(4e-6, 6e-6), (0.0, 5e-6)])


def test_normalize_windows_sorts_disjoint():
    ws = normalize_windows([(5e-6, 6e-6), (1e-6, 2e-6)])
    assert [w.start for w in ws] == [1e-6, 5e-6]
