"""Tests: units, DMA engine, memory regions, workloads, communicator API."""

import numpy as np
import pytest

from repro import CollectiveConfig, Communicator, Fabric, Simulator, Topology
from repro.net.dma import DmaEngine
from repro.net.memory import Memory
from repro.units import (
    GiB,
    KiB,
    MiB,
    gbit_per_s,
    gib,
    gib_per_s,
    kib,
    mib,
    pretty_bytes,
    pretty_rate,
    to_gbit_per_s,
    to_gib_per_s,
)
from repro.workloads import SweepPoint, sweep


# --------------------------------------------------------------------- units


def test_byte_units():
    assert kib(4) == 4096
    assert mib(1) == MiB == 1048576
    assert gib(2) == 2 * GiB


def test_bandwidth_units_roundtrip():
    assert to_gbit_per_s(gbit_per_s(200)) == pytest.approx(200)
    assert to_gib_per_s(gib_per_s(11.9)) == pytest.approx(11.9)


def test_vendor_decimal_bits():
    # 200 Gbit/s is 25 decimal GB/s, not 25 GiB/s.
    assert gbit_per_s(200) == 25e9


def test_pretty_formatting():
    assert pretty_bytes(4096) == "4 KiB"
    assert pretty_bytes(100) == "100 B"
    assert "Gbit/s" in pretty_rate(gbit_per_s(56))


# ---------------------------------------------------------------- DMA engine


def test_dma_copy_moves_data_at_completion():
    sim = Simulator()
    dma = DmaEngine(sim, bandwidth=1e9, latency=1e-6)
    src = np.arange(1000, dtype=np.uint8)
    dst = np.zeros(1000, dtype=np.uint8)
    ev = dma.copy(src, dst)
    assert not np.array_equal(dst, src)  # not yet
    sim.run()
    assert ev.triggered
    assert np.array_equal(dst, src)
    assert sim.now == pytest.approx(1000 / 1e9 + 1e-6)


def test_dma_queues_back_to_back():
    sim = Simulator()
    dma = DmaEngine(sim, bandwidth=1e9, latency=0.0)
    bufs = [(np.full(1000, i, dtype=np.uint8), np.zeros(1000, dtype=np.uint8))
            for i in range(3)]
    events = [dma.copy(s, d) for s, d in bufs]
    sim.drain(events)
    assert sim.now == pytest.approx(3e-6)
    assert dma.ops == 3 and dma.bytes_copied == 3000


def test_dma_size_mismatch_rejected():
    sim = Simulator()
    dma = DmaEngine(sim)
    with pytest.raises(ValueError):
        dma.copy(np.zeros(10, dtype=np.uint8), np.zeros(20, dtype=np.uint8))


def test_dma_invalid_bandwidth():
    with pytest.raises(ValueError):
        DmaEngine(Simulator(), bandwidth=0)


# -------------------------------------------------------------------- Memory


def test_memory_register_and_view():
    mem = Memory(host=0)
    mr = mem.register(1024)
    view = mr.view(100, 24)
    view[:] = 7
    assert mr.buf[100] == 7 and mr.buf[123] == 7


def test_memory_bounds_fault():
    mem = Memory(host=0)
    mr = mem.register(100)
    with pytest.raises(IndexError):
        mr.view(90, 20)


def test_memory_symmetric_key_and_collision():
    mem = Memory(host=0)
    mem.register(64, key=5000)
    with pytest.raises(ValueError, match="already registered"):
        mem.register(64, key=5000)
    assert mem.lookup(5000).nbytes == 64


def test_memory_unknown_key_fault():
    mem = Memory(host=0)
    with pytest.raises(KeyError, match="remote access fault"):
        mem.lookup(12345)


def test_memory_deregister():
    mem = Memory(host=0)
    mr = mem.register(64)
    mem.deregister(mr.key)
    with pytest.raises(KeyError):
        mem.lookup(mr.key)
    assert len(mem) == 0


# --------------------------------------------------------------- OSU sweeps


def test_sweep_discipline():
    calls = []

    def run_once(size):
        calls.append(size)
        return size * 1e-9

    points = sweep(run_once, sizes=(1024, 2048), warmup=2, iterations=3)
    assert calls == [1024] * 5 + [2048] * 5  # 2 warmup + 3 measured each
    assert len(points) == 2
    assert points[0].mean == pytest.approx(1024e-9)
    assert points[1].throughput(2048) == pytest.approx(2048 / 2048e-9)


def test_sweep_point_best():
    p = SweepPoint(100, [3.0, 1.0, 2.0])
    assert p.best == 1.0
    assert p.mean == 2.0


# -------------------------------------------------------- communicator API


def make_comm(n=4, config=None):
    sim = Simulator()
    fabric = Fabric(sim, Topology.star(n), link_bandwidth=gbit_per_s(56))
    return Communicator(fabric, config=config)


def test_config_validation_against_fabric():
    sim = Simulator()
    fabric = Fabric(sim, Topology.star(2), mtu=4096)
    with pytest.raises(ValueError, match="MTU"):
        Communicator(fabric, config=CollectiveConfig(chunk_size=8192))
    # UC transport may exceed the MTU (multi-packet chunks).
    Communicator(fabric, config=CollectiveConfig(chunk_size=8192, transport="uc"))


def test_config_rejects_bad_values():
    with pytest.raises(ValueError):
        CollectiveConfig(transport="tcp").validate(
            Fabric(Simulator(), Topology.star(2)))
    with pytest.raises(ValueError):
        CollectiveConfig(n_subgroups=0).validate(
            Fabric(Simulator(), Topology.star(2)))


def test_broadcast_root_range_checked():
    comm = make_comm(4)
    with pytest.raises(ValueError, match="root"):
        comm.broadcast(4, np.zeros(128, dtype=np.uint8))


def test_empty_buffers_rejected():
    comm = make_comm(2)
    with pytest.raises(ValueError, match="empty"):
        comm.broadcast(0, np.zeros(0, dtype=np.uint8))
    with pytest.raises(ValueError, match="empty"):
        comm.allgather([np.zeros(0, dtype=np.uint8)] * 2)


def test_allgather_wrong_buffer_count():
    comm = make_comm(3)
    with pytest.raises(ValueError, match="send buffers"):
        comm.allgather([np.zeros(1024, dtype=np.uint8)] * 2)


def test_allgather_mismatched_sizes():
    comm = make_comm(2)
    with pytest.raises(ValueError, match="same size"):
        comm.allgather([np.zeros(1024, dtype=np.uint8),
                        np.zeros(2048, dtype=np.uint8)])


def test_duplicate_hosts_rejected():
    sim = Simulator()
    fabric = Fabric(sim, Topology.star(4))
    with pytest.raises(ValueError, match="duplicate"):
        Communicator(fabric, hosts=[0, 1, 1])


def test_non_uint8_payloads_accepted():
    comm = make_comm(2)
    data = np.arange(1024, dtype=np.float32)
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)


def test_multiple_sequential_collectives_reuse_communicator():
    comm = make_comm(4)
    for i in range(3):
        data = np.full(8192, i, dtype=np.uint8)
        assert comm.broadcast(i % 4, data).verify_broadcast(data)


def test_result_metrics_consistency():
    comm = make_comm(4)
    data = [np.full(16 * KiB, r, dtype=np.uint8) for r in range(4)]
    res = comm.allgather(data)
    assert res.recv_bytes_per_rank == 3 * 16 * KiB
    assert res.throughput == pytest.approx(4 * 16 * KiB / res.duration)
    assert res.duration > 0
    bd = res.phase_means()
    assert bd.total == pytest.approx(bd.sync + bd.multicast + bd.handshake)


def test_subcommunicator_on_host_subset():
    sim = Simulator()
    fabric = Fabric(sim, Topology.leaf_spine(8, 2, 2), link_bandwidth=gbit_per_s(56))
    comm = Communicator(fabric, hosts=[1, 3, 5, 7])
    data = [np.full(8192, r, dtype=np.uint8) for r in range(4)]
    res = comm.allgather(data)
    assert res.verify_allgather(data)


def test_two_communicators_share_fabric():
    sim = Simulator()
    fabric = Fabric(sim, Topology.leaf_spine(8, 2, 2), link_bandwidth=gbit_per_s(56))
    c1 = Communicator(fabric, hosts=[0, 1, 2, 3])
    c2 = Communicator(fabric, hosts=[4, 5, 6, 7])
    d1 = [np.full(8192, r, dtype=np.uint8) for r in range(4)]
    d2 = [np.full(8192, 100 + r, dtype=np.uint8) for r in range(4)]
    h1 = c1.allgather_async(d1)
    h2 = c2.allgather_async(d2)
    sim.drain([h1.done_event, h2.done_event])
    assert h1.result().verify_allgather(d1)
    assert h2.result().verify_allgather(d2)
