"""Integration tests: NIC + fabric verbs semantics (UD/UC/RC)."""

import numpy as np
import pytest

from repro.net import Fabric, Opcode, RecvWR, SendWR, Topology, Transport
from repro.net.link import FaultSpec
from repro.sim import Simulator
from repro.units import gbit_per_s


def make_fabric(topo=None, **kw):
    sim = Simulator()
    fabric = Fabric(sim, topo or Topology.star(4), link_bandwidth=gbit_per_s(100), **kw)
    return sim, fabric


def fill(mr, value=None):
    """Fill a memory region with a deterministic pattern."""
    if value is None:
        mr.buf[:] = np.arange(mr.nbytes, dtype=np.uint64).astype(np.uint8)
    else:
        mr.buf[:] = value
    return mr


# ----------------------------------------------------------------------- UD


def test_ud_send_recv_with_imm():
    sim, fabric = make_fabric()
    sender, receiver = fabric.nic(0), fabric.nic(1)
    s_mr = fill(sender.memory.register(1024))
    r_mr = receiver.memory.register(4096)

    sqp = sender.create_qp(Transport.UD)
    rqp = receiver.create_qp(Transport.UD)
    rqp.post_recv(RecvWR(wr_id=1, mr_key=r_mr.key, offset=100, length=2048))
    sqp.post_send(
        SendWR(wr_id=2, verb="send", mr_key=s_mr.key, offset=0, length=1024,
               imm=0xABC, dst=1, dst_qpn=rqp.qpn)
    )
    sim.run()

    cqes = rqp.recv_cq.poll()
    assert len(cqes) == 1
    cqe = cqes[0]
    assert cqe.opcode is Opcode.RECV
    assert cqe.imm == 0xABC
    assert cqe.byte_len == 1024
    assert cqe.src == 0
    assert np.array_equal(r_mr.buf[100:1124], s_mr.buf[:1024])
    # Sender got a local completion too.
    assert [c.opcode for c in sqp.send_cq.poll()] == [Opcode.SEND]


def test_ud_rnr_drop_when_no_recv_posted():
    sim, fabric = make_fabric()
    sender, receiver = fabric.nic(0), fabric.nic(1)
    s_mr = fill(sender.memory.register(512))
    sqp = sender.create_qp(Transport.UD)
    rqp = receiver.create_qp(Transport.UD)
    sqp.post_send(SendWR(wr_id=1, verb="send", mr_key=s_mr.key, length=512,
                         dst=1, dst_qpn=rqp.qpn))
    sim.run()
    assert rqp.rnr_drops == 1
    assert len(rqp.recv_cq) == 0
    assert fabric.total_rnr_drops() == 1


def test_ud_rnr_drop_on_buffer_too_small():
    """A posted WR shorter than the payload is a local length error: the
    datagram is consumed and dropped (counted as RNR), never truncated."""
    sim, fabric = make_fabric()
    sender, receiver = fabric.nic(0), fabric.nic(1)
    s_mr = fill(sender.memory.register(2048))
    r_mr = receiver.memory.register(2048)
    sqp = sender.create_qp(Transport.UD)
    rqp = receiver.create_qp(Transport.UD)
    rqp.post_recv(RecvWR(wr_id=1, mr_key=r_mr.key, offset=0, length=100))
    sqp.post_send(SendWR(wr_id=2, verb="send", mr_key=s_mr.key, length=2048,
                         dst=1, dst_qpn=rqp.qpn))
    sim.run()
    assert rqp.rnr_drops == 1
    assert receiver.rnr_drops == 1
    assert len(rqp.recv_cq) == 0
    # The short WR was consumed by the drop (verbs semantics).
    assert len(rqp.recv_queue) == 0


def test_ud_rnr_drops_count_per_datagram():
    sim, fabric = make_fabric()
    sender, receiver = fabric.nic(0), fabric.nic(1)
    s_mr = fill(sender.memory.register(512))
    sqp = sender.create_qp(Transport.UD)
    rqp = receiver.create_qp(Transport.UD)
    for i in range(3):
        sqp.post_send(SendWR(wr_id=i, verb="send", mr_key=s_mr.key, length=512,
                             dst=1, dst_qpn=rqp.qpn))
    sim.run()
    assert rqp.rnr_drops == 3
    assert fabric.total_rnr_drops() == 3


def test_ud_mtu_enforced():
    sim, fabric = make_fabric()
    nic = fabric.nic(0)
    mr = nic.memory.register(8192)
    qp = nic.create_qp(Transport.UD)
    with pytest.raises(ValueError, match="MTU"):
        qp.post_send(SendWR(wr_id=1, verb="send", mr_key=mr.key, length=8192,
                            dst=1, dst_qpn=1))


def test_ud_unsignaled_send_no_cqe():
    sim, fabric = make_fabric()
    sender, receiver = fabric.nic(0), fabric.nic(1)
    s_mr = fill(sender.memory.register(128))
    r_mr = receiver.memory.register(128)
    sqp = sender.create_qp(Transport.UD)
    rqp = receiver.create_qp(Transport.UD)
    rqp.post_recv(RecvWR(wr_id=0, mr_key=r_mr.key, offset=0, length=128))
    sqp.post_send(SendWR(wr_id=1, verb="send", mr_key=s_mr.key, length=128,
                         dst=1, dst_qpn=rqp.qpn, signaled=False))
    sim.run()
    assert len(sqp.send_cq) == 0
    assert len(rqp.recv_cq) == 1


def test_ud_multicast_delivers_to_all_members_except_sender():
    sim, fabric = make_fabric()
    gid = fabric.create_mcast_group([0, 1, 2, 3])
    qps = {}
    mrs = {}
    for h in range(4):
        nic = fabric.nic(h)
        mr = nic.memory.register(4096)
        qp = nic.create_qp(Transport.UD)
        qp.attach_mcast(gid)
        qp.post_recv(RecvWR(wr_id=h, mr_key=mr.key, offset=0, length=4096))
        qps[h], mrs[h] = qp, mr
    src_mr = fill(fabric.nic(0).memory.register(1000))
    qps[0].post_send(SendWR(wr_id=9, verb="send", mr_key=src_mr.key, length=1000,
                            imm=5, mcast_gid=gid))
    sim.run()
    for h in (1, 2, 3):
        cqes = qps[h].recv_cq.poll()
        assert len(cqes) == 1 and cqes[0].imm == 5
        assert np.array_equal(mrs[h].buf[:1000], src_mr.buf[:1000])
    # The sender must not loop its own datagram back.
    assert len(qps[0].recv_cq) == 0


def test_ud_multicast_on_leaf_spine():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    sim, fabric = make_fabric(topo)
    members = list(range(8))
    gid = fabric.create_mcast_group(members)
    qps = {}
    for h in members:
        nic = fabric.nic(h)
        mr = nic.memory.register(4096)
        qp = nic.create_qp(Transport.UD)
        qp.attach_mcast(gid)
        qp.post_recv(RecvWR(wr_id=h, mr_key=mr.key, offset=0, length=4096))
        qps[h] = qp
    src_mr = fill(fabric.nic(3).memory.register(2048))
    qps[3].post_send(SendWR(wr_id=1, verb="send", mr_key=src_mr.key, length=2048,
                            mcast_gid=gid))
    sim.run()
    for h in members:
        expected = 0 if h == 3 else 1
        assert len(qps[h].recv_cq) == expected, f"host {h}"


def test_mcast_attach_requires_membership():
    sim, fabric = make_fabric()
    gid = fabric.create_mcast_group([0, 1])
    qp = fabric.nic(2).create_qp(Transport.UD)
    with pytest.raises(ValueError):
        qp.attach_mcast(gid)


def test_rc_qp_cannot_attach_mcast():
    sim, fabric = make_fabric()
    gid = fabric.create_mcast_group([0, 1])
    qp = fabric.nic(0).create_qp(Transport.RC)
    with pytest.raises(ValueError):
        qp.attach_mcast(gid)


# ----------------------------------------------------------------------- RC


def connect_rc(fabric, a, b):
    qa = fabric.nic(a).create_qp(Transport.RC)
    qb = fabric.nic(b).create_qp(Transport.RC)
    qa.connect(b, qb.qpn)
    qb.connect(a, qa.qpn)
    return qa, qb


def test_rc_send_recv_multisegment():
    sim, fabric = make_fabric()
    qa, qb = connect_rc(fabric, 0, 1)
    s_mr = fill(fabric.nic(0).memory.register(10000))
    r_mr = fabric.nic(1).memory.register(16384)
    qb.post_recv(RecvWR(wr_id=7, mr_key=r_mr.key, offset=0, length=16384))
    qa.post_send(SendWR(wr_id=1, verb="send", mr_key=s_mr.key, length=10000, imm=3))
    sim.run()
    cqes = qb.recv_cq.poll()
    assert len(cqes) == 1
    assert cqes[0].byte_len == 10000
    assert cqes[0].imm == 3
    assert np.array_equal(r_mr.buf[:10000], s_mr.buf[:10000])


def test_rc_send_waits_for_late_recv_no_drop():
    sim, fabric = make_fabric()
    qa, qb = connect_rc(fabric, 0, 1)
    s_mr = fill(fabric.nic(0).memory.register(256))
    r_mr = fabric.nic(1).memory.register(256)
    qa.post_send(SendWR(wr_id=1, verb="send", mr_key=s_mr.key, length=256))
    sim.run()
    assert len(qb.recv_cq) == 0  # parked, not dropped
    qb.post_recv(RecvWR(wr_id=2, mr_key=r_mr.key, offset=0, length=256))
    sim.run()
    assert len(qb.recv_cq) == 1
    assert np.array_equal(r_mr.buf, s_mr.buf)


def test_rc_write_places_data_without_receiver_wr():
    sim, fabric = make_fabric()
    qa, qb = connect_rc(fabric, 0, 2)
    s_mr = fill(fabric.nic(0).memory.register(9000))
    r_mr = fabric.nic(2).memory.register(12000)
    qa.post_send(SendWR(wr_id=1, verb="write", mr_key=s_mr.key, length=9000,
                        remote_key=r_mr.key, remote_offset=3000))
    sim.run()
    assert np.array_equal(r_mr.buf[3000:12000], s_mr.buf[:9000])
    assert [c.opcode for c in qa.send_cq.poll()] == [Opcode.RDMA_WRITE]
    assert len(qb.recv_cq) == 0  # plain write consumes nothing


def test_rc_write_with_imm_consumes_recv():
    sim, fabric = make_fabric()
    qa, qb = connect_rc(fabric, 0, 1)
    s_mr = fill(fabric.nic(0).memory.register(100))
    r_mr = fabric.nic(1).memory.register(1000)
    qb.post_recv(RecvWR(wr_id=4, mr_key=r_mr.key, offset=0, length=0))
    qa.post_send(SendWR(wr_id=1, verb="write", mr_key=s_mr.key, length=100,
                        remote_key=r_mr.key, remote_offset=0, imm=42))
    sim.run()
    cqes = qb.recv_cq.poll()
    assert len(cqes) == 1
    assert cqes[0].opcode is Opcode.RECV_RDMA_WITH_IMM
    assert cqes[0].imm == 42


def test_rc_write_with_imm_rnr_retries_until_recv_posted():
    """RC write-with-imm without a posted receive: the data is placed
    immediately (hardware RNR-retry below the software horizon) and the
    completion is parked until a WR shows up — never dropped."""
    sim, fabric = make_fabric()
    qa, qb = connect_rc(fabric, 0, 1)
    s_mr = fill(fabric.nic(0).memory.register(300))
    r_mr = fabric.nic(1).memory.register(1000)
    qa.post_send(SendWR(wr_id=1, verb="write", mr_key=s_mr.key, length=300,
                        remote_key=r_mr.key, remote_offset=0, imm=9))
    sim.run()
    assert np.array_equal(r_mr.buf[:300], s_mr.buf[:300])  # data placed
    assert len(qb.recv_cq) == 0  # notification parked
    assert qb.rnr_drops == 0  # RC never drops
    qb.post_recv(RecvWR(wr_id=2, mr_key=r_mr.key, offset=0, length=0))
    sim.run()
    cqes = qb.recv_cq.poll()
    assert len(cqes) == 1
    assert cqes[0].opcode is Opcode.RECV_RDMA_WITH_IMM
    assert cqes[0].imm == 9


def test_rc_parked_imms_drain_in_order():
    sim, fabric = make_fabric()
    qa, qb = connect_rc(fabric, 0, 1)
    s_mr = fill(fabric.nic(0).memory.register(100))
    r_mr = fabric.nic(1).memory.register(1000)
    for imm in (1, 2, 3):
        qa.post_send(SendWR(wr_id=imm, verb="write", mr_key=s_mr.key, length=100,
                            remote_key=r_mr.key, remote_offset=0, imm=imm))
    sim.run()
    assert len(qb.recv_cq) == 0
    for i in range(3):
        qb.post_recv(RecvWR(wr_id=10 + i, mr_key=r_mr.key, offset=0, length=0))
    sim.run()
    assert [c.imm for c in qb.recv_cq.poll()] == [1, 2, 3]


def test_rc_read_fetches_remote_data():
    sim, fabric = make_fabric()
    qa, qb = connect_rc(fabric, 0, 1)
    remote_mr = fill(fabric.nic(1).memory.register(20000))
    local_mr = fabric.nic(0).memory.register(20000)
    qa.post_send(SendWR(wr_id=5, verb="read", mr_key=local_mr.key, offset=0,
                        length=20000, remote_key=remote_mr.key, remote_offset=0))
    sim.run()
    cqes = qa.send_cq.poll()
    assert len(cqes) == 1 and cqes[0].opcode is Opcode.RDMA_READ
    assert cqes[0].byte_len == 20000
    assert np.array_equal(local_mr.buf, remote_mr.buf)


def test_rc_read_partial_region():
    sim, fabric = make_fabric()
    qa, qb = connect_rc(fabric, 0, 1)
    remote_mr = fill(fabric.nic(1).memory.register(8192))
    local_mr = fabric.nic(0).memory.register(4096)
    qa.post_send(SendWR(wr_id=5, verb="read", mr_key=local_mr.key, offset=1024,
                        length=1000, remote_key=remote_mr.key, remote_offset=4096))
    sim.run()
    assert np.array_equal(local_mr.buf[1024:2024], remote_mr.buf[4096:5096])


def test_rc_immune_to_fabric_drops():
    sim, fabric = make_fabric(default_fault=FaultSpec(drop_prob=1.0))
    qa, qb = connect_rc(fabric, 0, 1)
    s_mr = fill(fabric.nic(0).memory.register(5000))
    r_mr = fabric.nic(1).memory.register(5000)
    qa.post_send(SendWR(wr_id=1, verb="write", mr_key=s_mr.key, length=5000,
                        remote_key=r_mr.key, remote_offset=0))
    sim.run()
    assert np.array_equal(r_mr.buf, s_mr.buf)


def test_rc_requires_connection():
    sim, fabric = make_fabric()
    qp = fabric.nic(0).create_qp(Transport.RC)
    mr = fabric.nic(0).memory.register(100)
    with pytest.raises(ValueError, match="not connected"):
        qp.post_send(SendWR(wr_id=1, verb="send", mr_key=mr.key, length=100))


def test_ud_rejects_rdma_verbs():
    sim, fabric = make_fabric()
    qp = fabric.nic(0).create_qp(Transport.UD)
    mr = fabric.nic(0).memory.register(100)
    with pytest.raises(ValueError):
        qp.post_send(SendWR(wr_id=1, verb="write", mr_key=mr.key, length=100,
                            remote_key=1))


# ----------------------------------------------------------------------- UC


def connect_uc(fabric, a, b):
    qa = fabric.nic(a).create_qp(Transport.UC)
    qb = fabric.nic(b).create_qp(Transport.UC)
    qa.connect(b, qb.qpn)
    qb.connect(a, qa.qpn)
    return qa, qb


def test_uc_write_with_imm_multipacket():
    sim, fabric = make_fabric()
    qa, qb = connect_uc(fabric, 0, 1)
    s_mr = fill(fabric.nic(0).memory.register(100000))
    r_mr = fabric.nic(1).memory.register(100000)
    qb.post_recv(RecvWR(wr_id=1, mr_key=r_mr.key, offset=0, length=0))
    qa.post_send(SendWR(wr_id=1, verb="write", mr_key=s_mr.key, length=100000,
                        remote_key=r_mr.key, remote_offset=0, imm=11))
    sim.run()
    cqes = qb.recv_cq.poll()
    assert len(cqes) == 1
    assert cqes[0].byte_len == 100000
    assert np.array_equal(r_mr.buf, s_mr.buf)


def test_uc_dropped_segment_kills_message_completion():
    sim, fabric = make_fabric()
    # Drop the 3rd unreliable packet on h0's uplink.
    fabric.set_fault("h0", "sw000", FaultSpec(drop_packet_seqs={2}))
    qa, qb = connect_uc(fabric, 0, 1)
    s_mr = fill(fabric.nic(0).memory.register(20000))
    r_mr = fabric.nic(1).memory.register(20000)
    qb.post_recv(RecvWR(wr_id=1, mr_key=r_mr.key, offset=0, length=0))
    qa.post_send(SendWR(wr_id=1, verb="write", mr_key=s_mr.key, length=20000,
                        remote_key=r_mr.key, remote_offset=0, imm=11))
    sim.run()
    assert len(qb.recv_cq) == 0  # message never completes
    # ... even though some prefix bytes may have been placed.


def test_uc_read_rejected():
    sim, fabric = make_fabric()
    qa, _ = connect_uc(fabric, 0, 1)
    mr = fabric.nic(0).memory.register(100)
    with pytest.raises(ValueError, match="READ"):
        qa.post_send(SendWR(wr_id=1, verb="read", mr_key=mr.key, length=100,
                            remote_key=1))


def test_uc_multicast_write_with_symmetric_rkey():
    sim, fabric = make_fabric()
    gid = fabric.create_mcast_group([0, 1, 2])
    # Symmetric registration: same rkey on every member.
    RKEY = 777
    mrs = {}
    qps = {}
    for h in range(3):
        nic = fabric.nic(h)
        mrs[h] = nic.memory.register(8192, key=RKEY)
        qp = nic.create_qp(Transport.UC)
        qp.attach_mcast(gid)
        qp.post_recv(RecvWR(wr_id=h, mr_key=RKEY, offset=0, length=0))
        qps[h] = qp
    src = fill(fabric.nic(0).memory.register(8192))
    qps[0].post_send(SendWR(wr_id=1, verb="write", mr_key=src.key, length=8192,
                            remote_key=RKEY, remote_offset=0, imm=1, mcast_gid=gid))
    sim.run()
    for h in (1, 2):
        assert len(qps[h].recv_cq) == 1, f"host {h}"
        assert np.array_equal(mrs[h].buf, src.buf)


# ------------------------------------------------------------------ fabric


def test_switch_counters_see_traffic():
    sim, fabric = make_fabric()
    sender, receiver = fabric.nic(0), fabric.nic(1)
    s_mr = fill(sender.memory.register(4096))
    r_mr = receiver.memory.register(4096)
    sqp = sender.create_qp(Transport.UD)
    rqp = receiver.create_qp(Transport.UD)
    rqp.post_recv(RecvWR(wr_id=0, mr_key=r_mr.key, offset=0, length=4096))
    sqp.post_send(SendWR(wr_id=1, verb="send", mr_key=s_mr.key, length=4096,
                         dst=1, dst_qpn=rqp.qpn))
    sim.run()
    assert fabric.switch_egress_bytes(payload_only=True) == 4096
    assert fabric.host_injected_bytes(payload_only=True) == 4096
    fabric.reset_counters()
    assert fabric.switch_egress_bytes() == 0


def test_loopback_send_to_self():
    sim, fabric = make_fabric()
    nic = fabric.nic(0)
    s_mr = fill(nic.memory.register(100))
    r_mr = nic.memory.register(100)
    qp = nic.create_qp(Transport.UD)
    qp.post_recv(RecvWR(wr_id=0, mr_key=r_mr.key, offset=0, length=100))
    qp.post_send(SendWR(wr_id=1, verb="send", mr_key=s_mr.key, length=100,
                        dst=0, dst_qpn=qp.qpn))
    sim.run()
    assert len(qp.recv_cq) == 1
    assert np.array_equal(r_mr.buf, s_mr.buf)


def test_back_to_back_fabric():
    sim = Simulator()
    fabric = Fabric(sim, Topology.back_to_back(), link_bandwidth=gbit_per_s(200))
    a, b = fabric.nic(0), fabric.nic(1)
    s_mr = fill(a.memory.register(4096))
    r_mr = b.memory.register(4096)
    sqp = a.create_qp(Transport.UD)
    rqp = b.create_qp(Transport.UD)
    rqp.post_recv(RecvWR(wr_id=0, mr_key=r_mr.key, offset=0, length=4096))
    sqp.post_send(SendWR(wr_id=1, verb="send", mr_key=s_mr.key, length=4096,
                         dst=1, dst_qpn=rqp.qpn))
    sim.run()
    assert len(rqp.recv_cq) == 1
    assert np.array_equal(r_mr.buf, s_mr.buf)


def test_cq_wait_event():
    sim, fabric = make_fabric()
    sender, receiver = fabric.nic(0), fabric.nic(1)
    s_mr = fill(sender.memory.register(64))
    r_mr = receiver.memory.register(64)
    sqp = sender.create_qp(Transport.UD)
    rqp = receiver.create_qp(Transport.UD)
    rqp.post_recv(RecvWR(wr_id=0, mr_key=r_mr.key, offset=0, length=64))

    def waiter():
        yield rqp.recv_cq.wait()
        return (sim.now, len(rqp.recv_cq))

    def sender_proc():
        yield sim.timeout(1e-3)
        sqp.post_send(SendWR(wr_id=1, verb="send", mr_key=s_mr.key, length=64,
                             dst=1, dst_qpn=rqp.qpn))

    sim.spawn(sender_proc())
    t, n = sim.run_process(waiter())
    assert t > 1e-3 and n == 1


def test_recv_queue_capacity_enforced():
    sim, fabric = make_fabric()
    nic = fabric.nic(0)
    mr = nic.memory.register(64)
    qp = nic.create_qp(Transport.UD, max_recv_wr=2)
    qp.post_recv(RecvWR(wr_id=0, mr_key=mr.key, offset=0, length=4))
    qp.post_recv(RecvWR(wr_id=1, mr_key=mr.key, offset=4, length=4))
    with pytest.raises(RuntimeError, match="full"):
        qp.post_recv(RecvWR(wr_id=2, mr_key=mr.key, offset=8, length=4))
