"""Unit tests for Store / Resource / Barrier and RandomStreams."""

import numpy as np
import pytest

from repro.sim import Barrier, RandomStreams, Resource, Simulator, Store


# --------------------------------------------------------------------- Store


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)

    def producer():
        yield store.put("a")
        yield store.put("b")

    def consumer():
        x = yield store.get()
        y = yield store.get()
        return [x, y]

    sim.spawn(producer())
    assert sim.run_process(consumer()) == ["a", "b"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (sim.now, item)

    def producer():
        yield sim.timeout(3.0)
        yield store.put("late")

    sim.spawn(producer())
    assert sim.run_process(consumer()) == (3.0, "late")


def test_store_fifo_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(i):
        item = yield store.get()
        got.append((i, item))

    for i in range(3):
        sim.spawn(consumer(i))

    def producer():
        yield sim.timeout(1.0)
        for item in "abc":
            yield store.put(item)

    sim.spawn(producer())
    sim.run()
    assert got == [(0, "a"), (1, "b"), (2, "c")]


def test_store_capacity_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put(1)
        log.append(("put1", sim.now))
        yield store.put(2)
        log.append(("put2", sim.now))

    def consumer():
        yield sim.timeout(5.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert ("put1", 0.0) in log
    assert ("put2", 5.0) in log  # blocked until consumer freed a slot


def test_store_try_put_try_get():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_put(1)
    assert store.try_put(2)
    assert not store.try_put(3)
    assert store.try_get() == (True, 1)
    assert store.try_get() == (True, 2)
    assert store.try_get() == (False, None)


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    store.try_put("x")
    assert len(store) == 1


# ------------------------------------------------------------------ Resource


def test_resource_serializes_exclusive_access():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def worker(i):
        yield res.acquire()
        start = sim.now
        yield sim.timeout(1.0)
        res.release()
        spans.append((i, start, sim.now))

    for i in range(3):
        sim.spawn(worker(i))
    sim.run()
    assert spans == [(0, 0.0, 1.0), (1, 1.0, 2.0), (2, 2.0, 3.0)]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def worker(i):
        yield res.acquire()
        yield sim.timeout(1.0)
        res.release()
        done.append((i, sim.now))

    for i in range(4):
        sim.spawn(worker(i))
    sim.run()
    assert done == [(0, 1.0), (1, 1.0), (2, 2.0), (3, 2.0)]


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_available():
    sim = Simulator()
    res = Resource(sim, capacity=3)
    res.acquire()
    assert res.available == 2


# ------------------------------------------------------------------- Barrier


def test_barrier_releases_all_at_once():
    sim = Simulator()
    bar = Barrier(sim, parties=3)
    released = []

    def party(i, arrive_at):
        yield sim.timeout(arrive_at)
        yield bar.wait()
        released.append((i, sim.now))

    sim.spawn(party(0, 1.0))
    sim.spawn(party(1, 2.0))
    sim.spawn(party(2, 5.0))
    sim.run()
    assert released == [(0, 5.0), (1, 5.0), (2, 5.0)]


def test_barrier_is_reusable_with_generations():
    sim = Simulator()
    bar = Barrier(sim, parties=2)
    gens = []

    def party():
        g0 = yield bar.wait()
        g1 = yield bar.wait()
        gens.append((g0, g1))

    sim.spawn(party())
    sim.spawn(party())
    sim.run()
    assert gens == [(0, 1), (0, 1)]


def test_barrier_single_party_is_noop():
    sim = Simulator()
    bar = Barrier(sim, parties=1)

    def party():
        yield bar.wait()
        return sim.now

    assert sim.run_process(party()) == 0.0


def test_barrier_invalid_parties():
    sim = Simulator()
    with pytest.raises(ValueError):
        Barrier(sim, parties=0)


# ------------------------------------------------------------- RandomStreams


def test_random_streams_reproducible_across_instances():
    a = RandomStreams(seed=7).stream("link:0").random(5)
    b = RandomStreams(seed=7).stream("link:0").random(5)
    assert np.array_equal(a, b)


def test_random_streams_independent_by_name():
    rs = RandomStreams(seed=7)
    a = rs.stream("link:0").random(5)
    b = rs.stream("link:1").random(5)
    assert not np.array_equal(a, b)


def test_random_streams_cached():
    rs = RandomStreams(seed=7)
    assert rs.stream("x") is rs.stream("x")


def test_random_streams_seed_changes_draws():
    a = RandomStreams(seed=1).stream("s").random(5)
    b = RandomStreams(seed=2).stream("s").random(5)
    assert not np.array_equal(a, b)


def test_random_streams_fork_independent():
    rs = RandomStreams(seed=3)
    f1 = rs.fork(1).stream("s").random(4)
    f2 = rs.fork(2).stream("s").random(4)
    assert not np.array_equal(f1, f2)
