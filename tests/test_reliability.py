"""Unit tests for the adaptive reliability machinery (core/reliability.py)."""

import math

import pytest

from repro.core.reliability import CutoffEstimator, ReliabilityError, backoff_delay
from repro.sim import RandomStreams


def make_est(**kw):
    defaults = dict(alpha0=200e-6, alpha_min=20e-6, alpha_max=2e-3)
    defaults.update(kw)
    return CutoffEstimator(**defaults)


def test_initial_slack_is_static_alpha():
    est = make_est()
    assert est.slack() == pytest.approx(200e-6)


def test_clean_samples_tighten_slack():
    est = make_est()
    for _ in range(20):
        est.observe(10e-6)
    # SRTT → 10 µs, RTTVAR → 0, so slack converges near SRTT (clamped).
    assert est.slack() < 60e-6
    assert est.slack() >= est.alpha_min


def test_slack_clamped_to_bounds():
    est = make_est()
    for _ in range(50):
        est.observe(0.0)
    assert est.slack() == est.alpha_min
    for _ in range(50):
        est.on_recovery()
    # Backoff is capped at 64x, and the result never exceeds alpha_max.
    assert est.slack() == pytest.approx(min(64 * est.alpha_min, est.alpha_max))
    assert est.slack() <= est.alpha_max


def test_recovery_backs_off_and_clean_ops_decay():
    est = make_est()
    est.observe(10e-6)
    tight = est.slack()
    est.on_recovery()
    assert est.slack() == pytest.approx(min(tight * 2, est.alpha_max))
    est.observe(10e-6)  # decays the backoff again
    assert est.slack() < tight * 2


def test_variance_widens_slack():
    steady, noisy = make_est(), make_est()
    for _ in range(30):
        steady.observe(50e-6)
    for i in range(30):
        noisy.observe(50e-6 if i % 2 else 150e-6)
    assert noisy.slack() > steady.slack()


def test_trace_records_samples_and_recoveries():
    est = make_est()
    est.observe(5e-6)
    est.on_recovery()
    assert len(est.trace) == 2
    assert est.trace[0][0] == pytest.approx(5e-6)
    assert math.isnan(est.trace[1][0])
    assert est.samples == 1 and est.spurious == 1


def test_estimator_validates_bounds():
    with pytest.raises(ValueError):
        CutoffEstimator(alpha0=1e-4, alpha_min=0.0, alpha_max=1e-3)
    with pytest.raises(ValueError):
        CutoffEstimator(alpha0=1e-4, alpha_min=2e-3, alpha_max=1e-3)


def test_negative_samples_clamped():
    est = make_est()
    est.observe(-5.0)  # delivery faster than the N/B ideal: clamp to 0
    assert est.srtt == 0.0
    assert est.slack() == est.alpha_min


def test_backoff_delay_growth_and_cap():
    assert backoff_delay(0, 100e-6, 2.0, 1e-3, 0.0) == pytest.approx(100e-6)
    assert backoff_delay(2, 100e-6, 2.0, 1e-3, 0.0) == pytest.approx(400e-6)
    assert backoff_delay(10, 100e-6, 2.0, 1e-3, 0.0) == pytest.approx(1e-3)


def test_backoff_delay_jitter_deterministic():
    a = backoff_delay(1, 100e-6, 2.0, 1e-3, 0.5, RandomStreams(seed=3).stream("x"))
    b = backoff_delay(1, 100e-6, 2.0, 1e-3, 0.5, RandomStreams(seed=3).stream("x"))
    assert a == b
    assert 200e-6 <= a <= 300e-6  # jitter adds at most 50%


def test_reliability_error_renders_diagnostics():
    err = ReliabilityError(
        "recovery deadline exceeded",
        rank=3, coll_id=7, kind="broadcast", missing_chunks=12, n_chunks=64,
        elapsed=0.25, deadline=0.25, counters={"fetch_ack_timeouts": 4},
    )
    text = str(err)
    assert "rank=3" in text and "missing=12/64" in text
    assert "fetch_ack_timeouts=4" in text
    assert isinstance(err, RuntimeError)
    assert err.counters["fetch_ack_timeouts"] == 4
