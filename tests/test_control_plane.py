"""Tests for the RC control plane: messaging, inboxes, barrier."""

import pytest

from repro.core.control import (
    MSG_ACTIVATE,
    MSG_BARRIER,
    MSG_FETCH_ACK,
    MSG_FETCH_REQ,
    MSG_FINAL,
)
from repro.core.communicator import Communicator
from repro.net import Fabric, Topology
from repro.sim import Simulator
from repro.units import gbit_per_s


def make_planes(n=4):
    sim = Simulator()
    fabric = Fabric(sim, Topology.star(n), link_bandwidth=gbit_per_s(56))
    comm = Communicator(fabric)  # engines own the control planes
    return sim, comm, [e.ctrl for e in comm.engines]


def test_send_and_recv_typed_message():
    sim, comm, planes = make_planes()
    got = {}

    def receiver():
        msg = yield planes[1].recv(MSG_ACTIVATE, key=7, src=0)
        got["msg"] = msg

    sim.spawn(receiver())
    planes[0].send(1, MSG_ACTIVATE, key=7, args=(42,))
    sim.run()
    assert got["msg"].src == 0
    assert got["msg"].key == 7
    assert got["msg"].args[0] == 42


def test_messages_buffered_until_received():
    sim, comm, planes = make_planes()
    planes[0].send(1, MSG_FINAL, key=3)
    sim.run()  # delivered before anyone is listening

    def late():
        msg = yield planes[1].recv(MSG_FINAL, key=3, src=0)
        return msg.mtype

    assert sim.run_process(late()) == MSG_FINAL


def test_keyed_inboxes_do_not_cross():
    sim, comm, planes = make_planes()
    order = []

    def receiver():
        msg_b = yield planes[1].recv(MSG_ACTIVATE, key=2, src=0)
        order.append(("b", msg_b.key))
        msg_a = yield planes[1].recv(MSG_ACTIVATE, key=1, src=0)
        order.append(("a", msg_a.key))

    sim.spawn(receiver())
    planes[0].send(1, MSG_ACTIVATE, key=1)
    planes[0].send(1, MSG_ACTIVATE, key=2)
    sim.run()
    assert order == [("b", 2), ("a", 1)]


def test_any_source_fetch_requests_are_acked():
    """The engine's fetch server listens on a single any-source inbox and
    acknowledges requests from any rank for any collective id."""
    sim, comm, planes = make_planes()
    acks = []

    def requester(rank, cid):
        planes[rank].send(2, MSG_FETCH_REQ, key=cid)
        msg = yield planes[rank].recv(MSG_FETCH_ACK, key=cid, src=2)
        acks.append((rank, msg.key))

    sim.spawn(requester(0, 9))
    sim.spawn(requester(3, 5))
    sim.run()
    assert (0, 9) in acks and (3, 5) in acks


def test_recv_requires_src_for_directed_types():
    sim, comm, planes = make_planes()
    with pytest.raises(ValueError, match="source"):
        planes[0].recv(MSG_FINAL, key=0)


def test_message_arg_limit():
    sim, comm, planes = make_planes()
    with pytest.raises(ValueError, match="args"):
        planes[0].send(1, MSG_ACTIVATE, key=0, args=(1, 2, 3, 4))


def test_barrier_synchronizes_all_ranks():
    sim, comm, planes = make_planes(4)
    releases = []

    def party(rank, delay):
        yield sim.timeout(delay)
        yield from planes[rank].barrier(tag=1, ranks=[0, 1, 2, 3])
        releases.append((rank, sim.now))

    for r, d in enumerate((0.0, 1e-5, 3e-5, 2e-5)):
        sim.spawn(party(r, d))
    sim.run()
    assert len(releases) == 4
    times = [t for _, t in releases]
    # Nobody leaves before the last arrival at 30 µs.
    assert min(times) >= 3e-5
    # Dissemination: everyone leaves within ~2 rounds of RTTs of each other.
    assert max(times) - min(times) < 2e-5


def test_barrier_reusable_with_distinct_tags():
    sim, comm, planes = make_planes(3)
    done = []

    def party(rank):
        yield from planes[rank].barrier(tag=10, ranks=[0, 1, 2])
        yield from planes[rank].barrier(tag=11, ranks=[0, 1, 2])
        done.append(rank)

    for r in range(3):
        sim.spawn(party(r))
    sim.run()
    assert sorted(done) == [0, 1, 2]


def test_barrier_subset_of_ranks():
    sim, comm, planes = make_planes(4)
    done = []

    def party(rank):
        yield from planes[rank].barrier(tag=2, ranks=[0, 2])
        done.append(rank)

    sim.spawn(party(0))
    sim.spawn(party(2))
    sim.run()
    assert sorted(done) == [0, 2]


def test_barrier_requires_explicit_ranks():
    """Deriving the rank list from the lazily created control QPs deadlocks
    when peers disagree on the membership — it must be passed explicitly."""
    sim, comm, planes = make_planes(2)
    with pytest.raises(ValueError, match="explicit"):
        next(planes[0].barrier(tag=0))


def test_ctrl_pairs_created_lazily():
    sim, comm, planes = make_planes(4)
    assert len(planes[0].qps) == 0
    planes[0].send(3, MSG_BARRIER, key=0)
    assert 3 in planes[0].qps
    assert 0 in planes[3].qps  # remote side adopted too


def test_message_counters():
    sim, comm, planes = make_planes(2)
    planes[0].send(1, MSG_FETCH_ACK, key=0)
    sim.run()
    assert planes[0].messages_sent == 1
    assert planes[1].messages_received == 1
