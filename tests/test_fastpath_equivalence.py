"""Proof of equivalence for the simulator fast paths.

Two independent fast paths are proven here, each against its own slow
path:

* the **packet-train** fast path (wire side, PR 2): every scenario is
  executed with channel coalescing on and off, and the two runs must
  agree *exactly* — completion times, per-rank phase timestamps,
  per-channel byte/packet/drop counters, switch forwarding counters, the
  reliability summary, and the received payloads;
* the **receiver-batch** fast path (host side, DESIGN.md §6c): the same
  battery toggles ``recv_batching`` instead, across clean / lossy /
  reordered / straggler conditions × {broadcast, allgather} × {ud, uc}.

Any float divergence, however small, is a bug in the fast path (see
DESIGN.md §"Simulator fast path" and §6c).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
import pytest

from repro.core.communicator import CollectiveConfig, Communicator
from repro.net.fabric import Fabric
from repro.net.faults import GilbertElliott, StragglerSpec
from repro.net.link import FaultSpec
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import KiB, gbit_per_s

P = 16
NBYTES = 64 * KiB


def _make_comm(seed: int, coalescing: bool, fault_factory=None,
               transport: str = "ud", recv_batching: bool = True,
               straggler=None) -> Communicator:
    sim = Simulator()
    fabric = Fabric(
        sim,
        Topology.leaf_spine(P, 2, 2),
        link_bandwidth=gbit_per_s(56),
        streams=RandomStreams(seed),
        coalescing=coalescing,
    )
    if fault_factory is not None:
        fabric.set_fault_all(fault_factory)
    if straggler is not None:
        host, spec = straggler
        fabric.set_straggler(host, spec)
    return Communicator(
        fabric, config=CollectiveConfig(chunk_size=4096, transport=transport,
                                        recv_batching=recv_batching)
    )


def _channel_counters(fabric: Fabric) -> Dict[Tuple[str, str], Tuple[int, ...]]:
    return {
        key: (ch.bytes_sent, ch.payload_bytes_sent, ch.packets_sent,
              ch.bytes_dropped, ch.packets_dropped)
        for key, ch in fabric.channels.items()
    }


def _switch_counters(fabric: Fabric) -> Dict[str, Tuple[int, int]]:
    return {
        name: (sw.packets_forwarded, sw.packets_dropped_no_route)
        for name, sw in fabric.switches.items()
    }


def _run(kind: str, seed: int, coalescing: bool, fault_factory=None,
         transport: str = "ud", recv_batching: bool = True,
         straggler=None):
    comm = _make_comm(seed, coalescing, fault_factory, transport,
                      recv_batching, straggler)
    rng = np.random.default_rng(seed)
    if kind == "broadcast":
        data = rng.integers(0, 256, NBYTES, dtype=np.uint8)
        res = comm.broadcast(0, data)
        assert res.verify_broadcast(data)
    else:
        # 4 chunks per rank so senders have multi-packet runs to coalesce.
        data = [rng.integers(0, 256, 16 * KiB, dtype=np.uint8)
                for _ in range(P)]
        res = comm.allgather(data)
        assert res.verify_allgather(data)
    return comm, res


def _assert_equivalent(kind: str, seed: int, fault_factory=None,
                       transport: str = "ud",
                       expect_trains: bool = True) -> None:
    comm_fast, res_fast = _run(kind, seed, True, fault_factory, transport)
    comm_slow, res_slow = _run(kind, seed, False, fault_factory, transport)

    # Virtual-time agreement must be exact, not approximate.
    assert res_fast.t_begin == res_slow.t_begin
    assert res_fast.t_end == res_slow.t_end
    assert res_fast.duration == res_slow.duration
    for rf, rs in zip(res_fast.ranks, res_slow.ranks):
        assert rf.phases == rs.phases, f"rank {rf.rank} phase timestamps differ"

    # Byte-exact telemetry on every port and switch.
    assert _channel_counters(comm_fast.fabric) == _channel_counters(comm_slow.fabric)
    assert _switch_counters(comm_fast.fabric) == _switch_counters(comm_slow.fabric)
    assert res_fast.traffic == res_slow.traffic

    # Slow-path bookkeeping (recoveries, fetch rounds, retries) agrees too.
    assert res_fast.reliability_summary() == res_slow.reliability_summary()

    # Payloads byte-identical.
    for bf, bs in zip(res_fast.buffers, res_slow.buffers):
        assert np.array_equal(bf, bs)

    if expect_trains:
        assert res_fast.engine["trains"] > 0, "fast path never engaged"
    else:
        assert res_fast.engine["trains"] == 0, (
            "fast path must stay off while a live fault schedule exists"
        )
    assert res_slow.engine["trains"] == 0


def _lossy(s: str, d: str) -> FaultSpec:
    return FaultSpec(gilbert_elliott=GilbertElliott(
        p_good_bad=0.02, p_bad_good=0.3, drop_good=0.002, drop_bad=0.15))


def _reordered(s: str, d: str) -> FaultSpec:
    return FaultSpec(reorder_jitter=3e-6)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_clean_equivalence(kind: str, seed: int) -> None:
    _assert_equivalent(kind, seed)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_lossy_equivalence(kind: str, seed: int) -> None:
    # Live drop machinery forces the per-packet slow path on every channel,
    # so both runs literally execute the same code — the assertion proves
    # the fast-path *gate* (not just the arithmetic) is correct.
    _assert_equivalent(kind, seed, fault_factory=_lossy, expect_trains=False)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_reordered_equivalence(kind: str, seed: int) -> None:
    _assert_equivalent(kind, seed, fault_factory=_reordered,
                       expect_trains=False)


@pytest.mark.parametrize("seed", [0, 1])
def test_uc_transport_equivalence(seed: int) -> None:
    _assert_equivalent("broadcast", seed, transport="uc")


def test_past_fault_windows_allow_coalescing() -> None:
    """A fault spec whose windows are entirely in the past is inert: the
    fast path re-engages and still matches per-packet results exactly."""
    def stale(s: str, d: str) -> FaultSpec:
        return FaultSpec(flap_windows=[(0.0, 1e-9)])

    # The collective starts at t=0, so the window is still live at first
    # transmissions; channels coalesce only after it expires.  Results
    # must agree regardless of the mid-run switchover.
    _assert_equivalent("broadcast", 0, fault_factory=stale,
                       expect_trains=True)


# ---------------------------------------------------------------------------
# Receiver-batch fast path (DESIGN.md §6c): batched vs per-CQE datapath.
# Coalescing stays ON for both runs — the NIC only delivers CQE trains for
# wire-coalesced trains, so this axis is orthogonal to the one above.
# ---------------------------------------------------------------------------


def _assert_batching_equivalent(kind: str, seed: int, fault_factory=None,
                                transport: str = "ud", straggler=None,
                                expect_batches: bool = True) -> None:
    comm_b, res_b = _run(kind, seed, True, fault_factory, transport,
                         recv_batching=True, straggler=straggler)
    comm_s, res_s = _run(kind, seed, True, fault_factory, transport,
                         recv_batching=False, straggler=straggler)

    assert res_b.t_begin == res_s.t_begin
    assert res_b.t_end == res_s.t_end
    assert res_b.duration == res_s.duration
    for rb, rs in zip(res_b.ranks, res_s.ranks):
        assert rb.phases == rs.phases, f"rank {rb.rank} phase timestamps differ"

    assert _channel_counters(comm_b.fabric) == _channel_counters(comm_s.fabric)
    assert _switch_counters(comm_b.fabric) == _switch_counters(comm_s.fabric)
    assert res_b.traffic == res_s.traffic
    assert res_b.reliability_summary() == res_s.reliability_summary()
    assert comm_b.fabric.total_rnr_drops() == comm_s.fabric.total_rnr_drops()

    for bf, bs in zip(res_b.buffers, res_s.buffers):
        assert np.array_equal(bf, bs)

    if expect_batches:
        assert res_b.engine["cqe_batches"] > 0, "batch fast path never engaged"
        assert res_b.engine["batched_cqes"] >= 2 * res_b.engine["cqe_batches"]
    assert res_s.engine["cqe_batches"] == 0
    assert res_s.engine["batched_cqes"] == 0


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_recv_batching_clean_equivalence(kind: str, seed: int) -> None:
    _assert_batching_equivalent(kind, seed)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_recv_batching_lossy_equivalence(kind: str, seed: int) -> None:
    # Live faults keep channels per-packet, so no CQE trains ever form;
    # the assertion proves the batched configuration degrades to exactly
    # the per-CQE datapath when the wire gives it nothing to batch.
    _assert_batching_equivalent(kind, seed, fault_factory=_lossy,
                                expect_batches=False)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_recv_batching_reordered_equivalence(kind: str, seed: int) -> None:
    _assert_batching_equivalent(kind, seed, fault_factory=_reordered,
                                expect_batches=False)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_recv_batching_straggler_equivalence(kind: str, seed: int) -> None:
    # Host 3 pays +300 ns per CQE poll inside the window; the worker gate
    # (fabric.straggler_inert) must force its batches back to per-CQE
    # while other hosts keep batching, with bit-identical results.
    spec = StragglerSpec(windows=[(0.0, 1e-3)], extra_poll_delay=300e-9)
    _assert_batching_equivalent(kind, seed, straggler=(3, spec))


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_recv_batching_uc_equivalence(kind: str, seed: int) -> None:
    _assert_batching_equivalent(kind, seed, transport="uc")


def test_recv_batching_straggler_window_suppresses_batches() -> None:
    """With every host straggling over the whole run, the eligibility gate
    must keep the batch counter at zero — and results still match."""
    spec = StragglerSpec(windows=[(0.0, 1.0)], extra_poll_delay=250e-9)

    def run(batching: bool):
        comm = _make_comm(0, True, recv_batching=batching)
        for h in range(P):
            comm.fabric.set_straggler(h, spec)
        data = np.arange(NBYTES, dtype=np.uint8) % 251
        res = comm.broadcast(0, data)
        assert res.verify_broadcast(data)
        return res

    res_b, res_s = run(True), run(False)
    assert res_b.engine["cqe_batches"] == 0
    assert res_b.duration == res_s.duration


def test_coalescing_toggle_mid_simulation() -> None:
    """set_coalescing() flips every channel and is honored immediately."""
    comm = _make_comm(0, True)
    comm.fabric.set_coalescing(False)
    assert all(not ch.coalescing for ch in comm.fabric.channels.values())
    data = np.arange(NBYTES, dtype=np.uint8) % 251
    res = comm.broadcast(0, data)
    assert res.engine["trains"] == 0
    comm.fabric.set_coalescing(True)
    res2 = comm.broadcast(0, data)
    assert res2.engine["trains"] > 0
