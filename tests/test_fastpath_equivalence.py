"""Proof of equivalence for the packet-train fast path.

Every scenario here is executed twice — once with channel coalescing
enabled (the default fast path) and once forced to per-packet mode — and
the two runs must agree *exactly*: completion times, per-rank phase
timestamps, per-channel byte/packet/drop counters, switch forwarding
counters, the reliability summary, and the received payloads.  Any float
divergence, however small, is a bug in the fast path (see DESIGN.md
§"Simulator fast path").
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
import pytest

from repro.core.communicator import CollectiveConfig, Communicator
from repro.net.fabric import Fabric
from repro.net.faults import GilbertElliott
from repro.net.link import FaultSpec
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import KiB, gbit_per_s

P = 16
NBYTES = 64 * KiB


def _make_comm(seed: int, coalescing: bool, fault_factory=None,
               transport: str = "ud") -> Communicator:
    sim = Simulator()
    fabric = Fabric(
        sim,
        Topology.leaf_spine(P, 2, 2),
        link_bandwidth=gbit_per_s(56),
        streams=RandomStreams(seed),
        coalescing=coalescing,
    )
    if fault_factory is not None:
        fabric.set_fault_all(fault_factory)
    return Communicator(
        fabric, config=CollectiveConfig(chunk_size=4096, transport=transport)
    )


def _channel_counters(fabric: Fabric) -> Dict[Tuple[str, str], Tuple[int, ...]]:
    return {
        key: (ch.bytes_sent, ch.payload_bytes_sent, ch.packets_sent,
              ch.bytes_dropped, ch.packets_dropped)
        for key, ch in fabric.channels.items()
    }


def _switch_counters(fabric: Fabric) -> Dict[str, Tuple[int, int]]:
    return {
        name: (sw.packets_forwarded, sw.packets_dropped_no_route)
        for name, sw in fabric.switches.items()
    }


def _run(kind: str, seed: int, coalescing: bool, fault_factory=None,
         transport: str = "ud"):
    comm = _make_comm(seed, coalescing, fault_factory, transport)
    rng = np.random.default_rng(seed)
    if kind == "broadcast":
        data = rng.integers(0, 256, NBYTES, dtype=np.uint8)
        res = comm.broadcast(0, data)
        assert res.verify_broadcast(data)
    else:
        # 4 chunks per rank so senders have multi-packet runs to coalesce.
        data = [rng.integers(0, 256, 16 * KiB, dtype=np.uint8)
                for _ in range(P)]
        res = comm.allgather(data)
        assert res.verify_allgather(data)
    return comm, res


def _assert_equivalent(kind: str, seed: int, fault_factory=None,
                       transport: str = "ud",
                       expect_trains: bool = True) -> None:
    comm_fast, res_fast = _run(kind, seed, True, fault_factory, transport)
    comm_slow, res_slow = _run(kind, seed, False, fault_factory, transport)

    # Virtual-time agreement must be exact, not approximate.
    assert res_fast.t_begin == res_slow.t_begin
    assert res_fast.t_end == res_slow.t_end
    assert res_fast.duration == res_slow.duration
    for rf, rs in zip(res_fast.ranks, res_slow.ranks):
        assert rf.phases == rs.phases, f"rank {rf.rank} phase timestamps differ"

    # Byte-exact telemetry on every port and switch.
    assert _channel_counters(comm_fast.fabric) == _channel_counters(comm_slow.fabric)
    assert _switch_counters(comm_fast.fabric) == _switch_counters(comm_slow.fabric)
    assert res_fast.traffic == res_slow.traffic

    # Slow-path bookkeeping (recoveries, fetch rounds, retries) agrees too.
    assert res_fast.reliability_summary() == res_slow.reliability_summary()

    # Payloads byte-identical.
    for bf, bs in zip(res_fast.buffers, res_slow.buffers):
        assert np.array_equal(bf, bs)

    if expect_trains:
        assert res_fast.engine["trains"] > 0, "fast path never engaged"
    else:
        assert res_fast.engine["trains"] == 0, (
            "fast path must stay off while a live fault schedule exists"
        )
    assert res_slow.engine["trains"] == 0


def _lossy(s: str, d: str) -> FaultSpec:
    return FaultSpec(gilbert_elliott=GilbertElliott(
        p_good_bad=0.02, p_bad_good=0.3, drop_good=0.002, drop_bad=0.15))


def _reordered(s: str, d: str) -> FaultSpec:
    return FaultSpec(reorder_jitter=3e-6)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_clean_equivalence(kind: str, seed: int) -> None:
    _assert_equivalent(kind, seed)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_lossy_equivalence(kind: str, seed: int) -> None:
    # Live drop machinery forces the per-packet slow path on every channel,
    # so both runs literally execute the same code — the assertion proves
    # the fast-path *gate* (not just the arithmetic) is correct.
    _assert_equivalent(kind, seed, fault_factory=_lossy, expect_trains=False)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_reordered_equivalence(kind: str, seed: int) -> None:
    _assert_equivalent(kind, seed, fault_factory=_reordered,
                       expect_trains=False)


@pytest.mark.parametrize("seed", [0, 1])
def test_uc_transport_equivalence(seed: int) -> None:
    _assert_equivalent("broadcast", seed, transport="uc")


def test_past_fault_windows_allow_coalescing() -> None:
    """A fault spec whose windows are entirely in the past is inert: the
    fast path re-engages and still matches per-packet results exactly."""
    def stale(s: str, d: str) -> FaultSpec:
        return FaultSpec(flap_windows=[(0.0, 1e-9)])

    # The collective starts at t=0, so the window is still live at first
    # transmissions; channels coalesce only after it expires.  Results
    # must agree regardless of the mid-run switchover.
    _assert_equivalent("broadcast", 0, fault_factory=stale,
                       expect_trains=True)


def test_coalescing_toggle_mid_simulation() -> None:
    """set_coalescing() flips every channel and is honored immediately."""
    comm = _make_comm(0, True)
    comm.fabric.set_coalescing(False)
    assert all(not ch.coalescing for ch in comm.fabric.channels.values())
    data = np.arange(NBYTES, dtype=np.uint8) % 251
    res = comm.broadcast(0, data)
    assert res.engine["trains"] == 0
    comm.fabric.set_coalescing(True)
    res2 = comm.broadcast(0, data)
    assert res2.engine["trains"] > 0
