"""Proof of equivalence for the simulator fast paths.

Two independent fast paths are proven here, each against its own slow
path:

* the **packet-train** fast path (wire side, PR 2): every scenario is
  executed with channel coalescing on and off, and the two runs must
  agree *exactly* — completion times, per-rank phase timestamps,
  per-channel byte/packet/drop counters, switch forwarding counters, the
  reliability summary, and the received payloads;
* the **receiver-batch** fast path (host side, DESIGN.md §6c): the same
  battery toggles ``recv_batching`` instead, across clean / lossy /
  reordered / straggler conditions × {broadcast, allgather} × {ud, uc}.

Any float divergence, however small, is a bug in the fast path (see
DESIGN.md §"Simulator fast path" and §6c).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
import pytest

from repro.core.communicator import CollectiveConfig, Communicator
from repro.net.fabric import Fabric
from repro.net.faults import GilbertElliott, StragglerSpec
from repro.net.link import FaultSpec
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import KiB, gbit_per_s

P = 16
NBYTES = 64 * KiB


def _make_comm(seed: int, coalescing: bool, fault_factory=None,
               transport: str = "ud", recv_batching: bool = True,
               straggler=None) -> Communicator:
    sim = Simulator()
    fabric = Fabric(
        sim,
        Topology.leaf_spine(P, 2, 2),
        link_bandwidth=gbit_per_s(56),
        streams=RandomStreams(seed),
        coalescing=coalescing,
    )
    if fault_factory is not None:
        fabric.set_fault_all(fault_factory)
    if straggler is not None:
        host, spec = straggler
        fabric.set_straggler(host, spec)
    return Communicator(
        fabric, config=CollectiveConfig(chunk_size=4096, transport=transport,
                                        recv_batching=recv_batching)
    )


def _channel_counters(fabric: Fabric) -> Dict[Tuple[str, str], Tuple[int, ...]]:
    return {
        key: (ch.bytes_sent, ch.payload_bytes_sent, ch.packets_sent,
              ch.bytes_dropped, ch.packets_dropped)
        for key, ch in fabric.channels.items()
    }


def _switch_counters(fabric: Fabric) -> Dict[str, Tuple[int, int]]:
    return {
        name: (sw.packets_forwarded, sw.packets_dropped_no_route)
        for name, sw in fabric.switches.items()
    }


def _run(kind: str, seed: int, coalescing: bool, fault_factory=None,
         transport: str = "ud", recv_batching: bool = True,
         straggler=None):
    comm = _make_comm(seed, coalescing, fault_factory, transport,
                      recv_batching, straggler)
    rng = np.random.default_rng(seed)
    if kind == "broadcast":
        data = rng.integers(0, 256, NBYTES, dtype=np.uint8)
        res = comm.broadcast(0, data)
        assert res.verify_broadcast(data)
    else:
        # 4 chunks per rank so senders have multi-packet runs to coalesce.
        data = [rng.integers(0, 256, 16 * KiB, dtype=np.uint8)
                for _ in range(P)]
        res = comm.allgather(data)
        assert res.verify_allgather(data)
    return comm, res


def _assert_equivalent(kind: str, seed: int, fault_factory=None,
                       transport: str = "ud",
                       expect_trains: bool = True) -> None:
    comm_fast, res_fast = _run(kind, seed, True, fault_factory, transport)
    comm_slow, res_slow = _run(kind, seed, False, fault_factory, transport)

    # Virtual-time agreement must be exact, not approximate.
    assert res_fast.t_begin == res_slow.t_begin
    assert res_fast.t_end == res_slow.t_end
    assert res_fast.duration == res_slow.duration
    for rf, rs in zip(res_fast.ranks, res_slow.ranks):
        assert rf.phases == rs.phases, f"rank {rf.rank} phase timestamps differ"

    # Byte-exact telemetry on every port and switch.
    assert _channel_counters(comm_fast.fabric) == _channel_counters(comm_slow.fabric)
    assert _switch_counters(comm_fast.fabric) == _switch_counters(comm_slow.fabric)
    assert res_fast.traffic == res_slow.traffic

    # Slow-path bookkeeping (recoveries, fetch rounds, retries) agrees too.
    assert res_fast.reliability_summary() == res_slow.reliability_summary()

    # Payloads byte-identical.
    for bf, bs in zip(res_fast.buffers, res_slow.buffers):
        assert np.array_equal(bf, bs)

    if expect_trains:
        assert res_fast.engine["trains"] > 0, "fast path never engaged"
    else:
        assert res_fast.engine["trains"] == 0, (
            "fast path must stay off while a live fault schedule exists"
        )
    assert res_slow.engine["trains"] == 0


def _lossy(s: str, d: str) -> FaultSpec:
    return FaultSpec(gilbert_elliott=GilbertElliott(
        p_good_bad=0.02, p_bad_good=0.3, drop_good=0.002, drop_bad=0.15))


def _reordered(s: str, d: str) -> FaultSpec:
    return FaultSpec(reorder_jitter=3e-6)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_clean_equivalence(kind: str, seed: int) -> None:
    _assert_equivalent(kind, seed)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_lossy_equivalence(kind: str, seed: int) -> None:
    # Drop machinery no longer forces the per-packet slow path: the train
    # walk evaluates each packet's drop decision inline, in the identical
    # RNG consumption order, and delivers the survivors as one train.
    # Lossy channels must therefore still coalesce — and stay bit-exact.
    _assert_equivalent(kind, seed, fault_factory=_lossy, expect_trains=True)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_reordered_equivalence(kind: str, seed: int) -> None:
    _assert_equivalent(kind, seed, fault_factory=_reordered,
                       expect_trains=False)


@pytest.mark.parametrize("seed", [0, 1])
def test_uc_transport_equivalence(seed: int) -> None:
    _assert_equivalent("broadcast", seed, transport="uc")


def test_past_fault_windows_allow_coalescing() -> None:
    """A fault spec whose windows are entirely in the past is inert: the
    fast path re-engages and still matches per-packet results exactly."""
    def stale(s: str, d: str) -> FaultSpec:
        return FaultSpec(flap_windows=[(0.0, 1e-9)])

    # The collective starts at t=0, so the window is still live at first
    # transmissions; channels coalesce only after it expires.  Results
    # must agree regardless of the mid-run switchover.
    _assert_equivalent("broadcast", 0, fault_factory=stale,
                       expect_trains=True)


# ---------------------------------------------------------------------------
# Receiver-batch fast path (DESIGN.md §6c): batched vs per-CQE datapath.
# Coalescing stays ON for both runs — the NIC only delivers CQE trains for
# wire-coalesced trains, so this axis is orthogonal to the one above.
# ---------------------------------------------------------------------------


def _assert_batching_equivalent(kind: str, seed: int, fault_factory=None,
                                transport: str = "ud", straggler=None,
                                expect_batches: bool = True) -> None:
    comm_b, res_b = _run(kind, seed, True, fault_factory, transport,
                         recv_batching=True, straggler=straggler)
    comm_s, res_s = _run(kind, seed, True, fault_factory, transport,
                         recv_batching=False, straggler=straggler)

    assert res_b.t_begin == res_s.t_begin
    assert res_b.t_end == res_s.t_end
    assert res_b.duration == res_s.duration
    for rb, rs in zip(res_b.ranks, res_s.ranks):
        assert rb.phases == rs.phases, f"rank {rb.rank} phase timestamps differ"

    assert _channel_counters(comm_b.fabric) == _channel_counters(comm_s.fabric)
    assert _switch_counters(comm_b.fabric) == _switch_counters(comm_s.fabric)
    assert res_b.traffic == res_s.traffic
    assert res_b.reliability_summary() == res_s.reliability_summary()
    assert comm_b.fabric.total_rnr_drops() == comm_s.fabric.total_rnr_drops()

    for bf, bs in zip(res_b.buffers, res_s.buffers):
        assert np.array_equal(bf, bs)

    if expect_batches:
        assert res_b.engine["cqe_batches"] > 0, "batch fast path never engaged"
        assert res_b.engine["batched_cqes"] >= 2 * res_b.engine["cqe_batches"]
    assert res_s.engine["cqe_batches"] == 0
    assert res_s.engine["batched_cqes"] == 0


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_recv_batching_clean_equivalence(kind: str, seed: int) -> None:
    _assert_batching_equivalent(kind, seed)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_recv_batching_lossy_equivalence(kind: str, seed: int) -> None:
    # Live faults keep channels per-packet, so no CQE trains ever form;
    # the assertion proves the batched configuration degrades to exactly
    # the per-CQE datapath when the wire gives it nothing to batch.
    _assert_batching_equivalent(kind, seed, fault_factory=_lossy,
                                expect_batches=False)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_recv_batching_reordered_equivalence(kind: str, seed: int) -> None:
    _assert_batching_equivalent(kind, seed, fault_factory=_reordered,
                                expect_batches=False)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_recv_batching_straggler_equivalence(kind: str, seed: int) -> None:
    # Host 3 pays +300 ns per CQE poll inside the window; the worker gate
    # (fabric.straggler_inert) must force its batches back to per-CQE
    # while other hosts keep batching, with bit-identical results.
    spec = StragglerSpec(windows=[(0.0, 1e-3)], extra_poll_delay=300e-9)
    _assert_batching_equivalent(kind, seed, straggler=(3, spec))


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_recv_batching_uc_equivalence(kind: str, seed: int) -> None:
    _assert_batching_equivalent(kind, seed, transport="uc")


def test_recv_batching_straggler_window_suppresses_batches() -> None:
    """With every host straggling over the whole run, the eligibility gate
    must keep the batch counter at zero — and results still match."""
    spec = StragglerSpec(windows=[(0.0, 1.0)], extra_poll_delay=250e-9)

    def run(batching: bool):
        comm = _make_comm(0, True, recv_batching=batching)
        for h in range(P):
            comm.fabric.set_straggler(h, spec)
        data = np.arange(NBYTES, dtype=np.uint8) % 251
        res = comm.broadcast(0, data)
        assert res.verify_broadcast(data)
        return res

    res_b, res_s = run(True), run(False)
    assert res_b.engine["cqe_batches"] == 0
    assert res_b.duration == res_s.duration


# ---------------------------------------------------------------------------
# Flow-level fast-forward (DESIGN.md §"Hybrid flow-level fast-forward"):
# ff=exact must be bit-identical in virtual time and result digests to the
# packet-level engine; ff=banded stays within its declared ≤0.5% tolerance.
# Event counts necessarily DROP under fast-forward (that is the point), so
# this axis never compares sim_events; the wire/host counters it mirrors
# (bytes, packets, trains, switch forwards, traffic) must still agree.
# Receiver-batch telemetry (cqe_batches/batched_cqes) is also excluded: a
# folded phase never wakes the workers that would have batched.
# ---------------------------------------------------------------------------

BANDED_TOL = 5e-3  # matches repro.sim.fastforward.BANDED_TOLERANCE


def _run_ff(kind: str, seed: int, ff: str, fault_factory=None,
            transport: str = "ud", straggler=None):
    sim = Simulator()
    fabric = Fabric(
        sim,
        Topology.leaf_spine(P, 2, 2),
        link_bandwidth=gbit_per_s(56),
        streams=RandomStreams(seed),
    )
    if fault_factory is not None:
        fabric.set_fault_all(fault_factory)
    if straggler is not None:
        host, spec = straggler
        fabric.set_straggler(host, spec)
    comm = Communicator(
        fabric, config=CollectiveConfig(chunk_size=4096, transport=transport,
                                        fast_forward=ff)
    )
    rng = np.random.default_rng(seed)
    if kind == "broadcast":
        data = rng.integers(0, 256, NBYTES, dtype=np.uint8)
        res = comm.broadcast(0, data)
        assert res.verify_broadcast(data)
    else:
        data = [rng.integers(0, 256, 16 * KiB, dtype=np.uint8)
                for _ in range(P)]
        res = comm.allgather(data)
        assert res.verify_allgather(data)
    return comm, res


def _assert_ff_exact(kind: str, seed: int, fault_factory=None,
                     transport: str = "ud", straggler=None,
                     expect_folds: bool = True) -> None:
    comm_ff, res_ff = _run_ff(kind, seed, "exact", fault_factory,
                              transport, straggler)
    comm_off, res_off = _run_ff(kind, seed, "off", fault_factory,
                                transport, straggler)

    assert res_ff.t_begin == res_off.t_begin
    assert res_ff.t_end == res_off.t_end
    assert res_ff.duration == res_off.duration
    for rf, ro in zip(res_ff.ranks, res_off.ranks):
        assert rf.phases == ro.phases, f"rank {rf.rank} phase timestamps differ"
        assert rf.counters == ro.counters

    assert _channel_counters(comm_ff.fabric) == _channel_counters(comm_off.fabric)
    assert _switch_counters(comm_ff.fabric) == _switch_counters(comm_off.fabric)
    assert res_ff.traffic == res_off.traffic
    assert res_ff.reliability_summary() == res_off.reliability_summary()
    # The fold mirrors the train counters the packet engine would produce.
    assert res_ff.engine["trains"] == res_off.engine["trains"]
    assert res_ff.engine["train_packets"] == res_off.engine["train_packets"]

    for bf, bo in zip(res_ff.buffers, res_off.buffers):
        assert np.array_equal(bf, bo)

    assert res_off.engine["ff_phases"] == 0
    if expect_folds:
        assert res_ff.engine["ff_phases"] > 0, "fast-forward never engaged"
        assert res_ff.engine["sim_events"] < res_off.engine["sim_events"]
    else:
        assert res_ff.engine["ff_phases"] == 0, (
            "fast-forward must stay off while a fault schedule is live"
        )


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("transport", ["ud", "uc"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_ff_exact_clean_equivalence(kind: str, transport: str, seed: int) -> None:
    _assert_ff_exact(kind, seed, transport=transport)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_ff_exact_lossy_equivalence(kind: str, seed: int) -> None:
    # Armed drop machinery fails every channel's fault_inert() probe, so
    # the eligibility gate must veto all folds — and the run must then be
    # trivially identical to the packet engine.
    _assert_ff_exact(kind, seed, fault_factory=_lossy, expect_folds=False)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("seed", [0, 1])
def test_ff_exact_straggler_equivalence(kind: str, seed: int) -> None:
    # A straggler window overlapping any receiver's folded interval vetoes
    # the fold (fabric.straggler_inert); with host 3 slow for the whole
    # run, no phase may fold and results stay bit-identical.
    spec = StragglerSpec(windows=[(0.0, 1e-3)], extra_poll_delay=300e-9)
    _assert_ff_exact(kind, seed, straggler=(3, spec), expect_folds=False)


@pytest.mark.parametrize("kind", ["broadcast", "allgather"])
@pytest.mark.parametrize("transport", ["ud", "uc"])
@pytest.mark.parametrize("seed", [0, 1])
def test_ff_banded_within_tolerance(kind: str, transport: str, seed: int) -> None:
    _, res_b = _run_ff(kind, seed, "banded", transport=transport)
    _, res_off = _run_ff(kind, seed, "off", transport=transport)
    assert res_b.engine["ff_phases"] > 0, "banded fast-forward never engaged"
    assert res_b.t_end == pytest.approx(res_off.t_end, rel=BANDED_TOL)
    assert res_b.duration == pytest.approx(res_off.duration, rel=BANDED_TOL)
    # Byte/packet accounting is exact even in banded mode; only instants
    # carry the tolerance.
    assert res_b.traffic == res_off.traffic
    for bb, bo in zip(res_b.buffers, res_off.buffers):
        assert np.array_equal(bb, bo)


def test_ff_poisons_collective_after_fallback() -> None:
    """Within ONE collective, any packet-level fallback must veto every
    later fold of the same collective: a fallback phase moves the real
    receive-worker cursors, which the analytic fold can no longer track.
    A flap window covering the first phases forces exactly that."""
    def stale(s: str, d: str) -> FaultSpec:
        return FaultSpec(flap_windows=[(0.0, 2e-5)])

    comm_ff, res_ff = _run_ff("allgather", 0, "exact", fault_factory=stale)
    assert res_ff.engine["ff_phases"] == 0
    assert res_ff.engine["ff_aborts"] > 0
    # ... and the run is still bit-identical to the packet engine.
    _assert_ff_exact("allgather", 0, fault_factory=stale, expect_folds=False)


def test_ff_mixed_mode_across_collectives() -> None:
    """A fault window that expires between collectives poisons nothing
    permanently: the first broadcast (window live) runs packet-level, the
    second folds — and both match the packet engine bit-for-bit."""
    def stale(s: str, d: str) -> FaultSpec:
        return FaultSpec(flap_windows=[(0.0, 2e-5)])

    def run(ff: str):
        comm = _make_comm(0, True, fault_factory=stale)
        comm.config.fast_forward = ff
        comm.ff = None
        if ff != "off":
            from repro.sim.fastforward import FlowFastForward
            comm.ff = FlowFastForward(comm)
        rng = np.random.default_rng(0)
        data1 = rng.integers(0, 256, NBYTES, dtype=np.uint8)
        data2 = rng.integers(0, 256, NBYTES, dtype=np.uint8)
        res1 = comm.broadcast(0, data1)
        res2 = comm.broadcast(0, data2)
        assert res1.verify_broadcast(data1)
        assert res2.verify_broadcast(data2)
        return res1, res2

    (ff1, ff2) = run("exact")
    (off1, off2) = run("off")
    assert ff1.engine["ff_phases"] == 0, "window was live: must not fold"
    assert ff2.engine["ff_phases"] > 0, "window expired: second op must fold"
    for rf, ro in [(ff1, off1), (ff2, off2)]:
        assert rf.t_begin == ro.t_begin
        assert rf.t_end == ro.t_end
        for a, b in zip(rf.ranks, ro.ranks):
            assert a.phases == b.phases


def test_ff_off_is_default() -> None:
    cfg = CollectiveConfig()
    assert cfg.fast_forward == "off"
    with pytest.raises(ValueError):
        sim = Simulator()
        fabric = Fabric(sim, Topology.star(4), streams=RandomStreams(0))
        CollectiveConfig(fast_forward="bogus").validate(fabric)


# ---------------------------------------------------------------------------
# Unified-submission kinds (allreduce = INC RS → multicast AG composed in
# one submission; alltoall = RC rotation schedule).  Both fast paths —
# packet-train coalescing and receiver batching — must stay bit-identical
# on these kinds across the same clean/lossy/straggler × {ud, uc} axes as
# the engine kinds above.  (The transports govern the allgather phase of
# allreduce; the RC substrate of alltoall and the reduce-scatter phase is
# transport-invariant by construction, which the axis also proves.)
# ---------------------------------------------------------------------------


def _run_submit_kind(kind: str, seed: int, coalescing: bool,
                     fault_factory=None, transport: str = "ud",
                     recv_batching: bool = True, straggler=None):
    comm = _make_comm(seed, coalescing, fault_factory, transport,
                      recv_batching, straggler)
    rng = np.random.default_rng(seed)
    if kind == "allreduce":
        data = [rng.normal(size=P * 1024).astype(np.float32)
                for _ in range(P)]
        res = comm.allreduce(data, algorithm="inc")
        assert res.verify_allreduce(data)
    else:
        data = [rng.integers(0, 256, 16 * KiB, dtype=np.uint8)
                for _ in range(P)]
        res = comm.alltoall(data)
        assert res.verify_alltoall(data)
    return comm, res


_SUBMIT_CONDITIONS = {
    "clean": {},
    "lossy": {"fault_factory": _lossy},
    "straggler": {"straggler": (3, StragglerSpec(
        windows=[(0.0, 1e-3)], extra_poll_delay=300e-9))},
}


@pytest.mark.parametrize("kind", ["allreduce", "alltoall"])
@pytest.mark.parametrize("condition", sorted(_SUBMIT_CONDITIONS))
@pytest.mark.parametrize("transport", ["ud", "uc"])
@pytest.mark.parametrize("seed", [0, 1])
def test_submit_kind_fastpath_equivalence(kind: str, condition: str,
                                          transport: str, seed: int) -> None:
    kw = _SUBMIT_CONDITIONS[condition]
    comm_ref, res_ref = _run_submit_kind(kind, seed, True,
                                         transport=transport, **kw)
    variants = [
        _run_submit_kind(kind, seed, False, transport=transport, **kw),
        _run_submit_kind(kind, seed, True, transport=transport,
                         recv_batching=False, **kw),
    ]
    ref_phases = [(ph.name, ph.t_begin, ph.t_end) for ph in res_ref.phases]
    for comm_v, res_v in variants:
        assert res_v.t_begin == res_ref.t_begin
        assert res_v.t_end == res_ref.t_end
        assert res_v.duration == res_ref.duration
        assert [(ph.name, ph.t_begin, ph.t_end)
                for ph in res_v.phases] == ref_phases
        assert _channel_counters(comm_v.fabric) == _channel_counters(comm_ref.fabric)
        assert _switch_counters(comm_v.fabric) == _switch_counters(comm_ref.fabric)
        for bv, br in zip(res_v.buffers, res_ref.buffers):
            assert np.array_equal(bv, br)


def test_coalescing_toggle_mid_simulation() -> None:
    """set_coalescing() flips every channel and is honored immediately."""
    comm = _make_comm(0, True)
    comm.fabric.set_coalescing(False)
    assert all(not ch.coalescing for ch in comm.fabric.channels.values())
    data = np.arange(NBYTES, dtype=np.uint8) % 251
    res = comm.broadcast(0, data)
    assert res.engine["trains"] == 0
    comm.fabric.set_coalescing(True)
    res2 = comm.broadcast(0, data)
    assert res2.engine["trains"] > 0
