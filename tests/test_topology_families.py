"""End-to-end collectives across the topology zoo (ISSUE acceptance).

Each family — torus, dragonfly, multi-rail — runs broadcast and
allgather clean and under loss; crash repair (host death AND switch
death) completes or degrades correctly on torus and multi-rail,
including whole-plane failover; and a 2-rail fabric beats its
single-rail base by the acceptance factor when striping is on.
"""

import numpy as np
import pytest

from repro.core import CollectiveConfig, Communicator, FailurePolicy
from repro.net import CrashSpec, Fabric, Topology
from repro.net.link import FaultSpec
from repro.sim import RandomStreams, Simulator
from repro.units import gbit_per_s, kib, mib


def make_comm(topo, config=None, seed=0, faults=None):
    sim = Simulator()
    fabric = Fabric(sim, topo, link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(seed=seed))
    if faults is not None:
        fabric.set_fault_all(faults)
    return Communicator(fabric, config=config)


def rank_data(rank, nbytes):
    rng = np.random.default_rng(3000 + rank)
    return rng.integers(0, 256, size=nbytes, dtype=np.uint8)


FAMILY_TOPOS = [
    ("torus", lambda: Topology.torus([4, 4])),
    ("dragonfly", lambda: Topology.dragonfly(4, 2, hosts_per_router=2)),
    ("multi_rail", lambda: Topology.multi_rail(
        Topology.leaf_spine(16, n_leaf=4, n_spine=2), 2)),
]
IDS = [n for n, _ in FAMILY_TOPOS]


# ------------------------------------------------------------ clean collectives


@pytest.mark.parametrize("name,make", FAMILY_TOPOS, ids=IDS)
def test_broadcast_clean(name, make):
    comm = make_comm(make(), config=CollectiveConfig(n_subgroups=2))
    data = rank_data(0, kib(128))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    assert result.duration > 0


@pytest.mark.parametrize("name,make", FAMILY_TOPOS, ids=IDS)
def test_allgather_clean(name, make):
    topo = make()
    comm = make_comm(topo, config=CollectiveConfig(n_subgroups=2))
    send = [rank_data(r, kib(16)) for r in range(topo.n_hosts)]
    result = comm.allgather(send)
    assert result.verify_allgather(send)


# ------------------------------------------------------------ lossy collectives


@pytest.mark.parametrize("name,make", FAMILY_TOPOS, ids=IDS)
def test_broadcast_lossy(name, make):
    comm = make_comm(make(), seed=7,
                     faults=lambda s, d: FaultSpec(drop_prob=2e-3))
    data = rank_data(0, kib(128))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)


@pytest.mark.parametrize("name,make", FAMILY_TOPOS, ids=IDS)
def test_allgather_lossy(name, make):
    topo = make()
    comm = make_comm(topo, seed=8,
                     faults=lambda s, d: FaultSpec(drop_prob=2e-3))
    send = [rank_data(r, kib(16)) for r in range(topo.n_hosts)]
    result = comm.allgather(send)
    assert result.verify_allgather(send)


# ------------------------------------------------------- crash repair: torus


def test_torus_host_death_degrades():
    cfg = CollectiveConfig(failure_policy=FailurePolicy.DEGRADE)
    comm = make_comm(Topology.torus([4, 4]), config=cfg, seed=201)
    comm.fabric.schedule_crash(CrashSpec(at=10e-6, host=5))
    data = rank_data(0, kib(128))
    result = comm.broadcast(0, data)
    assert result.degraded and result.dead_ranks == [5]
    assert result.verify_broadcast(data)


def test_torus_router_death_completes_or_degrades():
    """A torus router dies mid-allgather: its attached host goes dark and
    the planner re-plans a BFS tree over the survivors."""
    cfg = CollectiveConfig(failure_policy="degrade")
    comm = make_comm(Topology.torus([4, 4]), config=cfg, seed=202)
    victim = comm.fabric.topology.attach_point(3)
    comm.fabric.schedule_crash(CrashSpec(at=10e-6, switch=victim))
    send = [rank_data(r, kib(16)) for r in range(16)]
    result = comm.allgather(send)
    assert result.dead_ranks == [3]  # the host behind the dead router
    assert result.verify_allgather_degraded(send)


# -------------------------------------------------- crash repair: multi-rail


def _two_rail(n=16):
    return Topology.multi_rail(Topology.leaf_spine(n, n_leaf=4, n_spine=2), 2)


def test_multi_rail_host_death_degrades():
    cfg = CollectiveConfig(failure_policy="degrade", n_subgroups=2)
    comm = make_comm(_two_rail(), config=cfg, seed=203)
    comm.fabric.schedule_crash(CrashSpec(at=10e-6, host=9))
    data = rank_data(0, kib(128))
    result = comm.broadcast(0, data)
    assert result.degraded and result.dead_ranks == [9]
    assert result.verify_broadcast(data)


def test_multi_rail_spine_death_completes_clean():
    """One spine of plane 0 dies; the second spine carries the plane and
    no rank is lost."""
    cfg = CollectiveConfig(failure_policy="degrade", n_subgroups=2)
    comm = make_comm(_two_rail(), config=cfg, seed=204)
    comm.fabric.schedule_crash(CrashSpec(at=10e-6, switch="spine000.r0"))
    send = [rank_data(r, kib(16)) for r in range(16)]
    result = comm.allgather(send)
    assert result.dead_ranks == []
    assert result.verify_allgather(send)


@pytest.mark.parametrize("collective", ["broadcast", "allgather"])
def test_multi_rail_whole_plane_death_fails_over(collective):
    """Every switch of plane 0 dies at once — data trees AND the control
    plane must migrate to plane 1, and the collective still completes
    with zero dead ranks (planes only meet at the hosts)."""
    cfg = CollectiveConfig(failure_policy="degrade", n_subgroups=2)
    comm = make_comm(_two_rail(), config=cfg, seed=205)
    for sw in comm.fabric.topology.rail_switches(0):
        comm.fabric.schedule_crash(CrashSpec(at=10e-6, switch=sw))
    if collective == "broadcast":
        data = rank_data(0, kib(128))
        result = comm.broadcast(0, data)
        assert result.verify_broadcast(data)
    else:
        send = [rank_data(r, kib(16)) for r in range(16)]
        result = comm.allgather(send)
        assert result.verify_allgather(send)
    assert result.dead_ranks == []


# ------------------------------------------------------ rail-striping speedup


def test_two_rail_broadcast_beats_single_rail():
    """Acceptance: a 2-rail 64-host fabric with striped subgroups moves a
    1 MiB broadcast >= 1.5x faster than its single-rail base."""
    base = lambda: Topology.leaf_spine(64, n_leaf=8, n_spine=4)
    cfg = lambda: CollectiveConfig(n_subgroups=4)
    data = rank_data(0, mib(1))

    single = make_comm(base(), config=cfg()).broadcast(0, data)
    assert single.verify_broadcast(data)
    railed = make_comm(Topology.multi_rail(base(), 2),
                       config=cfg()).broadcast(0, data)
    assert railed.verify_broadcast(data)
    speedup = single.duration / railed.duration
    assert speedup >= 1.5, f"2-rail speedup {speedup:.2f} < 1.5"
