"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    Timeout,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_call_later_advances_clock():
    sim = Simulator()
    fired = []
    sim.call_later(2.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now == 2.0


def test_call_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.call_at(3.5, fired.append, 1)
    sim.call_at(1.5, fired.append, 2)
    sim.run()
    assert fired == [2, 1]


def test_call_at_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(SimulationError):
        sim.schedule(ev, delay=-1.0)


def test_same_instant_fifo_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.call_later(1.0, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_run_until_horizon():
    sim = Simulator()
    fired = []
    sim.call_later(1.0, fired.append, "a")
    sim.call_later(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_step_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek():
    sim = Simulator()
    assert sim.peek() is None
    sim.call_later(4.0, lambda: None)
    assert sim.peek() == 4.0


def test_simple_process_timeouts():
    sim = Simulator()
    log = []

    def actor(name, period, reps):
        for _ in range(reps):
            yield Timeout(sim, period)
            log.append((sim.now, name))

    sim.spawn(actor("a", 1.0, 2))
    sim.spawn(actor("b", 1.5, 2))
    sim.run()
    assert log == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b")]


def test_process_return_value():
    sim = Simulator()

    def compute():
        yield sim.timeout(1.0)
        return 42

    result = sim.run_process(compute())
    assert result == 42


def test_process_join():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "done"

    def parent():
        proc = sim.spawn(child())
        value = yield proc
        return (sim.now, value)

    assert sim.run_process(parent()) == (2.0, "done")


def test_process_exception_propagates():
    sim = Simulator()

    def boom():
        yield sim.timeout(1.0)
        raise ValueError("kapow")

    with pytest.raises(ValueError, match="kapow"):
        sim.run_process(boom())


def test_event_value_passing():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        value = yield ev
        return value

    def trigger():
        yield sim.timeout(3.0)
        ev.succeed("payload")

    sim.spawn(trigger())
    assert sim.run_process(waiter()) == "payload"


def test_event_failure_thrown_into_process():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught {exc}"

    sim.call_later(1.0, lambda: ev.fail(RuntimeError("bad")))
    assert sim.run_process(waiter()) == "caught bad"


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_yield_already_fired_event_resumes():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")

    def late_waiter():
        yield sim.timeout(5.0)
        value = yield ev  # fired long ago
        return (sim.now, value)

    assert sim.run_process(late_waiter()) == (5.0, "early")


def test_any_of_first_wins():
    sim = Simulator()

    def racer():
        winner = yield AnyOf(sim, [sim.timeout(3.0), Timeout(sim, 1.0, value="fast")])
        return winner.value

    assert sim.run_process(racer()) == "fast"


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def gather():
        values = yield AllOf(
            sim, [Timeout(sim, 2.0, value="slow"), Timeout(sim, 1.0, value="fast")]
        )
        return (sim.now, values)

    assert sim.run_process(gather()) == (2.0, ["slow", "fast"])


def test_all_of_empty_resolves_immediately():
    sim = Simulator()

    def gather():
        values = yield AllOf(sim, [])
        return values

    assert sim.run_process(gather()) == []


def test_any_of_failure_propagates():
    sim = Simulator()
    ev = sim.event()

    def racer():
        try:
            yield AnyOf(sim, [ev, sim.timeout(10.0)])
        except KeyError:
            return "failed"

    sim.call_later(1.0, lambda: ev.fail(KeyError("k")))
    assert sim.run_process(racer()) == "failed"


def test_interrupt():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            return ("interrupted", sim.now, intr.cause)

    proc = sim.spawn(sleeper())

    def interrupter():
        yield sim.timeout(2.0)
        proc.interrupt(cause="wake up")

    sim.spawn(interrupter())
    sim.run()
    assert proc.value == ("interrupted", 2.0, "wake up")


def test_stale_wakeup_after_interrupt_is_discarded():
    sim = Simulator()
    hits = []

    def sleeper():
        try:
            yield sim.timeout(1.0)
        except Interrupt:
            pass
        yield sim.timeout(5.0)
        hits.append(sim.now)

    proc = sim.spawn(sleeper())
    sim.call_later(0.5, proc.interrupt)
    sim.run()
    # Interrupted at 0.5, then slept 5.0 more; the original 1.0 timeout must
    # not have woken the process a second time.
    assert hits == [5.5]


def test_kill_process():
    sim = Simulator()
    progress = []

    def worker():
        while True:
            yield sim.timeout(1.0)
            progress.append(sim.now)

    proc = sim.spawn(worker())
    sim.call_later(3.5, proc.kill)
    sim.run()
    assert progress == [1.0, 2.0, 3.0]
    assert proc.triggered and proc.ok


def test_yield_non_event_is_a_typeerror():
    sim = Simulator()

    def bad():
        yield 42

    with pytest.raises(TypeError, match="may only yield Event"):
        sim.run_process(bad())


def test_spawn_order_is_execution_order():
    sim = Simulator()
    order = []

    def actor(i):
        order.append(i)
        yield sim.timeout(0.0)

    for i in range(5):
        sim.spawn(actor(i))
    sim.run()
    assert order[:5] == [0, 1, 2, 3, 4]


def test_run_process_unfinished_raises():
    sim = Simulator()
    ev = sim.event()  # never triggered

    def stuck():
        yield ev

    with pytest.raises(SimulationError, match="before process"):
        sim.run_process(stuck())


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(4):
        sim.call_later(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 4


# ------------------------------------------------- fast-path regressions


def test_call_at_event_not_triggered_until_fire():
    """Regression: call_at used to mark its event triggered/ok at
    *schedule* time, so waiting on the returned handle resumed a process
    immediately instead of at the scheduled instant."""
    sim = Simulator()
    fired = []
    handle = sim.call_at(2.0, fired.append, "x")
    assert not handle.triggered
    assert not handle.ok
    sim.run(until=1.0)
    assert not handle.triggered and fired == []
    sim.run()
    assert handle.triggered and handle.ok
    assert fired == ["x"]
    assert sim.now == 2.0


def test_process_can_wait_on_call_at_handle():
    sim = Simulator()
    log = []

    def proc():
        yield sim.call_at(3.0, log.append, "cb")
        log.append(("resumed", sim.now))

    sim.spawn(proc())
    sim.run()
    assert log == ["cb", ("resumed", 3.0)]


def test_post_later_fire_and_forget():
    sim = Simulator()
    order = []
    sim.post_later(2.0, order.append, "b")
    sim.post_later(1.0, order.append, "a")
    sim.post_at(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.events_processed == 3


def test_drain_many_events():
    """Regression: drain() re-filtered the full event list on every engine
    step (quadratic); it now subscribes completion callbacks and must
    handle thousands of events quickly and exactly."""
    sim = Simulator()
    events = []
    for i in range(10_000):
        ev = Event(sim)
        sim.call_later(float(i % 97) * 1e-6, ev.succeed)
        events.append(ev)
    sim.drain(events)
    assert all(ev.triggered and ev.ok for ev in events)
    assert sim.now == 96e-6


def test_drain_mixed_already_fired():
    sim = Simulator()
    done = Event(sim)
    done.succeed()
    pending = Event(sim)
    sim.call_later(1.0, pending.succeed)
    sim.drain([done, pending])
    assert pending.triggered


def test_drain_raises_on_unhandled_failure():
    sim = Simulator()
    ev = Event(sim)
    sim.call_later(1.0, ev.fail, RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.drain([ev])


def test_drain_reports_stall():
    sim = Simulator()
    never = Event(sim)
    with pytest.raises(SimulationError, match="drained"):
        sim.drain([never])
