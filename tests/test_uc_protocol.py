"""UC-multicast protocol variant (§V-B): direct placement, no staging.

The paper prototypes a second receive datapath over the hypothetical
UC-multicast extension: arbitrary-length RDMA writes land directly in the
user buffer (symmetric rkey), the staging ring becomes redundant, and
CQEs arrive per *chunk* rather than per MTU packet.
"""

import numpy as np
import pytest

from repro.core.communicator import CollectiveConfig, Communicator
from repro.net import Fabric, Topology
from repro.net.link import FaultSpec
from repro.sim import RandomStreams, Simulator
from repro.units import KiB, gbit_per_s


def uc_comm(n=4, topo=None, seed=0, **cfg):
    sim = Simulator()
    fabric = Fabric(sim, topo or Topology.star(n), link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(seed))
    config = CollectiveConfig(transport="uc", **cfg)
    return Communicator(fabric, config=config)


def test_uc_broadcast_correct():
    comm = uc_comm(4, chunk_size=16 * KiB)
    data = np.random.default_rng(0).integers(0, 256, 128 * KiB, dtype=np.uint8)
    res = comm.broadcast(0, data)
    assert res.verify_broadcast(data)


def test_uc_multipacket_chunks_exceed_mtu():
    """UC chunks may span many MTU packets — the Fig 15 configuration."""
    comm = uc_comm(4, chunk_size=64 * KiB)  # 16 wire packets per chunk
    data = np.random.default_rng(1).integers(0, 256, 256 * KiB, dtype=np.uint8)
    res = comm.broadcast(0, data)
    assert res.verify_broadcast(data)
    # One CQE per chunk: 4 chunks per leaf, not 64 packets.
    assert res.counter_total("chunks_received") == 3 * 4


def test_uc_allgather_leaf_spine():
    comm = uc_comm(8, topo=Topology.leaf_spine(8, 2, 2), chunk_size=16 * KiB)
    data = [np.full(64 * KiB, r % 251, dtype=np.uint8) for r in range(8)]
    res = comm.allgather(data)
    assert res.verify_allgather(data)


def test_uc_recovers_from_dropped_segment():
    """Losing one MTU segment of a multi-packet chunk kills the whole
    chunk's CQE; the fetch layer must restore it."""
    comm = uc_comm(4, chunk_size=32 * KiB, seed=2)
    comm.fabric.set_fault("sw000", "h2", FaultSpec(drop_packet_seqs={5}))
    data = np.random.default_rng(2).integers(0, 256, 128 * KiB, dtype=np.uint8)
    res = comm.broadcast(0, data)
    assert res.verify_broadcast(data)
    assert res.counter_total("recovered_chunks") >= 1


def test_uc_recovers_from_random_drops():
    comm = uc_comm(4, chunk_size=16 * KiB, seed=9)
    comm.fabric.set_fault_all(lambda s, d: FaultSpec(drop_prob=0.03))
    data = [np.full(32 * KiB, r, dtype=np.uint8) for r in range(4)]
    res = comm.allgather(data)
    assert res.verify_allgather(data)


def test_uc_tolerates_reordering():
    comm = uc_comm(4, chunk_size=16 * KiB, seed=3)
    comm.fabric.set_fault_all(lambda s, d: FaultSpec(reorder_jitter=15e-6))
    data = np.random.default_rng(3).integers(0, 256, 256 * KiB, dtype=np.uint8)
    res = comm.broadcast(0, data)
    assert res.verify_broadcast(data)


def test_uc_with_subgroups():
    comm = uc_comm(4, chunk_size=16 * KiB, n_subgroups=2)
    data = [np.full(64 * KiB, 50 + r, dtype=np.uint8) for r in range(4)]
    res = comm.allgather(data)
    assert res.verify_allgather(data)


def test_uc_faster_than_ud_per_chunk_software():
    """Same payload, same fabric: UC spends less progress-engine time
    (no staging copies), so with an expensive cost model it finishes
    sooner — the §V-B motivation."""
    from repro.core.costmodel import HostCostModel

    data = np.random.default_rng(4).integers(0, 256, 512 * KiB, dtype=np.uint8)
    weak = HostCostModel().scaled(10.0)
    durations = {}
    for transport in ("ud", "uc"):
        sim = Simulator()
        fabric = Fabric(sim, Topology.star(4), link_bandwidth=gbit_per_s(200))
        comm = Communicator(fabric, config=CollectiveConfig(
            transport=transport, chunk_size=4096, cost=weak))
        durations[transport] = comm.broadcast(0, data).duration
    assert durations["uc"] < durations["ud"]
