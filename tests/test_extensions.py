"""Tests for extension features: protocol memory footprint (§III-D),
3-level fat-trees, multi-communicator capacity, switch unit behaviour."""

import numpy as np
import pytest

from repro import Communicator, Fabric, Simulator, Topology
from repro.models import ProtocolFootprint, communicators_fitting_llc
from repro.models.footprint import BF3_MAX_RECV_QUEUE
from repro.net.packet import Packet, PacketKind, mcast_dst
from repro.net.switch import Switch
from repro.sim import RandomStreams
from repro.units import GiB, KiB, MiB, gbit_per_s


# ------------------------------------------------------- memory footprint


def test_footprint_bitmap_is_one_bit_per_chunk():
    fp = ProtocolFootprint(recv_buffer_bytes=16 * GiB, chunk_bytes=4096)
    assert fp.n_chunks == 4 * 1024 * 1024
    assert fp.bitmap_bytes == 512 * KiB


def test_footprint_paper_16gb_example():
    """§III-D-d: 16 GB receive buffer → ~64 KiB bitmap at 4 KiB chunks...
    (the paper's 64 KiB figure corresponds to 2 GiB at 4 KiB, or 16 GB at
    32 KiB chunks; we check the arithmetic both ways)."""
    fp = ProtocolFootprint(recv_buffer_bytes=2 * GiB, chunk_bytes=4096)
    assert fp.bitmap_bytes == 64 * KiB


def test_footprint_staging_bounds():
    assert ProtocolFootprint.max_staging_bytes(4096) == 32 * MiB  # §III-D-b
    with pytest.raises(ValueError, match="receive "):
        ProtocolFootprint(recv_buffer_bytes=MiB, staging_slots=BF3_MAX_RECV_QUEUE + 1)


def test_footprint_constant_connection_count():
    """1 mcast QP per subgroup + 2 ring RC QPs, independent of P."""
    fp = ProtocolFootprint(recv_buffer_bytes=MiB, n_subgroups=4)
    assert fp.qp_count == 6


def test_footprint_llc_residency():
    fp = ProtocolFootprint(recv_buffer_bytes=2 * GiB)
    assert fp.llc_resident_bytes == fp.bitmap_bytes + 16 * KiB
    # Staging is DRAM, not LLC.
    assert fp.staging_bytes not in (fp.llc_resident_bytes,)


def test_more_than_16_communicators_fit_llc():
    """§III-D-d: with 64 KiB bitmaps and 16 KiB contexts, >16 fit."""
    assert communicators_fitting_llc() > 16


def test_communicators_fitting_validation():
    with pytest.raises(ValueError):
        communicators_fitting_llc(bitmap_bytes=0, context_bytes=0)


def test_many_communicators_run_on_one_fabric():
    """§V-C: each communicator maps to its own thread/QP set; several make
    progress concurrently on one fabric."""
    sim = Simulator()
    fabric = Fabric(sim, Topology.leaf_spine(12, 3, 2),
                    link_bandwidth=gbit_per_s(56), streams=RandomStreams(1))
    comms = [Communicator(fabric, hosts=[h, h + 4, h + 8]) for h in range(4)]
    handles = []
    datasets = []
    for i, comm in enumerate(comms):
        data = [np.full(8192, 10 * i + r, dtype=np.uint8) for r in range(3)]
        datasets.append(data)
        handles.append(comm.allgather_async(data))
    sim.drain([h.done_event for h in handles])
    for handle, data in zip(handles, datasets):
        assert handle.result().verify_allgather(data)


# --------------------------------------------------------- 3-level fat-tree


def test_fat_tree3_structure():
    topo = Topology.fat_tree3(64, n_leaf=8, n_mid=4, n_core=2, mid_group=2)
    assert topo.kind == "fat_tree3"
    assert topo.core_switches == ["core000", "core001"]
    assert len([s for s in topo.switch_names if s.startswith("leaf")]) == 8
    assert len([s for s in topo.switch_names if s.startswith("mid")]) == 4


def test_fat_tree3_cross_pod_routes_through_core():
    topo = Topology.fat_tree3(64, n_leaf=8, n_mid=4, n_core=2, mid_group=2)
    # Hosts 0 and 63 are in different pods.
    path = topo.path(0, 63)
    assert any(n.startswith("core") for n in path)
    assert path[0] == "h0" and path[-1] == "h63"


def test_fat_tree3_same_leaf_stays_local():
    topo = Topology.fat_tree3(64, n_leaf=8, n_mid=4, n_core=2, mid_group=2)
    assert topo.path(0, 1) == ["h0", "leaf000", "h1"]


def test_fat_tree3_collectives_work():
    sim = Simulator()
    fabric = Fabric(sim, Topology.fat_tree3(16, 4, 4, 2, mid_group=2),
                    link_bandwidth=gbit_per_s(56))
    comm = Communicator(fabric)
    data = [np.full(8192, r, dtype=np.uint8) for r in range(16)]
    res = comm.allgather(data)
    assert res.verify_allgather(data)


def test_fat_tree3_mcast_tree_spans_pods():
    topo = Topology.fat_tree3(32, n_leaf=4, n_mid=4, n_core=2, mid_group=2)
    tree = topo.mcast_tree(0, list(range(32)))
    n_edges = sum(len(v) for v in tree.values()) // 2
    assert n_edges == len(tree) - 1
    assert any(n.startswith("core") for n in tree)


# -------------------------------------------------------------- switch unit


class _Sink:
    def __init__(self):
        self.got = []

    def receive(self, packet, channel):
        self.got.append(packet)


def test_switch_drops_unroutable_unicast():
    sim = Simulator()
    sw = Switch(sim, "s0")
    pkt = Packet(src=0, dst=99, kind=PacketKind.UD_SEND, payload_len=10)
    sw.receive(pkt, None)
    sim.run()
    assert sw.packets_dropped_no_route == 1


def test_switch_drops_unknown_mcast_group():
    sim = Simulator()
    sw = Switch(sim, "s0")
    pkt = Packet(src=0, dst=mcast_dst(7), kind=PacketKind.UD_SEND, payload_len=10)
    sw.receive(pkt, None)
    sim.run()
    assert sw.packets_dropped_no_route == 1


def test_switch_table_install_validates_ports():
    sim = Simulator()
    sw = Switch(sim, "s0")
    with pytest.raises(ValueError, match="no port"):
        sw.install_unicast(0, "nowhere")
    with pytest.raises(ValueError, match="no ports"):
        sw.install_mcast(0, {"nowhere"})


def test_switch_forwarding_delay_applies():
    from repro.net.link import Channel

    sim = Simulator()
    sink = _Sink()
    sw = Switch(sim, "s0", forwarding_delay=5e-6)
    ch = Channel(sim, "s0", "h0", sink, bandwidth=1e12, latency=0.0)
    sw.add_port(ch)
    sw.install_unicast(0, "h0")
    pkt = Packet(src=1, dst=0, kind=PacketKind.UD_SEND, payload_len=100, header_bytes=0)
    sw.receive(pkt, None)
    sim.run()
    assert sim.now >= 5e-6
    assert len(sink.got) == 1
