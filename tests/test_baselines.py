"""Tests for the P2P baseline collectives and the INC substrate."""

import numpy as np
import pytest

from repro.core.baselines import (
    binary_tree_broadcast,
    inc_reduce_scatter,
    knomial_broadcast,
    linear_allgather,
    recursive_doubling_allgather,
    ring_allgather,
    ring_reduce_scatter,
)
from repro.core.baselines.bcast import knomial_tree
from repro.net import Fabric, Topology
from repro.sim import RandomStreams, Simulator
from repro.units import gbit_per_s, kib


def make_fabric(n=4, topo=None):
    sim = Simulator()
    return Fabric(sim, topo or Topology.star(n), link_bandwidth=gbit_per_s(56),
                  streams=RandomStreams(0))


def ag_data(p, nbytes):
    return [np.random.default_rng(r).integers(0, 256, nbytes, dtype=np.uint8)
            for r in range(p)]


def verify_ag(result, data):
    expected = np.concatenate(data)
    return all(np.array_equal(buf, expected) for buf in result.buffers)


# ---------------------------------------------------------------- allgather


def test_ring_allgather_correct():
    fabric = make_fabric(4)
    data = ag_data(4, kib(16))
    result = ring_allgather(fabric, data)
    assert verify_ag(result, data)
    assert result.duration > 0


def test_ring_allgather_leaf_spine():
    fabric = make_fabric(8, Topology.leaf_spine(8, 2, 2))
    data = ag_data(8, kib(8))
    assert verify_ag(ring_allgather(fabric, data), data)


def test_linear_allgather_correct():
    fabric = make_fabric(5)
    data = ag_data(5, kib(4))
    assert verify_ag(linear_allgather(fabric, data), data)


def test_recursive_doubling_correct():
    fabric = make_fabric(8, Topology.leaf_spine(8, 2, 2))
    data = ag_data(8, kib(4))
    assert verify_ag(recursive_doubling_allgather(fabric, data), data)


def test_recursive_doubling_rejects_non_power_of_two():
    fabric = make_fabric(6)
    with pytest.raises(ValueError, match="power-of-two"):
        recursive_doubling_allgather(fabric, ag_data(6, 1024))


def test_allgather_single_rank():
    fabric = make_fabric(2)
    data = ag_data(1, 1024)
    result = ring_allgather(fabric, data, hosts=[0])
    assert verify_ag(result, data)


def test_ring_injects_p_minus_1_buffers_per_rank():
    """Insight 1: P2P allgather must inject N(P-1) bytes per rank."""
    fabric = make_fabric(4)
    n = kib(16)
    result = ring_allgather(fabric, ag_data(4, n))
    injected = result.traffic["host_injected_bytes"]
    assert injected >= 4 * 3 * n
    assert injected < 4 * 3 * n * 1.1


# ------------------------------------------------------------------- bcast


def test_knomial_tree_structure():
    parent, children = knomial_tree(8, 2)
    assert parent[0] is None
    # Every non-root has a parent; edges = P-1.
    assert sum(1 for p in parent if p is not None) == 7
    assert sum(len(c) for c in children) == 7


def test_knomial_tree_various_radices():
    for p in (2, 3, 7, 16, 188):
        for k in (2, 3, 4, 8):
            parent, children = knomial_tree(p, k)
            # All nodes reachable from 0.
            seen = {0}
            stack = [0]
            while stack:
                node = stack.pop()
                for c in children[node]:
                    assert c not in seen
                    seen.add(c)
                    stack.append(c)
            assert len(seen) == p, (p, k)


def test_knomial_broadcast_correct():
    fabric = make_fabric(7)
    data = np.random.default_rng(0).integers(0, 256, kib(32), dtype=np.uint8)
    result = knomial_broadcast(fabric, 0, data)
    assert all(np.array_equal(b, data) for b in result.buffers)


def test_knomial_broadcast_nonzero_root():
    fabric = make_fabric(6)
    data = np.random.default_rng(0).integers(0, 256, kib(8), dtype=np.uint8)
    result = knomial_broadcast(fabric, 3, data)
    assert all(np.array_equal(b, data) for b in result.buffers)


def test_binary_tree_broadcast_correct():
    fabric = make_fabric(9, Topology.leaf_spine(9, 3, 2))
    data = np.random.default_rng(1).integers(0, 256, kib(256), dtype=np.uint8)
    result = binary_tree_broadcast(fabric, 0, data, segment_bytes=kib(32))
    assert all(np.array_equal(b, data) for b in result.buffers)


def test_binary_tree_broadcast_nonzero_root():
    fabric = make_fabric(5)
    data = np.random.default_rng(1).integers(0, 256, kib(64), dtype=np.uint8)
    result = binary_tree_broadcast(fabric, 2, data, segment_bytes=kib(16))
    assert all(np.array_equal(b, data) for b in result.buffers)


def test_pipelined_tree_beats_knomial_for_large_messages():
    data = np.random.default_rng(2).integers(0, 256, kib(512), dtype=np.uint8)
    t_tree = binary_tree_broadcast(make_fabric(8), 0, data).duration
    t_knom = knomial_broadcast(make_fabric(8), 0, data, radix=2).duration
    assert t_tree < t_knom


# ------------------------------------------------------------ reduce-scatter


def rs_data(p, elems):
    return [np.random.default_rng(100 + r).normal(size=elems).astype(np.float32)
            for r in range(p)]


def test_ring_reduce_scatter_correct():
    fabric = make_fabric(4)
    data = rs_data(4, 4096)
    result = ring_reduce_scatter(fabric, data)
    total = np.sum(data, axis=0)
    shard = 4096 // 4
    for r in range(4):
        np.testing.assert_allclose(
            result.buffers[r], total[r * shard : (r + 1) * shard], rtol=1e-4, atol=1e-4
        )


def test_ring_reduce_scatter_two_ranks():
    fabric = make_fabric(2)
    data = rs_data(2, 1024)
    result = ring_reduce_scatter(fabric, data)
    total = np.sum(data, axis=0)
    np.testing.assert_allclose(result.buffers[0], total[:512], rtol=1e-4, atol=1e-4)
    np.testing.assert_allclose(result.buffers[1], total[512:], rtol=1e-4, atol=1e-4)


def test_ring_reduce_scatter_uneven_rejected():
    fabric = make_fabric(3)
    with pytest.raises(ValueError, match="evenly"):
        ring_reduce_scatter(fabric, rs_data(3, 1000))


def test_inc_reduce_scatter_correct_star():
    fabric = make_fabric(4)
    data = rs_data(4, 4096)
    result = inc_reduce_scatter(fabric, data)
    total = np.sum(data, axis=0)
    shard = 1024
    for r in range(4):
        np.testing.assert_allclose(
            result.buffers[r], total[r * shard : (r + 1) * shard], rtol=1e-4, atol=1e-4
        )


def test_inc_reduce_scatter_leaf_spine():
    fabric = make_fabric(8, Topology.leaf_spine(8, 2, 2))
    data = rs_data(8, 8192)
    result = inc_reduce_scatter(fabric, data)
    total = np.sum(data, axis=0)
    shard = 1024
    for r in range(8):
        np.testing.assert_allclose(
            result.buffers[r], total[r * shard : (r + 1) * shard], rtol=1e-4, atol=1e-4
        )


def test_inc_reduce_scatter_back_to_back():
    fabric = make_fabric(2, Topology.back_to_back())
    data = rs_data(2, 2048)
    result = inc_reduce_scatter(fabric, data)
    total = np.sum(data, axis=0)
    np.testing.assert_allclose(result.buffers[0], total[:1024], rtol=1e-4, atol=1e-4)
    np.testing.assert_allclose(result.buffers[1], total[1024:], rtol=1e-4, atol=1e-4)


def test_inc_recv_path_is_shard_not_full_buffer():
    """Fig 3 / Insight 2: INC RS is send-path bound — each NIC receives only
    its N/P shard, while ring RS receives ~N(P-1)/P.  The send paths are
    comparable (the whole contribution goes up either way)."""
    data = rs_data(4, 65536)
    f_inc = make_fabric(4, Topology.leaf_spine(4, 2, 2))
    inc_reduce_scatter(f_inc, data)
    inc_recv = sum(n.bytes_received for n in f_inc.nics.values())
    f_ring = make_fabric(4, Topology.leaf_spine(4, 2, 2))
    ring_reduce_scatter(f_ring, data)
    ring_recv = sum(n.bytes_received for n in f_ring.nics.values())
    # Ring delivers (P-1) shards per rank vs INC's 1 shard per rank.
    assert inc_recv < ring_recv / 2


# -------------------------------------------------------------------- shape


def test_ring_ag_duration_grows_with_p():
    n = kib(32)
    d4 = ring_allgather(make_fabric(4), ag_data(4, n)).duration
    d8 = ring_allgather(make_fabric(8), ag_data(8, n)).duration
    assert d8 > d4 * 1.5  # ~(P-1) scaling
