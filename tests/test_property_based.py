"""Property-based tests (hypothesis) on core data structures & protocol.

These check *invariants*: bitmap vs a reference set model, chunk plans
partitioning buffers exactly, immediate-value round-trips, schedule
permutations, tree spanning properties, FIFO-queue conformance, routing
validity, and end-to-end collective correctness under randomized fault
injection.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Bitmap, BroadcastSequencer, ChunkPlan, ImmLayout, SubgroupPlan
from repro.core.baselines.bcast import knomial_tree
from repro.core.communicator import Communicator
from repro.net import Fabric, Topology
from repro.net.link import FaultSpec
from repro.sim import RandomStreams, Simulator, Store
from repro.units import gbit_per_s

FAST = settings(max_examples=50, deadline=None)
SLOW = settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# -------------------------------------------------------------------- Bitmap


@FAST
@given(
    n_bits=st.integers(1, 500),
    ops=st.lists(st.integers(0, 499), max_size=100),
)
def test_bitmap_matches_set_model(n_bits, ops):
    bm = Bitmap(n_bits)
    model = set()
    for i in ops:
        i %= n_bits
        newly = bm.set(i)
        assert newly == (i not in model)
        model.add(i)
    assert bm.count == len(model)
    assert bm.missing() == sorted(set(range(n_bits)) - model)
    assert bm.all_set() == (len(model) == n_bits)


@FAST
@given(
    n_bits=st.integers(1, 500),
    ranges=st.lists(
        st.tuples(st.integers(0, 499), st.integers(0, 160)), max_size=20
    ),
)
def test_bitmap_set_range_matches_set_model(n_bits, ranges):
    bm = Bitmap(n_bits)
    model = set()
    for start, count in ranges:
        start %= n_bits
        count = min(count, n_bits - start)
        newly = bm.set_range(start, count)
        added = set(range(start, start + count)) - model
        assert newly == len(added)
        model |= added
    assert bm.count == len(model)
    assert bm.missing() == sorted(set(range(n_bits)) - model)
    # Word-granular paths (partial first/last word, full middle words) must
    # agree with bit-at-a-time setting.
    reference = Bitmap(n_bits)
    for i in sorted(model):
        reference.set(i)
    assert bm.missing_runs() == reference.missing_runs()


@FAST
@given(
    n_bits=st.integers(1, 400),
    bits=st.lists(st.integers(0, 399), max_size=120),
    prefix=st.one_of(st.none(), st.integers(0, 400)),
)
def test_bitmap_missing_runs_match_pure_python_reference(n_bits, bits, prefix):
    bm = Bitmap(n_bits)
    for i in bits:
        bm.set(i % n_bits)
    if prefix is not None:
        prefix = min(prefix, n_bits)
    assert bm.missing_runs(prefix) == bm.missing_runs_ref(prefix)
    # The all-set early-out must agree with the reference as well.
    bm.set_range(0, n_bits)
    assert bm.missing_runs(prefix) == bm.missing_runs_ref(prefix) == []


@FAST
@given(n_bits=st.integers(1, 300), seed=st.integers(0, 1000))
def test_bitmap_missing_runs_reconstruct_missing(n_bits, seed):
    rng = np.random.default_rng(seed)
    bm = Bitmap(n_bits)
    for i in rng.choice(n_bits, size=min(n_bits, 50), replace=False):
        bm.set(int(i))
    reconstructed = [i for start, count in bm.missing_runs()
                     for i in range(start, start + count)]
    assert reconstructed == bm.missing()


# ----------------------------------------------------------------- ChunkPlan


@FAST
@given(buffer_len=st.integers(0, 1 << 20), chunk=st.integers(1, 1 << 16))
def test_chunk_plan_partitions_exactly(buffer_len, chunk):
    plan = ChunkPlan(buffer_len, chunk)
    offsets = []
    total = 0
    for psn, off, ln in plan:
        assert 0 < ln <= chunk
        assert off == total
        total += ln
        offsets.append(psn)
    assert total == buffer_len
    assert offsets == list(range(plan.n_chunks))


# ----------------------------------------------------------------- ImmLayout


@FAST
@given(psn_bits=st.integers(1, 31), data=st.data())
def test_imm_layout_roundtrip_property(psn_bits, data):
    layout = ImmLayout(psn_bits)
    psn = data.draw(st.integers(0, layout.max_psns - 1))
    cid = data.draw(st.integers(0, layout.max_collectives - 1))
    imm = layout.encode(psn, cid)
    assert 0 <= imm < (1 << 32)
    assert layout.decode(imm) == (psn, cid)


# ----------------------------------------------------------------- Sequencer


@FAST
@given(chains=st.integers(1, 8), chain_len=st.integers(1, 16))
def test_sequencer_schedule_is_permutation(chains, chain_len):
    p = chains * chain_len
    seq = BroadcastSequencer(p, chains)
    roots = [r for group in seq.schedule() for r in group]
    assert sorted(roots) == list(range(p))
    # Every step activates exactly M roots, one per chain.
    for step, group in enumerate(seq.schedule()):
        assert len(group) == chains
        assert len({seq.chain_of(r) for r in group}) == chains
        assert all(seq.step_of(r) == step for r in group)


@FAST
@given(chains=st.integers(1, 8), chain_len=st.integers(1, 16))
def test_sequencer_activation_links_consistent(chains, chain_len):
    p = chains * chain_len
    seq = BroadcastSequencer(p, chains)
    for r in range(p):
        succ = seq.successor(r)
        if succ is not None:
            assert seq.predecessor(succ) == r
            assert seq.chain_of(succ) == seq.chain_of(r)


# ----------------------------------------------------------------- Subgroups


@FAST
@given(n_chunks=st.integers(0, 2000), n_subgroups=st.integers(1, 16))
def test_subgroups_partition_chunks(n_chunks, n_subgroups):
    plan = SubgroupPlan(n_chunks, n_subgroups)
    seen = []
    for sg in range(n_subgroups):
        lo, hi = plan.chunk_range(sg)
        seen.extend(range(lo, hi))
        for psn in range(lo, hi):
            assert plan.subgroup_of(psn) == sg
    assert seen == list(range(n_chunks))


@FAST
@given(n_subgroups=st.integers(1, 16), n_workers=st.integers(1, 16))
def test_worker_mapping_covers_all_subgroups(n_subgroups, n_workers):
    mapping = SubgroupPlan.worker_mapping(n_subgroups, n_workers)
    flat = sorted(sg for worker in mapping for sg in worker)
    assert flat == list(range(n_subgroups))


# -------------------------------------------------------------- knomial tree


@FAST
@given(p=st.integers(1, 256), radix=st.integers(2, 8))
def test_knomial_tree_spans_all_ranks(p, radix):
    parent, children = knomial_tree(p, radix)
    assert parent[0] is None
    seen = {0}
    stack = [0]
    while stack:
        node = stack.pop()
        for c in children[node]:
            assert parent[c] == node
            assert c not in seen
            seen.add(c)
            stack.append(c)
    assert len(seen) == p


# --------------------------------------------------------------------- Store


@FAST
@given(ops=st.lists(st.one_of(st.integers(0, 100), st.none()), max_size=60))
def test_store_is_fifo(ops):
    sim = Simulator()
    store = Store(sim)
    model = []
    got = []
    for op in ops:
        if op is None:
            ok, item = store.try_get()
            if model:
                assert ok and item == model.pop(0)
            else:
                assert not ok
        else:
            store.try_put(op)
            model.append(op)
    sim.run()


# ------------------------------------------------------------------- Routing


@FAST
@given(
    n_hosts=st.integers(2, 64),
    pair=st.tuples(st.integers(0, 63), st.integers(0, 63)),
)
def test_leaf_spine_routes_are_valid_paths(n_hosts, pair):
    src, dst = pair[0] % n_hosts, pair[1] % n_hosts
    if src == dst:
        return
    topo = Topology.leaf_spine(n_hosts, n_leaf=max(2, n_hosts // 8), n_spine=2)
    path = topo.path(src, dst)
    assert path[0] == f"h{src}" and path[-1] == f"h{dst}"
    # Each consecutive pair must be an edge; no node repeats (simple path).
    for a, b in zip(path, path[1:]):
        assert b in topo.neighbors(a)
    assert len(set(path)) == len(path)
    assert len(path) - 1 <= 4  # ≤ 2 levels up + down


@FAST
@given(n_hosts=st.integers(2, 48), gid=st.integers(0, 7), seed=st.integers(0, 99))
def test_mcast_tree_spans_members(n_hosts, gid, seed):
    rng = np.random.default_rng(seed)
    size = int(rng.integers(2, n_hosts + 1))
    members = sorted(rng.choice(n_hosts, size=size, replace=False).tolist())
    topo = Topology.leaf_spine(n_hosts, n_leaf=max(2, n_hosts // 8), n_spine=2)
    tree = topo.mcast_tree(gid, members)
    # Tree invariant: edges = nodes - 1, all members included.
    n_nodes = len(tree)
    n_edges = sum(len(v) for v in tree.values()) // 2
    assert n_edges == n_nodes - 1
    for m in members:
        assert f"h{m}" in tree


# ----------------------------------------------- end-to-end under faults


@SLOW
@given(
    seed=st.integers(0, 10_000),
    drop_prob=st.floats(0.0, 0.15),
    jitter_us=st.floats(0.0, 30.0),
)
def test_broadcast_correct_under_random_faults(seed, drop_prob, jitter_us):
    sim = Simulator()
    fabric = Fabric(sim, Topology.star(4), link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(seed))
    fabric.set_fault_all(
        lambda s, d: FaultSpec(drop_prob=drop_prob, reorder_jitter=jitter_us * 1e-6)
    )
    comm = Communicator(fabric)
    data = np.random.default_rng(seed).integers(0, 256, 32 * 1024, dtype=np.uint8)
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)


@SLOW
@given(seed=st.integers(0, 10_000), drop_prob=st.floats(0.0, 0.08))
def test_allgather_correct_under_random_faults(seed, drop_prob):
    sim = Simulator()
    fabric = Fabric(sim, Topology.leaf_spine(4, 2, 2), link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(seed))
    fabric.set_fault_all(lambda s, d: FaultSpec(drop_prob=drop_prob))
    comm = Communicator(fabric)
    data = [np.random.default_rng(seed + r).integers(0, 256, 8192, dtype=np.uint8)
            for r in range(4)]
    result = comm.allgather(data)
    assert result.verify_allgather(data)


@SLOW
@given(seed=st.integers(0, 1000))
def test_simulation_is_deterministic(seed):
    """Same seed → identical completion time and traffic counters."""

    def run():
        sim = Simulator()
        fabric = Fabric(sim, Topology.star(4), link_bandwidth=gbit_per_s(56),
                        streams=RandomStreams(seed))
        fabric.set_fault_all(lambda s, d: FaultSpec(drop_prob=0.05))
        comm = Communicator(fabric)
        data = np.random.default_rng(seed).integers(0, 256, 16384, dtype=np.uint8)
        res = comm.broadcast(0, data)
        return res.duration, fabric.switch_egress_bytes(), fabric.total_drops()

    assert run() == run()
