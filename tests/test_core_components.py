"""Unit tests: chunking/imm-layout, bitmap, staging ring, sequencer,
subgroups, cost model."""

import numpy as np
import pytest

from repro.core import (
    Bitmap,
    BroadcastSequencer,
    ChunkPlan,
    HostCostModel,
    ImmLayout,
    StagingRing,
    SubgroupPlan,
)
from repro.net import Fabric, RecvWR, Topology, Transport
from repro.sim import Simulator
from repro.units import gbit_per_s


# ----------------------------------------------------------------- ImmLayout


def test_imm_layout_roundtrip():
    layout = ImmLayout(psn_bits=24)
    imm = layout.encode(psn=123456, coll_id=37)
    assert layout.decode(imm) == (123456, 37)


def test_imm_layout_bounds():
    layout = ImmLayout(psn_bits=24)
    assert layout.max_psns == 1 << 24
    assert layout.max_collectives == 256
    with pytest.raises(ValueError):
        layout.encode(1 << 24, 0)
    with pytest.raises(ValueError):
        layout.encode(0, 256)


def test_imm_layout_fits_32_bits():
    layout = ImmLayout(psn_bits=30)
    imm = layout.encode(layout.max_psns - 1, layout.max_collectives - 1)
    assert imm < (1 << 32)


def test_imm_layout_fig7_sizes():
    layout = ImmLayout(psn_bits=24)
    assert layout.max_buffer_bytes(4096) == (1 << 24) * 4096  # 64 GiB
    assert layout.bitmap_bytes() == (1 << 24) // 8  # 2 MiB


def test_imm_layout_invalid_bits():
    with pytest.raises(ValueError):
        ImmLayout(psn_bits=0)
    with pytest.raises(ValueError):
        ImmLayout(psn_bits=33)


def test_imm_decode_rejects_wide_values():
    with pytest.raises(ValueError):
        ImmLayout().decode(1 << 32)


# ----------------------------------------------------------------- ChunkPlan


def test_chunk_plan_exact_division():
    plan = ChunkPlan(16384, 4096)
    assert plan.n_chunks == 4
    assert plan.bounds(0) == (0, 4096)
    assert plan.bounds(3) == (12288, 4096)


def test_chunk_plan_tail_chunk():
    plan = ChunkPlan(10000, 4096)
    assert plan.n_chunks == 3
    assert plan.bounds(2) == (8192, 1808)


def test_chunk_plan_iteration_covers_buffer():
    plan = ChunkPlan(10000, 4096)
    total = sum(ln for _, _, ln in plan)
    assert total == 10000


def test_chunk_plan_empty():
    plan = ChunkPlan(0, 4096)
    assert plan.n_chunks == 0
    assert list(plan) == []


def test_chunk_plan_bounds_validation():
    plan = ChunkPlan(8192, 4096)
    with pytest.raises(IndexError):
        plan.bounds(2)
    with pytest.raises(ValueError):
        ChunkPlan(-1, 4096)
    with pytest.raises(ValueError):
        ChunkPlan(100, 0)


def test_chunk_of_offset():
    plan = ChunkPlan(16384, 4096)
    assert plan.chunk_of_offset(0) == 0
    assert plan.chunk_of_offset(4095) == 0
    assert plan.chunk_of_offset(4096) == 1


# -------------------------------------------------------------------- Bitmap


def test_bitmap_set_and_test():
    bm = Bitmap(100)
    assert not bm.test(5)
    assert bm.set(5)
    assert bm.test(5)
    assert not bm.set(5)  # duplicate
    assert bm.count == 1


def test_bitmap_all_set():
    bm = Bitmap(10)
    for i in range(10):
        bm.set(i)
    assert bm.all_set()
    assert bm.missing() == []


def test_bitmap_missing_and_runs():
    bm = Bitmap(16)
    for i in (0, 1, 2, 5, 9, 10, 15):
        bm.set(i)
    assert bm.missing() == [3, 4, 6, 7, 8, 11, 12, 13, 14]
    assert bm.missing_runs() == [(3, 2), (6, 3), (11, 4)]


def test_bitmap_word_boundary():
    bm = Bitmap(130)
    bm.set(63)
    bm.set(64)
    bm.set(127)
    bm.set(128)
    assert bm.count == 4
    assert bm.test(63) and bm.test(64) and bm.test(127) and bm.test(128)
    assert 65 in bm.missing()


def test_bitmap_clear_and_reset():
    bm = Bitmap(10)
    bm.set(3)
    bm.clear(3)
    assert not bm.test(3) and bm.count == 0
    bm.set(1)
    bm.reset()
    assert bm.count == 0


def test_bitmap_out_of_range():
    bm = Bitmap(8)
    with pytest.raises(IndexError):
        bm.set(8)
    with pytest.raises(IndexError):
        bm.test(-1)


def test_bitmap_memory_footprint():
    assert Bitmap(1 << 20).nbytes == (1 << 20) // 8


def test_bitmap_partial_prefix_check():
    bm = Bitmap(100)
    for i in range(50, 60):
        bm.set(i)
    assert not bm.all_set(10)  # first 10 unset despite count == 10


# --------------------------------------------------------------- StagingRing


def make_ring(n_slots=4, slot=4096):
    sim = Simulator()
    fabric = Fabric(sim, Topology.star(2), link_bandwidth=gbit_per_s(56))
    nic = fabric.nic(0)
    qp = nic.create_qp(Transport.UD, max_recv_wr=n_slots)
    return StagingRing(nic, n_slots, slot), qp


def test_staging_prime_posts_all():
    ring, qp = make_ring(4)
    assert ring.prime(qp) == 4
    assert ring.posted == 4
    assert len(qp.recv_queue) == 4


def test_staging_lifecycle():
    ring, qp = make_ring(2)
    ring.prime(qp)
    qp.recv_queue.popleft()  # hardware consumed slot 0
    view = ring.on_cqe(0)
    assert view.nbytes == 4096
    assert ring.held == 1
    ring.repost(0, qp)
    assert ring.posted == 2
    assert ring.reposts == 1


def test_staging_double_hold_rejected():
    ring, qp = make_ring(2)
    ring.prime(qp)
    qp.recv_queue.popleft()
    ring.on_cqe(0)
    with pytest.raises(RuntimeError, match="not posted"):
        ring.on_cqe(0)


def test_staging_repost_requires_held():
    ring, qp = make_ring(2)
    ring.prime(qp)
    with pytest.raises(RuntimeError, match="not held"):
        ring.repost(0, qp)


def test_staging_memory_footprint():
    ring, _ = make_ring(8, 4096)
    assert ring.nbytes == 32768


def test_staging_invalid_params():
    sim = Simulator()
    fabric = Fabric(sim, Topology.star(2))
    with pytest.raises(ValueError):
        StagingRing(fabric.nic(0), 0, 4096)


# ----------------------------------------------------------------- Sequencer


def test_sequencer_appendix_a_formula():
    """G^i = {P_i, P_{R+i}, ..., P_{(M-1)R+i}} with R = P/M."""
    seq = BroadcastSequencer(n_ranks=12, n_chains=3)
    assert seq.chain_length == 4
    assert seq.active_group(0) == [0, 4, 8]
    assert seq.active_group(3) == [3, 7, 11]


def test_sequencer_single_chain():
    seq = BroadcastSequencer(6, 1)
    assert seq.schedule() == [[0], [1], [2], [3], [4], [5]]


def test_sequencer_chain_membership():
    seq = BroadcastSequencer(8, 2)
    assert seq.chain_of(0) == 0 and seq.chain_of(3) == 0
    assert seq.chain_of(4) == 1 and seq.chain_of(7) == 1
    assert seq.step_of(5) == 1


def test_sequencer_activation_chain():
    seq = BroadcastSequencer(8, 2)
    assert seq.predecessor(0) is None and seq.predecessor(4) is None
    assert seq.predecessor(1) == 0 and seq.predecessor(7) == 6
    assert seq.successor(3) is None and seq.successor(7) is None
    assert seq.successor(0) == 1


def test_sequencer_every_rank_roots_once():
    seq = BroadcastSequencer(12, 4)
    all_roots = [r for group in seq.schedule() for r in group]
    assert sorted(all_roots) == list(range(12))


def test_sequencer_divisibility_enforced():
    with pytest.raises(ValueError, match="divisible"):
        BroadcastSequencer(10, 4)


# ---------------------------------------------------------------- Subgroups


def test_subgroup_partition_contiguous():
    plan = SubgroupPlan(n_chunks=16, n_subgroups=4)
    assert plan.chunk_range(0) == (0, 4)
    assert plan.chunk_range(3) == (12, 16)
    assert plan.subgroup_of(0) == 0
    assert plan.subgroup_of(15) == 3


def test_subgroup_uneven_split():
    plan = SubgroupPlan(n_chunks=10, n_subgroups=4)
    ranges = [plan.chunk_range(s) for s in range(4)]
    covered = [i for lo, hi in ranges for i in range(lo, hi)]
    assert covered == list(range(10))


def test_subgroup_paper_example():
    """§IV-C: 16 procs, 4 subgroups, 8 MiB buffers → 2 MiB per send QP,
    30 MiB per receive QP."""
    chunk = 4096
    n_chunks = 8 * 1024 * 1024 // chunk
    plan = SubgroupPlan(n_chunks, 4)
    per_subgroup_bytes = plan.chunks_in(0) * chunk
    assert per_subgroup_bytes == 2 * 1024 * 1024
    recv_per_qp = per_subgroup_bytes * 15  # from all 15 peers
    assert recv_per_qp == 30 * 1024 * 1024


def test_subgroup_worker_mapping():
    assert SubgroupPlan.worker_mapping(4, 4) == [[0], [1], [2], [3]]
    assert SubgroupPlan.worker_mapping(4, 2) == [[0, 2], [1, 3]]
    assert SubgroupPlan.worker_mapping(2, 4) == [[0], [1], [], []]


def test_subgroup_validation():
    with pytest.raises(ValueError):
        SubgroupPlan(4, 0)
    plan = SubgroupPlan(4, 2)
    with pytest.raises(IndexError):
        plan.subgroup_of(4)
    with pytest.raises(IndexError):
        plan.chunk_range(2)


# ---------------------------------------------------------------- CostModel


def test_cost_model_aggregates():
    cost = HostCostModel()
    assert cost.per_recv_chunk > cost.per_recv_chunk_uc  # staging copy extra
    assert cost.send_batch(32) == pytest.approx(cost.doorbell + 32 * cost.send_wqe)


def test_cost_model_recv_rate():
    cost = HostCostModel()
    assert cost.recv_rate(8192) == pytest.approx(2 * cost.recv_rate(4096))


def test_cost_model_scaled():
    cost = HostCostModel().scaled(2.0)
    assert cost.cqe_poll == pytest.approx(2 * HostCostModel().cqe_poll)
    with pytest.raises(ValueError):
        HostCostModel().scaled(0)


def test_cost_model_free():
    free = HostCostModel.free()
    assert free.per_recv_chunk == 0.0
    assert free.send_batch(100) == 0.0
