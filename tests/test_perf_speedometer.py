"""Perf-regression gate wired into pytest via the ``perf`` marker.

Two layers of protection:

* ``test_event_counts_match_baseline`` (always on) — re-runs the cheap
  speedometer scenarios and asserts their *deterministic* outputs (event
  counts, virtual time) still match the committed baseline exactly.  A
  mismatch means a semantic change to the simulator, not noise.
* ``test_speedometer_wall_clock_gate`` (``-m perf``, needs RUN_PERF=1) —
  the full calibration-normalized wall-clock check, the same gate the CI
  speedometer job runs via ``bench_speedometer.py --check``.
"""

from __future__ import annotations

import importlib.util
import json
import os
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = ROOT / "benchmarks" / "results" / "speedometer_baseline.json"


def _load_speedometer():
    spec = importlib.util.spec_from_file_location(
        "bench_speedometer", ROOT / "benchmarks" / "bench_speedometer.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_event_counts_match_baseline():
    speedo = _load_speedometer()
    with open(BASELINE) as fh:
        baseline = json.load(fh)
    # The cheap scenarios only — the fine-grained 188-node run is the CI
    # perf job's business, not tier-1's.
    for name in ("ag16", "fsdp"):
        base = baseline["scenarios"][name]
        cur = speedo.SCENARIOS[name](coalescing=True)
        assert cur["events"] == base["events"], (
            f"{name}: simulator event count drifted from the committed "
            f"baseline ({base['events']} -> {cur['events']}); if the "
            "change is intentional, regenerate speedometer_baseline.json"
        )
        assert cur["virtual_s"] == base["virtual_s"], (
            f"{name}: virtual completion time drifted from the baseline"
        )
        # The per-CQE slow path must reach the same virtual time (the
        # receiver-batch fast path is bit-equivalent by construction).
        slow = speedo.SCENARIOS[name](coalescing=True, batching=False)
        assert slow["virtual_s"] == base["virtual_s"], (
            f"{name}: per-CQE datapath diverged from the batched baseline"
        )


def test_lossy188_forms_trains():
    """Regression: loss-fault specs used to disqualify every packet run
    from train coalescing even when the evaluated window dropped nothing,
    so the lossy188 scenario ran per-packet end to end (trains == 0).
    Inert-window evaluation must keep clean runs on the train fast path.
    """
    speedo = _load_speedometer()
    cur = speedo.SCENARIOS["lossy188"](coalescing=True)
    assert cur["trains"] > 0, (
        "lossy188 formed no packet trains — the coalescing eligibility "
        "check is treating every faulted channel as per-packet again"
    )


@pytest.mark.perf
@pytest.mark.skipif(
    not os.environ.get("RUN_PERF"),
    reason="wall-clock gate only meaningful on a quiet machine (set RUN_PERF=1)",
)
def test_speedometer_wall_clock_gate():
    speedo = _load_speedometer()
    results = speedo.run_all(coalescing=True)
    assert speedo.check(results, str(BASELINE), tolerance=0.25) == 0
