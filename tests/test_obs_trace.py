"""Golden tests for the observability plane (repro.obs).

Three properties anchor the plane's trustworthiness:

1. **Determinism** — two identically-seeded runs export byte-identical
   trace JSON (only virtual time enters the trace, never wall-clock).
2. **Zero perturbation** — tracing must not change the simulation:
   identical ``events_processed`` counts, virtual end times and payloads
   with tracing on vs off, and the packet-train fast-path equivalence
   holds with tracing enabled.
3. **Reconciliation** — recovery spans in the trace agree *exactly* with
   the reliability counters the collective reports.

Plus the redesigned API surface: Reduce-Scatter through ``Communicator``
reproduces the baseline implementations bit-for-bit, ``CollectiveKind``
rejects unknown kinds, and ``phase_means()`` tolerates empty rank lists.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import json
import pathlib

import numpy as np
import pytest

from repro.core.baselines import inc_reduce_scatter, ring_reduce_scatter
from repro.core.communicator import (
    CollectiveConfig,
    CollectiveKind,
    Communicator,
    PhaseBreakdown,
)
from repro.dpa import MTCoreSim, Segment
from repro.dpa.isa import Trace as IsaTrace
from repro.net.fabric import Fabric
from repro.net.faults import GilbertElliott
from repro.net.link import FaultSpec
from repro.net.topology import Topology
from repro.obs import NAME_RE, TRACEPOINTS, TraceConfig, Tracer, validate_event
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import KiB, gbit_per_s

P = 16
NBYTES = 64 * KiB
SEED = 3  # chosen so the Gilbert-Elliott channel actually drops packets


def _lossy(s: str, d: str) -> FaultSpec:
    return FaultSpec(gilbert_elliott=GilbertElliott(
        p_good_bad=0.02, p_bad_good=0.3, drop_good=0.002, drop_bad=0.15))


def _make_comm(seed: int = SEED, lossy: bool = True, traced: bool = True,
               coalescing: bool = True) -> Communicator:
    sim = Simulator()
    fabric = Fabric(
        sim,
        Topology.leaf_spine(P, 2, 2),
        link_bandwidth=gbit_per_s(56),
        streams=RandomStreams(seed),
        coalescing=coalescing,
    )
    if lossy:
        fabric.set_fault_all(_lossy)
    return Communicator(
        fabric,
        config=CollectiveConfig(chunk_size=4096, transport="ud"),
        trace=TraceConfig() if traced else None,
    )


def _bcast(comm: Communicator, seed: int = SEED):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, NBYTES, dtype=np.uint8)
    res = comm.broadcast(0, data)
    assert res.verify_broadcast(data)
    return res


@pytest.fixture(scope="module")
def lossy_traced():
    """One traced 16-node lossy broadcast, shared across golden tests."""
    comm = _make_comm()
    res = _bcast(comm)
    return comm, res


# ---------------------------------------------------------------- determinism


def test_trace_export_is_byte_deterministic(lossy_traced):
    _, res1 = lossy_traced
    res2 = _bcast(_make_comm())
    j1, j2 = res1.trace.to_json(), res2.trace.to_json()
    assert j1 == j2, "identically-seeded runs must export identical bytes"
    assert len(res1.trace) > 0


def test_trace_window_clips_to_collective(lossy_traced):
    _, res = lossy_traced
    for r in res.trace:
        assert res.t_begin <= r.ts <= res.t_end


# --------------------------------------------------------------------- schema


def test_every_exported_event_validates(lossy_traced):
    _, res = lossy_traced
    doc = res.trace.to_chrome()
    assert doc["traceEvents"], "no events exported"
    for ev in doc["traceEvents"]:
        validate_event(ev)  # raises on any malformed event


def test_export_has_track_metadata_and_loads_as_json(lossy_traced):
    _, res = lossy_traced
    doc = json.loads(res.trace.to_json())
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    names = {e["name"] for e in meta}
    assert {"process_name", "thread_name", "process_sort_index"} <= names
    # One process per populated group, rank timelines present.
    procs = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert "rank" in procs and "link" in procs
    threads = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert {f"r{r}" for r in range(P)} <= threads


def test_all_emitted_names_are_catalogued(lossy_traced):
    _, res = lossy_traced
    for r in res.trace:
        assert NAME_RE.match(r.name), r.name
        assert r.name in TRACEPOINTS, r.name


def test_tracepoint_lint_tool_passes(capsys):
    root = pathlib.Path(__file__).resolve().parent.parent
    spec = importlib.util.spec_from_file_location(
        "check_tracepoints", root / "tools" / "check_tracepoints.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    assert mod.main() == 0, capsys.readouterr().out


# ------------------------------------------------------------- reconciliation


def test_recovery_spans_reconcile_with_counters(lossy_traced):
    _, res = lossy_traced
    rel = res.reliability_summary()
    assert rel["recoveries"] > 0, "seed must exercise the slow path"
    view = res.trace
    assert view.count("reliability.recover") == rel["recoveries"]
    assert view.count("reliability.fetch") == rel["fetch_rounds"]
    assert view.count("reliability.escalate") == rel["neighbor_escalations"]
    assert view.count("reliability.timeout") == rel["fetch_ack_timeouts"]
    # Every recovery span carries its round count and a real duration.
    for r in view.select(name="reliability.recover"):
        assert r.ph == "X" and r.value >= 0.0
        assert r.args is not None and r.args["rounds"] >= 1


def test_phase_spans_cover_every_rank(lossy_traced):
    _, res = lossy_traced
    view = res.trace
    for name in ("phase.sync", "phase.multicast", "phase.handshake"):
        spans = view.select(name=name)
        assert len(spans) == P
        assert {r.track for r in spans} == {f"r{r}" for r in range(P)}


# ----------------------------------------------------------- zero perturbation


def test_tracing_does_not_perturb_simulation():
    traced = _make_comm(traced=True)
    res_t = _bcast(traced)
    plain = _make_comm(traced=False)
    res_p = _bcast(plain)
    assert res_p.trace is None
    assert res_t.t_end == res_p.t_end
    assert traced.sim.events_processed == plain.sim.events_processed
    assert res_t.traffic == res_p.traffic
    assert res_t.reliability_summary() == res_p.reliability_summary()
    for bt, bp in zip(res_t.buffers, res_p.buffers):
        assert np.array_equal(bt, bp)


def test_fastpath_equivalence_holds_with_tracing():
    res_fast = _bcast(_make_comm(lossy=False, coalescing=True))
    res_slow = _bcast(_make_comm(lossy=False, coalescing=False))
    assert res_fast.engine["trains"] > 0
    assert res_fast.t_end == res_slow.t_end
    assert res_fast.traffic == res_slow.traffic
    for rf, rs in zip(res_fast.ranks, res_slow.ranks):
        assert rf.phases == rs.phases
    # The fast path coalesces per-packet events into one span per train,
    # so the *trace* differs — but only in link-track granularity.
    assert res_fast.trace.count("link.train") > 0
    assert res_slow.trace.count("link.train") == 0


# ------------------------------------------------------------ metric timelines


def test_metric_timelines(lossy_traced):
    _, res = lossy_traced
    view = res.trace
    ports = [t for g, t in view.tracks() if g == "link"]
    assert ports
    util = view.link_utilization(ports[0], bins=20)
    assert len(util) == 20
    assert all(0.0 <= u <= 1.0 + 1e-9 for _, u in util)
    assert any(u > 0 for _, u in util), "busy link shows zero utilization"
    occ = view.staging_occupancy(1)
    assert occ and all(v >= 0 for _, v in occ)
    out = view.outstanding_batches(0)  # rank 0 is the broadcast sender
    assert out and max(v for _, v in out) >= 1
    retries = view.retry_events()
    assert retries, "lossy run must surface retry events"
    assert all(r.name.startswith("reliability.") for r in retries)


def test_engine_dispatch_histogram(lossy_traced):
    _, res = lossy_traced
    samples = res.trace.select(name="engine.dispatch")
    assert samples and all(r.ph == "C" for r in samples)
    assert sum(r.value for r in samples) > 0


def test_ring_capacity_bounds_memory_and_counts_drops():
    sim = Simulator()
    fabric = Fabric(sim, Topology.leaf_spine(P, 2, 2),
                    link_bandwidth=gbit_per_s(56), streams=RandomStreams(SEED))
    fabric.set_fault_all(_lossy)
    comm_small = Communicator(
        fabric, config=CollectiveConfig(chunk_size=4096, transport="ud"),
        trace=TraceConfig(capacity=4))
    res = _bcast(comm_small)
    assert res.trace.dropped > 0
    for g, t in res.trace.tracks():
        assert len(res.trace.select(group=g, track=t)) <= 4 or g == "engine"


def test_trace_config_validation():
    with pytest.raises(ValueError):
        TraceConfig(capacity=0).validate()
    with pytest.raises(ValueError):
        TraceConfig(engine_bin=0.0).validate()


# ------------------------------------------------------------------ DPA spans


def test_dpa_compute_spans():
    tracer = Tracer(TraceConfig())
    core = MTCoreSim(freq_hz=1.8e9, threads_per_core=16)
    trace = IsaTrace.build("unit", [Segment("compute", 100),
                                    Segment("stall", 50),
                                    Segment("compute", 60)])
    core.run(trace, n_threads=4, n_items=32, chunk_bytes=4096, tracer=tracer)
    view = tracer.view()
    spans = view.select(name="dpa.compute")
    assert len(spans) == 64  # 32 items x 2 compute segments
    assert {r.track for r in spans} == {f"t{t}" for t in range(4)}
    assert all(r.ph == "X" and r.value > 0 for r in spans)


# ------------------------------------------------- redesigned collective API


def _plain_fabric(seed: int = 0, hosts: int = 8) -> Fabric:
    return Fabric(Simulator(), Topology.leaf_spine(hosts, 2, 2),
                  link_bandwidth=gbit_per_s(56), streams=RandomStreams(seed))


def _rs_data(p: int, elems_per_rank: int = 4096):
    rng = np.random.default_rng(7)
    return [rng.normal(size=elems_per_rank).astype(np.float32)
            for _ in range(p)]


@pytest.mark.parametrize("algorithm", ["ring", "inc"])
def test_reduce_scatter_matches_baseline_bit_for_bit(algorithm):
    p = 8
    data = _rs_data(p)
    comm = Communicator(_plain_fabric())
    res = comm.reduce_scatter(data, algorithm=algorithm)
    fn = ring_reduce_scatter if algorithm == "ring" else inc_reduce_scatter
    base = fn(_plain_fabric(), data)
    assert res.kind == CollectiveKind.REDUCE_SCATTER == "reduce_scatter"
    assert res.t_end == base.t_end
    assert len(res.buffers) == p
    for mine, theirs in zip(res.buffers, base.buffers):
        assert np.array_equal(mine, theirs)
    assert res.verify_reduce_scatter(data)
    assert res.recv_bytes_per_rank == res.send_bytes // p
    assert res.throughput > 0


def test_reduce_scatter_async_handle_protocol():
    comm = Communicator(_plain_fabric())
    handle = comm.reduce_scatter_async(_rs_data(8))
    assert not handle.complete
    # Baseline handles carry no immediate-data coll_id (the old negative-id
    # convention is gone); they are tracked by handle_id instead.
    assert handle.coll_id is None
    assert handle.handle_id >= 0
    comm.run(handle)
    assert handle.complete
    res = handle.result()
    assert res.phase_means().total >= 0.0
    comm.release(handle)  # no engine state: must be a safe no-op


def test_traced_reduce_scatter_carries_view():
    fabric = _plain_fabric()
    comm = Communicator(fabric, trace=TraceConfig())
    res = comm.reduce_scatter(_rs_data(8), algorithm="inc")
    assert res.trace is not None and len(res.trace) > 0
    assert res.trace.count("nic.cqe") > 0


def test_collective_kind_rejects_unknown(lossy_traced):
    _, res = lossy_traced
    with pytest.raises(ValueError):
        CollectiveKind("scan")
    bogus = dataclasses.replace(res, kind="scan")
    with pytest.raises(ValueError):
        bogus.throughput
    with pytest.raises(ValueError):
        bogus.recv_bytes_per_rank


def test_phase_means_tolerates_empty_ranks(lossy_traced):
    _, res = lossy_traced
    empty = dataclasses.replace(res, ranks=[])
    assert empty.phase_means() == PhaseBreakdown(
        sync=0.0, multicast=0.0, handshake=0.0, total=0.0)
