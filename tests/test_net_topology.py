"""Unit tests for topology construction and routing."""

import pytest

from repro.net.topology import (
    Topology,
    TopologyError,
    TopologySpec,
    host_id,
    host_name,
    is_host,
    torus_coord,
    torus_id,
)


def test_host_name_roundtrip():
    assert host_name(17) == "h17"
    assert host_id("h17") == 17
    assert is_host("h0") and not is_host("leaf000")


def test_host_id_rejects_switch():
    with pytest.raises(ValueError):
        host_id("spine000")


def test_back_to_back():
    topo = Topology.back_to_back()
    assert topo.n_hosts == 2
    assert topo.switch_names == []
    assert topo.attach_point(0) == "h1"
    assert topo.path(0, 1) == ["h0", "h1"]


def test_star_connectivity():
    topo = Topology.star(4)
    assert topo.switch_names == ["sw000"]
    for i in range(4):
        assert topo.attach_point(i) == "sw000"
    assert topo.path(1, 3) == ["h1", "sw000", "h3"]


def test_leaf_spine_structure():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    assert len(topo.switch_names) == 4
    assert topo.core_switches == ["spine000", "spine001"]
    # Hosts fill leaves sequentially: h0..h3 on leaf000, h4..h7 on leaf001.
    assert topo.attach_point(0) == "leaf000"
    assert topo.attach_point(7) == "leaf001"


def test_leaf_spine_same_leaf_path_has_no_spine():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    path = topo.path(0, 1)
    assert path == ["h0", "leaf000", "h1"]


def test_leaf_spine_cross_leaf_path_uses_one_spine():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    path = topo.path(0, 5)
    assert len(path) == 5  # h0, leaf, spine, leaf, h5
    assert path[2].startswith("spine")


def test_routing_is_destination_deterministic():
    topo = Topology.leaf_spine(16, n_leaf=4, n_spine=4)
    a = topo.path(0, 13)
    b = topo.path(0, 13)
    assert a == b


def test_ecmp_spreads_across_spines():
    topo = Topology.leaf_spine(16, n_leaf=2, n_spine=4, hosts_per_leaf=8)
    spines = {topo.path(0, dst)[2] for dst in range(8, 16)}
    assert len(spines) > 1  # different dsts take different spines


def test_unicast_tables_complete():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    tables = topo.unicast_tables()
    for sw in topo.switch_names:
        for dst in range(8):
            assert dst in tables[sw]


def test_unicast_tables_match_per_destination_reference():
    """The grouped multi-source-BFS table build must be entry-for-entry
    identical to routing each (switch, dst) pair through next_hop."""
    fams = [
        Topology.star(6),
        Topology.leaf_spine(32, n_leaf=4, n_spine=3),
        Topology.multi_rail(Topology.leaf_spine(16, 4, 2), 2),
        Topology.torus([2, 2, 2]),
        Topology.torus([3, 3], hosts_per_node=2),
        Topology.dragonfly(3, 2, 2),
    ]
    for topo in fams:
        reference = {sw: {} for sw in topo.switch_names}
        for dst in range(topo.n_hosts):
            dist = topo._distances_to(dst)
            for sw in topo.switch_names:
                if sw in dist and dist[sw] > 0:
                    reference[sw][dst] = topo.next_hop(sw, dst)
        assert topo.unicast_tables() == reference, topo.kind


def test_path_endpoint_validation():
    topo = Topology.star(3)
    with pytest.raises(ValueError):
        topo.next_hop("h0", 0)


def test_mcast_tree_covers_all_members():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    tree = topo.mcast_tree(0, list(range(8)))
    for h in range(8):
        assert host_name(h) in tree
        # Hosts are tree leaves: exactly one tree neighbor.
        assert len(tree[host_name(h)]) == 1


def test_mcast_tree_is_acyclic():
    topo = Topology.leaf_spine(12, n_leaf=3, n_spine=3)
    tree = topo.mcast_tree(1, list(range(12)))
    n_nodes = len(tree)
    n_edges = sum(len(v) for v in tree.values()) // 2
    assert n_edges == n_nodes - 1  # tree invariant


def test_mcast_tree_root_varies_with_gid():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    assert topo.mcast_root(0) != topo.mcast_root(1)


def test_mcast_tree_subset_members():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    tree = topo.mcast_tree(0, [0, 5])
    assert host_name(0) in tree and host_name(5) in tree
    assert host_name(1) not in tree


def test_mcast_tree_back_to_back():
    topo = Topology.back_to_back()
    tree = topo.mcast_tree(0, [0, 1])
    assert tree == {"h0": {"h1"}, "h1": {"h0"}}


def test_mcast_tree_needs_two_members():
    topo = Topology.star(4)
    with pytest.raises(ValueError):
        topo.mcast_tree(0, [2])


def test_testbed_188_shape():
    topo = Topology.testbed_188()
    assert topo.n_hosts == 188
    assert len(topo.switch_names) == 18
    leaves = [s for s in topo.switch_names if s.startswith("leaf")]
    spines = [s for s in topo.switch_names if s.startswith("spine")]
    assert len(leaves) == 12 and len(spines) == 6


def test_duplicate_edges_collapse():
    topo = Topology(2, [("h0", "h1"), ("h1", "h0")], core_switches=[])
    assert len(topo.edges) == 1


def test_self_loop_rejected():
    with pytest.raises(ValueError):
        Topology(1, [("h0", "h0")])


def test_disconnected_host_rejected():
    with pytest.raises(ValueError):
        Topology(2, [("h0", "sw000")])


def test_multi_homed_host_rejected():
    with pytest.raises(ValueError):
        Topology(2, [("h0", "sw000"), ("h0", "sw001"), ("h1", "sw000"), ("h1", "sw001")])


def test_topology_spec_builders():
    assert TopologySpec("star", 4).build().kind == "star"
    assert TopologySpec("back_to_back").build().n_hosts == 2
    spec = TopologySpec("leaf_spine", 8, {"n_leaf": 2, "n_spine": 2})
    assert spec.build().kind == "leaf_spine"
    assert TopologySpec("testbed_188").build().n_hosts == 188


def test_topology_spec_zoo_builders():
    t = TopologySpec("torus", 16, {"dims": [4, 4]}).build()
    assert t.kind == "torus" and t.n_hosts == 16
    d = TopologySpec(
        "dragonfly", 12,
        {"n_groups": 3, "routers_per_group": 2, "hosts_per_router": 2},
    ).build()
    assert d.kind == "dragonfly" and d.n_hosts == 12
    m = TopologySpec("multi_rail", 8, {
        "base_kind": "leaf_spine",
        "base_params": {"n_leaf": 2, "n_spine": 2},
        "n_rails": 2,
    }).build()
    assert m.kind == "multi_rail" and m.rails == 2


def test_topology_spec_typed_errors():
    # Missing required params raise TopologyError (a ValueError subclass),
    # never a bare KeyError — callers catch one exception type.
    assert issubclass(TopologyError, ValueError)
    with pytest.raises(TopologyError):
        TopologySpec("torus", 8).build()
    with pytest.raises(TopologyError):
        TopologySpec("dragonfly", 8, {"n_groups": 4}).build()
    with pytest.raises(TopologyError):
        TopologySpec("multi_rail", 8, {"n_rails": 2}).build()
    with pytest.raises(TopologyError):
        TopologySpec("no_such_family", 8).build()
    # Host-count mismatch against the declared shape is also typed.
    with pytest.raises(TopologyError):
        TopologySpec("torus", 7, {"dims": [4, 4]}).build()


def test_topology_spec_key_canonicalizes_through_factory():
    # Equivalent spellings (defaults omitted vs explicit, tuple vs list
    # dims) must emit one canonical key, or profile digests fracture.
    a = TopologySpec("torus", 16, {"dims": (4, 4)}).key()
    b = TopologySpec("torus", 16, {"dims": [4, 4], "hosts_per_node": 1}).key()
    assert a == b
    built = TopologySpec("torus", 16, {"dims": [4, 4]}).build()
    assert a["params"] == TopologySpec("torus", 16, dict(built.params)).key()["params"]


def test_torus_coord_roundtrip():
    dims = [2, 3, 4]
    for rank in range(2 * 3 * 4):
        assert torus_id(torus_coord(rank, dims), dims) == rank
    assert torus_coord(0, dims) == [0, 0, 0]
    # Last dimension varies fastest (row-major mixed radix).
    assert torus_coord(1, dims) == [0, 0, 1]


def test_torus_structure():
    topo = Topology.torus([4, 4])
    assert topo.n_hosts == 16
    assert len(topo.switch_names) == 16  # one router per coordinate
    # Each router: 1 host link + 2 ring links per dimension = degree 5.
    for sw in topo.switch_names:
        assert len(topo.adjacency[sw]) == 5
    # 16 host links + 2 rings of 4 links per row/column (4+4 rings).
    assert len(topo.edges) == 16 + 2 * 4 * 4


def test_torus_dim2_collapses_parallel_ring_edges():
    # A ring of size 2 has (c+1) % 2 meeting itself both ways; the
    # duplicate collapses to a single edge.
    topo = Topology.torus([2, 2])
    assert topo.n_hosts == 4
    assert len(topo.edges) == 4 + 4


def test_dragonfly_structure():
    topo = Topology.dragonfly(4, 3, hosts_per_router=2)
    assert topo.n_hosts == 24
    assert len(topo.switch_names) == 12
    # Edges: 24 host links + 4 groups x C(3,2) clique links + C(4,2) globals.
    assert len(topo.edges) == 24 + 4 * 3 + 6
    # Hosts fill routers sequentially: h0,h1 on g00r00.
    assert topo.attach_point(0) == topo.attach_point(1) == "g00r00"


def test_multi_rail_planes_are_disjoint_above_hosts():
    base = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    topo = Topology.multi_rail(base, 2)
    assert topo.rails == 2
    assert topo.n_hosts == 8
    # Every base switch exists once per rail; no switch spans planes.
    assert len(topo.switch_names) == 2 * len(base.switch_names)
    for sw in topo.switch_names:
        rails = {topo.rail_of_edge(sw, nbr) for nbr in topo.adjacency[sw]}
        assert len(rails) == 1
    # Hosts have one attachment per rail.
    for h in range(8):
        ports = topo.host_ports(h)
        assert len(ports) == 2
        assert topo.attach_point(h, 0).endswith(".r0")
        assert topo.attach_point(h, 1).endswith(".r1")


def test_multi_rail_rejects_bad_bases():
    with pytest.raises(TopologyError):
        Topology.multi_rail(Topology.back_to_back(), 2)  # switchless
    base = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    with pytest.raises(TopologyError):
        Topology.multi_rail(Topology.multi_rail(base, 2), 2)  # already railed


def test_connected_rail_prefers_incumbent_and_survives_plane_death():
    base = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    topo = Topology.multi_rail(base, 2)
    hosts = list(range(8))
    # Healthy fabric: lowest rail wins, but a preferred incumbent holds.
    assert topo.connected_rail(hosts) == 0
    assert topo.connected_rail(hosts, prefer=1) == 1
    # Plane 0 dead: only rail 1 still spans the hosts.
    dead = set(topo.rail_switches(0))
    assert topo.connected_rail(hosts, exclude=dead) == 1
    assert topo.connected_rail(hosts, exclude=dead, prefer=0) == 1
    # Both planes dead: no rail connects them.
    dead |= set(topo.rail_switches(1))
    assert topo.connected_rail(hosts, exclude=dead) is None


def test_connected_rail_partial_spine_death_keeps_plane():
    base = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    topo = Topology.multi_rail(base, 2)
    # One spine of plane 0 dies; the second spine still connects the
    # plane, so rail 0 remains usable.
    assert topo.connected_rail(list(range(8)), exclude={"spine000.r0"}) == 0
    # Both plane-0 spines dead: leaves can't reach each other in-plane.
    dead = {"spine000.r0", "spine001.r0"}
    assert topo.connected_rail(list(range(8)), exclude=dead) == 1
