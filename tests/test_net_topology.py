"""Unit tests for topology construction and routing."""

import pytest

from repro.net.topology import Topology, TopologySpec, host_id, host_name, is_host


def test_host_name_roundtrip():
    assert host_name(17) == "h17"
    assert host_id("h17") == 17
    assert is_host("h0") and not is_host("leaf000")


def test_host_id_rejects_switch():
    with pytest.raises(ValueError):
        host_id("spine000")


def test_back_to_back():
    topo = Topology.back_to_back()
    assert topo.n_hosts == 2
    assert topo.switch_names == []
    assert topo.attach_point(0) == "h1"
    assert topo.path(0, 1) == ["h0", "h1"]


def test_star_connectivity():
    topo = Topology.star(4)
    assert topo.switch_names == ["sw000"]
    for i in range(4):
        assert topo.attach_point(i) == "sw000"
    assert topo.path(1, 3) == ["h1", "sw000", "h3"]


def test_leaf_spine_structure():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    assert len(topo.switch_names) == 4
    assert topo.core_switches == ["spine000", "spine001"]
    # Hosts fill leaves sequentially: h0..h3 on leaf000, h4..h7 on leaf001.
    assert topo.attach_point(0) == "leaf000"
    assert topo.attach_point(7) == "leaf001"


def test_leaf_spine_same_leaf_path_has_no_spine():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    path = topo.path(0, 1)
    assert path == ["h0", "leaf000", "h1"]


def test_leaf_spine_cross_leaf_path_uses_one_spine():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    path = topo.path(0, 5)
    assert len(path) == 5  # h0, leaf, spine, leaf, h5
    assert path[2].startswith("spine")


def test_routing_is_destination_deterministic():
    topo = Topology.leaf_spine(16, n_leaf=4, n_spine=4)
    a = topo.path(0, 13)
    b = topo.path(0, 13)
    assert a == b


def test_ecmp_spreads_across_spines():
    topo = Topology.leaf_spine(16, n_leaf=2, n_spine=4, hosts_per_leaf=8)
    spines = {topo.path(0, dst)[2] for dst in range(8, 16)}
    assert len(spines) > 1  # different dsts take different spines


def test_unicast_tables_complete():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    tables = topo.unicast_tables()
    for sw in topo.switch_names:
        for dst in range(8):
            assert dst in tables[sw]


def test_path_endpoint_validation():
    topo = Topology.star(3)
    with pytest.raises(ValueError):
        topo.next_hop("h0", 0)


def test_mcast_tree_covers_all_members():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    tree = topo.mcast_tree(0, list(range(8)))
    for h in range(8):
        assert host_name(h) in tree
        # Hosts are tree leaves: exactly one tree neighbor.
        assert len(tree[host_name(h)]) == 1


def test_mcast_tree_is_acyclic():
    topo = Topology.leaf_spine(12, n_leaf=3, n_spine=3)
    tree = topo.mcast_tree(1, list(range(12)))
    n_nodes = len(tree)
    n_edges = sum(len(v) for v in tree.values()) // 2
    assert n_edges == n_nodes - 1  # tree invariant


def test_mcast_tree_root_varies_with_gid():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    assert topo.mcast_root(0) != topo.mcast_root(1)


def test_mcast_tree_subset_members():
    topo = Topology.leaf_spine(8, n_leaf=2, n_spine=2)
    tree = topo.mcast_tree(0, [0, 5])
    assert host_name(0) in tree and host_name(5) in tree
    assert host_name(1) not in tree


def test_mcast_tree_back_to_back():
    topo = Topology.back_to_back()
    tree = topo.mcast_tree(0, [0, 1])
    assert tree == {"h0": {"h1"}, "h1": {"h0"}}


def test_mcast_tree_needs_two_members():
    topo = Topology.star(4)
    with pytest.raises(ValueError):
        topo.mcast_tree(0, [2])


def test_testbed_188_shape():
    topo = Topology.testbed_188()
    assert topo.n_hosts == 188
    assert len(topo.switch_names) == 18
    leaves = [s for s in topo.switch_names if s.startswith("leaf")]
    spines = [s for s in topo.switch_names if s.startswith("spine")]
    assert len(leaves) == 12 and len(spines) == 6


def test_duplicate_edges_collapse():
    topo = Topology(2, [("h0", "h1"), ("h1", "h0")], core_switches=[])
    assert len(topo.edges) == 1


def test_self_loop_rejected():
    with pytest.raises(ValueError):
        Topology(1, [("h0", "h0")])


def test_disconnected_host_rejected():
    with pytest.raises(ValueError):
        Topology(2, [("h0", "sw000")])


def test_multi_homed_host_rejected():
    with pytest.raises(ValueError):
        Topology(2, [("h0", "sw000"), ("h0", "sw001"), ("h1", "sw000"), ("h1", "sw001")])


def test_topology_spec_builders():
    assert TopologySpec("star", 4).build().kind == "star"
    assert TopologySpec("back_to_back").build().n_hosts == 2
    spec = TopologySpec("leaf_spine", 8, {"n_leaf": 2, "n_spine": 2})
    assert spec.build().kind == "leaf_spine"
    assert TopologySpec("testbed_188").build().n_hosts == 188
    with pytest.raises(ValueError):
        TopologySpec("torus", 8).build()
