"""Determinism of the parallel DES + vectorized fold-commit engine.

The contract under test (DESIGN §6e): the vectorized deferred-commit
fast-forward and its sharded parallel backend are *performance* layers —
virtual time, payloads, per-channel counters and telemetry must be
bit-identical to the sequential scalar fold for every shard count and
backend, across clean, lossy and mid-run-perturbed conditions.  Any
float divergence, however small, is a bug.

Three axes are swept:

* **scalar vs vectorized** (``ff_vectorized`` off/on) — event counts drop
  by design, so ``sim_events``/``ff_skipped_events`` are excluded there;
* **shard count** (``parallel`` = 1/2/4) — same vectorized path, so the
  *full* telemetry minus the parallel-only counters must match;
* **backend** (inline vs fork+pipes via ``force_process``).

Plus the partition subsystem's invariants across topology families, and
the deferred-commit abort paths (mid-run fault install, mid-run second
collective) where the session must flush state the packet-level path
then resumes from, bit-exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.communicator import CollectiveConfig, Communicator
from repro.net.fabric import Fabric
from repro.net.link import FaultSpec
from repro.net.plan import PartitionError, partition_fabric, validate_partition
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import gbit_per_s

#: counters that only the parallel engine produces (zero in scalar runs)
PARALLEL_KEYS = {"shards", "sync_rounds", "boundary_msgs"}
#: additionally different between scalar and vectorized runs by design:
#: the deferred-commit session replaces per-phase finisher events with one
#: completion event per rank
EVENT_KEYS = PARALLEL_KEYS | {"sim_events", "ff_skipped_events"}


def make_comm(P: int, seed: int = 7, *, topo=None, transport: str = "ud",
              ff: str = "exact", vec: bool = True, par="off",
              force_process: bool = False,
              chunk_size: int = 1024) -> Communicator:
    sim = Simulator()
    fabric = Fabric(
        sim,
        topo if topo is not None else Topology.leaf_spine(P, 4, 2),
        link_bandwidth=gbit_per_s(56),
        streams=RandomStreams(seed),
    )
    comm = Communicator(fabric, config=CollectiveConfig(
        chunk_size=chunk_size, transport=transport, fast_forward=ff,
        ff_vectorized=vec, parallel=par))
    if force_process and comm.ff is not None:
        comm.ff.force_process = True
    return comm


def ag_data(P: int, nbytes: int = 1024):
    return [np.full(nbytes, (3 * r + 1) % 251, dtype=np.uint8)
            for r in range(P)]


def strip(engine: dict, keys) -> dict:
    return {k: v for k, v in engine.items() if k not in keys}


# ------------------------------------------------------------- partitions


FAMILIES = [
    ("star", lambda: Topology.star(8)),
    ("leaf_spine", lambda: Topology.leaf_spine(16, 4, 2)),
    ("torus", lambda: Topology.torus([2, 2, 2])),
    ("dragonfly", lambda: Topology.dragonfly(3, 2, 2)),
]


@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
@pytest.mark.parametrize("k", [1, 2, 3, 8])
def test_partition_invariants_across_families(name, make, k):
    sim = Simulator()
    fabric = Fabric(sim, make(), link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(1))
    part = partition_fabric(fabric, k)
    validate_partition(fabric, part)
    topo = fabric.topology
    # Effective shard count is clamped to host-bearing switches and the
    # hosts are covered exactly once, in contiguous shard blocks.
    assert 1 <= part.n_shards <= k
    assert sorted(h for s in range(part.n_shards)
                  for h in part.hosts_of(s)) == list(range(topo.n_hosts))
    assert part.host_shard == sorted(part.host_shard)
    # Deterministic: same fabric, same partition.
    again = partition_fabric(fabric, k)
    assert again.switch_shard == part.switch_shard
    assert again.host_shard == part.host_shard
    assert again.cut_edges == part.cut_edges
    assert again.lookahead == part.lookahead
    if part.cut_edges:
        assert part.lookahead > 0.0


def test_partition_rejects_zero_shards():
    sim = Simulator()
    fabric = Fabric(sim, Topology.star(4), link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(1))
    with pytest.raises(PartitionError):
        partition_fabric(fabric, 0)


def test_single_switch_partition_has_no_cuts():
    sim = Simulator()
    fabric = Fabric(sim, Topology.star(8), link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(1))
    part = partition_fabric(fabric, 4)
    assert part.n_shards == 1
    assert part.cut_edges == []
    assert part.lookahead == float("inf")


# ------------------------------------------- scalar vs vectorized vs shards


@pytest.mark.parametrize("transport", ["ud", "uc"])
@pytest.mark.parametrize("seed", [7, 23])
def test_allgather_bitwise_across_shards(transport, seed):
    P = 32
    data = ag_data(P)

    def run(vec, par, force=False):
        comm = make_comm(P, seed, transport=transport, vec=vec, par=par,
                         force_process=force)
        return comm.allgather(data)

    base = run(False, "off")
    runs = {1: run(True, 1), 2: run(True, 2), 4: run(True, 4)}
    pipes = run(True, 2, force=True)
    expected = np.concatenate(data)
    for res in [base, pipes, *runs.values()]:
        assert res.duration == base.duration  # bitwise, not approx
        for buf in res.buffers:
            assert np.array_equal(buf, expected)
    # scalar vs vec: everything but the event-count keys matches
    for res in runs.values():
        assert strip(res.engine, EVENT_KEYS) == strip(base.engine, EVENT_KEYS)
        assert res.traffic == base.traffic
    # shard axis: same vec path, so even the event counts match
    for res in (runs[2], runs[4], pipes):
        assert strip(res.engine, PARALLEL_KEYS) == \
            strip(runs[1].engine, PARALLEL_KEYS)
    assert runs[2].engine["shards"] == 2
    assert runs[4].engine["shards"] == 4
    assert runs[1].engine["sync_rounds"] == P
    # inline shards exchange no pipe messages; the fork backend does
    assert runs[2].engine["boundary_msgs"] == 0
    assert pipes.engine["boundary_msgs"] > 0
    assert pipes.duration == base.duration


@pytest.mark.parametrize("seed", [7, 23])
def test_broadcast_bitwise_scalar_vs_vectorized(seed):
    # Broadcast folds whole multi-chunk phases: the vec receiver-fold
    # (matrix path) engages at n_chunks * n_rx >= 512.
    P = 32
    data = np.arange(64 * 1024, dtype=np.uint8).reshape(-1) % 199

    def run(vec):
        comm = make_comm(P, seed, vec=vec)
        return comm.broadcast(0, data)

    a, b = run(False), run(True)
    assert b.duration == a.duration
    assert strip(b.engine, EVENT_KEYS) == strip(a.engine, EVENT_KEYS)
    assert b.traffic == a.traffic
    for buf in b.buffers:
        assert np.array_equal(buf, data)


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_allreduce_bitwise_across_shards(shards):
    P = 16
    data = [np.full(2048, r + 1, dtype=np.float32) for r in range(P)]
    base = make_comm(P, vec=False).allreduce(data)
    res = make_comm(P, vec=True, par=shards).allreduce(data)
    assert res.duration == base.duration
    assert res.verify_allreduce(data)
    assert strip(res.engine, EVENT_KEYS) == strip(base.engine, EVENT_KEYS)


def test_parallel_auto_small_collective_stays_sequential():
    P = 16
    res = make_comm(P, vec=True, par="auto").allgather(ag_data(P))
    # below the auto threshold: one shard, still vectorized
    assert res.engine["shards"] == 1
    assert res.engine["sync_rounds"] == P


def test_parallel_config_rejects_bad_values():
    for bad in ("both", 0, -2, True):
        with pytest.raises(ValueError):
            make_comm(4, par=bad)


# ----------------------------------------------------- lossy + abort paths


@pytest.mark.parametrize("transport", ["ud", "uc"])
def test_lossy_from_start_falls_back_identically(transport):
    # A drop-capable fault fails every fold's fault_inert gate, so both
    # engines run packet-level end to end — results must agree exactly.
    P = 16
    data = ag_data(P, 512)

    def run(vec, par):
        comm = make_comm(P, transport=transport, vec=vec, par=par)
        comm.fabric.set_fault_all(
            lambda src, dst: FaultSpec(drop_packet_seqs={2, 5}))
        return comm.allgather(data)

    base = run(False, "off")
    res = run(True, 4)
    assert res.duration == base.duration
    assert res.traffic == base.traffic
    assert [bytes(b) for b in res.buffers] == [bytes(b) for b in base.buffers]
    assert res.engine["sync_rounds"] == 0  # vec session never built


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("t_inject", [2e-5, 4e-5])
def test_mid_run_fault_install_flushes_bitwise(shards, t_inject):
    # Install a dropping fault mid-collective: the deferred-commit session
    # must flush every folded phase's channel/bitmap/payload state at the
    # abort, and the packet-level path (plus recovery for the dropped
    # chunks) must complete from it at exactly the scalar fold's instant.
    # The two inject times abort the chain near its head (1 folded phase)
    # and mid-chain (~7 of 16).
    P = 16
    data = ag_data(P, 512)

    def run(vec, par):
        comm = make_comm(P, vec=vec, par=par)
        fabric = comm.fabric
        comm.sim.post_at(
            t_inject,
            lambda: fabric.set_fault_all(
                lambda src, dst: FaultSpec(drop_packet_seqs={0})))
        return comm.allgather(data)

    base = run(False, "off")
    res = run(True, shards)
    # the abort must interrupt a *live* session for the test to mean much
    assert 0 < res.engine["sync_rounds"] < P
    assert res.duration == base.duration
    assert res.traffic == base.traffic
    expected = np.concatenate(data)
    for buf in res.buffers:
        assert np.array_equal(buf, expected)


@pytest.mark.parametrize("shards", [1, 4])
def test_mid_run_second_collective_preempts_bitwise(shards):
    # A second collective submitted mid-run must preempt the deferred
    # session (its packets would otherwise observe stale channel state);
    # both collectives then run packet-level and the combined timeline
    # must match the scalar engine's exactly.
    P = 16
    data = ag_data(P, 512)
    bdata = np.full(4096, 99, dtype=np.uint8)
    t_submit = 2e-5

    def run(vec, par):
        comm = make_comm(P, vec=vec, par=par)
        handles = []
        h1 = comm.allgather_async(data)
        comm.sim.post_at(
            t_submit,
            lambda: handles.append(comm.broadcast_async(0, bdata)))
        comm.run(h1)
        comm.run(handles[0])
        t_end = comm.sim.now
        bufs = [bytes(op.mr.buf) for op in h1.ops]
        return t_end, bufs

    base = run(False, "off")
    res = run(True, shards)
    assert res[0] == base[0]
    assert res[1] == base[1]


def test_recovery_path_preempts_vec_session():
    # Straggler-free lossless run, but force the session to be live when a
    # recovery would start: covered indirectly by the mid-run fault test;
    # here just prove preempt_vec on an idle engine is a safe no-op.
    comm = make_comm(8)
    comm.ff.preempt_vec()
    res = comm.allgather(ag_data(8))
    assert res.engine["sync_rounds"] == 8


# ------------------------------------------------------------ banded mode


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_banded_allgather_identical_across_shards(shards):
    # Banded mode trades a declared tolerance against the packet engine,
    # but across shard counts it must still be bit-identical to itself.
    P = 32
    data = ag_data(P)
    one = make_comm(P, ff="banded", vec=True, par=1).allgather(data)
    res = make_comm(P, ff="banded", vec=True, par=shards).allgather(data)
    assert res.duration == one.duration
    assert strip(res.engine, PARALLEL_KEYS) == strip(one.engine,
                                                     PARALLEL_KEYS)
