"""The unified collective submission API (``Communicator.submit``).

Covers the four contracts of the submission redesign:

* **Request validation** — :class:`CollectiveRequest` rejects illegal
  kind/root/dtype/op combinations eagerly, with typed errors, before any
  simulator state exists.
* **Handle uniformity** — all six kinds return handles satisfying one
  :class:`CollectiveHandle` protocol (``done()``/``wait()``/``result()``)
  and results exposing uniform ``.kind`` / ``.phases`` / ``.trace``.
* **Composed-collective identity** — a ``submit()``-composed allreduce is
  bit-identical in virtual time and payload bytes to manually chaining
  ``reduce_scatter`` then ``allgather``; the FSDP optimal pair through
  ``submit()`` matches the ``*_async`` composition exactly.
* **Crash semantics** — a fail-stop during the reduce-scatter phase
  aborts the composed collective with a typed error; one during the
  allgather phase completes degraded with validity masks; baseline-backed
  kinds are rejected at submit time once ranks are known dead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.communicator import (
    CollectiveConfig,
    Communicator,
    ComposedHandle,
    FailurePolicy,
)
from repro.core.reliability import CollectiveAbortedError
from repro.core.request import (
    CollectiveHandle,
    CollectiveKind,
    CollectiveRequest,
    CollectiveRequestError,
)
from repro.models.speedup import time_composed_allreduce
from repro.net.fabric import Fabric
from repro.net.faults import CrashSpec
from repro.net.topology import Topology
from repro.obs import TraceConfig
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import KiB, gbit_per_s

P = 16


def make_comm(n_hosts=P, seed=0, config=None, topo=None, trace=None,
              link_gbit=56.0):
    sim = Simulator()
    fabric = Fabric(
        sim,
        topo or Topology.leaf_spine(n_hosts, 2, 2),
        link_bandwidth=gbit_per_s(link_gbit),
        streams=RandomStreams(seed),
    )
    return Communicator(fabric, config=config, trace=trace)


def _u8(nbytes: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, nbytes, dtype=np.uint8)


def _f32(elems: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=elems).astype(np.float32)


# ------------------------------------------------------- request validation


def test_request_rejects_unknown_kind():
    with pytest.raises(CollectiveRequestError, match="unknown collective"):
        CollectiveRequest(kind="scan", data=[_u8(64)])


def test_rooted_kinds_require_root():
    for kind in ("broadcast", "reduce"):
        with pytest.raises(CollectiveRequestError, match="requires a root"):
            data = _u8(64) if kind == "broadcast" else [_f32(16)]
            CollectiveRequest(kind=kind, data=data)
    with pytest.raises(CollectiveRequestError, match="non-negative"):
        CollectiveRequest(kind="broadcast", data=_u8(64), root=-1)


def test_rootless_kinds_reject_root():
    for kind in ("allgather", "reduce_scatter", "allreduce", "alltoall"):
        with pytest.raises(CollectiveRequestError, match="rootless"):
            CollectiveRequest(kind=kind, data=[_f32(16)], root=0)


def test_reduction_op_validation():
    # Only "sum" is supported; it is normalized onto the request.
    req = CollectiveRequest(kind="allreduce", data=[_f32(16)])
    assert req.op == "sum"
    with pytest.raises(CollectiveRequestError, match="unsupported reduction"):
        CollectiveRequest(kind="allreduce", data=[_f32(16)], op="max")
    with pytest.raises(CollectiveRequestError, match="no reduction op"):
        CollectiveRequest(kind="allgather", data=[_u8(64)], op="sum")


def test_reducing_kinds_reject_unreducible_dtypes():
    complex_data = [np.ones(16, dtype=np.complex64)]
    for kind in ("reduce_scatter", "allreduce"):
        with pytest.raises(CollectiveRequestError, match="dtype"):
            CollectiveRequest(kind=kind, data=complex_data)
    with pytest.raises(CollectiveRequestError, match="dtype"):
        CollectiveRequest(kind="reduce", data=complex_data, root=0)
    # Integer contributions are castable and accepted.
    CollectiveRequest(kind="allreduce", data=[np.arange(16, dtype=np.int32)])


def test_substrate_knobs_are_kind_scoped():
    with pytest.raises(CollectiveRequestError, match="fixed substrate"):
        CollectiveRequest(kind="broadcast", data=_u8(64), root=0,
                          algorithm="inc")
    with pytest.raises(CollectiveRequestError, match="chunk_bytes"):
        CollectiveRequest(kind="allgather", data=[_u8(64)], chunk_bytes=32)
    CollectiveRequest(kind="allreduce", data=[_f32(16)], algorithm="ring")
    CollectiveRequest(kind="alltoall", data=[_u8(64)], chunk_bytes=32)


def test_payload_shape_validation():
    with pytest.raises(CollectiveRequestError, match="single ndarray"):
        CollectiveRequest(kind="broadcast", data=[_u8(64)], root=0)
    with pytest.raises(CollectiveRequestError, match="sequence"):
        CollectiveRequest(kind="allgather", data=_u8(64))
    with pytest.raises(CollectiveRequestError, match="at least one"):
        CollectiveRequest(kind="allgather", data=[])


def test_submit_rejects_wrong_rank_count_and_bad_root():
    comm = make_comm(4, topo=Topology.star(4))
    with pytest.raises(ValueError):
        comm.submit(CollectiveRequest(
            kind="allgather", data=[_u8(4 * KiB) for _ in range(3)]))
    with pytest.raises(ValueError):
        comm.submit(CollectiveRequest(kind="broadcast", data=_u8(4 * KiB),
                                      root=9))
    with pytest.raises(CollectiveRequestError, match="takes a CollectiveRequest"):
        comm.submit({"kind": "allgather"})


# -------------------------------------------------------- handle uniformity


def _submit_one(comm: Communicator, kind: str):
    p = comm.size
    if kind == "broadcast":
        data = _u8(64 * KiB)
        req = CollectiveRequest(kind=kind, data=data, root=0)
    elif kind in ("allgather", "alltoall"):
        data = [_u8(16 * KiB, seed=r) for r in range(p)]
        req = CollectiveRequest(kind=kind, data=data)
    elif kind == "reduce":
        data = [_f32(4096, seed=r) for r in range(p)]
        req = CollectiveRequest(kind=kind, data=data, root=2)
    else:  # reduce_scatter / allreduce
        data = [_f32(p * 1024, seed=r) for r in range(p)]
        req = CollectiveRequest(kind=kind, data=data)
    return comm.submit(req), data


@pytest.mark.parametrize("kind", [k.value for k in CollectiveKind])
def test_handle_protocol_uniform(kind: str):
    comm = make_comm(trace=TraceConfig())
    handle, data = _submit_one(comm, kind)
    assert isinstance(handle, CollectiveHandle)
    assert handle.kind is CollectiveKind(kind)
    assert handle.handle_id >= 0
    assert not handle.done()
    handle.wait()
    assert handle.done()
    res = handle.result()
    assert res.kind == kind  # str-enum equality with the plain string
    # Uniform phase records: named, ordered, covering the result window.
    assert res.phases, f"{kind} reported no phases"
    assert res.phases[0].t_begin == res.t_begin
    assert res.phases[-1].t_end == res.t_end
    for ph in res.phases:
        assert ph.t_begin <= ph.t_end
        assert ph.duration >= 0.0
    if kind == "allreduce":
        assert [ph.name for ph in res.phases] == ["reduce_scatter", "allgather"]
    # Uniform trace exposure: every kind carries a clipped TraceView with
    # its own comm.submit instant.
    assert res.trace is not None
    submits = list(res.trace.select(name="comm.submit"))
    assert submits and submits[0].args["kind"] == kind
    comm.release(handle)


def test_rooted_results_carry_root():
    comm = make_comm(4, topo=Topology.star(4))
    res = comm.broadcast(1, _u8(16 * KiB))
    assert res.root == 1
    comm2 = make_comm(4, topo=Topology.star(4))
    res2 = comm2.reduce([_f32(1024, seed=r) for r in range(4)], root=3)
    assert res2.root == 3
    comm3 = make_comm(4, topo=Topology.star(4))
    res3 = comm3.allgather([_u8(4 * KiB, seed=r) for r in range(4)])
    assert res3.root is None


def test_no_negative_coll_id_convention():
    comm = make_comm(4, topo=Topology.star(4))
    handle = comm.reduce_scatter_async([_f32(1024, seed=r) for r in range(4)],
                                       algorithm="inc")
    assert handle.coll_id is None
    assert handle.handle_id >= 0
    handle.wait()
    assert handle.result().verify_reduce_scatter(
        [_f32(1024, seed=r) for r in range(4)])


# ------------------------------------------------------------- correctness


def test_reduce_root_holds_full_sum():
    comm = make_comm(8)
    data = [_f32(4096, seed=r) for r in range(8)]
    res = comm.reduce(data, root=5)
    assert res.verify_reduce(data)
    total = np.sum(np.stack(data), axis=0)
    assert np.allclose(res.buffers[5], total, rtol=1e-3, atol=1e-3)
    assert all(res.buffers[r].size == 0 for r in range(8) if r != 5)


def test_alltoall_personalized_exchange():
    comm = make_comm(8)
    data = [_u8(8 * KiB, seed=r) for r in range(8)]
    res = comm.alltoall(data)
    assert res.verify_alltoall(data)
    block = data[0].nbytes // 8
    for r in range(8):
        for src in range(8):
            np.testing.assert_array_equal(
                res.buffers[r][src * block:(src + 1) * block],
                data[src][r * block:(r + 1) * block])


def test_allreduce_all_ranks_hold_sum():
    comm = make_comm()
    data = [_f32(P * 1024, seed=r) for r in range(P)]
    res = comm.allreduce(data)
    assert res.verify_allreduce(data)
    total = np.sum(np.stack(data), axis=0)
    for buf in res.buffers:
        assert np.allclose(buf, total, rtol=1e-3, atol=1e-3)


# --------------------------------------------- composed-collective identity


def _allreduce_payload(p: int, elems_per_rank: int):
    return [_f32(elems_per_rank, seed=100 + r) for r in range(p)]


@pytest.mark.parametrize("seed", [0, 7])
def test_allreduce_bit_identical_to_manual_chain(seed: int):
    """The tentpole identity: one composed submission finishes at the
    *exact* virtual instant (and with byte-identical payloads) as a caller
    manually running reduce_scatter then allgather on a twin fabric."""
    data = _allreduce_payload(P, P * 1024)

    comm_c = make_comm(seed=seed)
    res_c = comm_c.allreduce(data, algorithm="inc")

    comm_m = make_comm(seed=seed)
    rs = comm_m.reduce_scatter(data, algorithm="inc")
    ag = comm_m.allgather(rs.buffers)

    assert res_c.t_end == ag.t_end
    assert res_c.phases[0].t_end == rs.t_end
    assert comm_c.sim.now == comm_m.sim.now
    for bc, bm in zip(res_c.buffers, ag.buffers):
        np.testing.assert_array_equal(bc.view(np.uint8), bm.view(np.uint8))


def test_fsdp_submit_pair_matches_async_composition():
    """workloads.fsdp optimal mode (submit-based) must be bit-identical in
    virtual time to the manual ``*_async`` composition of the same pair."""
    from repro.bench import coarse_config, make_fabric
    from repro.workloads.fsdp import _ag_data, _rs_data, run_concurrent_pair

    chunk = 16 * KiB
    cfg = coarse_config(chunk, n_chains=P)
    res = run_concurrent_pair(make_fabric(P, mtu=chunk), "optimal", 64 * KiB,
                              config=cfg)
    assert res.correct

    fabric = make_fabric(P, mtu=chunk)
    comm = Communicator(fabric, config=cfg)
    ag = comm.allgather_async(_ag_data(P, 64 * KiB))
    rs = comm.reduce_scatter_async(_rs_data(P, 64 * KiB * P), algorithm="inc")
    comm.run(ag, rs)
    makespan = max(ag.result().t_end, rs.result().t_end)
    assert res.makespan == makespan
    assert res.ag_duration == ag.result().duration
    assert res.rs_duration == rs.result().duration


def test_allreduce_fast_forward_exact_is_bit_identical():
    """A solo composed allreduce may fold its allgather phase under
    ``fast_forward='exact'`` — and must stay bit-identical to the
    packet-level engine."""
    data = _allreduce_payload(P, P * 1024)

    def run(ff: str):
        cfg = CollectiveConfig(chunk_size=4096, fast_forward=ff)
        comm = make_comm(config=cfg)
        res = comm.allreduce(data, algorithm="inc")
        assert res.verify_allreduce(data)
        return res

    res_ff, res_off = run("exact"), run("off")
    assert res_ff.t_end == res_off.t_end
    assert res_ff.duration == res_off.duration
    for bf, bo in zip(res_ff.buffers, res_off.buffers):
        np.testing.assert_array_equal(bf, bo)
    assert res_off.engine["ff_phases"] == 0


# --------------------------------------------------- the Appendix B bound


@pytest.mark.perf
def test_allreduce_188_hosts_tracks_analytic_bound():
    """Acceptance point: the 188-host composed allreduce, run in the
    bandwidth-bound regime, completes within 10% of the analytic
    ``2·N/B`` chain bound (the Appendix B accounting: the composed chain
    serializes the bytes the concurrent pair overlaps, so bandwidth
    optimality of each phase is exactly what the bound checks)."""
    from repro.bench import coarse_config

    p, shard = 188, 4096
    nbytes = shard * p
    comm = make_comm(p, topo=Topology.testbed_188(), link_gbit=10.0,
                     config=coarse_config(4096, n_chains=p))
    data = [_f32(nbytes // 4, seed=r) for r in range(p)]
    res = comm.allreduce(data, algorithm="inc", segment_bytes=4096)
    assert res.verify_allreduce(data)
    bound = time_composed_allreduce(nbytes, p, gbit_per_s(10.0))
    ratio = res.duration / bound
    assert 1.0 <= ratio <= 1.10, (
        f"188-host allreduce {res.duration * 1e6:.1f}us vs analytic bound "
        f"{bound * 1e6:.1f}us (ratio {ratio:.3f}, want <= 1.10)")


# ---------------------------------------------------------- crash semantics


def _crash_cfg():
    return CollectiveConfig(chunk_size=4096,
                            failure_policy=FailurePolicy.DEGRADE)


def test_allreduce_rs_phase_crash_aborts_typed():
    """A fail-stop while the INC reduce-scatter is in flight poisons the
    reduction — the composed collective aborts with a typed error naming
    the phase and the dead rank."""
    comm = make_comm(config=_crash_cfg(), seed=41)
    comm.fabric.schedule_crash(CrashSpec(at=5e-6, host=9))
    data = _allreduce_payload(P, P * 1024)
    handle = comm.allreduce_async(data, algorithm="inc")
    assert isinstance(handle, ComposedHandle)
    with pytest.raises(CollectiveAbortedError) as exc:
        comm.run(handle)
    err = exc.value
    assert err.kind == "allreduce"
    assert err.phase == "reduce_scatter"
    assert list(err.dead_ranks) == [9]


def test_allreduce_ag_phase_crash_degrades():
    """A fail-stop after the reduction, inside the allgather window,
    rides the engine's liveness/DEGRADE machinery: survivors complete
    with the dead rank's shard masked invalid and every other shard
    byte-correct (mask-aware verify_allreduce)."""
    data = _allreduce_payload(P, P * 1024)
    clean = make_comm(config=_crash_cfg(), seed=42)
    res_clean = clean.allreduce(data, algorithm="inc")
    rs_end = res_clean.phases[0].t_end
    ag_end = res_clean.phases[1].t_end
    assert rs_end < ag_end

    comm = make_comm(config=_crash_cfg(), seed=42)
    comm.fabric.schedule_crash(
        CrashSpec(at=rs_end + 0.25 * (ag_end - rs_end), host=11))
    res = comm.allreduce(data, algorithm="inc")
    assert res.degraded and res.dead_ranks == [11]
    assert res.validity is not None
    assert res.verify_allreduce(data)
    assert [ph.name for ph in res.phases] == ["reduce_scatter", "allgather"]


def test_submit_rejects_baseline_kinds_on_dead_membership():
    """Once a rank is known dead, reductions and the unicast exchange are
    rejected at submit time (no degraded story exists for them) while the
    engine kinds still run degraded."""
    comm = make_comm(config=_crash_cfg(), seed=43)
    comm.fabric.schedule_crash(CrashSpec(at=10e-6, host=3))
    bcast = comm.broadcast(0, _u8(128 * KiB))
    assert bcast.degraded and comm.dead_ranks == {3}

    for kind in ("reduce_scatter", "reduce", "allreduce", "alltoall"):
        req = (CollectiveRequest(kind=kind, data=[_f32(P * 256)] * P, root=0)
               if kind == "reduce"
               else CollectiveRequest(kind=kind, data=[_f32(P * 256)] * P))
        with pytest.raises(CollectiveAbortedError) as exc:
            comm.submit(req)
        assert exc.value.phase == "submit"

    # The engine kinds still degrade instead of refusing.
    res = comm.allgather([_u8(16 * KiB, seed=r) for r in range(P)])
    assert res.degraded and res.dead_ranks == [3]
