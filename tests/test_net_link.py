"""Unit tests for channels: serialization, latency, drops, reordering."""

import numpy as np
import pytest

from repro.net.faults import GilbertElliott, StragglerSpec, Window
from repro.net.link import Channel, FaultSpec
from repro.net.packet import Packet, PacketKind, mcast_dst
from repro.sim import RandomStreams, Simulator


class SinkNode:
    """Collects (time, packet) deliveries."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def receive(self, packet, channel):
        self.received.append((self.sim.now, packet))


def make_channel(sim, sink, bandwidth=1e9, latency=1e-6, fault=None, seed=0):
    rng = RandomStreams(seed=seed).stream("test-chan")
    return Channel(sim, "a", "b", sink, bandwidth, latency, fault=fault, rng=rng)


def pkt(n=1000, kind=PacketKind.UD_SEND, header=64, **kw):
    return Packet(src=0, dst=1, kind=kind, payload_len=n, header_bytes=header, **kw)


def test_serialization_plus_latency():
    sim = Simulator()
    sink = SinkNode(sim)
    ch = make_channel(sim, sink, bandwidth=1e9, latency=5e-6)
    ch.transmit(pkt(n=1000, header=0))  # 1000 B at 1 GB/s = 1 µs
    sim.run()
    assert len(sink.received) == 1
    assert sink.received[0][0] == pytest.approx(1e-6 + 5e-6)


def test_back_to_back_packets_queue_on_wire():
    sim = Simulator()
    sink = SinkNode(sim)
    ch = make_channel(sim, sink, bandwidth=1e9, latency=0.0)
    ch.transmit(pkt(n=1000, header=0))
    ch.transmit(pkt(n=1000, header=0))
    sim.run()
    times = [t for t, _ in sink.received]
    assert times == [pytest.approx(1e-6), pytest.approx(2e-6)]


def test_header_bytes_count_on_wire():
    sim = Simulator()
    sink = SinkNode(sim)
    ch = make_channel(sim, sink, bandwidth=1e9, latency=0.0)
    ch.transmit(pkt(n=1000, header=64))
    sim.run()
    assert ch.bytes_sent == 1064
    assert ch.payload_bytes_sent == 1000


def test_transmit_returns_finish_time():
    sim = Simulator()
    sink = SinkNode(sim)
    ch = make_channel(sim, sink, bandwidth=1e9, latency=1.0)
    finish = ch.transmit(pkt(n=1000, header=0))
    assert finish == pytest.approx(1e-6)  # latency excluded


def test_counters_accumulate():
    sim = Simulator()
    sink = SinkNode(sim)
    ch = make_channel(sim, sink)
    for _ in range(5):
        ch.transmit(pkt(n=100))
    sim.run()
    assert ch.packets_sent == 5
    assert ch.bytes_sent == 5 * (100 + 64)
    ch.reset_counters()
    assert ch.packets_sent == 0


def test_deterministic_seq_drop():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(drop_packet_seqs={1, 3})
    ch = make_channel(sim, sink, fault=fault)
    for _ in range(5):
        ch.transmit(pkt())
    sim.run()
    assert len(sink.received) == 3
    assert ch.packets_dropped == 2


def test_drop_predicate():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(drop_predicate=lambda p, seq: p.imm == 7)
    ch = make_channel(sim, sink, fault=fault)
    ch.transmit(pkt(imm=7))
    ch.transmit(pkt(imm=8))
    sim.run()
    assert [p.imm for _, p in sink.received] == [8]


def test_bernoulli_drops_reproducible():
    def run(seed):
        sim = Simulator()
        sink = SinkNode(sim)
        ch = make_channel(sim, sink, fault=FaultSpec(drop_prob=0.3), seed=seed)
        for _ in range(100):
            ch.transmit(pkt())
        sim.run()
        return len(sink.received)

    assert run(1) == run(1)
    assert 40 <= run(1) <= 95  # roughly 70% delivery


def test_reliable_kinds_immune_to_drops():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(drop_prob=1.0)
    ch = make_channel(sim, sink, fault=fault)
    ch.transmit(pkt(kind=PacketKind.RC_SEND))
    ch.transmit(pkt(kind=PacketKind.RC_WRITE))
    ch.transmit(pkt(kind=PacketKind.UD_SEND))  # this one drops
    sim.run()
    kinds = {p.kind for _, p in sink.received}
    assert kinds == {PacketKind.RC_SEND, PacketKind.RC_WRITE}


def test_unprotected_fault_hits_reliable_kinds():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(drop_prob=1.0, protect_reliable=False)
    ch = make_channel(sim, sink, fault=fault)
    ch.transmit(pkt(kind=PacketKind.RC_SEND))
    sim.run()
    assert sink.received == []


def test_dropped_packet_still_occupies_wire():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(drop_packet_seqs={0})
    ch = make_channel(sim, sink, bandwidth=1e9, latency=0.0, fault=fault)
    ch.transmit(pkt(n=1000, header=0))  # dropped, but occupies 1 µs
    ch.transmit(pkt(n=1000, header=0))
    sim.run()
    assert sink.received[0][0] == pytest.approx(2e-6)


def test_reorder_jitter_causes_out_of_order():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(reorder_jitter=50e-6)
    ch = make_channel(sim, sink, bandwidth=1e12, latency=0.0, fault=fault, seed=3)
    for i in range(50):
        ch.transmit(pkt(imm=i))
    sim.run()
    order = [p.imm for _, p in sink.received]
    assert sorted(order) == list(range(50))
    assert order != list(range(50))  # actually reordered


def test_multicast_flag_encoding():
    p = Packet(src=0, dst=mcast_dst(5), kind=PacketKind.UD_SEND, payload_len=10)
    assert p.is_multicast and p.mcast_gid == 5
    q = pkt()
    assert not q.is_multicast
    with pytest.raises(ValueError):
        _ = q.mcast_gid


def test_clone_for_fanout_shares_payload():
    buf = np.arange(10, dtype=np.uint8)
    p = Packet(src=0, dst=mcast_dst(0), kind=PacketKind.UD_SEND, payload=buf)
    c = p.clone_for_fanout()
    assert c.payload is p.payload
    assert c.pkt_id != p.pkt_id
    assert c.payload_len == 10


def test_invalid_channel_params():
    sim = Simulator()
    sink = SinkNode(sim)
    with pytest.raises(ValueError):
        Channel(sim, "a", "b", sink, bandwidth=0, latency=0)
    with pytest.raises(ValueError):
        Channel(sim, "a", "b", sink, bandwidth=1e9, latency=-1)


# ----------------------------------------------------- FaultSpec validation


def test_faultspec_rejects_bad_drop_prob():
    with pytest.raises(ValueError, match="drop_prob"):
        FaultSpec(drop_prob=-0.1)
    with pytest.raises(ValueError, match="drop_prob"):
        FaultSpec(drop_prob=1.5)


def test_faultspec_rejects_negative_jitter():
    with pytest.raises(ValueError, match="reorder_jitter"):
        FaultSpec(reorder_jitter=-1e-6)


def test_faultspec_rejects_negative_seq():
    with pytest.raises(ValueError, match="drop_packet_seqs"):
        FaultSpec(drop_packet_seqs={-1, 3})


def test_faultspec_normalizes_window_tuples():
    spec = FaultSpec(flap_windows=[(1.0, 2.0)], bandwidth_windows=[(0.0, 1.0, 0.5)])
    assert all(isinstance(w, Window) for w in spec.flap_windows)
    assert spec.in_flap(1.5) and not spec.in_flap(2.0)  # half-open
    assert spec.bandwidth_factor(0.5) == 0.5
    assert spec.bandwidth_factor(1.0) == 1.0


def test_window_validation():
    with pytest.raises(ValueError):
        Window(start=-1.0, end=2.0)
    with pytest.raises(ValueError):
        Window(start=2.0, end=1.0)
    with pytest.raises(ValueError):
        Window(start=0.0, end=1.0, factor=0.0)


def test_gilbert_elliott_validation_and_stationary_rate():
    with pytest.raises(ValueError, match="p_good_bad"):
        GilbertElliott(p_good_bad=1.2, p_bad_good=0.5)
    ge = GilbertElliott(p_good_bad=0.01, p_bad_good=0.19, drop_bad=1.0)
    assert ge.mean_burst_packets == pytest.approx(1 / 0.19)
    assert ge.expected_loss_rate() == pytest.approx(0.05)


def test_faultspec_clone_is_independent():
    spec = FaultSpec(drop_packet_seqs={1, 2})
    copy = spec.clone()
    copy.drop_packet_seqs.add(9)
    assert 9 not in spec.drop_packet_seqs


# --------------------------------------------------- time-varying schedules


def test_gilbert_elliott_losses_are_bursty():
    """Same stationary loss rate, but GE losses cluster into runs."""
    sim = Simulator()
    sink = SinkNode(sim)
    ge = GilbertElliott(p_good_bad=0.02, p_bad_good=0.2, drop_bad=1.0)
    ch = make_channel(sim, sink, bandwidth=1e12, fault=FaultSpec(gilbert_elliott=ge),
                      seed=7)
    n = 4000
    for i in range(n):
        ch.transmit(pkt(imm=i))
    sim.run()
    got = {p.imm for _, p in sink.received}
    lost = [i for i in range(n) if i not in got]
    assert 0 < len(lost) < n
    # Loss rate near the stationary expectation...
    assert len(lost) / n == pytest.approx(ge.expected_loss_rate(), rel=0.5)
    # ...and clustered: mean run length well above the ~1.02 of Bernoulli.
    runs, cur = [], 1
    for a, b in zip(lost, lost[1:]):
        if b == a + 1:
            cur += 1
        else:
            runs.append(cur)
            cur = 1
    runs.append(cur)
    assert sum(runs) / len(runs) > 2.0


def test_flap_window_drops_everything_inside_only():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(flap_windows=[(2e-6, 4e-6)])
    ch = make_channel(sim, sink, bandwidth=1e9, latency=0.0, fault=fault)
    # 1000 B at 1 GB/s = 1 µs serialization each, queued back to back; the
    # drop decision is taken at transmit-queue time.
    for i in range(6):
        sim.call_at(i * 1e-6, ch.transmit, pkt(n=1000, header=0, imm=i))
    sim.run()
    delivered = sorted(p.imm for _, p in sink.received)
    assert delivered == [0, 1, 4, 5]
    assert ch.packets_dropped == 2


def test_flap_respects_protect_reliable():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(flap_windows=[(0.0, 1.0)])
    ch = make_channel(sim, sink, fault=fault)
    ch.transmit(pkt(kind=PacketKind.RC_SEND))
    ch.transmit(pkt(kind=PacketKind.UD_SEND))
    sim.run()
    assert [p.kind for _, p in sink.received] == [PacketKind.RC_SEND]


def test_bandwidth_window_slows_serialization():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(bandwidth_windows=[(0.0, 1.0, 0.25)])
    ch = make_channel(sim, sink, bandwidth=1e9, latency=0.0, fault=fault)
    finish = ch.transmit(pkt(n=1000, header=0))
    assert finish == pytest.approx(4e-6)  # 1 µs nominal / 0.25
    sim.run()
    # Outside the window the nominal rate is restored.
    sim2 = Simulator()
    sink2 = SinkNode(sim2)
    ch2 = make_channel(sim2, sink2, bandwidth=1e9, latency=0.0,
                       fault=FaultSpec(bandwidth_windows=[(10.0, 11.0, 0.25)]))
    assert ch2.transmit(pkt(n=1000, header=0)) == pytest.approx(1e-6)


def test_bandwidth_window_applies_to_reliable_traffic_too():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(bandwidth_windows=[(0.0, 1.0, 0.5)])
    ch = make_channel(sim, sink, bandwidth=1e9, latency=0.0, fault=fault)
    finish = ch.transmit(pkt(n=1000, header=0, kind=PacketKind.RC_WRITE))
    assert finish == pytest.approx(2e-6)


def test_straggler_spec_delay_windows():
    spec = StragglerSpec(windows=[(1.0, 2.0)], extra_poll_delay=5e-6)
    assert spec.delay_at(0.5) == 0.0
    assert spec.delay_at(1.5) == 5e-6
    assert spec.delay_at(2.0) == 0.0
    with pytest.raises(ValueError):
        StragglerSpec(windows=[], extra_poll_delay=-1.0)
