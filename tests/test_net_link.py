"""Unit tests for channels: serialization, latency, drops, reordering."""

import numpy as np
import pytest

from repro.net.link import Channel, FaultSpec
from repro.net.packet import Packet, PacketKind, mcast_dst
from repro.sim import RandomStreams, Simulator


class SinkNode:
    """Collects (time, packet) deliveries."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def receive(self, packet, channel):
        self.received.append((self.sim.now, packet))


def make_channel(sim, sink, bandwidth=1e9, latency=1e-6, fault=None, seed=0):
    rng = RandomStreams(seed=seed).stream("test-chan")
    return Channel(sim, "a", "b", sink, bandwidth, latency, fault=fault, rng=rng)


def pkt(n=1000, kind=PacketKind.UD_SEND, header=64, **kw):
    return Packet(src=0, dst=1, kind=kind, payload_len=n, header_bytes=header, **kw)


def test_serialization_plus_latency():
    sim = Simulator()
    sink = SinkNode(sim)
    ch = make_channel(sim, sink, bandwidth=1e9, latency=5e-6)
    ch.transmit(pkt(n=1000, header=0))  # 1000 B at 1 GB/s = 1 µs
    sim.run()
    assert len(sink.received) == 1
    assert sink.received[0][0] == pytest.approx(1e-6 + 5e-6)


def test_back_to_back_packets_queue_on_wire():
    sim = Simulator()
    sink = SinkNode(sim)
    ch = make_channel(sim, sink, bandwidth=1e9, latency=0.0)
    ch.transmit(pkt(n=1000, header=0))
    ch.transmit(pkt(n=1000, header=0))
    sim.run()
    times = [t for t, _ in sink.received]
    assert times == [pytest.approx(1e-6), pytest.approx(2e-6)]


def test_header_bytes_count_on_wire():
    sim = Simulator()
    sink = SinkNode(sim)
    ch = make_channel(sim, sink, bandwidth=1e9, latency=0.0)
    ch.transmit(pkt(n=1000, header=64))
    sim.run()
    assert ch.bytes_sent == 1064
    assert ch.payload_bytes_sent == 1000


def test_transmit_returns_finish_time():
    sim = Simulator()
    sink = SinkNode(sim)
    ch = make_channel(sim, sink, bandwidth=1e9, latency=1.0)
    finish = ch.transmit(pkt(n=1000, header=0))
    assert finish == pytest.approx(1e-6)  # latency excluded


def test_counters_accumulate():
    sim = Simulator()
    sink = SinkNode(sim)
    ch = make_channel(sim, sink)
    for _ in range(5):
        ch.transmit(pkt(n=100))
    sim.run()
    assert ch.packets_sent == 5
    assert ch.bytes_sent == 5 * (100 + 64)
    ch.reset_counters()
    assert ch.packets_sent == 0


def test_deterministic_seq_drop():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(drop_packet_seqs={1, 3})
    ch = make_channel(sim, sink, fault=fault)
    for _ in range(5):
        ch.transmit(pkt())
    sim.run()
    assert len(sink.received) == 3
    assert ch.packets_dropped == 2


def test_drop_predicate():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(drop_predicate=lambda p, seq: p.imm == 7)
    ch = make_channel(sim, sink, fault=fault)
    ch.transmit(pkt(imm=7))
    ch.transmit(pkt(imm=8))
    sim.run()
    assert [p.imm for _, p in sink.received] == [8]


def test_bernoulli_drops_reproducible():
    def run(seed):
        sim = Simulator()
        sink = SinkNode(sim)
        ch = make_channel(sim, sink, fault=FaultSpec(drop_prob=0.3), seed=seed)
        for _ in range(100):
            ch.transmit(pkt())
        sim.run()
        return len(sink.received)

    assert run(1) == run(1)
    assert 40 <= run(1) <= 95  # roughly 70% delivery


def test_reliable_kinds_immune_to_drops():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(drop_prob=1.0)
    ch = make_channel(sim, sink, fault=fault)
    ch.transmit(pkt(kind=PacketKind.RC_SEND))
    ch.transmit(pkt(kind=PacketKind.RC_WRITE))
    ch.transmit(pkt(kind=PacketKind.UD_SEND))  # this one drops
    sim.run()
    kinds = {p.kind for _, p in sink.received}
    assert kinds == {PacketKind.RC_SEND, PacketKind.RC_WRITE}


def test_unprotected_fault_hits_reliable_kinds():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(drop_prob=1.0, protect_reliable=False)
    ch = make_channel(sim, sink, fault=fault)
    ch.transmit(pkt(kind=PacketKind.RC_SEND))
    sim.run()
    assert sink.received == []


def test_dropped_packet_still_occupies_wire():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(drop_packet_seqs={0})
    ch = make_channel(sim, sink, bandwidth=1e9, latency=0.0, fault=fault)
    ch.transmit(pkt(n=1000, header=0))  # dropped, but occupies 1 µs
    ch.transmit(pkt(n=1000, header=0))
    sim.run()
    assert sink.received[0][0] == pytest.approx(2e-6)


def test_reorder_jitter_causes_out_of_order():
    sim = Simulator()
    sink = SinkNode(sim)
    fault = FaultSpec(reorder_jitter=50e-6)
    ch = make_channel(sim, sink, bandwidth=1e12, latency=0.0, fault=fault, seed=3)
    for i in range(50):
        ch.transmit(pkt(imm=i))
    sim.run()
    order = [p.imm for _, p in sink.received]
    assert sorted(order) == list(range(50))
    assert order != list(range(50))  # actually reordered


def test_multicast_flag_encoding():
    p = Packet(src=0, dst=mcast_dst(5), kind=PacketKind.UD_SEND, payload_len=10)
    assert p.is_multicast and p.mcast_gid == 5
    q = pkt()
    assert not q.is_multicast
    with pytest.raises(ValueError):
        _ = q.mcast_gid


def test_clone_for_fanout_shares_payload():
    buf = np.arange(10, dtype=np.uint8)
    p = Packet(src=0, dst=mcast_dst(0), kind=PacketKind.UD_SEND, payload=buf)
    c = p.clone_for_fanout()
    assert c.payload is p.payload
    assert c.pkt_id != p.pkt_id
    assert c.payload_len == 10


def test_invalid_channel_params():
    sim = Simulator()
    sink = SinkNode(sim)
    with pytest.raises(ValueError):
        Channel(sim, "a", "b", sink, bandwidth=0, latency=0)
    with pytest.raises(ValueError):
        Channel(sim, "a", "b", sink, bandwidth=1e9, latency=-1)
