"""Integration tests: the multicast Broadcast/Allgather protocol end-to-end."""

import numpy as np
import pytest

from repro.core import CollectiveConfig, Communicator
from repro.core.costmodel import HostCostModel
from repro.net import Fabric, Topology
from repro.net.link import FaultSpec
from repro.sim import RandomStreams, Simulator
from repro.units import gbit_per_s, kib


def make_comm(n_hosts=4, topo=None, config=None, seed=0, **fabric_kw):
    sim = Simulator()
    fabric = Fabric(
        sim,
        topo or Topology.star(n_hosts),
        link_bandwidth=gbit_per_s(56),
        streams=RandomStreams(seed=seed),
        **fabric_kw,
    )
    return Communicator(fabric, config=config)


def rank_data(rank, nbytes):
    rng = np.random.default_rng(1000 + rank)
    return rng.integers(0, 256, size=nbytes, dtype=np.uint8)


# ------------------------------------------------------------------ broadcast


def test_broadcast_star_correct():
    comm = make_comm(4)
    data = rank_data(0, kib(64))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    assert result.duration > 0


def test_broadcast_nonzero_root():
    comm = make_comm(4)
    data = rank_data(2, kib(16))
    result = comm.broadcast(2, data)
    assert result.verify_broadcast(data)


def test_broadcast_leaf_spine():
    comm = make_comm(8, topo=Topology.leaf_spine(8, n_leaf=2, n_spine=2))
    data = rank_data(0, kib(128))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)


def test_broadcast_back_to_back():
    comm = make_comm(2, topo=Topology.back_to_back())
    data = rank_data(0, kib(32))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)


def test_broadcast_single_rank():
    comm = make_comm(1)
    data = rank_data(0, 1000)
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)


def test_broadcast_non_chunk_multiple_size():
    comm = make_comm(4)
    data = rank_data(0, 10000)  # not a multiple of 4096
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)


def test_broadcast_traffic_is_bandwidth_optimal_on_star():
    """Every byte crosses each switch egress port exactly once: switch
    traffic == (P-1) * N payload for a star."""
    comm = make_comm(4)
    data = rank_data(0, kib(64))
    result = comm.broadcast(0, data)
    payload = result.traffic["switch_payload_bytes"]
    # 3 leaves get one copy each; control messages add a little.
    assert payload >= 3 * kib(64)
    assert payload < 3 * kib(64) * 1.05


def test_broadcast_phases_recorded():
    comm = make_comm(4)
    result = comm.broadcast(0, rank_data(0, kib(64)))
    for rs in result.ranks:
        assert rs.breakdown.total > 0
        assert rs.breakdown.sync >= 0
        assert rs.breakdown.multicast >= 0
        assert rs.breakdown.handshake >= 0


# ------------------------------------------------------------------ allgather


def test_allgather_star_correct():
    comm = make_comm(4)
    data = [rank_data(r, kib(16)) for r in range(4)]
    result = comm.allgather(data)
    assert result.verify_allgather(data)


def test_allgather_leaf_spine_correct():
    comm = make_comm(8, topo=Topology.leaf_spine(8, n_leaf=2, n_spine=2))
    data = [rank_data(r, kib(32)) for r in range(8)]
    result = comm.allgather(data)
    assert result.verify_allgather(data)


def test_allgather_small_buffers():
    comm = make_comm(4)
    data = [rank_data(r, 512) for r in range(4)]
    result = comm.allgather(data)
    assert result.verify_allgather(data)


def test_allgather_two_ranks():
    comm = make_comm(2, topo=Topology.back_to_back())
    data = [rank_data(r, kib(8)) for r in range(2)]
    result = comm.allgather(data)
    assert result.verify_allgather(data)


def test_allgather_multiple_chains():
    config = CollectiveConfig(n_chains=2)
    comm = make_comm(8, config=config)
    data = [rank_data(r, kib(16)) for r in range(8)]
    result = comm.allgather(data)
    assert result.verify_allgather(data)


def test_allgather_multiple_subgroups():
    config = CollectiveConfig(n_subgroups=4)
    comm = make_comm(4, config=config)
    data = [rank_data(r, kib(64)) for r in range(4)]
    result = comm.allgather(data)
    assert result.verify_allgather(data)


def test_allgather_uc_transport():
    config = CollectiveConfig(transport="uc", chunk_size=kib(16))
    comm = make_comm(4, config=config)
    data = [rank_data(r, kib(64)) for r in range(4)]
    result = comm.allgather(data)
    assert result.verify_allgather(data)


def test_allgather_send_bandwidth_constant():
    """The defining property: each rank injects ~N bytes regardless of P."""
    injected = {}
    for p in (4, 8):
        comm = make_comm(p, topo=Topology.leaf_spine(p, 2, 2))
        data = [rank_data(r, kib(32)) for r in range(p)]
        before = comm.fabric.host_injected_bytes(payload_only=True)
        result = comm.allgather(data)
        assert result.verify_allgather(data)
        after = comm.fabric.host_injected_bytes(payload_only=True)
        injected[p] = (after - before) / p  # per-rank average
    # Per-rank injection is ≈ N (plus small control traffic), independent of P.
    assert injected[8] < injected[4] * 1.5
    for p, per_rank in injected.items():
        assert per_rank < kib(32) * 1.6, f"P={p}: injected {per_rank}"


def test_allgather_misaligned_size_rejected():
    comm = make_comm(4)
    data = [rank_data(r, 6000) for r in range(4)]  # not chunk-aligned
    with pytest.raises(ValueError, match="multiple of the chunk"):
        comm.allgather(data)


# ---------------------------------------------------------------- reliability


def test_broadcast_recovers_from_deterministic_drops():
    comm = make_comm(4)
    # Drop the first three multicast datagrams leaving the switch to h2.
    comm.fabric.set_fault("sw000", "h2", FaultSpec(drop_packet_seqs={0, 1, 2}))
    data = rank_data(0, kib(64))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    assert result.counter_total("recovered_chunks") == 3
    assert result.counter_total("recoveries") >= 1


def test_broadcast_recovers_from_random_drops():
    comm = make_comm(4, seed=42)
    comm.fabric.set_fault_all(lambda s, d: FaultSpec(drop_prob=0.05))
    data = rank_data(0, kib(128))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    assert result.counter_total("recovered_chunks") > 0


def test_allgather_recovers_from_random_drops():
    comm = make_comm(4, seed=7)
    comm.fabric.set_fault_all(lambda s, d: FaultSpec(drop_prob=0.03))
    data = [rank_data(r, kib(32)) for r in range(4)]
    result = comm.allgather(data)
    assert result.verify_allgather(data)


def test_broadcast_with_reordering():
    comm = make_comm(4, seed=3)
    comm.fabric.set_fault_all(lambda s, d: FaultSpec(reorder_jitter=20e-6))
    data = rank_data(0, kib(256))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)


def test_allgather_with_drops_and_reordering():
    comm = make_comm(4, seed=11)
    comm.fabric.set_fault_all(
        lambda s, d: FaultSpec(drop_prob=0.02, reorder_jitter=10e-6)
    )
    data = [rank_data(r, kib(16)) for r in range(4)]
    result = comm.allgather(data)
    assert result.verify_allgather(data)


def test_recursive_fetch_chain():
    """Drop the same chunk toward two adjacent ranks: the downstream one
    must fetch from an upstream neighbor that is itself recovering."""
    comm = make_comm(4)
    comm.fabric.set_fault("sw000", "h1", FaultSpec(drop_packet_seqs={0}))
    comm.fabric.set_fault("sw000", "h2", FaultSpec(drop_packet_seqs={0}))
    data = rank_data(0, kib(64))
    result = comm.broadcast(0, data)
    assert result.verify_broadcast(data)
    assert result.counter_total("recovered_chunks") == 2


# ----------------------------------------------------------------- overlap


def test_two_concurrent_broadcasts():
    comm = make_comm(4)
    d0 = rank_data(0, kib(32))
    d1 = rank_data(1, kib(32))
    h0 = comm.broadcast_async(0, d0)
    h1 = comm.broadcast_async(1, d1)
    comm.run(h0, h1)
    r0, r1 = h0.result(), h1.result()
    assert r0.verify_broadcast(d0)
    assert r1.verify_broadcast(d1)


def test_concurrent_broadcast_and_allgather():
    comm = make_comm(4)
    bd = rank_data(9, kib(32))
    ad = [rank_data(r, kib(16)) for r in range(4)]
    hb = comm.broadcast_async(1, bd)
    ha = comm.allgather_async(ad)
    comm.run(hb, ha)
    assert hb.result().verify_broadcast(bd)
    assert ha.result().verify_allgather(ad)


# -------------------------------------------------------------------- timing


def test_broadcast_time_scales_with_size():
    comm = make_comm(4, config=CollectiveConfig(cost=HostCostModel.free()))
    r_small = comm.broadcast(0, rank_data(0, kib(64)))
    comm2 = make_comm(4, config=CollectiveConfig(cost=HostCostModel.free()))
    r_large = comm2.broadcast(0, rank_data(0, kib(512)))
    assert r_large.duration > r_small.duration


def test_broadcast_constant_time_in_p():
    """The headline property (§III): broadcast time is ~independent of P."""
    durations = {}
    for p in (4, 16):
        comm = make_comm(p, config=CollectiveConfig(cost=HostCostModel.free()))
        durations[p] = comm.broadcast(0, rank_data(0, kib(256))).duration
    # Allow slack for the log(P) barrier, but nothing like a 4x tree cost.
    assert durations[16] < durations[4] * 1.35


def test_sync_fraction_shrinks_with_message_size():
    """Fig 10 shape: synchronization dominates small messages only."""
    comm = make_comm(8)
    small = comm.broadcast(0, rank_data(0, 4096)).phase_means()
    comm2 = make_comm(8)
    large = comm2.broadcast(0, rank_data(0, kib(1024))).phase_means()
    assert large.sync_fraction < small.sync_fraction
