"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``demo``
    The quickstart scenario: Broadcast + Allgather on a 16-host fat-tree,
    verified, with timing and telemetry.
``experiments``
    List every paper table/figure and the benchmark that regenerates it.
``speedup [P ...]``
    Appendix B's concurrent {Allgather, Reduce-Scatter} speedup at the
    given communicator sizes (default 4 8 16).
``table1``
    The DPA single-thread metrics of Table I.
``trace [--out F] [--hosts N] [--bytes B] [--lossy] [--seed S]``
    Run a traced broadcast and write a Chrome/Perfetto trace-event JSON
    (open it at chrome://tracing or https://ui.perfetto.dev).
``tune [--collective C] [--hosts N] [--bytes B] [...] | --list | --show REF``
    Run (or recall from the profile store) a cost-model-guided knob
    search for one deployment point; inspect stored profiles.
"""

from __future__ import annotations

import sys

import numpy as np


def _demo() -> int:
    from repro import Communicator, Fabric, Simulator, Topology
    from repro.units import KiB, gbit_per_s, pretty_rate

    fabric = Fabric(Simulator(), Topology.leaf_spine(16, 4, 2),
                    link_bandwidth=gbit_per_s(56))
    comm = Communicator(fabric)
    data = [np.full(64 * KiB, r % 251, dtype=np.uint8) for r in range(comm.size)]
    res = comm.allgather(data)
    ok = res.verify_allgather(data)
    print(f"allgather x{comm.size} of 64 KiB: {res.duration * 1e6:.1f} µs, "
          f"{pretty_rate(res.throughput)}, data {'OK' if ok else 'CORRUPT'}")
    return 0 if ok else 1


def _experiments() -> int:
    rows = [
        ("Table I", "benchmarks/bench_table1_dpa_single_thread.py"),
        ("Figure 2", "benchmarks/bench_fig02_traffic_model.py"),
        ("Figure 3", "benchmarks/bench_fig03_node_boundary.py"),
        ("Figure 5", "benchmarks/bench_fig05_cpu_vs_dpa.py"),
        ("Figure 7", "benchmarks/bench_fig07_bitmap_memory.py"),
        ("Figure 10", "benchmarks/bench_fig10_critical_path.py"),
        ("Figure 11", "benchmarks/bench_fig11_throughput_188.py"),
        ("Figure 12", "benchmarks/bench_fig12_traffic_savings.py"),
        ("Figure 13", "benchmarks/bench_fig13_dpa_thread_scaling.py"),
        ("Figure 14", "benchmarks/bench_fig14_dpa_msg_scaling.py"),
        ("Figure 15", "benchmarks/bench_fig15_uc_chunk_size.py"),
        ("Figure 16", "benchmarks/bench_fig16_tbit_scaling.py"),
        ("Appendix B", "benchmarks/bench_appb_speedup.py"),
        ("Ablation: chains", "benchmarks/bench_ablation_chains.py"),
        ("Ablation: workers", "benchmarks/bench_ablation_workers.py"),
    ]
    width = max(len(a) for a, _ in rows)
    for name, path in rows:
        print(f"{name.ljust(width)}  pytest {path} --benchmark-only")
    return 0


def _speedup(args: list) -> int:
    from repro.bench import coarse_config, make_fabric
    from repro.models import concurrent_speedup
    from repro.units import KiB
    from repro.workloads import run_concurrent_pair

    sizes = [int(a) for a in args] or [4, 8, 16]
    chunk = 16 * KiB
    for p in sizes:
        ring = run_concurrent_pair(make_fabric(p, mtu=chunk), "ring", 64 * KiB)
        opt = run_concurrent_pair(make_fabric(p, mtu=chunk), "optimal", 64 * KiB,
                                  config=coarse_config(chunk, n_chains=p))
        print(f"P={p}: measured {ring.makespan / opt.makespan:.2f}x, "
              f"paper S=2-2/P = {concurrent_speedup(p):.2f}x")
    return 0


def _table1() -> int:
    from repro.dpa import dpa_single_thread_metrics

    for t in ("uc", "ud"):
        m = dpa_single_thread_metrics(t)
        print(f"{t.upper()}: {m.throughput_gib_s:.1f} GiB/s, "
              f"{m.instructions_per_cqe} instr/CQE, "
              f"{m.cycles_per_cqe} cycles/CQE, IPC {m.ipc}")
    return 0


def _trace(args: list) -> int:
    import argparse

    from repro.core.communicator import CollectiveConfig, Communicator
    from repro.net.fabric import Fabric
    from repro.net.faults import GilbertElliott
    from repro.net.link import FaultSpec
    from repro.net.topology import Topology
    from repro.obs import TraceConfig, write_chrome_trace
    from repro.sim.engine import Simulator
    from repro.sim.random import RandomStreams
    from repro.units import KiB, gbit_per_s

    ap = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run a traced broadcast and export a Chrome trace.")
    ap.add_argument("--out", default="trace.json", help="output JSON path")
    ap.add_argument("--hosts", type=int, default=16)
    ap.add_argument("--bytes", type=int, default=64 * KiB)
    ap.add_argument("--lossy", action="store_true",
                    help="Gilbert-Elliott loss on every link (exercises the "
                         "reliability tracepoints)")
    ap.add_argument("--seed", type=int, default=0)
    ns = ap.parse_args(args)

    fabric = Fabric(Simulator(), Topology.leaf_spine(ns.hosts, 2, 2),
                    link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(ns.seed))
    if ns.lossy:
        fabric.set_fault_all(lambda s, d: FaultSpec(gilbert_elliott=GilbertElliott(
            p_good_bad=0.02, p_bad_good=0.3, drop_good=0.002, drop_bad=0.15)))
    comm = Communicator(fabric, config=CollectiveConfig(chunk_size=4096),
                        trace=TraceConfig())
    rng = np.random.default_rng(ns.seed)
    data = rng.integers(0, 256, ns.bytes, dtype=np.uint8)
    res = comm.broadcast(0, data)
    ok = res.verify_broadcast(data)
    view = res.trace
    write_chrome_trace(view, ns.out)
    rel = res.reliability_summary()
    print(f"broadcast x{ns.hosts} of {ns.bytes} B: {res.duration * 1e6:.1f} µs, "
          f"data {'OK' if ok else 'CORRUPT'}")
    print(f"trace: {len(view)} events ({view.dropped} dropped), "
          f"{len(view.tracks())} tracks, recoveries={rel['recoveries']}, "
          f"recovered_chunks={rel['recovered_chunks']} -> {ns.out}")
    return 0 if ok else 1


def _tune(args: list) -> int:
    import argparse
    import json

    from repro.bench.runner import format_table
    from repro.tune import ProfileStore, Scenario, autotune
    from repro.tune.scenario import FAULT_PROFILES, TUNABLE_COLLECTIVES

    ap = argparse.ArgumentParser(
        prog="python -m repro tune",
        description="Search (or recall) the best CollectiveConfig for a "
                    "deployment point; repeated runs with the same key are "
                    "pure cache hits served from the profile store.")
    ap.add_argument("--collective", choices=TUNABLE_COLLECTIVES,
                    default="allgather")
    ap.add_argument("--hosts", type=int, default=16)
    ap.add_argument("--topo", default="auto",
                    help="auto | star | leaf_spine | testbed_188 | back_to_back")
    ap.add_argument("--bytes", type=int, default=64 * 1024,
                    help="per-rank payload (keyed by power-of-two bucket)")
    ap.add_argument("--transport", choices=("ud", "uc"), default="ud")
    ap.add_argument("--fault", choices=sorted(FAULT_PROFILES), default="clean")
    ap.add_argument("--link-gbit", type=float, default=56.0)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--max-evals", type=int, default=8,
                    help="simulation budget after cost-model pruning")
    ap.add_argument("--force", action="store_true",
                    help="re-search even on a cache hit")
    ap.add_argument("--no-trace", action="store_true",
                    help="skip observability metrics (faster at scale)")
    ap.add_argument("--store", default=None,
                    help="profile directory (default: the committed store)")
    ap.add_argument("--log", default=None,
                    help="write the per-candidate search log as JSON")
    ap.add_argument("--expect-cache-hit", action="store_true",
                    help="exit 3 unless the profile was served from the "
                         "store without simulating (CI cache check)")
    ap.add_argument("--list", action="store_true", dest="list_profiles",
                    help="list stored profiles and exit")
    ap.add_argument("--show", default=None, metavar="REF",
                    help="print one profile (cache-key or slug prefix)")
    ns = ap.parse_args(args)

    store = ProfileStore(ns.store) if ns.store else ProfileStore.default()

    if ns.list_profiles:
        rows = [
            (p.slug, p.key["collective"], p.key["n_hosts"], p.key["transport"],
             p.key["bucket"], p.key["fault_profile"],
             f"{p.baseline['duration'] * 1e6:.1f}",
             f"{p.best['duration'] * 1e6:.1f}", f"{p.improvement:.2f}x")
            for p in store.profiles()
        ]
        print(format_table(
            ["profile", "coll", "P", "tpt", "bucket", "fault",
             "default µs", "tuned µs", "gain"], rows))
        return 0

    if ns.show is not None:
        profile = store.get(ns.show)
        if profile is None:
            print(f"no profile matching {ns.show!r}")
            return 1
        print(profile.to_json(), end="")
        return 0

    scenario = Scenario(
        collective=ns.collective, n_hosts=ns.hosts, topo=ns.topo,
        link_gbit=ns.link_gbit, transport=ns.transport, msg_bytes=ns.bytes,
        fault_profile=ns.fault, seed=ns.seed)
    result = autotune(scenario, store=store, max_evals=ns.max_evals,
                      force=ns.force, trace=not ns.no_trace)
    profile = result.profile

    origin = "cache hit" if result.cache_hit else "searched"
    print(f"{origin}: {profile.slug} "
          f"(evaluations={result.evaluations}, sim_events={result.sim_events})")
    if result.log:
        rows = []
        for entry in result.log:
            k = entry["knobs"]
            m = entry["measured"]
            pred = entry["predicted"]
            rows.append((
                "default" if entry["baseline"] else "candidate",
                k["chunk_size"], k.get("n_chains", 1), k.get("n_subgroups", 1),
                k.get("batch_size", 32), k.get("staging_slots", 256),
                "-" if pred is None else f"{pred['total'] * 1e6:.1f}",
                f"{m['duration'] * 1e6:.1f}",
            ))
        print(format_table(
            ["kind", "chunk", "chains", "subgrp", "batch", "slots",
             "predicted µs", "measured µs"], rows))
    print(f"best knobs: {json.dumps(profile.knobs, sort_keys=True)}")
    print(f"default {profile.baseline['duration'] * 1e6:.1f} µs -> tuned "
          f"{profile.best['duration'] * 1e6:.1f} µs "
          f"({profile.improvement:.2f}x)  [{result.store_path}]")
    if ns.log is not None:
        with open(ns.log, "w") as fh:
            json.dump({"profile": profile.slug, "cache_hit": result.cache_hit,
                       "log": result.log}, fh, indent=2, sort_keys=True)
        print(f"search log -> {ns.log}")
    if ns.expect_cache_hit and not result.cache_hit:
        print("expected a cache hit but a search ran")
        return 3
    return 0


#: exit code for a typed collective failure (reliability / fail-stop /
#: watchdog) — distinct from usage errors (2) and tune cache misses (3)
EXIT_COLLECTIVE_FAILURE = 4


def _failure_screen(err) -> str:
    """One-screen summary of a typed collective failure.

    Every field the post-mortem needs — rank, phase, retry histogram,
    dead ranks — without the stack trace (``--trace``-style debugging
    belongs in the exported Chrome trace, not on stderr).
    """
    lines = ["=" * 64, f"collective failure: {type(err).__name__}",
             "=" * 64, f"  detail   : {RuntimeError.__str__(err)}"]
    if getattr(err, "rank", None) is not None:
        lines.append(f"  rank     : {err.rank}")
    if getattr(err, "kind", None):
        lines.append(f"  op       : {err.kind} (coll_id={err.coll_id})")
    elif getattr(err, "coll_id", None) is not None:
        lines.append(f"  coll_id  : {err.coll_id}")
    if getattr(err, "phase", None):
        lines.append(f"  phase    : {err.phase}")
    dead = getattr(err, "dead_ranks", None) or getattr(err, "dead", None)
    if dead:
        lines.append(f"  dead     : ranks {sorted(dead)}")
    if getattr(err, "n_chunks", 0):
        lines.append(f"  missing  : {err.missing_chunks}/{err.n_chunks} chunks")
    if getattr(err, "elapsed", None) is not None:
        lines.append(f"  elapsed  : {err.elapsed * 1e6:.1f} µs "
                     f"(deadline {err.deadline * 1e6:.1f} µs)")
    hist = getattr(err, "retry_histogram", None)
    if hist is not None:
        lines.append(f"  retries  : {hist or '[]'} "
                     f"({len(hist)} recoveries, {sum(hist)} fetch rounds)")
    counters = getattr(err, "counters", None)
    if counters:
        body = " ".join(f"{k}={v}" for k, v in sorted(counters.items()) if v)
        lines.append(f"  counters : {body or '(all zero)'}")
    report = getattr(err, "report", None)
    if report:
        lines.append("  diagnostics:")
        lines.extend("    " + ln for ln in report.splitlines())
    lines.append("=" * 64)
    return "\n".join(lines)


def main(argv=None) -> int:
    from repro.core.reliability import (
        CollectiveAbortedError,
        PeerDeadError,
        ReliabilityError,
    )
    from repro.sim.engine import WatchdogError

    argv = list(sys.argv[1:] if argv is None else argv)
    cmd = argv[0] if argv else "demo"
    try:
        if cmd == "demo":
            return _demo()
        if cmd == "experiments":
            return _experiments()
        if cmd == "speedup":
            return _speedup(argv[1:])
        if cmd == "table1":
            return _table1()
        if cmd == "trace":
            return _trace(argv[1:])
        if cmd == "tune":
            return _tune(argv[1:])
    except (ReliabilityError, CollectiveAbortedError, PeerDeadError,
            WatchdogError) as err:
        print(_failure_screen(err), file=sys.stderr)
        return EXIT_COLLECTIVE_FAILURE
    print(__doc__)
    return 0 if cmd in ("-h", "--help", "help") else 2


if __name__ == "__main__":
    raise SystemExit(main())
