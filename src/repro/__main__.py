"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``demo``
    The quickstart scenario: Broadcast + Allgather on a 16-host fat-tree,
    verified, with timing and telemetry.
``experiments``
    List every paper table/figure and the benchmark that regenerates it.
``speedup [P ...]``
    Appendix B's concurrent {Allgather, Reduce-Scatter} speedup at the
    given communicator sizes (default 4 8 16).
``table1``
    The DPA single-thread metrics of Table I.
``trace [--out F] [--hosts N] [--bytes B] [--lossy] [--seed S]``
    Run a traced broadcast and write a Chrome/Perfetto trace-event JSON
    (open it at chrome://tracing or https://ui.perfetto.dev).
"""

from __future__ import annotations

import sys

import numpy as np


def _demo() -> int:
    from repro import Communicator, Fabric, Simulator, Topology
    from repro.units import KiB, gbit_per_s, pretty_rate

    fabric = Fabric(Simulator(), Topology.leaf_spine(16, 4, 2),
                    link_bandwidth=gbit_per_s(56))
    comm = Communicator(fabric)
    data = [np.full(64 * KiB, r % 251, dtype=np.uint8) for r in range(comm.size)]
    res = comm.allgather(data)
    ok = res.verify_allgather(data)
    print(f"allgather x{comm.size} of 64 KiB: {res.duration * 1e6:.1f} µs, "
          f"{pretty_rate(res.throughput)}, data {'OK' if ok else 'CORRUPT'}")
    return 0 if ok else 1


def _experiments() -> int:
    rows = [
        ("Table I", "benchmarks/bench_table1_dpa_single_thread.py"),
        ("Figure 2", "benchmarks/bench_fig02_traffic_model.py"),
        ("Figure 3", "benchmarks/bench_fig03_node_boundary.py"),
        ("Figure 5", "benchmarks/bench_fig05_cpu_vs_dpa.py"),
        ("Figure 7", "benchmarks/bench_fig07_bitmap_memory.py"),
        ("Figure 10", "benchmarks/bench_fig10_critical_path.py"),
        ("Figure 11", "benchmarks/bench_fig11_throughput_188.py"),
        ("Figure 12", "benchmarks/bench_fig12_traffic_savings.py"),
        ("Figure 13", "benchmarks/bench_fig13_dpa_thread_scaling.py"),
        ("Figure 14", "benchmarks/bench_fig14_dpa_msg_scaling.py"),
        ("Figure 15", "benchmarks/bench_fig15_uc_chunk_size.py"),
        ("Figure 16", "benchmarks/bench_fig16_tbit_scaling.py"),
        ("Appendix B", "benchmarks/bench_appb_speedup.py"),
        ("Ablation: chains", "benchmarks/bench_ablation_chains.py"),
        ("Ablation: workers", "benchmarks/bench_ablation_workers.py"),
    ]
    width = max(len(a) for a, _ in rows)
    for name, path in rows:
        print(f"{name.ljust(width)}  pytest {path} --benchmark-only")
    return 0


def _speedup(args: list) -> int:
    from repro.bench import coarse_config, make_fabric
    from repro.models import concurrent_speedup
    from repro.units import KiB
    from repro.workloads import run_concurrent_pair

    sizes = [int(a) for a in args] or [4, 8, 16]
    chunk = 16 * KiB
    for p in sizes:
        ring = run_concurrent_pair(make_fabric(p, mtu=chunk), "ring", 64 * KiB)
        opt = run_concurrent_pair(make_fabric(p, mtu=chunk), "optimal", 64 * KiB,
                                  config=coarse_config(chunk, n_chains=p))
        print(f"P={p}: measured {ring.makespan / opt.makespan:.2f}x, "
              f"paper S=2-2/P = {concurrent_speedup(p):.2f}x")
    return 0


def _table1() -> int:
    from repro.dpa import dpa_single_thread_metrics

    for t in ("uc", "ud"):
        m = dpa_single_thread_metrics(t)
        print(f"{t.upper()}: {m.throughput_gib_s:.1f} GiB/s, "
              f"{m.instructions_per_cqe} instr/CQE, "
              f"{m.cycles_per_cqe} cycles/CQE, IPC {m.ipc}")
    return 0


def _trace(args: list) -> int:
    import argparse

    from repro.core.communicator import CollectiveConfig, Communicator
    from repro.net.fabric import Fabric
    from repro.net.faults import GilbertElliott
    from repro.net.link import FaultSpec
    from repro.net.topology import Topology
    from repro.obs import TraceConfig, write_chrome_trace
    from repro.sim.engine import Simulator
    from repro.sim.random import RandomStreams
    from repro.units import KiB, gbit_per_s

    ap = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run a traced broadcast and export a Chrome trace.")
    ap.add_argument("--out", default="trace.json", help="output JSON path")
    ap.add_argument("--hosts", type=int, default=16)
    ap.add_argument("--bytes", type=int, default=64 * KiB)
    ap.add_argument("--lossy", action="store_true",
                    help="Gilbert-Elliott loss on every link (exercises the "
                         "reliability tracepoints)")
    ap.add_argument("--seed", type=int, default=0)
    ns = ap.parse_args(args)

    fabric = Fabric(Simulator(), Topology.leaf_spine(ns.hosts, 2, 2),
                    link_bandwidth=gbit_per_s(56),
                    streams=RandomStreams(ns.seed))
    if ns.lossy:
        fabric.set_fault_all(lambda s, d: FaultSpec(gilbert_elliott=GilbertElliott(
            p_good_bad=0.02, p_bad_good=0.3, drop_good=0.002, drop_bad=0.15)))
    comm = Communicator(fabric, config=CollectiveConfig(chunk_size=4096),
                        trace=TraceConfig())
    rng = np.random.default_rng(ns.seed)
    data = rng.integers(0, 256, ns.bytes, dtype=np.uint8)
    res = comm.broadcast(0, data)
    ok = res.verify_broadcast(data)
    view = res.trace
    write_chrome_trace(view, ns.out)
    rel = res.reliability_summary()
    print(f"broadcast x{ns.hosts} of {ns.bytes} B: {res.duration * 1e6:.1f} µs, "
          f"data {'OK' if ok else 'CORRUPT'}")
    print(f"trace: {len(view)} events ({view.dropped} dropped), "
          f"{len(view.tracks())} tracks, recoveries={rel['recoveries']}, "
          f"recovered_chunks={rel['recovered_chunks']} -> {ns.out}")
    return 0 if ok else 1


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    cmd = argv[0] if argv else "demo"
    if cmd == "demo":
        return _demo()
    if cmd == "experiments":
        return _experiments()
    if cmd == "speedup":
        return _speedup(argv[1:])
    if cmd == "table1":
        return _table1()
    if cmd == "trace":
        return _trace(argv[1:])
    print(__doc__)
    return 0 if cmd in ("-h", "--help", "help") else 2


if __name__ == "__main__":
    raise SystemExit(main())
