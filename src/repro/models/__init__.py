"""Closed-form analytical models from the paper.

* :mod:`repro.models.traffic` — the Fig 2 fat-tree traffic model
  (P2P vs multicast Allgather on a 1024-node radix-32 fat-tree).
* :mod:`repro.models.boundary` — Fig 3's data movement at the training
  node boundary for {INC + Mcast} vs {Ring + Ring}.
* :mod:`repro.models.memory` — Fig 7's bitmap/receive-buffer sizing as a
  function of PSN bits in the 32-bit immediate.
* :mod:`repro.models.speedup` — Appendix B's concurrent {AG, RS} speedup
  ``S = 2 − 2/P`` and alpha-beta time models for cross-validating the
  packet-level simulator.
"""

from repro.models.boundary import NodeBoundary, node_boundary_table
from repro.models.footprint import ProtocolFootprint, communicators_fitting_llc
from repro.models.memory import DEVICE_MEMORY, bitmap_bytes, max_receive_buffer
from repro.models.speedup import (
    concurrent_speedup,
    time_composed_allreduce,
    time_inc_reduce_scatter,
    time_knomial_bcast,
    time_mcast_allgather,
    time_mcast_bcast,
    time_p2p_alltoall,
    time_pipelined_tree_bcast,
    time_ring_allgather,
)
from repro.models.traffic import (
    DragonflyTraffic,
    FatTreeTraffic,
    MultiRailTraffic,
    TorusTraffic,
)

__all__ = [
    "DEVICE_MEMORY",
    "DragonflyTraffic",
    "FatTreeTraffic",
    "MultiRailTraffic",
    "TorusTraffic",
    "NodeBoundary",
    "ProtocolFootprint",
    "communicators_fitting_llc",
    "bitmap_bytes",
    "concurrent_speedup",
    "max_receive_buffer",
    "node_boundary_table",
    "time_composed_allreduce",
    "time_inc_reduce_scatter",
    "time_knomial_bcast",
    "time_mcast_allgather",
    "time_mcast_bcast",
    "time_p2p_alltoall",
    "time_pipelined_tree_bcast",
    "time_ring_allgather",
]
