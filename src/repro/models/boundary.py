"""Fig 3: data movement at the training-node boundary.

For send-buffer size N and P participants, bytes crossing one NIC per
collective (send path, receive path):

====================  ============  ============
configuration         send          receive
====================  ============  ============
Reduce-Scatter (INC)  N·(P−1)       N
Allgather (Mcast)     N             N·(P−1)
Reduce-Scatter (ring) N·(P−1)       N·(P−1)
Allgather (ring)      N·(P−1)       N·(P−1)
====================  ============  ============

(the paper's N for Reduce-Scatter is the *receive* shard size of one
rank, so the RS input is N·(P−1) ≈ N·P; see Appendix B).

Insight 2 follows: the {INC, Mcast} pair stresses *opposite* NIC
directions, so concurrent FSDP collectives stop sharing a bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["NodeBoundary", "node_boundary_table"]


@dataclass(frozen=True)
class NodeBoundary:
    """Per-NIC bytes for one collective in one configuration."""

    collective: str  # 'allgather' | 'reduce_scatter'
    algorithm: str  # 'mcast' | 'inc' | 'ring'
    send: int
    recv: int

    @property
    def total(self) -> int:
        return self.send + self.recv


def node_boundary_table(n: int, p: int) -> Dict[Tuple[str, str], NodeBoundary]:
    """The Fig 3 table for send size *n* and *p* participants."""
    if p < 2:
        raise ValueError("need p >= 2")
    if n < 0:
        raise ValueError("need n >= 0")
    rows = [
        NodeBoundary("reduce_scatter", "inc", send=n * (p - 1), recv=n),
        NodeBoundary("allgather", "mcast", send=n, recv=n * (p - 1)),
        NodeBoundary("reduce_scatter", "ring", send=n * (p - 1), recv=n * (p - 1)),
        NodeBoundary("allgather", "ring", send=n * (p - 1), recv=n * (p - 1)),
    ]
    return {(r.collective, r.algorithm): r for r in rows}
