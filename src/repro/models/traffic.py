"""Fig 2: the fat-tree traffic model.

The paper models a 1024-node cluster on a fat-tree of radix-32 switches
and compares the total data movement of a P2P Allgather against the
multicast composition.  The governing facts:

* Any P2P Allgather moves each rank's N-byte send buffer out of its NIC
  **P−1 times** (Insight 1) and into every other NIC once; counting both
  directions of the node boundary, ``2·N·(P−1)`` bytes per node.
* The multicast Allgather injects each buffer **once**; the fabric
  replicates it, and each link of the group's spanning tree carries any
  byte exactly once.  Per node boundary: ``N`` out + ``N·(P−1)`` in.

The ratio approaches 2 at scale — the paper's headline 2× saving.  This
module also counts *link traversals* inside the tree so the model can be
cross-checked against the packet-level simulator's switch telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["FatTreeTraffic"]


@dataclass(frozen=True)
class FatTreeTraffic:
    """Traffic accounting on a two- or three-level fat-tree.

    Parameters
    ----------
    n_hosts:
        Cluster size P (paper Fig 2: 1024).
    radix:
        Switch port count (paper Fig 2: 32).
    """

    n_hosts: int = 1024
    radix: int = 32

    def __post_init__(self) -> None:
        if self.n_hosts < 2 or self.radix < 2:
            raise ValueError("need n_hosts >= 2 and radix >= 2")

    # ------------------------------------------------------------- topology

    @property
    def hosts_per_leaf(self) -> int:
        """Half the radix faces down in a full-bandwidth fat-tree."""
        return self.radix // 2

    @property
    def n_leaves(self) -> int:
        return -(-self.n_hosts // self.hosts_per_leaf)

    @property
    def levels(self) -> int:
        """Switch levels needed (1 = single switch, 2 = leaf-spine, ...)."""
        if self.n_hosts <= self.radix:
            return 1
        if self.n_hosts <= self.hosts_per_leaf * self.radix:
            return 2
        return 3

    def mcast_tree_links(self) -> int:
        """Links in a spanning tree covering every host: one per host plus
        one per switch beyond the root (tree edges = nodes − 1)."""
        if self.levels == 1:
            return self.n_hosts  # host links only
        if self.levels == 2:
            return self.n_hosts + self.n_leaves  # leaves each link up once
        # 3 levels: leaves→mid, mid→root; count switches conservatively.
        n_mid = -(-self.n_leaves // (self.radix // 2))
        return self.n_hosts + self.n_leaves + n_mid

    # ----------------------------------------------------- per-node boundary

    def p2p_node_bytes(self, send_bytes: int) -> Dict[str, int]:
        """Per-NIC bytes of any P2P Allgather (Insight 1 lower bound)."""
        p = self.n_hosts
        return {"tx": send_bytes * (p - 1), "rx": send_bytes * (p - 1)}

    def mcast_node_bytes(self, send_bytes: int) -> Dict[str, int]:
        """Per-NIC bytes of the multicast Allgather."""
        p = self.n_hosts
        return {"tx": send_bytes, "rx": send_bytes * (p - 1)}

    def savings_ratio(self) -> float:
        """Node-boundary traffic ratio P2P / multicast = 2 − 2/P."""
        p = self.n_hosts
        p2p = 2 * (p - 1)
        mc = 1 + (p - 1)
        return p2p / mc

    # -------------------------------------------------------- fabric totals

    def mcast_fabric_bytes(self, send_bytes: int) -> int:
        """Total bytes over all links: each sender's buffer crosses every
        spanning-tree link exactly once (the bandwidth-optimality claim)."""
        return self.n_hosts * send_bytes * self.mcast_tree_links()

    def p2p_fabric_bytes(self, send_bytes: int, avg_hops: float | None = None) -> int:
        """Total bytes over all links for a P2P Allgather.

        ``avg_hops`` is the mean link count of a P2P transfer; by default
        a topology-oblivious schedule on a fat-tree: most pairs cross
        ``2·levels`` links (up and down the tree).
        """
        if avg_hops is None:
            # Fraction of peers outside the own leaf ≈ 1 for large P.
            same_leaf = (self.hosts_per_leaf - 1) / (self.n_hosts - 1)
            avg_hops = same_leaf * 2 + (1 - same_leaf) * 2 * self.levels
        total_msgs = self.n_hosts * (self.n_hosts - 1)
        return int(total_msgs * send_bytes * avg_hops)

    def fabric_savings(self, send_bytes: int = 1) -> float:
        """Fabric-level traffic ratio P2P / multicast (Fig 2's curve)."""
        return self.p2p_fabric_bytes(send_bytes) / self.mcast_fabric_bytes(send_bytes)
