"""Fig 2: the fat-tree traffic model.

The paper models a 1024-node cluster on a fat-tree of radix-32 switches
and compares the total data movement of a P2P Allgather against the
multicast composition.  The governing facts:

* Any P2P Allgather moves each rank's N-byte send buffer out of its NIC
  **P−1 times** (Insight 1) and into every other NIC once; counting both
  directions of the node boundary, ``2·N·(P−1)`` bytes per node.
* The multicast Allgather injects each buffer **once**; the fabric
  replicates it, and each link of the group's spanning tree carries any
  byte exactly once.  Per node boundary: ``N`` out + ``N·(P−1)`` in.

The ratio approaches 2 at scale — the paper's headline 2× saving.  This
module also counts *link traversals* inside the tree so the model can be
cross-checked against the packet-level simulator's switch telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["FatTreeTraffic", "TorusTraffic", "DragonflyTraffic", "MultiRailTraffic"]


@dataclass(frozen=True)
class FatTreeTraffic:
    """Traffic accounting on a two- or three-level fat-tree.

    Parameters
    ----------
    n_hosts:
        Cluster size P (paper Fig 2: 1024).
    radix:
        Switch port count (paper Fig 2: 32).
    """

    n_hosts: int = 1024
    radix: int = 32

    def __post_init__(self) -> None:
        if self.n_hosts < 2 or self.radix < 2:
            raise ValueError("need n_hosts >= 2 and radix >= 2")

    # ------------------------------------------------------------- topology

    @property
    def hosts_per_leaf(self) -> int:
        """Half the radix faces down in a full-bandwidth fat-tree."""
        return self.radix // 2

    @property
    def n_leaves(self) -> int:
        return -(-self.n_hosts // self.hosts_per_leaf)

    @property
    def levels(self) -> int:
        """Switch levels needed (1 = single switch, 2 = leaf-spine, ...)."""
        if self.n_hosts <= self.radix:
            return 1
        if self.n_hosts <= self.hosts_per_leaf * self.radix:
            return 2
        return 3

    def mcast_tree_links(self) -> int:
        """Links in a spanning tree covering every host: one per host plus
        one per switch beyond the root (tree edges = nodes − 1)."""
        if self.levels == 1:
            return self.n_hosts  # host links only
        if self.levels == 2:
            return self.n_hosts + self.n_leaves  # leaves each link up once
        # 3 levels: leaves→mid, mid→root; count switches conservatively.
        n_mid = -(-self.n_leaves // (self.radix // 2))
        return self.n_hosts + self.n_leaves + n_mid

    # ----------------------------------------------------- per-node boundary

    def p2p_node_bytes(self, send_bytes: int) -> Dict[str, int]:
        """Per-NIC bytes of any P2P Allgather (Insight 1 lower bound)."""
        p = self.n_hosts
        return {"tx": send_bytes * (p - 1), "rx": send_bytes * (p - 1)}

    def mcast_node_bytes(self, send_bytes: int) -> Dict[str, int]:
        """Per-NIC bytes of the multicast Allgather."""
        p = self.n_hosts
        return {"tx": send_bytes, "rx": send_bytes * (p - 1)}

    def savings_ratio(self) -> float:
        """Node-boundary traffic ratio P2P / multicast = 2 − 2/P."""
        p = self.n_hosts
        p2p = 2 * (p - 1)
        mc = 1 + (p - 1)
        return p2p / mc

    # -------------------------------------------------------- fabric totals

    def mcast_fabric_bytes(self, send_bytes: int) -> int:
        """Total bytes over all links: each sender's buffer crosses every
        spanning-tree link exactly once (the bandwidth-optimality claim)."""
        return self.n_hosts * send_bytes * self.mcast_tree_links()

    def p2p_fabric_bytes(self, send_bytes: int, avg_hops: float | None = None) -> int:
        """Total bytes over all links for a P2P Allgather.

        ``avg_hops`` is the mean link count of a P2P transfer; by default
        a topology-oblivious schedule on a fat-tree: most pairs cross
        ``2·levels`` links (up and down the tree).
        """
        if avg_hops is None:
            # Fraction of peers outside the own leaf ≈ 1 for large P.
            same_leaf = (self.hosts_per_leaf - 1) / (self.n_hosts - 1)
            avg_hops = same_leaf * 2 + (1 - same_leaf) * 2 * self.levels
        total_msgs = self.n_hosts * (self.n_hosts - 1)
        return int(total_msgs * send_bytes * avg_hops)

    def fabric_savings(self, send_bytes: int = 1) -> float:
        """Fabric-level traffic ratio P2P / multicast (Fig 2's curve)."""
        return self.p2p_fabric_bytes(send_bytes) / self.mcast_fabric_bytes(send_bytes)

    # -------------------------------------------------- completion-time floors

    def bcast_time_bound(self, nbytes: int, link_bandwidth: float) -> float:
        """Single-port floor: the root injects its N bytes exactly once."""
        return nbytes / link_bandwidth

    def allgather_time_bound(self, shard_bytes: int, link_bandwidth: float) -> float:
        """Each NIC must receive (P−1)·N through one access link."""
        return (self.n_hosts - 1) * shard_bytes / link_bandwidth


# --------------------------------------------------------------------------
# Topology-zoo analogues.  Each class answers the same two questions the
# fat-tree model does — how many links does one multicast spanning tree
# occupy, and what is the single-port completion-time floor — so the
# bench sweep can report achieved-vs-bound per family with one code path.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TorusTraffic:
    """Traffic accounting on a k-ary n-cube (direct network).

    Every router is also a host attachment point, so the spanning tree of
    a multicast group covering all hosts uses every host link plus a
    router-level spanning tree: ``P + (#routers − 1)`` links.
    """

    dims: tuple
    hosts_per_node: int = 1

    def __post_init__(self) -> None:
        if not self.dims or any(d < 2 for d in self.dims):
            raise ValueError("torus dims must all be >= 2")
        if self.hosts_per_node < 1:
            raise ValueError("hosts_per_node must be >= 1")

    @property
    def n_routers(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    @property
    def n_hosts(self) -> int:
        return self.n_routers * self.hosts_per_node

    def mcast_tree_links(self) -> int:
        return self.n_hosts + self.n_routers - 1

    def avg_hops(self) -> float:
        """Mean e-cube route length: ~size/4 per dimension (ring), plus
        the two host links at the ends."""
        return 2 + sum(d / 4.0 for d in self.dims)

    def bcast_time_bound(self, nbytes: int, link_bandwidth: float) -> float:
        """Single-port store-and-forward floor: the root injects N once."""
        return nbytes / link_bandwidth

    def allgather_time_bound(self, shard_bytes: int, link_bandwidth: float) -> float:
        """Each NIC must receive (P−1)·N through one access link."""
        return (self.n_hosts - 1) * shard_bytes / link_bandwidth

    def mcast_fabric_bytes(self, send_bytes: int) -> int:
        return self.n_hosts * send_bytes * self.mcast_tree_links()

    def p2p_fabric_bytes(self, send_bytes: int) -> int:
        total_msgs = self.n_hosts * (self.n_hosts - 1)
        return int(total_msgs * send_bytes * self.avg_hops())

    def fabric_savings(self, send_bytes: int = 1) -> float:
        return self.p2p_fabric_bytes(send_bytes) / self.mcast_fabric_bytes(send_bytes)


@dataclass(frozen=True)
class DragonflyTraffic:
    """Traffic accounting on a fully-connected dragonfly.

    One multicast tree spans the root's group clique, one global link per
    remote group, and a clique tree inside every remote group:
    ``P + G·(R−1) + (G−1)`` links.
    """

    n_groups: int
    routers_per_group: int
    hosts_per_router: int = 1

    def __post_init__(self) -> None:
        if self.n_groups < 2 or self.routers_per_group < 1:
            raise ValueError("need n_groups >= 2 and routers_per_group >= 1")
        if self.n_groups > self.routers_per_group * self.routers_per_group + 1:
            raise ValueError("fully-connected dragonfly needs G <= R^2 + 1")
        if self.hosts_per_router < 1:
            raise ValueError("hosts_per_router must be >= 1")

    @property
    def n_hosts(self) -> int:
        return self.n_groups * self.routers_per_group * self.hosts_per_router

    def mcast_tree_links(self) -> int:
        g, r = self.n_groups, self.routers_per_group
        return self.n_hosts + g * (r - 1) + (g - 1)

    def avg_hops(self) -> float:
        """Minimal-route mean: local→global→local plus host links; pairs
        inside one group take the single clique hop."""
        p = self.n_hosts
        same_group = (self.routers_per_group * self.hosts_per_router - 1) / (p - 1)
        return 2 + same_group * 1 + (1 - same_group) * 3

    def bcast_time_bound(self, nbytes: int, link_bandwidth: float) -> float:
        return nbytes / link_bandwidth

    def allgather_time_bound(self, shard_bytes: int, link_bandwidth: float) -> float:
        return (self.n_hosts - 1) * shard_bytes / link_bandwidth

    def mcast_fabric_bytes(self, send_bytes: int) -> int:
        return self.n_hosts * send_bytes * self.mcast_tree_links()

    def p2p_fabric_bytes(self, send_bytes: int) -> int:
        total_msgs = self.n_hosts * (self.n_hosts - 1)
        return int(total_msgs * send_bytes * self.avg_hops())

    def fabric_savings(self, send_bytes: int = 1) -> float:
        return self.p2p_fabric_bytes(send_bytes) / self.mcast_fabric_bytes(send_bytes)


@dataclass(frozen=True)
class MultiRailTraffic:
    """Nezha-style rail striping over any single-rail base model.

    With chunks striped across ``n_rails`` parallel planes (subgroup g on
    plane ``g mod n_rails``), every per-plane figure scales by
    ``1/n_rails`` while per-NIC aggregate bandwidth scales by
    ``n_rails`` — the ideal-speedup bound the sweep measures against.
    """

    base: object  # FatTreeTraffic | TorusTraffic | DragonflyTraffic
    n_rails: int = 2

    def __post_init__(self) -> None:
        if self.n_rails < 1:
            raise ValueError("n_rails must be >= 1")

    @property
    def n_hosts(self) -> int:
        return self.base.n_hosts

    def mcast_tree_links(self) -> int:
        """Links occupied across all planes when every plane carries a
        1/n_rails stripe (host links counted once per plane used)."""
        return self.base.mcast_tree_links() * self.n_rails

    def speedup_bound(self) -> float:
        return float(self.n_rails)

    def bcast_time_bound(self, nbytes: int, link_bandwidth: float) -> float:
        """Each plane injects only its stripe: N/(n_rails·B)."""
        return nbytes / (self.n_rails * link_bandwidth)

    def allgather_time_bound(self, shard_bytes: int, link_bandwidth: float) -> float:
        return ((self.n_hosts - 1) * shard_bytes
                / (self.n_rails * link_bandwidth))
