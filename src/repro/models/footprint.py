"""§III-D: the protocol's memory footprint, item by item.

The paper argues the offloaded protocol state is small enough to live in
SmartNIC memory:

* *connection contexts*: one multicast UD QP serves all peers (constant),
  plus 2 RC QPs for the reliable ring — versus P−1 RC QPs for P2P stacks;
* *staging area*: bounded by the receive-queue depth (BF-3: 8192 WRs ×
  4 KiB = 32 MiB max; 4 MiB sustains 200 Gbit/s in practice), in
  BlueField DRAM;
* *bitmap*: the only state linear in the buffer — 1 bit per chunk;
* *per-communicator context*: ≈16 KiB; with 64 KiB bitmaps (16 GB
  receive buffers) more than 16 communicators fit in the 1.5 MB LLC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import KiB, MiB

__all__ = ["ProtocolFootprint", "communicators_fitting_llc"]

#: BlueField-3 receive queue depth limit (paper §III-D-b)
BF3_MAX_RECV_QUEUE = 8192
#: practical staging size sustaining 200 Gbit/s in the paper's experiments
PRACTICAL_STAGING_BYTES = 4 * MiB
#: per-communicator control context (QP state, counters, schedule)
COMMUNICATOR_CONTEXT_BYTES = 16 * KiB


@dataclass(frozen=True)
class ProtocolFootprint:
    """Memory accounting for one communicator of the multicast protocol."""

    recv_buffer_bytes: int
    chunk_bytes: int = 4096
    staging_slots: int = 1024
    n_subgroups: int = 1

    def __post_init__(self) -> None:
        if self.chunk_bytes < 1 or self.recv_buffer_bytes < 0:
            raise ValueError("invalid sizes")
        if self.staging_slots > BF3_MAX_RECV_QUEUE:
            raise ValueError(
                f"staging_slots {self.staging_slots} exceeds the BF-3 receive "
                f"queue depth {BF3_MAX_RECV_QUEUE}"
            )

    # -------------------------------------------------------------- pieces

    @property
    def n_chunks(self) -> int:
        return -(-self.recv_buffer_bytes // self.chunk_bytes)

    @property
    def bitmap_bytes(self) -> int:
        """1 bit per chunk — the only size-proportional state."""
        return -(-self.n_chunks // 8)

    @property
    def staging_bytes(self) -> int:
        """Staging ring(s): slots × chunk per subgroup (DRAM, not LLC)."""
        return self.staging_slots * self.chunk_bytes * self.n_subgroups

    @property
    def qp_count(self) -> int:
        """Fast path: 1 multicast QP per subgroup; slow path: 2 ring RC QPs
        (constant in P — the paper's scalability argument vs P2P)."""
        return self.n_subgroups + 2

    @property
    def context_bytes(self) -> int:
        return COMMUNICATOR_CONTEXT_BYTES

    @property
    def llc_resident_bytes(self) -> int:
        """What must sit in the SmartNIC LLC: bitmap + context (staging
        lives in BlueField DRAM)."""
        return self.bitmap_bytes + self.context_bytes

    @staticmethod
    def max_staging_bytes(chunk_bytes: int = 4096) -> int:
        """The §III-D bound: receive-queue depth × MTU (32 MiB on BF-3)."""
        return BF3_MAX_RECV_QUEUE * chunk_bytes


def communicators_fitting_llc(
    llc_bytes: int = int(1.5 * MiB),
    bitmap_bytes: int = 64 * KiB,
    context_bytes: int = COMMUNICATOR_CONTEXT_BYTES,
) -> int:
    """§III-D-d: with 64 KiB bitmaps (16 GB receive buffers) and 16 KiB
    contexts, how many communicators fit in the LLC?  (Paper: >16.)"""
    if bitmap_bytes + context_bytes <= 0:
        raise ValueError("need positive per-communicator footprint")
    return llc_bytes // (bitmap_bytes + context_bytes)
