"""Fig 7: bitmap and receive-buffer sizing vs PSN bits.

The 32-bit CQE immediate is split between a PSN (chunk index) and a
collective id.  With ``b`` PSN bits and chunk size ``c``:

* maximum addressable receive buffer = ``2^b · c`` bytes,
* bitmap needed to track it           = ``2^b / 8`` bytes.

The paper overlays device memory lines: the DPA's 1.5 MB LLC fits the
bitmap of a ~50 GB Allgather receive buffer at 4 KiB chunks (24 PSN
bits → 2 MB bitmap is too big; 2^24 chunks need 2 MiB... in practice 23
bits / 1 MiB bitmap sit inside the LLC with room for contexts), while GPU
HBM bounds the receive buffer itself.
"""

from __future__ import annotations

from typing import Dict

from repro.core.chunking import ImmLayout
from repro.units import GiB, MiB

__all__ = ["bitmap_bytes", "max_receive_buffer", "DEVICE_MEMORY", "fig7_rows"]

#: Reference capacities drawn on Fig 7.
DEVICE_MEMORY: Dict[str, int] = {
    "DPA LLC": int(1.5 * MiB),
    "A100 HBM": 80 * GiB,
    "H100 HBM": 80 * GiB,
    "GH200 HBM": 96 * GiB,
    "BlueField-3 DRAM": 16 * GiB,
}


def bitmap_bytes(psn_bits: int) -> int:
    """Bitmap size needed to track every PSN addressable with *psn_bits*."""
    return ImmLayout(psn_bits).bitmap_bytes()


def max_receive_buffer(psn_bits: int, chunk_bytes: int = 4096) -> int:
    """Largest Allgather receive buffer addressable with *psn_bits*."""
    if chunk_bytes < 1:
        raise ValueError("chunk_bytes must be >= 1")
    return ImmLayout(psn_bits).max_buffer_bytes(chunk_bytes)


def fig7_rows(chunk_bytes: int = 4096, bits=range(10, 31)):
    """The Fig 7 series: ``(psn_bits, bitmap_bytes, max_buffer_bytes)``."""
    return [(b, bitmap_bytes(b), max_receive_buffer(b, chunk_bytes)) for b in bits]
