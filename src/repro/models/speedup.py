"""Appendix B: concurrent {Allgather, Reduce-Scatter} speedup, plus
alpha-beta time models used to sanity-check the packet-level simulator.

With both collectives in flight on full-duplex NICs of per-direction
bandwidth ``B``:

* ``{AG_ring, RS_ring}`` — each direction is split evenly between the two
  collectives (Eq. 1): every collective runs at ``B/2`` and moves
  ``N·(P−1)`` bytes → ``T = 2·N·(P−1)/B``.
* ``{AG_mc, RS_inc}`` — the pair's bandwidth demands are complementary
  (Eq. 2): the bottleneck direction runs at ``(1 − 1/P)·B`` →
  ``T = N·(P−1) / ((1−1/P)·B)``.

The ratio is ``S = 2 − 2/P`` (Eq. 3): up to 2× at scale.
"""

from __future__ import annotations

import math

__all__ = [
    "concurrent_speedup",
    "bandwidth_shares_ring",
    "bandwidth_shares_optimal",
    "time_ring_allgather",
    "time_mcast_allgather",
    "time_mcast_bcast",
    "time_knomial_bcast",
    "time_pipelined_tree_bcast",
    "time_inc_reduce_scatter",
    "time_composed_allreduce",
    "time_p2p_alltoall",
]


def concurrent_speedup(p: int) -> float:
    """Eq. 3: S = 2 − 2/P."""
    if p < 1:
        raise ValueError("p must be >= 1")
    return 2.0 - 2.0 / p


def bandwidth_shares_ring(b_nic: float) -> dict:
    """Eq. 1: ring pair — each path evenly split between AG and RS."""
    half = b_nic / 2.0
    return {"ag_send": half, "ag_recv": half, "rs_send": half, "rs_recv": half}


def bandwidth_shares_optimal(b_nic: float, p: int) -> dict:
    """Eq. 2: {AG_mc, RS_inc} — complementary demands on each direction."""
    if p < 1:
        raise ValueError("p must be >= 1")
    small = b_nic / p
    big = b_nic * (1.0 - 1.0 / p)
    return {"ag_send": small, "ag_recv": big, "rs_send": big, "rs_recv": small}


# ------------------------------------------------------- alpha-beta models


def time_ring_allgather(n: int, p: int, bandwidth: float, latency: float = 0.0,
                        overhead: float = 0.0) -> float:
    """(P−1) lock-stepped steps of N bytes each."""
    if p < 2:
        return 0.0
    return (p - 1) * (n / bandwidth + latency + overhead)


def time_mcast_allgather(n: int, p: int, bandwidth: float, latency: float = 0.0,
                         sync_overhead: float = 0.0, n_chains: int = 1) -> float:
    """Chain-sequenced multicast roots: receive path absorbs P·N total,
    plus the RNR barrier and per-activation latency."""
    if p < 2:
        return 0.0
    steps = p // max(n_chains, 1)
    return sync_overhead + p * n / bandwidth + steps * latency


def time_mcast_bcast(n: int, p: int, bandwidth: float, latency: float = 0.0,
                     sync_overhead: float = 0.0) -> float:
    """Constant-time Broadcast: one buffer serialization + tree depth."""
    return sync_overhead + n / bandwidth + latency


def time_inc_reduce_scatter(n: int, p: int, bandwidth: float,
                            latency: float = 0.0) -> float:
    """INC reduce-scatter: every rank serializes its full N-byte
    contribution into the reduction tree exactly once; the switches
    reduce in-network, so the host uplink is the bottleneck direction
    (Eq. 2's ``rs_send = (1 − 1/P)·B`` demand, normalized to a solo run).
    """
    if p < 2:
        return 0.0
    return n / bandwidth + latency


def time_composed_allreduce(n: int, p: int, bandwidth: float,
                            latency: float = 0.0, sync_overhead: float = 0.0,
                            n_chains: int = 1) -> float:
    """Allreduce composed as INC reduce-scatter chained into multicast
    allgather over the reduced N/P shards (one submission, two phases).

    The shard allgather's receive path absorbs ``P · (N/P) = N`` bytes,
    so the composed total is ``2·N/B`` plus the latency terms — exactly
    the bytes the concurrent Appendix B pair moves, serialized.  The
    concurrent pair's advantage over it is the Eq. 3 bound
    ``S = 2 − 2/P`` with respect to the ring pair, not this chain.
    """
    if p < 2:
        return 0.0
    shard = n / p
    return (time_inc_reduce_scatter(n, p, bandwidth, latency)
            + time_mcast_allgather(shard, p, bandwidth, latency,
                                   sync_overhead, n_chains))


def time_p2p_alltoall(n: int, p: int, bandwidth: float,
                      latency: float = 0.0) -> float:
    """Rotation-scheduled unicast all-to-all: ``(P−1)`` permutation steps,
    each moving one ``N/P`` block per rank with no fan-in contention."""
    if p < 2:
        return 0.0
    return (p - 1) * (n / p / bandwidth + latency)


def time_knomial_bcast(n: int, p: int, radix: int, bandwidth: float,
                       latency: float = 0.0) -> float:
    """Non-pipelined k-nomial: each level forwards the whole buffer to up
    to (radix−1) children sequentially."""
    if p < 2:
        return 0.0
    levels = math.ceil(math.log(p, radix))
    return levels * ((radix - 1) * n / bandwidth + latency)


def time_pipelined_tree_bcast(n: int, p: int, bandwidth: float, segment: int,
                              latency: float = 0.0) -> float:
    """Pipelined binary tree: interior nodes send every segment twice."""
    if p < 2:
        return 0.0
    depth = math.ceil(math.log2(p + 1))
    fill = depth * (segment / bandwidth + latency)
    return fill + 2.0 * n / bandwidth
