"""Autotuning: cost-model-guided search over the protocol knob space.

The paper's bandwidth-optimality only materialises when the protocol
knobs match the deployment point — §IV-C picks multicast subgroup counts
and worker splits per message size, §III-C picks chunk size and cutoff
slack per fabric, and Fig 15 shows UC chunk-size choice alone swings
throughput by multiples.  This package closes the loop from the
analytical models in :mod:`repro.models` to simulated measurements:

* :mod:`repro.tune.scenario` — the tuning **key**: (topology, transport,
  message-size bucket, fault profile), plus deterministic fabric/payload
  builders so every evaluation is seeded and reproducible.
* :mod:`repro.tune.space` — knob **domains** and validity constraints,
  reusing :meth:`~repro.core.communicator.CollectiveConfig.validate`.
* :mod:`repro.tune.cost` — the analytic **pre-pruner**: ranks candidates
  with the traffic/boundary/footprint/alpha-beta models before any
  simulation runs.
* :mod:`repro.tune.evaluate` — **simulation-in-the-loop** scoring of the
  surviving candidates through the real engine, with
  :mod:`repro.obs.metrics` timelines (link utilization, staging
  occupancy) as secondary objectives.
* :mod:`repro.tune.store` — the **persistent profile store**: versioned,
  byte-stable JSON under ``tune/profiles/`` with deterministic cache
  keys; committed profiles cover the paper's 188-node fat-tree points.
* :mod:`repro.tune.search` — the orchestration:
  :func:`~repro.tune.search.autotune` (space → prune → simulate → store)
  and :func:`~repro.tune.search.resolve_config`, which backs
  ``Communicator(..., config="auto")``.

Quickstart::

    from repro.tune import Scenario, autotune

    scn = Scenario(collective="allgather", n_hosts=16, msg_bytes=64 * 1024)
    result = autotune(scn, max_evals=4)
    print(result.profile.knobs, result.cache_hit)
"""

from repro.tune.cost import CostEstimate, predict_time, prune
from repro.tune.evaluate import Measurement, evaluate
from repro.tune.scenario import FAULT_PROFILES, Scenario, size_bucket
from repro.tune.search import SearchResult, autotune, resolve_config
from repro.tune.space import KnobDomain, SearchSpace
from repro.tune.store import (
    PROFILE_SCHEMA_VERSION,
    ProfileStore,
    TuningProfile,
    config_from_knobs,
)

__all__ = [
    "CostEstimate",
    "FAULT_PROFILES",
    "KnobDomain",
    "Measurement",
    "PROFILE_SCHEMA_VERSION",
    "ProfileStore",
    "Scenario",
    "SearchResult",
    "SearchSpace",
    "TuningProfile",
    "autotune",
    "config_from_knobs",
    "evaluate",
    "predict_time",
    "prune",
    "resolve_config",
    "size_bucket",
]
