"""Knob domains and validity constraints of the tuning search space.

The space is declared per scenario: domains are trimmed to what the
deployment point can express (chunks no larger than the message, chains
no longer than the communicator, subgroup counts that still leave every
subgroup at least one chunk), then every enumerated candidate is checked
against the real :meth:`~repro.core.communicator.CollectiveConfig.validate`
on a fabric with the candidate's evaluation MTU — the tuner can never
propose a config the Communicator would reject.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.communicator import CollectiveConfig
from repro.models.footprint import BF3_MAX_RECV_QUEUE
from repro.net.fabric import Fabric
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.tune.scenario import Scenario

__all__ = ["KnobDomain", "SearchSpace"]

#: finest chunk granularity (the IB MTU the cost models are calibrated at)
BASE_CHUNK = 4096
#: coarsest chunk the tuner considers (fig 15's sweep ceiling)
MAX_CHUNK = 64 * 1024


@dataclass(frozen=True)
class KnobDomain:
    """One knob's finite candidate set."""

    name: str
    values: Tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"empty domain for knob {self.name!r}")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"duplicate values in domain {self.name!r}")


@dataclass
class SearchSpace:
    """A finite grid over :class:`CollectiveConfig` knobs.

    ``domains`` maps knob name → :class:`KnobDomain`; every name must be
    a ``CollectiveConfig`` field.  :meth:`candidates` enumerates the
    cartesian product, drops structurally impossible combinations, and
    validates the survivors through ``CollectiveConfig.validate``.
    """

    scenario: Scenario
    domains: Dict[str, KnobDomain] = field(default_factory=dict)

    # ------------------------------------------------------------- factory

    @classmethod
    def default(cls, scenario: Scenario) -> "SearchSpace":
        """The stock grid for a scenario (a few hundred points at most).

        Chunk sizes are powers of two from the base MTU up to the
        message bucket; parallelism knobs stop at the paper's §IV-C
        operating points (4 subgroups / 4 chains); batching and staging
        cover the §V-A and §III-D regimes.  Lossy fault profiles add the
        cutoff-timer family (§III-C) — on a clean fabric the cutoff
        never fires, so searching it would waste evaluations.
        """
        n = scenario.bucket
        chunks = tuple(
            c for c in (4096, 8192, 16384, 32768, 65536)
            if BASE_CHUNK <= c <= min(MAX_CHUNK, n) and n % c == 0
        ) or (min(BASE_CHUNK, n),)
        max_par = max(1, n // max(chunks))
        sub_pool = (1, 2, 4)
        chain_pool = (1, 2, 4)
        if scenario.resolved_topo == "multi_rail":
            # Rail striping rides on subgroups (stripe g → plane g mod
            # rails): the domain must offer multiples of the rail count
            # or the planner can never spread load across planes.
            rails = int(scenario._params().get("n_rails", 2))
            sub_pool = tuple(sorted({*sub_pool, rails, 2 * rails}))
        if scenario.resolved_topo in ("torus", "dragonfly", "multi_rail"):
            # The zoo shapes have more root diversity than a 2-spine
            # fat-tree; let the chain schedule go wider.
            chain_pool = (1, 2, 4, 8)
        subgroups = tuple(s for s in sub_pool if s <= max_par)
        # Chain count matters wherever the multicast allgather engine runs:
        # plain allgather and the allgather phase of the composed allreduce.
        chains = (
            tuple(m for m in chain_pool if m <= scenario.n_hosts)
            if scenario.collective in ("allgather", "allreduce") else (1,)
        )
        domains = {
            "chunk_size": KnobDomain("chunk_size", chunks),
            "n_subgroups": KnobDomain("n_subgroups", subgroups),
            "n_chains": KnobDomain("n_chains", chains),
            "batch_size": KnobDomain("batch_size", (8, 32, 64)),
            "max_outstanding_batches": KnobDomain(
                "max_outstanding_batches", (2, 4, 8)),
            "staging_slots": KnobDomain(
                "staging_slots",
                tuple(s for s in (128, 256, 512) if s <= BF3_MAX_RECV_QUEUE)),
        }
        if scenario.fault_profile != "clean":
            domains["cutoff_alpha"] = KnobDomain(
                "cutoff_alpha", (100e-6, 200e-6, 400e-6))
            domains["adaptive_cutoff"] = KnobDomain(
                "adaptive_cutoff", (True, False))
        return cls(scenario=scenario, domains=domains)

    # --------------------------------------------------------- enumeration

    @property
    def n_points(self) -> int:
        total = 1
        for d in self.domains.values():
            total *= len(d.values)
        return total

    def _grid(self) -> Iterator[Dict[str, object]]:
        names = sorted(self.domains)
        for combo in itertools.product(*(self.domains[k].values for k in names)):
            yield dict(zip(names, combo))

    def _structurally_valid(self, knobs: Dict[str, object]) -> bool:
        scn = self.scenario
        chunk = int(knobs.get("chunk_size", BASE_CHUNK))
        if scn.collective == "allgather" and scn.bucket % chunk != 0:
            return False
        if scn.collective == "allreduce":
            # The allgather phase runs over the reduced N/P shards, so
            # its chunk alignment (and the per-subgroup minimum) is
            # against the shard, not the full contribution — mirror the
            # eager check in Communicator._launch_allreduce.
            shard = max(scn.bucket // 4 // scn.n_hosts, 1) * 4
            eff = min(chunk, shard)
            if shard % eff != 0:
                return False
            block = shard
        else:
            block = scn.bucket
        # Every subgroup must carry at least one chunk of a sender's block.
        chunks_per_rank = max(block // min(chunk, block), 1)
        if int(knobs.get("n_subgroups", 1)) > chunks_per_rank:
            return False
        if int(knobs.get("n_chains", 1)) > scn.n_hosts:
            return False
        return True

    def evaluation_mtu(self, chunk: int) -> int:
        """The fabric MTU a candidate simulates at.

        UD datagrams carry one chunk, so the simulation granularity
        follows the chunk (exactly like the benchmark harness); UC
        chunks legitimately span multiple base-MTU packets (§V-B).
        """
        return chunk if self.scenario.transport == "ud" else BASE_CHUNK

    def _validation_fabric(self, mtu: int,
                           cache: Dict[int, Fabric]) -> Fabric:
        # validate() needs a real fabric only for its MTU; a 2-host one
        # is enough and keeps enumeration at 188 hosts instant.
        if mtu not in cache:
            cache[mtu] = Fabric(Simulator(), Topology.back_to_back(), mtu=mtu)
        return cache[mtu]

    def candidates(self) -> List[Dict[str, object]]:
        """Every valid knob assignment, in deterministic order.

        Each entry is a plain dict of ``CollectiveConfig`` overrides
        (the profile-store exchange format); materialize one with
        :func:`repro.tune.store.config_from_knobs`.
        """
        from repro.tune.store import config_from_knobs

        fabrics: Dict[int, Fabric] = {}
        out: List[Dict[str, object]] = []
        for knobs in self._grid():
            if not self._structurally_valid(knobs):
                continue
            knobs = dict(knobs, transport=self.scenario.transport)
            cfg = config_from_knobs(knobs)
            try:
                cfg.validate(self._validation_fabric(
                    self.evaluation_mtu(cfg.chunk_size), fabrics))
            except ValueError:
                continue
            out.append(knobs)
        return out

    def baseline_knobs(self) -> Dict[str, object]:
        """The knob dict equivalent to a stock :class:`CollectiveConfig`
        (the untuned reference every search must measure and may never
        lose to)."""
        default = CollectiveConfig()
        return {
            "chunk_size": min(default.chunk_size, self.scenario.bucket),
            "n_subgroups": default.n_subgroups,
            "n_chains": default.n_chains,
            "batch_size": default.batch_size,
            "max_outstanding_batches": default.max_outstanding_batches,
            "staging_slots": default.staging_slots,
            "transport": self.scenario.transport,
        }
