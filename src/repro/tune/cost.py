"""Analytic pre-pruning: rank candidates with the closed-form models.

Simulating a knob point at 188 nodes costs seconds of wall-clock; the
analytic models cost microseconds.  This module combines the paper's
models — the alpha-beta collective times (:mod:`repro.models.speedup`),
the node-boundary byte counts (:mod:`repro.models.boundary`), and the
protocol footprint (:mod:`repro.models.footprint`) — with the
:class:`~repro.core.costmodel.HostCostModel` software roofline into a
single completion-time estimate per candidate, then keeps only the most
promising points for simulation.

The estimate is a *ranking* device, not a clock: the fidelity contract
(enforced by ``tests/test_tune_fidelity.py``) is rank correlation with
simulated runtimes over the tuner's grid, so pre-pruning cannot silently
discard the true optimum.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.models.boundary import node_boundary_table
from repro.models.footprint import ProtocolFootprint
from repro.models.speedup import (
    time_composed_allreduce,
    time_mcast_allgather,
    time_mcast_bcast,
    time_p2p_alltoall,
)
from repro.net.topology import Topology
from repro.tune.scenario import Scenario
from repro.tune.store import config_from_knobs
from repro.units import gbit_per_s

__all__ = ["CostEstimate", "predict_time", "prune"]

#: wire parameters mirrored from the Fabric defaults the evaluator uses
LINK_LATENCY = 1e-6
SWITCH_DELAY = 0.1e-6
HEADER_BYTES = 64
#: base calibration granularity of the software cost model
BASE_CHUNK = 4096

#: effective per-packet loss probability of each named fault profile —
#: feeds the expected-recovery term so cutoff knobs rank on lossy keys
EFFECTIVE_LOSS = {"clean": 0.0, "bernoulli": 1e-3, "burst": 0.01}

_HOPS_CACHE: Dict[Tuple[str, int, str], int] = {}


def _host_hops(scenario: Scenario) -> int:
    """Worst-case host-to-host hop count of the scenario's topology
    (links on the path, switches included as hops via their delay)."""
    key = (scenario.resolved_topo, scenario.n_hosts, scenario.topo_params)
    if key not in _HOPS_CACHE:
        topo: Topology = scenario._topology()
        # Farthest pair from host 0 is representative on the symmetric
        # shapes the tuner targets (star / leaf-spine / testbed).
        hops = max(len(topo.path(0, d)) - 1 for d in range(1, topo.n_hosts))
        _HOPS_CACHE[key] = hops
    return _HOPS_CACHE[key]


@dataclass(frozen=True)
class CostEstimate:
    """Decomposed completion-time prediction for one candidate."""

    wire: float  #: serialization of the bottleneck NIC direction
    software: float  #: worker-loop roofline (receive + send posting)
    sequencing: float  #: chain-activation / barrier critical path
    fill: float  #: batch-assembly and store-and-forward pipeline fill
    recovery: float  #: expected slow-path cost under the fault profile
    staging_risk: float  #: overrun risk premium for undersized staging

    @property
    def total(self) -> float:
        """The scalar the pruner ranks on: a roofline of wire vs
        software, plus the additive latency terms."""
        return (max(self.wire, self.software) + self.sequencing
                + self.fill + self.recovery + self.staging_risk)

    def breakdown(self) -> Dict[str, float]:
        return {
            "wire": self.wire,
            "software": self.software,
            "sequencing": self.sequencing,
            "fill": self.fill,
            "recovery": self.recovery,
            "staging_risk": self.staging_risk,
            "total": self.total,
        }


def predict_time(scenario: Scenario, knobs: Dict[str, object]) -> CostEstimate:
    """Analytic completion-time estimate for one knob assignment."""
    cfg = config_from_knobs(knobs)
    p = scenario.n_hosts
    n = scenario.bucket
    bandwidth = gbit_per_s(scenario.link_gbit)
    chunk = cfg.chunk_size
    uc = scenario.transport == "uc"
    hops = _host_hops(scenario)
    hop_latency = hops * LINK_LATENCY + max(hops - 1, 0) * SWITCH_DELAY

    # --- wire: the Fig 3 node-boundary bytes through the bottleneck
    # direction, inflated by per-datagram header overhead.  UD datagrams
    # carry one chunk; UC chunks are split at the base MTU on the wire.
    datagram = chunk if not uc else min(chunk, BASE_CHUNK)
    header_factor = 1.0 + HEADER_BYTES / datagram
    boundary = node_boundary_table(n, p)[("allgather", "mcast")]
    if scenario.collective == "allgather":
        # Receive path absorbs every peer's buffer; the sequenced chain
        # keeps the shared tree busy with P·N total serialized payload.
        wire = time_mcast_allgather(
            n * header_factor, p, bandwidth, latency=0.0, n_chains=cfg.n_chains)
        recv_bytes = boundary.recv
    elif scenario.collective == "allreduce":
        # INC reduce-scatter serializes the full contribution up the tree,
        # then the multicast allgather redistributes the N/P shards — the
        # composed chain moves ~2N through the bottleneck NIC.
        wire = time_composed_allreduce(
            n * header_factor, p, bandwidth, n_chains=cfg.n_chains)
        recv_bytes = n
    elif scenario.collective == "alltoall":
        # Rotation-scheduled unicast: (P−1) permutation steps of one
        # N/P block each; receive and send demands are symmetric.
        wire = time_p2p_alltoall(n * header_factor, p, bandwidth)
        recv_bytes = n - n // p
    else:
        wire = time_mcast_bcast(n * header_factor, p, bandwidth)
        recv_bytes = n

    # Multi-rail striping: subgroup g plans its tree on plane g mod rails,
    # so the bottleneck NIC direction is split across min(subgroups, rails)
    # independent planes.  Without this term the pruner ranks every striped
    # candidate behind n_subgroups=1 and the true optimum never simulates.
    if scenario.resolved_topo == "multi_rail" and scenario.collective != "alltoall":
        rails = int(scenario._params().get("n_rails", 1))
        planes = min(max(cfg.n_subgroups, 1), max(rails, 1))
        if planes > 1:
            wire /= planes

    # --- software roofline: worker time to drain the receive path plus
    # the root/sender posting costs.  UD coarse candidates keep per-byte
    # cost constant (coarse_config rescales per-chunk costs); UC pays
    # per-CQE costs once per chunk — the Fig 15 amortization.
    workers = max(cfg.recv_workers or cfg.n_subgroups, 1)
    if uc:
        n_recv_chunks = recv_bytes / chunk
        per_chunk = cfg.cost.per_recv_chunk_uc
    else:
        # cfg.cost is the coarse-calibrated model (per-chunk costs scaled
        # by chunk/BASE_CHUNK), so normalize back to per-base-unit cost.
        n_recv_chunks = recv_bytes / BASE_CHUNK
        per_chunk = cfg.cost.per_recv_chunk / max(chunk / BASE_CHUNK, 1.0)
    recv_cpu = n_recv_chunks * per_chunk / workers
    send_chunks = (n if scenario.collective == "allgather" else n) / chunk
    n_batches = math.ceil(send_chunks / cfg.batch_size)
    send_cpu = send_chunks * cfg.cost.send_wqe + n_batches * cfg.cost.doorbell
    software = max(recv_cpu, send_cpu)

    # --- sequencing: allgather roots activate in ceil(P / chains) steps,
    # each a control message over the fabric; broadcast pays one barrier.
    step = cfg.cost.ctrl_message + hop_latency
    if scenario.collective == "allgather":
        steps = math.ceil(p / max(cfg.n_chains, 1))
        sequencing = steps * step
    elif scenario.collective == "allreduce":
        # One INC-tree completion barrier, then the shard allgather's
        # chain activations.
        steps = math.ceil(p / max(cfg.n_chains, 1))
        sequencing = (steps + 1) * step
    else:
        # broadcast's start barrier / alltoall's rotation kickoff
        sequencing = step

    # --- pipeline fill: assembling the first send batch before the
    # doorbell rings, plus store-and-forward of one datagram per hop.
    wqe = cfg.cost.send_wqe
    fill = (min(cfg.batch_size, send_chunks) * wqe + cfg.cost.doorbell
            + hops * (datagram + HEADER_BYTES) / bandwidth)

    # --- expected recovery: lost chunks wait out the cutoff slack and a
    # fetch round-trip on the reliable ring (§III-C).
    loss = EFFECTIVE_LOSS[scenario.fault_profile]
    recovery = 0.0
    # alltoall rides reliable RC queue pairs — the UD cutoff/fetch slow
    # path never arms, so lossy keys add no expected-recovery term.
    if loss > 0.0 and scenario.collective != "alltoall":
        total_chunks = (p if scenario.collective == "allgather" else 1) * n / chunk
        expected_lost = loss * total_chunks
        slack = (cfg.cutoff_alpha_min if cfg.adaptive_cutoff
                 else cfg.cutoff_alpha)
        fetch_rtt = 2 * hop_latency + 2 * cfg.cost.ctrl_message
        recovery = slack + expected_lost * (fetch_rtt + chunk / bandwidth)

    # --- staging risk: rings smaller than the in-flight demand of one
    # sender block RNR-drop under bursts; scale a mild premium by the
    # shortfall against the Fig 3 receive burst of one chunk per peer.
    staging_risk = 0.0
    if not uc and scenario.collective != "alltoall":
        fp = ProtocolFootprint(
            recv_buffer_bytes=n * (p if scenario.collective == "allgather" else 1),
            chunk_bytes=chunk,
            staging_slots=cfg.staging_slots,
            n_subgroups=cfg.n_subgroups,
        )
        burst_bytes = min(p - 1, cfg.staging_slots * 4) * chunk
        if fp.staging_bytes < burst_bytes:
            deficit = (burst_bytes - fp.staging_bytes) / bandwidth
            staging_risk = deficit

    return CostEstimate(
        wire=wire,
        software=software,
        sequencing=sequencing,
        fill=fill,
        recovery=recovery,
        staging_risk=staging_risk,
    )


def prune(
    scenario: Scenario,
    candidates: List[Dict[str, object]],
    keep: int,
) -> List[Tuple[Dict[str, object], CostEstimate]]:
    """Rank *candidates* by predicted time; return the best *keep*.

    Candidates with the same predicted total are indistinguishable to
    the model — evaluating more than one of them wastes simulation
    budget, so each predicted-time level sends a single representative
    and the budget spreads across genuinely different operating points.
    Ordering is fully deterministic: ties break on the canonical JSON of
    the knob dict, so repeated searches evaluate the same points.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    scored = [(knobs, predict_time(scenario, knobs)) for knobs in candidates]
    scored.sort(key=lambda item: (item[1].total,
                                  json.dumps(item[0], sort_keys=True, default=str)))
    seen = set()
    out: List[Tuple[Dict[str, object], CostEstimate]] = []
    for knobs, est in scored:
        signature = round(est.total, 12)
        if signature in seen:
            continue
        seen.add(signature)
        out.append((knobs, est))
        if len(out) == keep:
            break
    return out
