"""Simulation-in-the-loop candidate scoring.

Each surviving candidate runs one short seeded collective through the
real packet-level engine (the same plumbing the benchmark harness uses),
with the observability plane attached so the paper's evaluation metrics
— link utilization and staging-ring occupancy — become secondary
objectives: at equal completion time the tuner prefers headroom in the
staging ring and a busier bottleneck link.

Tracing perturbs nothing (DESIGN.md §8 pins zero virtual-time
perturbation with the tracer attached), so a tuned profile's measured
duration is exactly what an untraced production run would see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.communicator import Communicator
from repro.obs.trace import TraceConfig, TraceView
from repro.tune.scenario import Scenario
from repro.tune.store import config_from_knobs

__all__ = ["Measurement", "evaluate"]


@dataclass(frozen=True)
class Measurement:
    """One candidate's simulated outcome."""

    duration: float  #: collective completion time (seconds, virtual)
    throughput: float  #: the paper's Fig 11 metric (bytes/s)
    sim_events: int  #: engine events processed (search-cost accounting)
    verified: bool  #: payload correctness of the run
    link_util_peak: float  #: busiest link's busy fraction over the run
    staging_peak_frac: float  #: peak held staging slots / capacity

    def summary(self) -> Dict[str, object]:
        """JSON-safe dict for profiles and search logs."""
        return {
            "duration": float(self.duration),
            "throughput": float(self.throughput),
            "sim_events": int(self.sim_events),
            "verified": bool(self.verified),
            "link_util_peak": float(self.link_util_peak),
            "staging_peak_frac": float(self.staging_peak_frac),
        }

    def score(self):
        """Ordering key: completion time first, then staging headroom,
        then (negated) link utilization.  Unverified runs sort last."""
        return (
            not self.verified,
            self.duration,
            self.staging_peak_frac,
            -self.link_util_peak,
        )


def _link_util_peak(view: Optional[TraceView], duration: float) -> float:
    if view is None or duration <= 0:
        return 0.0
    busy: Dict[str, float] = {}
    for r in view.select(name="link.busy", ph="X"):
        busy[r.track] = busy.get(r.track, 0.0) + r.value
    if not busy:
        return 0.0
    return min(1.0, max(busy.values()) / duration)


def _staging_peak(view: Optional[TraceView]) -> int:
    if view is None:
        return 0
    held = [r.value for r in view.select(name="staging.hold", ph="C")]
    return int(max(held)) if held else 0


def evaluate(
    scenario: Scenario,
    knobs: Dict[str, object],
    trace: bool = True,
) -> Measurement:
    """Run the scenario once under *knobs* and measure it.

    Deterministic end to end: the fabric, fault schedules and payloads
    all derive from ``scenario.seed``, so re-evaluating a candidate is
    bit-reproducible.
    """
    cfg = config_from_knobs(knobs)
    mtu = cfg.chunk_size if scenario.transport == "ud" else 4096
    fabric = scenario.build_fabric(mtu=mtu)
    comm = Communicator(
        fabric, config=cfg, trace=TraceConfig() if trace else None)
    payloads = scenario.make_payload()
    if scenario.collective == "broadcast":
        result = comm.broadcast(0, payloads[0])
        verified = result.verify_broadcast(payloads[0])
    elif scenario.collective == "allreduce":
        result = comm.allreduce(payloads, algorithm="inc")
        verified = result.verify_allreduce(payloads)
    elif scenario.collective == "alltoall":
        result = comm.alltoall(payloads)
        verified = result.verify_alltoall(payloads)
    else:
        result = comm.allgather(payloads)
        verified = result.verify_allgather(payloads)
    capacity = cfg.staging_slots * cfg.n_subgroups
    peak = _staging_peak(result.trace)
    return Measurement(
        duration=result.duration,
        throughput=result.throughput,
        sim_events=int(result.engine.get("sim_events", 0)),
        verified=verified,
        link_util_peak=_link_util_peak(result.trace, result.duration),
        staging_peak_frac=peak / capacity if capacity else 0.0,
    )
