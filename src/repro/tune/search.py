"""Search orchestration: space → cost-model pruning → simulation → store.

:func:`autotune` is the subsystem's front door: given a scenario it
first consults the profile store (a hit returns the persisted profile
with **zero** simulation events — repeat invocations are pure cache
hits), otherwise enumerates the knob space, pre-prunes it with the
analytic models, scores the survivors in the simulator, and persists the
winner.  The untuned default :class:`CollectiveConfig` is always in the
evaluated set, so a tuned profile can never lose to it.

:func:`resolve_config` backs ``Communicator(..., config="auto")``: it
derives the scenario key from a live fabric and returns the stored
profile's config (clamped to the fabric's MTU), falling back to the
stock default when no profile matches.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.communicator import CollectiveConfig
from repro.net.fabric import Fabric
from repro.tune.cost import prune
from repro.tune.evaluate import Measurement, evaluate
from repro.tune.scenario import Scenario, size_bucket
from repro.tune.space import SearchSpace
from repro.tune.store import ProfileStore, PROFILE_SCHEMA_VERSION, TuningProfile, config_from_knobs

__all__ = ["SearchResult", "autotune", "resolve_config"]


@dataclass
class SearchResult:
    """Outcome of one :func:`autotune` call."""

    profile: TuningProfile
    cache_hit: bool  #: True → served from the store, nothing simulated
    evaluations: int  #: simulated candidates this call (0 on a hit)
    sim_events: int  #: total engine events spent searching (0 on a hit)
    log: List[Dict[str, object]] = field(default_factory=list)
    store_path: Optional[str] = None  #: where the profile lives on disk


def _knob_id(knobs: Dict[str, object]) -> str:
    return json.dumps(knobs, sort_keys=True, default=str)


def autotune(
    scenario: Scenario,
    store: Optional[ProfileStore] = None,
    max_evals: int = 8,
    force: bool = False,
    trace: bool = True,
) -> SearchResult:
    """Find (or recall) the best :class:`CollectiveConfig` for a scenario.

    Parameters
    ----------
    scenario:
        The tuning key + evaluation context; the search normalizes the
        payload to the key's message-size bucket.
    store:
        Profile store to consult/update; defaults to the committed
        in-package store.
    max_evals:
        Simulation budget — candidates surviving the analytic pruner
        (the untuned baseline rides along for free and does not count
        against the budget).
    force:
        Re-search even on a cache hit, overwriting the stored profile.
    trace:
        Attach the observability plane to evaluation runs (secondary
        objectives); disable to halve wall-clock on very large points.
    """
    store = store or ProfileStore.default()
    scenario = scenario.with_bucket_payload()
    if not force:
        hit = store.lookup(scenario)
        if hit is not None:
            return SearchResult(
                profile=hit, cache_hit=True, evaluations=0, sim_events=0,
                store_path=store.path_for(hit))

    space = SearchSpace.default(scenario)
    candidates = space.candidates()
    ranked = prune(scenario, candidates, keep=max_evals)

    # The untuned default always gets simulated: it anchors the profile's
    # baseline figures and guarantees tuned <= default by construction.
    baseline_knobs = space.baseline_knobs()
    baseline_id = _knob_id(baseline_knobs)
    plan = [(baseline_knobs, None)]
    plan += [(k, est) for k, est in ranked if _knob_id(k) != baseline_id]

    log: List[Dict[str, object]] = []
    measured: List[tuple] = []
    total_events = 0
    for knobs, estimate in plan:
        m: Measurement = evaluate(scenario, knobs, trace=trace)
        total_events += m.sim_events
        measured.append((knobs, m))
        log.append({
            "knobs": knobs,
            "predicted": estimate.breakdown() if estimate is not None else None,
            "measured": m.summary(),
            "baseline": estimate is None,
        })

    best_knobs, best = min(measured, key=lambda item: item[1].score())
    baseline = measured[0][1]
    profile = TuningProfile(
        schema=PROFILE_SCHEMA_VERSION,
        key=scenario.key(),
        cache_key=scenario.cache_key(),
        slug=scenario.slug(),
        scenario={"msg_bytes": scenario.msg_bytes, "seed": scenario.seed},
        knobs=best_knobs,
        baseline=baseline.summary(),
        best=best.summary(),
        search={
            "space_points": space.n_points,
            "valid_candidates": len(candidates),
            "evaluated": len(measured),
            "max_evals": max_evals,
        },
    )
    path = store.put(profile)
    return SearchResult(
        profile=profile, cache_hit=False, evaluations=len(measured),
        sim_events=total_events, log=log, store_path=path)


# --------------------------------------------------------------- resolution


def resolve_config(
    fabric: Fabric,
    n_hosts: Optional[int] = None,
    msg_bytes: Optional[int] = None,
    collective: str = "allgather",
    fault_profile: str = "clean",
    store: Optional[ProfileStore] = None,
) -> CollectiveConfig:
    """Resolve ``config="auto"`` through the profile store.

    Derives the scenario key from the live fabric (topology kind, size,
    link rate) and returns the stored profile's config.  Without a
    ``msg_bytes`` hint the largest-bucket profile for the key wins (FSDP
    shards sit at the large end of the paper's size sweep).  Unknown
    topologies or missing profiles fall back to the stock default — the
    lookup never fails, it only declines to tune.

    The returned config is re-validated against the *actual* fabric:
    a stored UD chunk wider than this fabric's MTU is clamped down.
    """
    store = store or ProfileStore.default()
    p = n_hosts if n_hosts is not None else fabric.topology.n_hosts
    link_gbit = fabric.link_bandwidth * 8.0 / 1e9
    kind = fabric.topology.kind
    if kind == "leaf_spine" and p == 188:
        # Topology.testbed_188() is built as a leaf_spine; the store keys
        # it under the same name Scenario.resolved_topo uses.
        kind = "testbed_188"
    if kind not in ("star", "leaf_spine", "testbed_188", "back_to_back",
                    "torus", "dragonfly", "multi_rail"):
        return CollectiveConfig()
    # Zoo kinds key their build parameters too: a [4,4] torus profile
    # must not resolve for a [2,8] torus of the same size.
    want_params = None
    if kind in ("torus", "dragonfly", "multi_rail"):
        try:
            from repro.net.topology import TopologySpec
            want_params = TopologySpec(
                kind, fabric.topology.n_hosts,
                dict(fabric.topology.params)).key()["params"]
        except ValueError:
            return CollectiveConfig()

    matches: List[TuningProfile] = []
    for profile in store.profiles():
        key = profile.key
        if (key["collective"] == collective
                and key["topology"] == kind
                and key["n_hosts"] == p
                and key["fault_profile"] == fault_profile
                and abs(float(key["link_gbit"]) - link_gbit) < 1e-6
                and (want_params is None
                     or key.get("topo_params") == want_params)):
            matches.append(profile)
    if not matches:
        return CollectiveConfig()
    if msg_bytes is not None:
        bucket = size_bucket(msg_bytes)
        exact = [m for m in matches if m.key["bucket"] == bucket]
        matches = exact or sorted(
            matches, key=lambda m: abs(int(m.key["bucket"]) - bucket))
    else:
        matches = sorted(matches, key=lambda m: -int(m.key["bucket"]))
    chosen = matches[0]

    knobs = dict(chosen.knobs)
    chunk = int(knobs.get("chunk_size", 4096))
    if knobs.get("transport", "ud") == "ud" and chunk > fabric.mtu:
        chunk = fabric.mtu
    if collective == "allgather" and msg_bytes is not None:
        # Shard boundaries must align with chunk boundaries; halve the
        # (power-of-two) chunk until it divides the actual message.
        while chunk > 4096 and msg_bytes % chunk != 0:
            chunk //= 2
    knobs["chunk_size"] = chunk
    config = config_from_knobs(knobs)
    config.validate(fabric)
    return config
