"""The tuning key and its deterministic execution context.

A :class:`Scenario` names one deployment point: which collective, on
which topology, over which transport, at which message-size bucket,
under which fault profile.  Two scenarios with the same
:meth:`Scenario.cache_key` are interchangeable for tuning purposes —
the profile store indexes on exactly that digest.

The scenario also *builds* its execution context (fabric, payloads) from
a seed, so the evaluator's measurements are bit-reproducible and a
repeated search returns byte-identical profiles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.net.fabric import Fabric
from repro.net.faults import CrashSpec, GilbertElliott
from repro.net.link import FaultSpec
from repro.net.topology import Topology, TopologySpec
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import gbit_per_s

__all__ = ["CRASH_PROFILES", "FAULT_PROFILES", "Scenario",
           "TUNABLE_COLLECTIVES", "size_bucket"]

#: collectives the tuner can key a profile on.  ``allreduce`` runs the
#: composed RS→AG submission; ``alltoall`` runs the rotation-scheduled
#: unicast exchange — both through ``Communicator.submit``.
TUNABLE_COLLECTIVES = ("broadcast", "allgather", "allreduce", "alltoall")

#: bump when the key layout changes — old cache entries then miss cleanly
KEY_SCHEMA_VERSION = 1

#: named fault profiles a scenario can be keyed on; each maps a
#: ``(src, dst)`` channel to a :class:`~repro.net.link.FaultSpec` (or
#: ``None`` for a clean fabric).  Extend by registering a new name here.
FAULT_PROFILES: Dict[str, Optional[Callable[[str, str], Optional[FaultSpec]]]] = {
    "clean": None,
    # Light fabric BER: one packet in a thousand, every channel.
    "bernoulli": lambda s, d: FaultSpec(drop_prob=1e-3),
    # Bursty Gilbert-Elliott loss (the chaos harness's default regime).
    "burst": lambda s, d: FaultSpec(gilbert_elliott=GilbertElliott(
        p_good_bad=0.02, p_bad_good=0.3, drop_good=0.002, drop_bad=0.15)),
}

#: named fail-stop crash profiles a scenario can additionally be keyed
#: on; each maps a scenario to the :class:`CrashSpec` list to arm on its
#: fabric.  The default ``"none"`` is key-invisible (see
#: :meth:`Scenario.key`), so every profile tuned before crash awareness
#: existed keeps its committed digest.
CRASH_PROFILES: Dict[str, Optional[Callable[["Scenario"], List[CrashSpec]]]] = {
    "none": None,
    # The highest rank fail-stops mid-collective (a host death a DEGRADE
    # policy completes around).
    "host_mid": lambda sc: [CrashSpec(at=200e-6, host=sc.n_hosts - 1)],
    # A spine hard-down mid-collective; the SM reroutes via the survivors.
    "spine_down": lambda sc: [CrashSpec(at=200e-6, switch="spine000")],
}


def size_bucket(nbytes: int) -> int:
    """Power-of-two message-size bucket (ceiling).

    Profiles are keyed per bucket, not per exact byte count, so nearby
    sizes share one tuned config — the granularity at which the paper's
    own evaluation varies its knobs (Figs 11/14/15 step in powers of two).
    """
    if nbytes < 1:
        raise ValueError("nbytes must be >= 1")
    return 1 << (nbytes - 1).bit_length()


@dataclass(frozen=True)
class Scenario:
    """One deployment point of the collective stack.

    ``collective``/``n_hosts``/``topo``/``link_gbit``/``transport``/
    ``fault_profile`` plus the bucket of ``msg_bytes`` form the cache
    key; ``seed`` only seeds the evaluation (profiles apply across
    seeds) and ``msg_bytes`` itself is the representative payload the
    evaluator runs.
    """

    collective: str = "allgather"  #: one of :data:`TUNABLE_COLLECTIVES`
    n_hosts: int = 16
    topo: str = "auto"  #: a make_fabric topology name ('auto' resolves)
    link_gbit: float = 56.0
    transport: str = "ud"
    #: per-rank payload (allgather: shard size; broadcast: buffer size)
    msg_bytes: int = 64 * 1024
    fault_profile: str = "clean"
    #: fail-stop crash schedule name (:data:`CRASH_PROFILES`); "none"
    #: stays out of the cache key for digest stability
    crash_profile: str = "none"
    #: :class:`~repro.net.topology.TopologySpec` build parameters for the
    #: zoo kinds (torus dims, dragonfly shape, multi-rail base).  Accepts
    #: a dict; stored as its canonical JSON string so the dataclass stays
    #: hashable.  Empty ("") is key-invisible — pre-zoo digests hold.
    topo_params: str = ""
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.topo_params, dict):
            object.__setattr__(
                self, "topo_params",
                json.dumps(self.topo_params, sort_keys=True,
                           separators=(",", ":")))
        if self.topo_params:
            json.loads(self.topo_params)  # malformed params fail here
        if self.collective not in TUNABLE_COLLECTIVES:
            raise ValueError(f"unknown collective {self.collective!r}")
        if self.transport not in ("ud", "uc"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.fault_profile not in FAULT_PROFILES:
            raise ValueError(
                f"unknown fault profile {self.fault_profile!r} "
                f"(have {sorted(FAULT_PROFILES)})"
            )
        if self.crash_profile not in CRASH_PROFILES:
            raise ValueError(
                f"unknown crash profile {self.crash_profile!r} "
                f"(have {sorted(CRASH_PROFILES)})"
            )
        if self.n_hosts < 2:
            raise ValueError("need n_hosts >= 2")
        if self.msg_bytes < 1:
            raise ValueError("msg_bytes must be >= 1")

    # ------------------------------------------------------------------ key

    @property
    def bucket(self) -> int:
        return size_bucket(self.msg_bytes)

    @property
    def resolved_topo(self) -> str:
        """The concrete topology name 'auto' picks (mirrors
        :func:`repro.bench.runner.make_fabric`)."""
        if self.topo != "auto":
            return self.topo
        if self.n_hosts == 188:
            return "testbed_188"
        if self.n_hosts <= 8:
            return "star"
        return "leaf_spine"

    def key(self) -> Dict[str, object]:
        """The canonical (JSON-safe, order-independent) tuning key.

        ``crash_profile`` joins the key **only** when set: the default
        "none" must hash exactly as scenarios did before crash awareness
        existed, keeping every committed profile digest stable.
        """
        key: Dict[str, object] = {
            "schema": KEY_SCHEMA_VERSION,
            "collective": self.collective,
            "topology": self.resolved_topo,
            "n_hosts": self.n_hosts,
            "link_gbit": self.link_gbit,
            "transport": self.transport,
            "bucket": self.bucket,
            "fault_profile": self.fault_profile,
        }
        if self.crash_profile != "none":
            key["crash_profile"] = self.crash_profile
        if self.topo_params:
            # Round-trip kind/params through the TopologySpec normalizer so
            # equivalent spellings ({"dims": [4, 4]} vs ((4, 4))) share one
            # digest — and malformed params fail at key time, not run time.
            key["topo_params"] = TopologySpec(
                self.resolved_topo, self.n_hosts, self._params()
            ).key()["params"]
        return key

    def cache_key(self) -> str:
        """Deterministic digest of :meth:`key` — the store's index."""
        blob = json.dumps(self.key(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def slug(self) -> str:
        """Human-readable profile filename stem (digest-suffixed)."""
        kib = self.bucket // 1024
        size = f"{kib}KiB" if kib else f"{self.bucket}B"
        crash = "" if self.crash_profile == "none" else f"-{self.crash_profile}"
        return (
            f"{self.collective}-{self.resolved_topo}-p{self.n_hosts}"
            f"-{self.transport}-{size}-{self.fault_profile}{crash}"
            f"-{self.cache_key()[:8]}"
        )

    # ------------------------------------------------------------ execution

    def _params(self) -> Dict[str, object]:
        return json.loads(self.topo_params) if self.topo_params else {}

    def _topology(self) -> Topology:
        name = self.resolved_topo
        if name in ("torus", "dragonfly", "multi_rail") or self.topo_params:
            return TopologySpec(name, self.n_hosts, self._params()).build()
        if name == "star":
            return Topology.star(self.n_hosts)
        if name == "testbed_188":
            return Topology.testbed_188()
        if name == "back_to_back":
            return Topology.back_to_back()
        if name == "leaf_spine":
            n_leaf = max(2, -(-self.n_hosts // 16))
            return Topology.leaf_spine(self.n_hosts, n_leaf, max(2, n_leaf // 2))
        raise ValueError(f"unknown topo {name!r}")

    def build_fabric(self, mtu: int = 4096) -> Fabric:
        """A fresh seeded fabric for one evaluation.

        ``mtu`` doubles as the simulation-granularity knob exactly as in
        the benchmark harness: UD candidates simulate with ``mtu ==
        chunk_size`` and datapath costs rescaled (see
        :func:`repro.bench.runner.coarse_config`), so one simulated
        packet stands for many wire packets without decalibrating.
        """
        fabric = Fabric(
            Simulator(),
            self._topology(),
            link_bandwidth=gbit_per_s(self.link_gbit),
            mtu=mtu,
            streams=RandomStreams(self.seed),
        )
        factory = FAULT_PROFILES[self.fault_profile]
        if factory is not None:
            fabric.set_fault_all(factory)
        for spec in self.crash_specs():
            fabric.schedule_crash(spec)
        return fabric

    def crash_specs(self) -> List[CrashSpec]:
        """The fail-stop schedule this scenario's crash profile arms."""
        factory = CRASH_PROFILES[self.crash_profile]
        return [] if factory is None else factory(self)

    def make_payload(self) -> List[np.ndarray]:
        """Seeded per-rank payloads.

        broadcast: one buffer (element 0); allgather: P uint8 shards;
        allreduce: P float32 contributions, element count rounded down to
        a multiple of P so the reduce-scatter shards evenly; alltoall:
        P per-rank buffers of P equal blocks, total rounded down to a
        multiple of P.  ``msg_bytes`` stays the *nominal* per-rank size —
        the bucket key is unaffected by the divisibility rounding.
        """
        rng = np.random.default_rng(self.seed)
        p = self.n_hosts
        if self.collective == "allreduce":
            elems = max(self.msg_bytes // 4 // p, 1) * p
            return [rng.normal(size=elems).astype(np.float32)
                    for _ in range(p)]
        if self.collective == "alltoall":
            nbytes = max(self.msg_bytes // p, 1) * p
            return [rng.integers(0, 256, nbytes, dtype=np.uint8)
                    for _ in range(p)]
        count = p if self.collective == "allgather" else 1
        return [rng.integers(0, 256, self.msg_bytes, dtype=np.uint8)
                for _ in range(count)]

    def with_bucket_payload(self) -> "Scenario":
        """The scenario normalized to its bucket's representative size."""
        if self.msg_bytes == self.bucket:
            return self
        return replace(self, msg_bytes=self.bucket)
