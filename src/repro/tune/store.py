"""The persistent tuning-profile store.

Profiles are versioned JSON documents, one file per (topology,
transport, message-size bucket, fault profile) key, indexed by the
scenario's deterministic :meth:`~repro.tune.scenario.Scenario.cache_key`.
Serialization is **byte-stable**: keys are sorted, floats use Python's
shortest-roundtrip repr, and a trailing newline is fixed — loading a
profile and re-serializing it reproduces the committed bytes exactly,
which is what lets CI verify the committed 188-node profiles without
re-running any search.

The default store is the in-package ``tune/profiles/`` directory (the
committed profiles for the paper's 188-node fat-tree points live there);
point :class:`ProfileStore` at any other directory for scratch searches.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.communicator import CollectiveConfig
from repro.tune.scenario import Scenario

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "ProfileStore",
    "TuningProfile",
    "config_from_knobs",
]

#: bump on incompatible profile layout changes; loaders reject mismatches
PROFILE_SCHEMA_VERSION = 1

#: the in-repo directory holding committed profiles
DEFAULT_PROFILE_DIR = os.path.join(os.path.dirname(__file__), "profiles")


def config_from_knobs(knobs: Dict[str, object]) -> CollectiveConfig:
    """Materialize a :class:`CollectiveConfig` from a profile knob dict.

    UD knob sets use the benchmark harness's coarse-granularity
    calibration (one simulated chunk stands for ``chunk/4096`` wire
    datagrams, per-chunk software costs rescaled accordingly); UC chunks
    are genuinely one CQE each (§V-B), so their per-chunk costs stay at
    the base calibration — exactly the Fig 15 amortization effect.
    """
    from repro.bench.runner import coarse_config

    knobs = dict(knobs)
    chunk = int(knobs.pop("chunk_size", 4096))
    transport = str(knobs.pop("transport", "ud"))
    if transport == "ud":
        return coarse_config(chunk, transport=transport, **knobs)
    return CollectiveConfig(chunk_size=chunk, transport=transport, **knobs)


def _jsonable(value):
    """Coerce numpy scalars etc. to canonical JSON-native types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if hasattr(value, "item"):  # numpy scalar
        return _jsonable(value.item())
    raise TypeError(f"non-serializable profile value {value!r}")


@dataclass
class TuningProfile:
    """One tuned operating point, as persisted in the store."""

    schema: int  #: :data:`PROFILE_SCHEMA_VERSION` at write time
    key: Dict[str, object]  #: the canonical scenario key (see Scenario.key)
    cache_key: str  #: sha256 digest of the key — the store index
    slug: str  #: human-readable file stem
    scenario: Dict[str, object]  #: non-key evaluation context (msg/seed)
    knobs: Dict[str, object]  #: the winning CollectiveConfig overrides
    baseline: Dict[str, object]  #: untuned default's measurement summary
    best: Dict[str, object]  #: winning candidate's measurement summary
    search: Dict[str, object] = field(default_factory=dict)  #: search stats

    # ------------------------------------------------------------ accessors

    @property
    def improvement(self) -> float:
        """baseline/best completion-time ratio (≥ 1 by construction:
        the untuned default is always in the evaluated set)."""
        best = float(self.best.get("duration", 0.0))
        base = float(self.baseline.get("duration", 0.0))
        return base / best if best > 0 else float("inf")

    def config(self) -> CollectiveConfig:
        return config_from_knobs(self.knobs)

    # -------------------------------------------------------- serialization

    def to_json(self) -> str:
        """Canonical byte-stable serialization (sorted keys, 2-space
        indent, trailing newline)."""
        doc = _jsonable(dataclasses.asdict(self))
        return json.dumps(doc, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "TuningProfile":
        doc = json.loads(text)
        schema = doc.get("schema")
        if schema != PROFILE_SCHEMA_VERSION:
            raise ValueError(
                f"profile schema {schema!r} != {PROFILE_SCHEMA_VERSION} "
                "(regenerate with `python -m repro tune --force`)"
            )
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(doc) - fields
        if unknown:
            raise ValueError(f"unknown profile fields {sorted(unknown)}")
        return cls(**{name: doc[name] for name in fields})

    def validate(self) -> None:
        """Structural sanity beyond the schema version."""
        if not self.cache_key or not self.slug:
            raise ValueError("profile missing cache_key/slug")
        if not self.knobs:
            raise ValueError("profile has no knobs")
        for part in ("baseline", "best"):
            meas = getattr(self, part)
            if float(meas.get("duration", 0.0)) <= 0.0:
                raise ValueError(f"profile {part} has no positive duration")
            if not meas.get("verified", False):
                raise ValueError(f"profile {part} run did not verify payloads")
        if float(self.best["duration"]) > float(self.baseline["duration"]):
            raise ValueError("tuned profile is slower than the untuned default")
        self.config()  # knobs must materialize


class ProfileStore:
    """A directory of :class:`TuningProfile` JSON files."""

    def __init__(self, root: str = DEFAULT_PROFILE_DIR) -> None:
        self.root = root
        self._cache: Optional[Dict[str, TuningProfile]] = None

    @classmethod
    def default(cls) -> "ProfileStore":
        """The committed in-package store."""
        return cls(DEFAULT_PROFILE_DIR)

    # --------------------------------------------------------------- access

    def _load_all(self) -> Dict[str, TuningProfile]:
        if self._cache is None:
            self._cache = {}
            if os.path.isdir(self.root):
                for name in sorted(os.listdir(self.root)):
                    if not name.endswith(".json"):
                        continue
                    with open(os.path.join(self.root, name)) as fh:
                        profile = TuningProfile.from_json(fh.read())
                    self._cache[profile.cache_key] = profile
        return self._cache

    def profiles(self) -> List[TuningProfile]:
        """Every stored profile, ordered by slug (deterministic)."""
        return sorted(self._load_all().values(), key=lambda p: p.slug)

    def lookup(self, scenario: Scenario) -> Optional[TuningProfile]:
        """The profile for this scenario's cache key, or ``None``."""
        return self._load_all().get(scenario.cache_key())

    def get(self, ref: str) -> Optional[TuningProfile]:
        """Find a profile by cache-key or slug prefix (CLI ``--show``)."""
        for profile in self.profiles():
            if profile.cache_key.startswith(ref) or profile.slug.startswith(ref):
                return profile
        return None

    def path_for(self, profile: TuningProfile) -> str:
        return os.path.join(self.root, f"{profile.slug}.json")

    def put(self, profile: TuningProfile) -> str:
        """Persist (and index) a profile; returns its file path."""
        profile.validate()
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(profile)
        with open(path, "w") as fh:
            fh.write(profile.to_json())
        self._load_all()[profile.cache_key] = profile
        return path
