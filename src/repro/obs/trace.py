"""Structured tracing core: bounded per-track ring buffers.

The observability plane records *tracepoints* — named, timestamped facts
about the datapath (a link busy interval, a CQE delivery, a cutoff-timer
arm) — into bounded per-track ring buffers, one track per rank plus
fabric-side tracks (links, NICs, switches, the event engine, DPA
threads).  Tracepoint names follow the ``subsystem.verb`` convention and
must appear in :data:`repro.obs.schema.TRACEPOINTS` (enforced by
``tools/check_tracepoints.py``).

Cost discipline
---------------
Tracing must never perturb the simulation and must cost ~nothing when
off:

* **Disabled** (the default): instrumented call sites hold a ``None``
  track reference and guard with a single ``is not None`` check — no
  formatting, no allocation, no call.  The module-level :data:`ENABLED`
  flag is a global kill switch checked before a tracer is ever built.
* **Enabled**: recording is a tuple append into a ``deque(maxlen=...)``.
  Tracepoints NEVER schedule simulator events and never read wall-clock
  time, so virtual-time results, ``events_processed`` counts and the
  fast-path equivalence guarantees are bit-identical with tracing on
  (tested in ``tests/test_obs_trace.py``).

All timestamps are simulator virtual time in seconds; export converts to
the microseconds Chrome/Perfetto expect.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Tuple

__all__ = ["ENABLED", "TraceConfig", "Track", "Tracer", "TraceRecord", "TraceView"]

#: Module-level master switch.  Checked once, when a :class:`Tracer` is
#: about to be installed — not per tracepoint — so flipping it off
#: guarantees zero tracing work anywhere in the stack.
ENABLED = True


@dataclass
class TraceConfig:
    """Tracing knobs passed as ``Communicator(..., trace=TraceConfig())``."""

    #: build the tracer at all (``False`` keeps the plane fully off)
    enabled: bool = True
    #: ring capacity: events retained per track (oldest evicted first)
    capacity: int = 1 << 16
    #: bin width (seconds) of the engine event-dispatch histogram
    engine_bin: float = 20e-6

    def validate(self) -> None:
        if self.capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        if self.engine_bin <= 0:
            raise ValueError("engine_bin must be > 0")


class TraceRecord(NamedTuple):
    """One normalized trace event, as exposed by :class:`TraceView`."""

    group: str  #: track group: rank | nic | link | switch | engine | dpa
    track: str  #: track name within the group (e.g. ``r3``, ``h0->leaf0``)
    tid: int  #: stable per-group thread id (track creation order)
    ts: float  #: virtual-time start, seconds
    value: float  #: duration ('X'), counter value ('C'), 0.0 ('i')
    ph: str  #: Chrome phase: 'X' complete, 'i' instant, 'C' counter
    name: str  #: tracepoint name, ``subsystem.verb``
    args: Optional[Dict[str, Any]]  #: small payload, or None


class Track:
    """One timeline (rank, port, thread...) with a bounded event ring.

    Raw storage is a ``deque(maxlen=capacity)`` of plain tuples
    ``(ts, value, ph, name, args)`` — the cheapest recording the Python
    runtime offers; normalization happens only at snapshot time.
    """

    __slots__ = ("group", "name", "tid", "buf", "dropped")

    def __init__(self, group: str, name: str, tid: int, capacity: int) -> None:
        self.group = group
        self.name = name
        self.tid = tid
        self.buf: "collections.deque" = collections.deque(maxlen=capacity)
        self.dropped = 0  # evictions are counted so truncation is visible

    def instant(self, name: str, ts: float, args: Optional[dict] = None) -> None:
        """Record a point event (Chrome phase ``i``)."""
        buf = self.buf
        if len(buf) == buf.maxlen:
            self.dropped += 1
        buf.append((ts, 0.0, "i", name, args))

    def complete(self, name: str, ts: float, dur: float,
                 args: Optional[dict] = None) -> None:
        """Record a duration span (Chrome phase ``X``)."""
        buf = self.buf
        if len(buf) == buf.maxlen:
            self.dropped += 1
        buf.append((ts, dur, "X", name, args))

    def counter(self, name: str, ts: float, value: float) -> None:
        """Record a counter sample (Chrome phase ``C``)."""
        buf = self.buf
        if len(buf) == buf.maxlen:
            self.dropped += 1
        buf.append((ts, float(value), "C", name, None))


class Tracer:
    """Owns every track plus the engine-dispatch histogram.

    One tracer serves one fabric/communicator; install it with
    :meth:`repro.net.fabric.Fabric.install_tracer` (done automatically by
    ``Communicator(..., trace=...)``).
    """

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.config = config or TraceConfig()
        self.config.validate()
        self._tracks: Dict[Tuple[str, str], Track] = {}
        self._tids: Dict[str, int] = {}  # next tid per group
        # Engine event-dispatch histogram: bin index -> events fired.  A
        # dict (not a ring) — bounded by coarsening: when the bin count
        # exceeds the track capacity the bin width doubles and the
        # histogram is re-bucketed, keeping memory O(capacity).
        self._engine_bins: Dict[int, int] = {}
        self._engine_bin_w = float(self.config.engine_bin)

    # ------------------------------------------------------------- recording

    def track(self, group: str, name: str) -> Track:
        """The track for ``(group, name)``, created on first use."""
        key = (group, name)
        trk = self._tracks.get(key)
        if trk is None:
            tid = self._tids.get(group, 0)
            self._tids[group] = tid + 1
            trk = self._tracks[key] = Track(group, name, tid, self.config.capacity)
        return trk

    def on_engine_event(self, when: float) -> None:
        """Per-fired-event hook installed as ``Simulator.trace_hook``."""
        bins = self._engine_bins
        b = int(when / self._engine_bin_w)
        bins[b] = bins.get(b, 0) + 1
        if len(bins) > self.config.capacity:
            self._coarsen()

    def _coarsen(self) -> None:
        self._engine_bin_w *= 2.0
        merged: Dict[int, int] = {}
        for b, n in self._engine_bins.items():
            half = b >> 1
            merged[half] = merged.get(half, 0) + n
        self._engine_bins = merged

    # -------------------------------------------------------------- snapshot

    def _iter_records(self) -> Iterator[TraceRecord]:
        for (group, name), trk in self._tracks.items():
            for ts, value, ph, ev_name, args in trk.buf:
                yield TraceRecord(group, name, trk.tid, ts, value, ph, ev_name, args)
        if self._engine_bins:
            w = self._engine_bin_w
            for b in sorted(self._engine_bins):
                yield TraceRecord(
                    "engine", "dispatch", 0, b * w,
                    float(self._engine_bins[b]), "C", "engine.dispatch", None,
                )

    def view(self, t0: Optional[float] = None,
             t1: Optional[float] = None) -> "TraceView":
        """Snapshot the rings into an immutable, queryable view.

        ``[t0, t1]`` clips to one collective's window (inclusive); spans
        are kept if they *start* inside the window.
        """
        records = [
            r for r in self._iter_records()
            if (t0 is None or r.ts >= t0) and (t1 is None or r.ts <= t1)
        ]
        # Deterministic presentation order: by track, then time, with the
        # per-track insertion order (already time-sorted per ring) kept.
        records.sort(key=lambda r: (r.group, r.tid, r.ts, r.ph, r.name))
        return TraceView(records, dropped=self.dropped_events())

    def dropped_events(self) -> int:
        """Events evicted from full rings (0 means the trace is complete)."""
        return sum(t.dropped for t in self._tracks.values())


class TraceView:
    """An immutable snapshot of trace records with query helpers.

    Returned by :meth:`Tracer.view` and surfaced per-collective as
    :attr:`repro.core.communicator.CollectiveResult.trace`.  Metric
    timelines (link utilization, staging occupancy, outstanding WRs,
    retries) live in :mod:`repro.obs.metrics` and are also exposed here
    as thin delegating methods.
    """

    def __init__(self, records: List[TraceRecord], dropped: int = 0) -> None:
        self.records = records
        self.dropped = dropped

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    # --------------------------------------------------------------- queries

    def select(self, name: Optional[str] = None, group: Optional[str] = None,
               track: Optional[str] = None, ph: Optional[str] = None) -> List[TraceRecord]:
        """Records matching every given filter (exact matches)."""
        return [
            r for r in self.records
            if (name is None or r.name == name)
            and (group is None or r.group == group)
            and (track is None or r.track == track)
            and (ph is None or r.ph == ph)
        ]

    def count(self, name: str) -> int:
        """How many events carry tracepoint *name*."""
        return sum(1 for r in self.records if r.name == name)

    def tracks(self) -> List[Tuple[str, str]]:
        """Distinct ``(group, track)`` pairs present in the snapshot."""
        seen: Dict[Tuple[str, str], None] = {}
        for r in self.records:
            seen.setdefault((r.group, r.track), None)
        return list(seen)

    # ----------------------------------------------------- metric timelines

    def link_utilization(self, port: str, bins: int = 50,
                         t0: Optional[float] = None, t1: Optional[float] = None):
        from repro.obs.metrics import link_utilization

        return link_utilization(self, port, bins=bins, t0=t0, t1=t1)

    def counter_series(self, name: str, group: str, track: str):
        from repro.obs.metrics import counter_series

        return counter_series(self, name, group, track)

    def staging_occupancy(self, rank: int):
        from repro.obs.metrics import staging_occupancy

        return staging_occupancy(self, rank)

    def outstanding_batches(self, rank: int):
        from repro.obs.metrics import outstanding_batches

        return outstanding_batches(self, rank)

    def retry_events(self, rank: Optional[int] = None):
        from repro.obs.metrics import retry_events

        return retry_events(self, rank)

    # --------------------------------------------------------------- export

    def to_chrome(self) -> dict:
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def to_json(self) -> str:
        from repro.obs.export import trace_json

        return trace_json(self)

    def save(self, path: str) -> None:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(self, path)
