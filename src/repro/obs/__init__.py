"""Observability plane: structured tracing + metric timelines.

See DESIGN.md §8 for the tracepoint catalogue, the overhead budget, and
the trace-viewing quickstart.  Entry points:

* ``Communicator(..., trace=TraceConfig())`` turns tracing on; each
  ``CollectiveResult.trace`` is then a :class:`TraceView` clipped to that
  collective's window.
* ``python -m repro trace`` runs a scenario and writes a Chrome
  trace-event JSON viewable in chrome://tracing or Perfetto.
"""

from repro.obs.export import chrome_trace, trace_json, write_chrome_trace
from repro.obs.schema import NAME_RE, TRACEPOINTS, validate_event
from repro.obs.trace import (
    ENABLED,
    TraceConfig,
    Tracer,
    TraceRecord,
    TraceView,
    Track,
)

__all__ = [
    "ENABLED",
    "NAME_RE",
    "TRACEPOINTS",
    "TraceConfig",
    "TraceRecord",
    "TraceView",
    "Tracer",
    "Track",
    "chrome_trace",
    "trace_json",
    "validate_event",
    "write_chrome_trace",
]
