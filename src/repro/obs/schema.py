"""Tracepoint catalogue and trace-event schema validation.

Every tracepoint emitted anywhere in the stack must be registered here,
under a ``subsystem.verb`` name (lowercase, exactly one dot).  The
catalogue is the single source of truth consumed by

* ``tools/check_tracepoints.py`` — the CI lint that scans the source for
  ``.instant(...)`` / ``.complete(...)`` / ``.counter(...)`` call sites
  and rejects unregistered or ill-formed names, and
* :func:`validate_event` — schema validation of exported Chrome
  trace-event dicts, used by the golden tests.
"""

from __future__ import annotations

import re
from typing import Any, Dict

__all__ = ["NAME_RE", "TRACEPOINTS", "validate_event"]

#: ``subsystem.verb``: lowercase subsystem, one dot, lowercase verb
#: (underscores allowed in the verb only).
NAME_RE = re.compile(r"^[a-z]+\.[a-z][a-z_]*$")

#: name -> (phase, description).  phase is the Chrome trace phase the
#: tracepoint uses: 'X' complete span, 'i' instant, 'C' counter.
TRACEPOINTS: Dict[str, Any] = {
    # -- simulation engine ------------------------------------------------
    "engine.dispatch": ("C", "events dispatched per virtual-time bin"),
    # -- links / switches -------------------------------------------------
    "link.busy": ("X", "port busy interval for one packet (or train)"),
    "link.train": ("i", "packet-train coalesced onto the wire (args: pkts)"),
    "link.drop": ("i", "packet dropped by the channel fault model"),
    "switch.relay": ("i", "switch forwarded a packet train (args: pkts)"),
    # -- NIC --------------------------------------------------------------
    "nic.doorbell": ("i", "send doorbell rung for a WR batch (args: wrs)"),
    "nic.cqe": ("i", "completion queue entry delivered to the host"),
    "nic.rnr": ("i", "receiver-not-ready drop (no buffer posted)"),
    "nic.outstanding": ("C", "in-flight send batches for a rank"),
    # -- host datapath ----------------------------------------------------
    "dma.copy": ("X", "staging-slot to user-buffer copy"),
    "dma.copy_runs": ("X", "run-coalesced staging-to-user DMA batch "
                          "(args: copies, segments)"),
    "cq.batch": ("i", "receiver consumed a CQE train in one wake (args: cqes)"),
    "staging.hold": ("C", "staging-ring slots held (received, not copied)"),
    # -- control plane ----------------------------------------------------
    "comm.submit": ("i", "collective submitted on the unified surface "
                         "(args: kind, handle)"),
    "seq.activate": ("i", "sequencer activation forwarded to successor"),
    "phase.sync": ("X", "collective start -> multicast group synced"),
    "phase.multicast": ("X", "sync done -> all data chunks landed"),
    "phase.handshake": ("X", "data done -> final completion handshake"),
    # -- reliability ------------------------------------------------------
    "reliability.arm": ("i", "cutoff timer armed (args: timeout seconds)"),
    "reliability.fire": ("i", "cutoff fired with chunks still missing"),
    "reliability.recover": ("X", "one recovery round (fetch slow path)"),
    "reliability.fetch": ("i", "fetch round issued to a parent/neighbor"),
    "reliability.escalate": ("i", "fetch escalated to an alternate neighbor"),
    "reliability.timeout": ("i", "fetch ACK timed out; round re-armed"),
    # -- fail-stop fault tolerance ----------------------------------------
    "liveness.suspect": ("i", "peer silent past the suspicion timer "
                              "(args: rank, phase)"),
    "liveness.confirm": ("i", "peer confirmed fail-stopped (args: rank, via)"),
    "repair.replan": ("i", "membership/topology re-planned around a death"),
    "repair.ctrl_migrate": ("i", "control plane migrated to a surviving rail"),
    "repair.void": ("i", "chunks voided as unrecoverable (args: chunks)"),
    "engine.watchdog": ("i", "simulator no-progress watchdog fired"),
    "engine.ff_enter": ("i", "flow fast-forward fold began "
                             "(args: chunks, mode)"),
    "engine.ff_exit": ("i", "flow fast-forward fold committed "
                            "(args: until, send_done)"),
    "engine.shard_sync": ("i", "parallel-DES lookahead window synchronized "
                               "across shards (args: shards, phase)"),
    "engine.boundary_xfer": ("i", "boundary injection streams shipped to "
                                  "shards (args: msgs, bytes)"),
    # -- DPA scheduler ----------------------------------------------------
    "dpa.compute": ("X", "DPA thread occupies a core pipe for a segment"),
}

_VALID_PH = {"X", "i", "C", "M"}


def validate_event(ev: dict) -> None:
    """Raise ``ValueError`` if a Chrome trace-event dict is malformed.

    Checks the fields chrome://tracing / Perfetto rely on, plus our own
    conventions (registered names, per-phase required fields).
    """
    if not isinstance(ev, dict):
        raise ValueError(f"event is not a dict: {ev!r}")
    ph = ev.get("ph")
    if ph not in _VALID_PH:
        raise ValueError(f"bad phase {ph!r} in {ev!r}")
    for field in ("pid", "tid"):
        if not isinstance(ev.get(field), int):
            raise ValueError(f"missing/invalid {field} in {ev!r}")
    name = ev.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"missing name in {ev!r}")

    if ph == "M":  # metadata: process_name / thread_name etc.
        if name not in ("process_name", "thread_name", "process_sort_index"):
            raise ValueError(f"unknown metadata record {name!r}")
        if not isinstance(ev.get("args"), dict):
            raise ValueError(f"metadata without args: {ev!r}")
        return

    if name not in TRACEPOINTS:
        raise ValueError(f"unregistered tracepoint {name!r}")
    if not NAME_RE.match(name):
        raise ValueError(f"tracepoint {name!r} violates subsystem.verb naming")
    want_ph = TRACEPOINTS[name][0]
    if ph != want_ph:
        raise ValueError(f"{name!r} must use phase {want_ph!r}, got {ph!r}")

    ts = ev.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        raise ValueError(f"missing/negative ts in {ev!r}")
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            raise ValueError(f"complete event without dur: {ev!r}")
    elif ph == "i":
        if ev.get("s") not in ("t", "p", "g"):
            raise ValueError(f"instant event without scope: {ev!r}")
    elif ph == "C":
        args = ev.get("args")
        if not isinstance(args, dict) or not isinstance(
                args.get("value"), (int, float)):
            raise ValueError(f"counter event without args.value: {ev!r}")
