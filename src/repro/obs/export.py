"""Chrome trace-event / Perfetto JSON export.

Produces the classic ``{"traceEvents": [...]}`` JSON understood by both
``chrome://tracing`` and https://ui.perfetto.dev.  Layout: one *process*
per track group (ranks first, then nic/link/switch/engine/dpa fabric
groups) and one *thread* per track, so the viewer shows one swim-lane
per rank plus the fabric lanes beneath.

Export is byte-deterministic: events are emitted in the (already
deterministic) :class:`~repro.obs.trace.TraceView` record order, the JSON
is serialized with sorted keys and fixed separators, and nothing derived
from wall-clock time or object identity enters the output.  Two
identically-seeded runs therefore produce identical files (golden-tested
in ``tests/test_obs_trace.py``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.obs.trace import TraceView

__all__ = ["GROUP_ORDER", "chrome_trace", "trace_json", "write_chrome_trace"]

#: process layout order; ranks first so they are the top tracks in the UI.
GROUP_ORDER = ("rank", "nic", "link", "switch", "engine", "dpa")

_S_TO_US = 1e6


def _pid_for(group: str) -> int:
    try:
        return GROUP_ORDER.index(group) + 1
    except ValueError:
        return len(GROUP_ORDER) + 1


def chrome_trace(view: TraceView) -> dict:
    """Render a :class:`TraceView` as a Chrome trace-event document."""
    events: List[dict] = []

    # Metadata: name each process (track group) and thread (track).
    seen_groups: Dict[str, None] = {}
    seen_tracks: Dict[Tuple[str, str], None] = {}
    for r in view.records:
        if r.group not in seen_groups:
            seen_groups[r.group] = None
            pid = _pid_for(r.group)
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": r.group}})
            events.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                           "tid": 0, "args": {"sort_index": pid}})
        if (r.group, r.track) not in seen_tracks:
            seen_tracks[(r.group, r.track)] = None
            events.append({"ph": "M", "name": "thread_name",
                           "pid": _pid_for(r.group), "tid": r.tid,
                           "args": {"name": r.track}})

    for r in view.records:
        ev = {
            "name": r.name,
            "ph": r.ph,
            "pid": _pid_for(r.group),
            "tid": r.tid,
            "ts": r.ts * _S_TO_US,
        }
        if r.ph == "X":
            ev["dur"] = r.value * _S_TO_US
            if r.args:
                ev["args"] = r.args
        elif r.ph == "i":
            ev["s"] = "t"
            if r.args:
                ev["args"] = r.args
        elif r.ph == "C":
            ev["args"] = {"value": r.value}
        events.append(ev)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"dropped_events": view.dropped},
    }


def trace_json(view: TraceView) -> str:
    """Byte-deterministic JSON serialization of :func:`chrome_trace`."""
    return json.dumps(chrome_trace(view), sort_keys=True,
                      separators=(",", ":"))


def write_chrome_trace(view: TraceView, path: str) -> None:
    """Write the trace to *path*, loadable in chrome://tracing / Perfetto."""
    with open(path, "w") as fh:
        fh.write(trace_json(view))
