"""Metric timelines derived from trace records.

These turn raw tracepoints into the timelines the paper's evaluation
plots: per-link utilization (bandwidth-optimality, Fig 2/3 style),
staging-ring occupancy, outstanding send batches, and retry/recovery
event streams.  All of them operate on a :class:`~repro.obs.trace.TraceView`
snapshot, so they can be computed per collective from
``CollectiveResult.trace``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.obs.trace import TraceRecord, TraceView

__all__ = [
    "counter_series",
    "link_utilization",
    "outstanding_batches",
    "retry_events",
    "staging_occupancy",
]


def link_utilization(view: TraceView, port: str, bins: int = 50,
                     t0: Optional[float] = None,
                     t1: Optional[float] = None) -> List[Tuple[float, float]]:
    """Fraction-of-time-busy timeline for one link track.

    Integrates ``link.busy`` spans of the given port over *bins* equal
    windows of ``[t0, t1]`` (defaulting to the span extent).  Returns
    ``[(bin_start_s, utilization_0_to_1), ...]``.
    """
    spans = view.select(name="link.busy", group="link", track=port, ph="X")
    if not spans:
        return []
    if t0 is None:
        t0 = min(r.ts for r in spans)
    if t1 is None:
        t1 = max(r.ts + r.value for r in spans)
    if t1 <= t0 or bins < 1:
        return [(t0, 0.0)]
    width = (t1 - t0) / bins
    busy = [0.0] * bins
    for r in spans:
        s, e = r.ts, r.ts + r.value
        lo = max(0, int((s - t0) / width))
        hi = min(bins - 1, int((e - t0) / width))
        for b in range(lo, hi + 1):
            b0 = t0 + b * width
            busy[b] += max(0.0, min(e, b0 + width) - max(s, b0))
    return [(t0 + b * width, min(1.0, busy[b] / width)) for b in range(bins)]


def counter_series(view: TraceView, name: str, group: str,
                   track: str) -> List[Tuple[float, float]]:
    """Raw ``(ts, value)`` samples of one counter tracepoint on one track."""
    return [(r.ts, r.value)
            for r in view.select(name=name, group=group, track=track, ph="C")]


def staging_occupancy(view: TraceView, rank: int) -> List[Tuple[float, float]]:
    """Staging-ring held-slot occupancy timeline for one rank."""
    return counter_series(view, "staging.hold", "rank", f"r{rank}")


def outstanding_batches(view: TraceView, rank: int) -> List[Tuple[float, float]]:
    """In-flight send-batch count timeline for one rank."""
    return counter_series(view, "nic.outstanding", "rank", f"r{rank}")


def retry_events(view: TraceView,
                 rank: Optional[int] = None) -> List[TraceRecord]:
    """Every reliability slow-path event, optionally filtered to one rank.

    Covers cutoff fires, recovery rounds, fetch rounds, escalations and
    ACK timeouts — the stream to overlay on link timelines when asking
    "why did rank 7 stall at t=1.8ms".
    """
    names = ("reliability.fire", "reliability.recover", "reliability.fetch",
             "reliability.escalate", "reliability.timeout")
    track = None if rank is None else f"r{rank}"
    return [r for r in view.records
            if r.name in names and (track is None or r.track == track)]
