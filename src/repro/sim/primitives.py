"""Synchronization primitives built on :class:`~repro.sim.events.Event`.

* :class:`Store` — FIFO queue with waitable ``put``/``get`` (the task queues
  between application thread and progress-engine workers).
* :class:`Resource` — counting semaphore (e.g., DMA engine channels).
* :class:`Barrier` — reusable n-party barrier (the RNR synchronization step
  of the Broadcast protocol).
"""

from __future__ import annotations

import collections
from typing import TYPE_CHECKING, Any, Deque, List, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["Store", "Resource", "Barrier"]


class Store:
    """An unbounded-or-bounded FIFO of items with waitable endpoints.

    ``put(item)`` returns an event that succeeds once the item is accepted
    (immediately unless the store is full).  ``get()`` returns an event that
    succeeds with the oldest item (immediately if one is available).
    Fairness is strict FIFO on both sides.
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = collections.deque()
        self._getters: Deque[Event] = collections.deque()
        self._putters: Deque[tuple] = collections.deque()  # (event, item)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Enqueue *item*; the returned event succeeds when it is accepted."""
        ev = Event(self.sim)
        if self._getters:
            # Hand straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif not self.full:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-waitable put; returns False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.full:
            return False
        self.items.append(item)
        return True

    def get(self) -> Event:
        """Dequeue; the returned event succeeds with the item."""
        ev = Event(self.sim)
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple:
        """Non-waitable get; returns ``(ok, item)``."""
        if self.items:
            item = self.items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters and not self.full:
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev.succeed()


class Resource:
    """A counting semaphore with FIFO waiters.

    >>> def worker(sim, res):
    ...     yield res.acquire()
    ...     try:
    ...         yield sim.timeout(1.0)
    ...     finally:
    ...         res.release()
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = collections.deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> Event:
        ev = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError("release() without matching acquire()")
        if self._waiters:
            # Hand the slot directly to the next waiter; in_use unchanged.
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1


class Barrier:
    """A reusable n-party barrier.

    Each party calls :meth:`wait` and yields the returned event; when the
    ``parties``-th waiter of the current generation arrives, all waiters are
    released (with the generation index as value) and the barrier resets.
    """

    def __init__(self, sim: "Simulator", parties: int) -> None:
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.sim = sim
        self.parties = parties
        self.generation = 0
        self._waiting: List[Event] = []

    @property
    def n_waiting(self) -> int:
        return len(self._waiting)

    def wait(self) -> Event:
        ev = Event(self.sim)
        self._waiting.append(ev)
        if len(self._waiting) >= self.parties:
            gen = self.generation
            waiters, self._waiting = self._waiting, []
            self.generation += 1
            for w in waiters:
                w.succeed(gen)
        return ev
