"""Discrete-event simulation substrate.

Everything in :mod:`repro` that moves data "over the network" or "through a
NIC" runs on top of this small, dependency-free discrete-event engine.  The
engine is deliberately simpy-like:

* :class:`~repro.sim.engine.Simulator` owns the virtual clock and the event
  queue.
* Protocol actors are plain Python generators (*processes*) that ``yield``
  waitables — :class:`~repro.sim.events.Timeout`, :class:`~repro.sim.events.Event`,
  other processes, or :func:`~repro.sim.events.any_of` / :func:`~repro.sim.events.all_of`
  combinators.
* All randomness flows through :class:`~repro.sim.random.RandomStreams` so
  that every run is reproducible from a single seed.

The engine is fully deterministic: simultaneous events are ordered by their
scheduling sequence number, never by hash order or dict iteration order.
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
    all_of,
    any_of,
)
from repro.sim.process import Process, ProcessKilled
from repro.sim.primitives import Barrier, Resource, Store
from repro.sim.random import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "all_of",
    "any_of",
]
