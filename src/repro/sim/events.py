"""Waitable events for the discrete-event engine.

An :class:`Event` is the unit of synchronization: model processes ``yield``
events to suspend until they *fire*.  An event goes through three states:

``untriggered``
    Created but no outcome decided yet.
``triggered``
    :meth:`Event.succeed` or :meth:`Event.fail` was called; the outcome
    (value or exception) is fixed and the event sits in the simulator's
    queue waiting for its instant.
``processed``
    The simulator popped the event and ran its callbacks.

:class:`Timeout` is an event that succeeds a fixed delay after creation.
:class:`AnyOf` / :class:`AllOf` compose several events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = [
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "PASSIVE_WAIT",
    "any_of",
    "all_of",
]


class _PassiveWait:
    """Sentinel a process yields to suspend without subscribing anywhere.

    The normal wait path allocates an :class:`Event` (or an ``AnyOf`` over
    several) and appends a callback per wait — measurable churn on edges
    that fire once per simulated packet.  Yielding :data:`PASSIVE_WAIT`
    instead parks the process with **zero** allocations; it resumes only
    when some external party calls :meth:`repro.sim.process.Process.wake`
    (e.g. a completion queue's notify callback).  The waker is responsible
    for ensuring a wake-up actually arrives — there is no timeout.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PASSIVE_WAIT>"


#: The one shared passive-wait sentinel (identity-compared by Process).
PASSIVE_WAIT = _PassiveWait()


class Interrupt(Exception):
    """Thrown into a process by :meth:`repro.sim.process.Process.interrupt`.

    ``cause`` carries arbitrary context from the interrupting party.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable with a success value or failure exception."""

    __slots__ = ("sim", "callbacks", "_triggered", "_fired", "_ok", "_value", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callables invoked (with the event) when the event fires.  ``None``
        #: once the event has been processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._triggered = False
        self._fired = False
        self._ok: Optional[bool] = None
        self._value: Any = None
        self._defused = False

    # ----------------------------------------------------------------- state

    @property
    def triggered(self) -> bool:
        """Outcome decided (value/exception fixed)?"""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Callbacks already executed?"""
        return self._fired

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        return self._value

    # ------------------------------------------------------------- triggering

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Fix a successful outcome and schedule the event ``delay`` from now."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim.schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Fix a failure outcome and schedule the event ``delay`` from now."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim.schedule(self, delay)
        return self

    def defuse(self) -> "Event":
        """Mark a failure as handled so it does not crash the simulation."""
        self._defused = True
        return self

    # -------------------------------------------------------------- internals

    def _fire(self) -> None:
        """Run callbacks; called by the simulator when the instant arrives."""
        self._fired = True
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None, "event fired twice"
        for cb in callbacks:
            cb(self)
        if self._ok is False and not callbacks and not self._defused:
            # A failure nobody is waiting for would vanish silently; make it
            # loud instead, mirroring simpy's untended-exception behaviour.
            raise self._value

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Invoke *callback* when this event fires (immediately via a
        zero-delay bounce if it has already fired)."""
        if self.callbacks is not None:
            self.callbacks.append(callback)
        else:
            self.sim.post_later(0.0, callback, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._fired else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds ``delay`` seconds after construction.

    >>> def proc(sim):
    ...     yield Timeout(sim, 2.5)
    ...     return sim.now
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        super().__init__(sim)
        self.delay = float(delay)
        self._triggered = True
        self._ok = True
        self._value = value
        sim.schedule(self, self.delay)


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        super().__init__(sim)
        self.events: List[Event] = list(events)
        self._done = False
        if not self.events:
            # Vacuous conditions resolve immediately.
            self.succeed(self._vacuous_value())
            self._done = True
            return
        for ev in self.events:
            ev.subscribe(self._on_child)

    def _vacuous_value(self) -> Any:
        raise NotImplementedError

    def _on_child(self, child: Event) -> None:
        raise NotImplementedError

    def _resolve_ok(self, value: Any) -> None:
        if not self._done:
            self._done = True
            self.succeed(value)

    def _resolve_fail(self, exc: BaseException) -> None:
        if not self._done:
            self._done = True
            self.fail(exc)


class AnyOf(_Condition):
    """Fires when the first constituent event fires.

    Succeeds with the *event object* that fired first (its ``.value`` holds
    the payload); fails if that first event failed.
    """

    __slots__ = ()

    def _vacuous_value(self) -> Any:
        return None

    def _on_child(self, child: Event) -> None:
        if self._done:
            return
        if child.ok:
            self._resolve_ok(child)
        else:
            child.defuse()
            self._resolve_fail(child.value)


class AllOf(_Condition):
    """Fires when every constituent event has fired.

    Succeeds with the list of child values in construction order; fails as
    soon as any child fails.
    """

    __slots__ = ("_remaining",)

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        self._remaining = len(events)
        super().__init__(sim, events)

    def _vacuous_value(self) -> Any:
        return []

    def _on_child(self, child: Event) -> None:
        if self._done:
            return
        if not child.ok:
            child.defuse()
            self._resolve_fail(child.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._resolve_ok([ev.value for ev in self.events])


def any_of(sim: "Simulator", events: Sequence[Event]) -> AnyOf:
    """Convenience constructor for :class:`AnyOf`."""
    return AnyOf(sim, events)


def all_of(sim: "Simulator", events: Sequence[Event]) -> AllOf:
    """Convenience constructor for :class:`AllOf`."""
    return AllOf(sim, events)
