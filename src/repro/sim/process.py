"""Generator-based simulation processes.

A :class:`Process` drives a Python generator: each ``yield``-ed value must
be an :class:`~repro.sim.events.Event` (or subclass — :class:`Timeout`,
another :class:`Process`, :class:`AnyOf`, ...).  The process suspends until
that event fires, then resumes with the event's value (or the event's
exception thrown into the generator).

A process *is itself an event* that fires when the generator returns, so
processes can ``yield`` other processes to join them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import PASSIVE_WAIT, Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["Process", "ProcessKilled"]


class ProcessKilled(Exception):
    """Thrown into a generator by :meth:`Process.kill`."""


class Process(Event):
    """A running simulation actor.  Create via :meth:`Simulator.spawn`."""

    __slots__ = ("gen", "name", "_target", "_resume_cb")

    def __init__(self, sim: "Simulator", gen: Generator, name: Optional[str] = None) -> None:
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", None) or repr(gen)
        #: The event this process is currently waiting on (None if running
        #: or finished).
        self._target: Optional[Event] = None
        self._resume_cb = self._on_target_fired
        # Kick off at the current instant through a zero-delay callback so
        # that spawn order == first-execution order (deterministic).
        sim.post_later(0.0, self._resume, None, True)

    # ----------------------------------------------------------------- state

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def waiting_on(self) -> Optional[Event]:
        """The event currently being waited on (for debugging/tests)."""
        return self._target

    # ------------------------------------------------------------- execution

    def _resume(self, value: Any, ok: bool) -> None:
        if self.triggered:  # killed/interrupted race: already finished
            return
        self._target = None
        try:
            if ok:
                target = self.gen.send(value)
            else:
                target = self.gen.throw(value)
        except StopIteration as stop:
            self._complete(stop.value, ok=True)
            return
        except BaseException as exc:  # generator crashed
            self._complete(exc, ok=False)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if target is PASSIVE_WAIT:
            # Park with zero allocations; only Process.wake() resumes us.
            self._target = target
            return
        if not isinstance(target, Event):
            err = TypeError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances (Timeout, Process, AnyOf, ...)"
            )
            # Surface the bug inside the generator for a usable traceback.
            self.sim.call_later(0.0, self._resume, err, False)
            return
        self._target = target
        target.subscribe(self._resume_cb)

    def _on_target_fired(self, event: Event) -> None:
        if self._target is not event:
            # Stale wake-up after an interrupt/kill re-targeted us.
            return
        if event.ok:
            self._resume(event.value, ok=True)
        else:
            event.defuse()
            self._resume(event.value, ok=False)

    def _complete(self, value: Any, ok: bool) -> None:
        self._triggered = True
        self._ok = ok
        self._value = value
        self.sim.schedule(self, 0.0)

    def wake(self, value: Any = None) -> bool:
        """Resume a process parked on :data:`~repro.sim.events.PASSIVE_WAIT`.

        Resumption happens through a zero-delay callback at the current
        instant (same virtual time as the wake).  Returns ``False`` —
        harmlessly — if the process is not passively waiting: a stale
        notify that fires while the process is running is simply dropped,
        because the process re-checks its queues before parking again.
        """
        if self._target is not PASSIVE_WAIT:
            return False
        self._target = None
        self.sim.post_later(0.0, self._resume, value, True)
        return True

    # ------------------------------------------------------------- control

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The process stops waiting on its current event (which may still fire
        later; the wake-up is discarded as stale).
        """
        if not self.alive:
            return
        self._target = None  # detach; pending wake-ups become stale
        self.sim.call_later(0.0, self._resume, Interrupt(cause), False)

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it.

        If the generator does not catch the exception the process completes
        *successfully* with value ``None`` (a kill is not an error).
        """
        if not self.alive:
            return
        self._target = None
        try:
            self.gen.throw(ProcessKilled())
        except (StopIteration, ProcessKilled):
            pass
        except BaseException as exc:
            self._complete(exc, ok=False)
            return
        else:
            # Generator swallowed the kill and yielded again; treat as done.
            self.gen.close()
        if not self.triggered:
            self._complete(None, ok=True)
