"""Flow-level fast-forward: analytic advance of fault-inert collective phases.

The packet-train and CQE-train fast paths coalesce *homogeneous runs* of
work into single events; this layer generalizes the idea to a whole
multicast phase.  When a sender's bulk transfer is provably fault-inert —
no drop machinery armed on any tree channel, no straggler window, no
pending crash, no concurrent collective that could contend — the entire
phase (send batching, per-link busy chains, switch relays, receive-worker
processing, staging DMA drain) is folded arithmetically and committed as
O(links) state mutations plus one "finisher" event per receiver, instead
of O(packets) simulated events.

Exactness contract (``fast_forward="exact"``)
---------------------------------------------
The fold replicates the **slow-path** float arithmetic expression by
expression — ``max`` written as the same branch shapes, costs summed in
the same order — so every committed instant (channel ``busy_until``, DMA
watermarks, CQE anchors, ``data_done``) is bit-identical to the
packet-level engine.  The train/CQE fast paths are themselves bit
identical to the slow paths (CI gates ``--per-packet`` / ``--per-cqe``),
so matching the slow path matches every engine mode.  Event counts and
receiver-batch telemetry (``cqe_batches`` / ``batched_cqes``) necessarily
*drop* under fast-forward — that is the point — so equivalence checks
compare virtual time, counters and payload digests, never event counts.

Banded mode (``fast_forward="banded"``)
---------------------------------------
Same gates, same committed byte/packet counters and payloads, but the
per-edge busy chains are collapsed to closed forms over uniform arrival
streams (O(1) per edge instead of O(chunks)): completion instants may
deviate by up to the declared ±0.5% virtual-time tolerance
(:data:`BANDED_TOLERANCE`).  This is what makes 1024–4096-host sweeps
tractable.

Eligibility gates (any failure falls back to packet level, permanently
for the rest of that collective so cursors stay exact):

* knob on, transport UD or UC, single subgroup, chunk fits one segment;
* exactly one active collective on the communicator;
* no dead ranks/hosts/switches/links and no pending crash schedule
  (:attr:`Fabric.pending_crashes`);
* allgather only with an effective single chain (the sequencer's own
  ``n_chains`` fallback arithmetic) and strictly non-interleaved arrivals
  per receiver;
* every tree channel up and :meth:`Channel.fault_inert`, and every data
  packet too large for the control bypass lane;
* every receiver straggler-inert over the folded window, with enough
  posted receive WRs for the whole fold (no RNR possible);
* no recovery ran on any participant, and the folded phase completes
  strictly before every armed (or arming) cutoff deadline — so no
  recovery or fetch can observe the eagerly-committed bitmap bits.
"""

from __future__ import annotations

import os
from heapq import heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.core.sequencer import effective_chains
from repro.net.nic import RecvWR
from repro.net.plan import PartitionError, partition_fabric
from repro.net.topology import host_id, is_host
from repro.sim.engine import _Callback
from repro.sim.parallel import ParallelEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.communicator import Communicator
    from repro.core.ops import OpState
    from repro.core.progress import RankEngine

__all__ = ["FlowFastForward", "BANDED_TOLERANCE"]

#: declared virtual-time tolerance of ``fast_forward="banded"`` (relative)
BANDED_TOLERANCE = 5e-3

_INF = float("inf")


class _RxSession:
    """Per-receiver cross-fold cursor state (one per rank per collective)."""

    __slots__ = ("cursor", "last_arrival")

    def __init__(self) -> None:
        #: receive-worker virtual-time cursor after the last committed fold
        self.cursor = 0.0
        #: last folded packet-arrival instant (non-interleave gate)
        self.last_arrival = -_INF


class _Session:
    """Per-collective fast-forward state.

    ``poisoned`` latches on the first abort: once any phase of a
    collective ran at packet level, every later phase must too — the
    analytic worker cursors would otherwise drift from the real ones.

    ``lens``/``wires``/``rx_folds`` are per-phase scratch buffers hoisted
    to the session so the Allgather chain (O(P) phases) does not allocate
    three fresh lists per phase.  ``vec`` holds the deferred-commit
    vectorized session when the collective qualifies (see
    :class:`_Vec1Session`); ``vec_unsupported`` latches a shape rejection
    so the probe runs once per collective.
    """

    __slots__ = ("poisoned", "rx", "vec", "vec_unsupported",
                 "lens", "wires", "rx_folds")

    def __init__(self) -> None:
        self.poisoned = False
        self.rx: Dict[int, _RxSession] = {}
        self.vec = None
        self.vec_unsupported = False
        self.lens: List[int] = []
        self.wires: List[int] = []
        self.rx_folds: List[tuple] = []


class FlowFastForward:
    """Phase analyzer + analytic advancer for one communicator."""

    def __init__(self, comm: "Communicator") -> None:
        self.comm = comm
        self.sim = comm.sim
        self.mode = comm.config.fast_forward  # 'exact' | 'banded'
        self.vec = comm.config.ff_vectorized
        # --- telemetry (summed into CollectiveResult.engine) ---
        self.ff_phases = 0  #: phases folded analytically
        self.ff_skipped_events = 0  #: estimated packet-level events avoided
        self.ff_aborts = 0  #: eligibility-gate bailouts (fell back)
        self._sessions: Dict[int, _Session] = {}
        #: parallel host-level engine (lazy; reused across collectives)
        self.par: Optional[ParallelEngine] = None
        self._par_key = None
        # Retired engines' counters (a partition change recreates the
        # engine; telemetry must survive that).
        self._sync_rounds_acc = 0
        self._boundary_msgs_acc = 0
        #: test hook: exercise the pipe backend below its size threshold
        self.force_process = False

    # ---------------------------------------------------- parallel plumbing

    def _resolve_shards(self, n_rx: int) -> int:
        knob = self.comm.config.parallel
        if knob == "off":
            return 1
        if knob == "auto":
            if n_rx < 256:
                return 1
            return min(4, os.cpu_count() or 1)
        return max(1, int(knob))

    def _get_par(self, slices: List[Tuple[int, int]], backend: str
                 ) -> ParallelEngine:
        key = (tuple(slices), backend)
        if self.par is None or self._par_key != key:
            if self.par is not None:
                self._sync_rounds_acc += self.par.sync_rounds
                self._boundary_msgs_acc += self.par.boundary_msgs
                self.par.close()
            self.par = ParallelEngine(slices, backend)
            self._par_key = key
        return self.par

    def total_sync_rounds(self) -> int:
        return self._sync_rounds_acc + (
            self.par.sync_rounds if self.par is not None else 0)

    def total_boundary_msgs(self) -> int:
        return self._boundary_msgs_acc + (
            self.par.boundary_msgs if self.par is not None else 0)

    def preempt_vec(self) -> None:
        """Flush every deferred vectorized session *now* — called before a
        second collective is admitted, whose packet-level traffic would
        otherwise observe the deferred channel state.  Mirrors the
        ``ff_exclusive`` gate: the first collective simply stops folding."""
        for sess in self._sessions.values():
            if sess.vec is not None:
                sess.vec.abort_flush()
                sess.vec = None
                sess.poisoned = True
                self.ff_aborts += 1

    # ------------------------------------------------------------ entry point

    def try_advance(self, engine: "RankEngine", op: "OpState",
                    participants: List[int]) -> Optional[float]:
        """Attempt to fold *op*'s multicast phase from ``engine`` (the
        sender).  Returns the sender's ``run_send`` completion instant on
        success (all state committed), or ``None`` to fall back to the
        packet-level path."""
        sess = self._session(op.coll_id)
        done = self._attempt(engine, op, participants, sess)
        if done is None:
            if sess.vec is not None:
                # A generic gate (or the vec session's own) failed with a
                # deferred-commit session live: flush it before the packet
                # path can observe the stale channel/bitmap state.
                sess.vec.abort_flush()
                sess.vec = None
            self.ff_aborts += 1
            sess.poisoned = True
        return done

    def _session(self, coll_id: int) -> _Session:
        sess = self._sessions.get(coll_id)
        if sess is None:
            # Coll-ids grow monotonically; prune finished collectives.
            # Engine op registration is the source of truth (handles are
            # tracked by handle_id, not coll_id, since the submit redesign).
            active = {c for e in self.comm.engines for c in e.ops}
            for cid in [c for c in self._sessions if c not in active]:
                del self._sessions[cid]
            sess = self._sessions[coll_id] = _Session()
        return sess

    # ------------------------------------------------------------------ gates

    def _attempt(self, engine: "RankEngine", op: "OpState",
                 participants: List[int], sess: _Session) -> Optional[float]:
        comm = self.comm
        cfg = comm.config
        fabric = comm.fabric
        sim = self.sim

        if sess.poisoned:
            return None
        if cfg.n_subgroups != 1 or cfg.transport not in ("ud", "uc"):
            return None
        if fabric.topology.rails != 1:
            # Multi-rail folds would need per-plane egress chains; the
            # striped datapath (n_subgroups > 1) is already gated above.
            return None
        if not comm.ff_exclusive(op.coll_id):
            return None
        if len(participants) < 2 or comm.size < 2:
            return None
        n_chunks = op.send_hi - op.send_lo
        if n_chunks <= 0:
            return None
        # One wire segment per chunk (the UC builder fragments at the MTU).
        if op.plan.chunk_size > fabric.mtu:
            return None
        if op.kind == "allgather":
            # The sequencer's own fallback arithmetic: concurrent chains
            # would contend on shared tree links, which the fold cannot
            # serialize correctly.
            if effective_chains(len(participants), cfg.n_chains) != 1:
                return None
        if (comm.dead_ranks or fabric.dead_hosts or fabric.dead_switches
                or fabric.dead_links or fabric.pending_crashes):
            return None
        if op.aborted or op.dead_ranks:
            return None
        engines = comm.engines
        cid = op.coll_id

        # --- vectorized deferred-commit Allgather (DESIGN §6f) ------------
        # All gates above are O(1); the per-participant scan and the
        # per-receiver fold below are the O(P)-per-phase work the vec
        # session hoists to session init, making the chain O(P) overall.
        vs = sess.vec
        if vs is not None:
            return vs.fold_phase(engine, op)
        if (op.kind == "allgather" and n_chunks == 1 and self.vec
                and not fabric._stragglers and not sess.vec_unsupported):
            vs = _Vec1Session.build(self, engine, op, participants, sess)
            if vs is None:
                sess.vec_unsupported = True
            else:
                sess.vec = vs
                return vs.fold_phase(engine, op)

        for r in participants:
            op_r = engines[r].ops.get(cid)
            if op_r is None or op_r.aborted or op_r.stats["recoveries"]:
                return None

        uc = cfg.transport == "uc"
        plan = op.plan
        header = engine.nic.header_bytes
        lens = sess.lens
        del lens[:]
        for psn in range(op.send_lo, op.send_hi):
            lens.append(plan.bounds(psn)[1])
        wires = sess.wires
        del wires[:]
        for ln in lens:
            wires.append(ln + header)
        gid = comm.mcast_gids[0]

        # --- sender fold: doorbell batching + egress busy chain -----------
        sender_fold = self._fold_sender(engine, op, wires)
        if sender_fold is None:
            return None
        send_done, egress_finishes, batch_sizes, n_batches = sender_fold
        egress = engine.nic.egress

        # --- tree walk: per-edge busy chains to every receiver ------------
        walk = self._walk(engine, gid, egress, egress_finishes,
                          wires, batch_sizes)
        if walk is None:
            return None
        chans, arrivals_by_host, switch_counts = walk

        # Receivers must be exactly the non-sender participants.
        rx_ranks: Dict[int, int] = {}
        for r in participants:
            if r != engine.rank:
                rx_ranks[comm.host_of(r)] = r
        if set(arrivals_by_host) != set(rx_ranks):
            return None

        # --- receiver folds: worker chain + staging DMA drain -------------
        t_hook = sim.now
        rx_folds = sess.rx_folds
        del rx_folds[:]
        fin_max = send_done
        if (self.vec and n_chunks >= 4 and not fabric._stragglers
                and n_chunks * len(arrivals_by_host) >= 512):
            # Matrix path: the per-receiver chains are independent, so the
            # chunk loop runs as [n_rx]-wide array ops (same expressions,
            # same order — bitwise identical to _fold_receiver).
            fin_max = self._fold_receivers_vec(
                engines, rx_ranks, arrivals_by_host, cid, lens, uc, sess,
                t_hook, rx_folds, fin_max)
            if fin_max is None:
                return None
        else:
            for host, arrivals in arrivals_by_host.items():
                rank = rx_ranks[host]
                fold = self._fold_receiver(engines[rank],
                                           engines[rank].ops[cid],
                                           arrivals, lens, uc, sess, t_hook)
                if fold is None:
                    return None
                rx_folds.append(fold)
                if fold[4] > fin_max:
                    fin_max = fold[4]

        # --- global deadline gate: the fold must land before any armed
        # (or arming) cutoff can fire, so recovery/fetch never observes the
        # eagerly committed bitmap bits. ----------------------------------
        if not self._deadlines_clear(participants, cid, t_hook, fin_max):
            return None

        # --------------------------------------------------------- commit
        self._commit(engine, op, sess, chans, switch_counts, rx_folds,
                     lens, n_chunks, n_batches, send_done, fin_max, uc)
        return send_done

    # ---------------------------------------------------------- sender fold

    def _fold_sender(self, engine: "RankEngine", op: "OpState",
                     wires: List[int]):
        """Replicate ``run_send`` + the egress burst: per-batch doorbell
        cost, one busy-chain walk per batch, one signaled CQE per batch
        pushed at its last serialization finish, bounded outstanding
        batches replayed against the push instants."""
        cfg = engine.config
        cost = engine.cost
        egress = engine.nic.egress
        if egress is None or egress.down or not egress.fault_inert():
            return None
        bypass = egress.ctrl_bypass_bytes
        if min(wires) <= bypass:
            return None
        if len(engine.send_cq):  # stale completions would skew the replay
            return None
        bw = egress.bandwidth
        prev = egress.busy_until
        t = self.sim.now
        finishes: List[float] = []
        batch_sizes: List[int] = []
        pending: List[float] = []  # signaled-CQE push instants, increasing
        p_lo = 0  # drained prefix of `pending`
        outstanding = 0
        n = len(wires)
        max_out = cfg.max_outstanding_batches
        for i in range(0, n, cfg.batch_size):
            batch = wires[i:i + cfg.batch_size]
            batch_sizes.append(len(batch))
            t = t + cost.send_batch(len(batch))
            for w in batch:
                start = t if t > prev else prev
                prev = start + w / bw
                finishes.append(prev)
            pending.append(prev)
            outstanding += 1
            while outstanding >= max_out:
                t, k, p_lo = _drain_cq(pending, p_lo, t)
                outstanding -= k
        while outstanding > 0:
            t, k, p_lo = _drain_cq(pending, p_lo, t)
            outstanding -= k
        return t, finishes, batch_sizes, len(batch_sizes)

    # ------------------------------------------------------------- tree walk

    def _walk(self, engine: "RankEngine", gid: int, egress, egress_finishes,
              wires: List[int], batch_sizes: List[int]):
        """Advance every tree channel's busy chain and collect per-receiver
        arrival instants.

        Returns ``(chans, arrivals_by_host, switch_counts)`` where
        ``chans`` carries per-channel commit records.  ``None`` on any
        gate failure (downed/faulty channel, missing multicast route,
        unexpected receiver).
        """
        fabric = engine.fabric
        banded = self.mode == "banded"
        n = len(wires)
        min_wire = min(wires)
        # Per-chunk train membership: a batch rides the wire as one train
        # iff it has >= 2 packets and every channel from the root down had
        # coalescing enabled (a per-packet hop breaks the train for all
        # downstream hops).  When no batch can train (all singletons) the
        # flag lists are elided entirely — the single-chunk-per-phase
        # Allgather schedule hits this walk O(P) times per collective.
        base_flags = [sz >= 2 for sz in batch_sizes]
        has_trains = True in base_flags
        arrivals0 = [f + egress.latency for f in egress_finishes]
        chans: List[tuple] = []
        arrivals_by_host: Dict[int, List[float]] = {}
        switch_counts: Dict[object, int] = {}
        bytes_sum = sum(wires)
        payload_sum = bytes_sum - n * engine.nic.header_bytes

        if has_trains:
            eg_flags = [f and egress.coalescing for f in base_flags]
            eg_trains, eg_tp = _count_trains(eg_flags, batch_sizes)
        else:
            eg_flags = None
            eg_trains = eg_tp = 0
        chans.append((egress, egress.busy_until
                      if not egress_finishes else egress_finishes[-1],
                      n, bytes_sum, payload_sum, eg_trains, eg_tp))
        stack: List[Tuple[str, str, List[float], Optional[List[bool]]]] = [
            (egress.dst_name, egress.src_name, arrivals0, eg_flags)
        ]
        while stack:
            name, in_port, arr, flags = stack.pop()
            if is_host(name):
                h = host_id(name)
                if h in arrivals_by_host:
                    return None  # tree delivered twice: not a tree
                arrivals_by_host[h] = arr
                continue
            sw = fabric.switches.get(name)
            if sw is None or sw.dead:
                return None
            tree_ports = sw.mcast_table.get(gid)
            if tree_ports is None:
                return None
            d = sw.forwarding_delay
            inj = [a + d for a in arr] if d > 0.0 else arr
            for neighbor in sorted(tree_ports):
                if neighbor == in_port:
                    continue
                ch = sw.ports.get(neighbor)
                if ch is None or ch.down or not ch.fault_inert():
                    return None
                if min_wire <= ch.ctrl_bypass_bytes:
                    return None
                bw = ch.bandwidth
                lat = ch.latency
                prev = ch.busy_until
                if n == 1:
                    t_inj = inj[0]
                    start = t_inj if t_inj > prev else prev
                    prev = start + wires[0] / bw
                    outs_lat = [prev + lat]
                elif banded:
                    # Closed-form uniform-stream fold: O(1) per edge.
                    first_in, last_in = inj[0], inj[-1]
                    start0 = first_in if first_in > prev else prev
                    out_first = start0 + wires[0] / bw
                    serial = bytes_sum / bw
                    tail = last_in + wires[-1] / bw
                    queued = start0 + serial
                    out_last = tail if tail > queued else queued
                    step = (out_last - out_first) / (n - 1)
                    outs_lat = [out_first + i * step + lat for i in range(n)]
                    outs_lat[-1] = out_last + lat
                    prev = out_last
                else:
                    outs_lat = []
                    for i, t_inj in enumerate(inj):
                        start = t_inj if t_inj > prev else prev
                        prev = start + wires[i] / bw
                        outs_lat.append(prev + lat)
                if flags is not None:
                    ch_flags = [f and ch.coalescing for f in flags]
                    trains, tp = _count_trains(ch_flags, batch_sizes)
                else:
                    ch_flags = None
                    trains = tp = 0
                chans.append((ch, prev, n, bytes_sum, payload_sum,
                              trains, tp))
                switch_counts[sw] = switch_counts.get(sw, 0) + n
                stack.append((ch.dst_name, name, outs_lat, ch_flags))
        return chans, arrivals_by_host, switch_counts

    # --------------------------------------------------------- receiver fold

    def _fold_receiver(self, rx_engine: "RankEngine", op_r: "OpState",
                       arrivals: List[float], lens: List[int], uc: bool,
                       sess: _Session, t_hook: float):
        """Replicate the receive worker's per-CQE slow path and (UD) the
        staging DMA drain for one receiver over this fold's arrivals.

        Returns a flat tuple (not a dict): the Allgather chain schedule
        runs this O(P) times per phase, O(P^2) per collective, so the
        per-receiver constant is the scaling bottleneck.
        """
        qp = rx_engine.sub_qps[0]
        n = len(arrivals)
        # No-RNR gate: the NIC consumes one posted WR per arrival, and the
        # fold's own reposts all land after its last arrival — so the
        # currently posted depth alone must cover the fold.
        if n > len(qp.recv_queue):
            return None
        rx = sess.rx.get(rx_engine.rank)
        if rx is None:
            rx = sess.rx[rx_engine.rank] = _RxSession()
        # Strict non-interleave: FIFO busy chains guarantee later folds
        # arrive strictly after earlier ones; a tie means contention the
        # fold ordering cannot resolve.
        if arrivals[0] <= rx.last_arrival:
            return None
        cost = rx_engine.cost
        c1 = cost.cqe_poll + cost.cqe_process
        t = rx.cursor
        dma = rx_engine.dma
        dma_busy = dma.busy_until
        if uc:
            c2 = cost.recv_repost
            for a in arrivals:
                anchor = a if a > t else t
                t = (anchor + (c1 + 0.0))
                t = t + c2
            fin = t
        else:
            dma_bw = dma.bandwidth
            dma_lat = dma.latency
            c2 = cost.copy_issue + cost.recv_repost
            for a, ln in zip(arrivals, lens):
                anchor = a if a > t else t
                t = (anchor + (c1 + 0.0))
                t = t + c2
                start = t if t > dma_busy else dma_busy
                dma_busy = start + ln / dma_bw
            fin = dma_busy + dma_lat
        # Straggler veto over the whole folded window (every CQE-poll
        # stall sample in [t_hook, fin] must be zero).
        if not rx_engine.fabric.straggler_inert(rx_engine.nic.host,
                                                t_hook, fin):
            return None
        return (rx_engine, op_r, qp, rx, fin, t, dma_busy, arrivals[-1])

    def _fold_receivers_vec(self, engines, rx_ranks, arrivals_by_host,
                            cid: int, lens: List[int], uc: bool,
                            sess: _Session, t_hook: float,
                            rx_folds: List[tuple], fin_max: float):
        """Vectorized :meth:`_fold_receiver`: one ``[n_rx]`` array op chain
        instead of a Python loop per receiver.

        ``numpy``'s elementwise ``maximum``/add are the same IEEE-754
        operations the scalar expressions evaluate, in the same order per
        receiver, so every fold tuple is bit-identical to the scalar path.
        Only called with no straggler specs installed (``straggler_inert``
        is then trivially true for every window — same gate outcome).
        Returns the updated ``fin_max``, or ``None`` on any gate failure
        (no state committed either way).
        """
        items = list(arrivals_by_host.items())
        n_rx = len(items)
        n = len(lens)
        rx_engines = []
        ops_r = []
        qps = []
        rxs = []
        t0 = np.empty(n_rx)
        dma0 = np.empty(n_rx)
        for k, (host, arrivals) in enumerate(items):
            rank = rx_ranks[host]
            e = engines[rank]
            qp = e.sub_qps[0]
            if n > len(qp.recv_queue):
                return None
            rx = sess.rx.get(rank)
            if rx is None:
                rx = sess.rx[rank] = _RxSession()
            if arrivals[0] <= rx.last_arrival:
                return None
            rx_engines.append(e)
            ops_r.append(e.ops[cid])
            qps.append(qp)
            rxs.append(rx)
            t0[k] = rx.cursor
            dma0[k] = e.dma.busy_until
        # Every rank shares the communicator's cost model object, so the
        # scalar constants are uniform across the receiver axis.
        cost = rx_engines[0].cost
        c1 = cost.cqe_poll + cost.cqe_process
        # (n, n_rx) with contiguous per-chunk rows for the chunk loop.
        cols = np.ascontiguousarray(np.array([a for _, a in items]).T)
        t = t0
        if uc:
            c2 = cost.recv_repost
            for i in range(n):
                anchor = np.maximum(cols[i], t)
                t = anchor + c1
                t = t + c2
            fins = t
            dma_busy = dma0
        else:
            c2 = cost.copy_issue + cost.recv_repost
            dma_bw = np.array([e.dma.bandwidth for e in rx_engines])
            dma_lat = np.array([e.dma.latency for e in rx_engines])
            dma_busy = dma0
            for i in range(n):
                anchor = np.maximum(cols[i], t)
                t = anchor + c1
                t = t + c2
                start = np.maximum(t, dma_busy)
                dma_busy = start + lens[i] / dma_bw
            fins = dma_busy + dma_lat
        for k in range(n_rx):
            fin = float(fins[k])
            rx_folds.append((rx_engines[k], ops_r[k], qps[k], rxs[k], fin,
                             float(t[k]), float(dma_busy[k]),
                             items[k][1][-1]))
            if fin > fin_max:
                fin_max = fin
        return fin_max

    def _deadlines_clear(self, participants: List[int], cid: int,
                         t_hook: float, fin_max: float) -> bool:
        comm = self.comm
        cfg = comm.config
        for r in participants:
            eng = comm.engines[r]
            op_r = eng.ops[cid]
            if op_r.data_done.triggered:
                continue
            if op_r.cutoff_deadline < _INF:
                deadline = op_r.cutoff_deadline
                if deadline <= t_hook:
                    return False
            else:
                # Not yet armed: it will arm at >= t_hook with at least
                # this expected + slack allowance (the controller's own
                # formula), so this is a conservative lower bound.
                n_workers = max(cfg.recv_workers or cfg.n_subgroups, 1)
                sw_rate = (
                    eng.cost.recv_rate(cfg.chunk_size,
                                       uc=cfg.transport == "uc") * n_workers
                    if eng.cost.per_recv_chunk > 0
                    else _INF
                )
                recv_rate = min(eng.fabric.link_bandwidth, sw_rate)
                expected = op_r.plan.buffer_len / recv_rate
                slack = (eng.cutoff.slack() if cfg.adaptive_cutoff
                         else cfg.cutoff_alpha)
                deadline = t_hook + expected + slack
            if fin_max >= deadline:
                return False
        return True

    # ---------------------------------------------------------------- commit

    def _commit(self, engine, op, sess, chans, switch_counts, rx_folds,
                lens, n_chunks, n_batches, send_done, fin_max, uc):
        sim = self.sim
        trc = engine.trace
        t_hook = sim.now
        if trc is not None:
            trc.instant("engine.ff_enter", t_hook,
                        {"chunks": n_chunks, "mode": self.mode})
        # --- channel + switch counters, busy watermarks -------------------
        for ch, busy, packets, ch_bytes, payload, trains, train_pkts in chans:
            ch.busy_until = busy
            ch.bytes_sent += ch_bytes
            ch.payload_bytes_sent += payload
            ch.packets_sent += packets
            ch.trains_sent += trains
            ch.train_packets += train_pkts
            if ch.fault is not None:
                # Data packets are always fault-affected kinds; keep the
                # droppable index in lockstep (the spec is inert, so no
                # RNG would have been consumed either way).
                ch._droppable_seq += packets
        for sw, count in switch_counts.items():
            sw.packets_forwarded += count
        # --- sender-side NIC/CQ state -------------------------------------
        engine.send_cq.total_pushed += n_batches
        # --- per-receiver state -------------------------------------------
        lo_off, ln0 = op.plan.bounds(op.send_lo)
        hi_off = op.plan.bounds(op.send_hi - 1)
        src = op.mr.buf[lo_off:hi_off[0] + hi_off[1]]
        payload_total = int(src.nbytes)
        lens_total = sum(lens)
        psn_lo = op.send_lo
        single = n_chunks == 1
        finish = self._finish_fold
        # Finisher scheduling bypasses ``Simulator.post_at``: the Allgather
        # chain posts one finisher per receiver per phase (O(P^2) over the
        # collective), and every ``fin`` is provably >= now, so the method
        # call + past-check overhead is pure constant-factor loss at scale.
        queue = sim._queue
        seq = sim._seq
        for rx_engine, op_r, qp, rx, fin, cursor, dma_busy, last_a in rx_folds:
            nic = rx_engine.nic
            nic.packets_received += n_chunks
            nic.bytes_received += payload_total
            qp.recv_cq.total_pushed += n_chunks
            # The NIC consumed one posted WR per arrival; the worker (UD:
            # the DMA-drain callback) re-posts each at its done instant.
            rq = qp.recv_queue
            if single:
                popped = rq.popleft()
                if uc:
                    # UC recv WRs are zero-length dummies; the consumed WR
                    # is field-for-field the repost the worker would build.
                    wrs = [popped]
                    staging = None
                else:
                    wrs = [popped]
                    staging = rx_engine.stagings[0]
                    dma = rx_engine.dma
                    dma.busy_until = dma_busy
                    dma.bytes_copied += lens_total
                    dma.ops += 1
                op_r.bitmap.set(psn_lo)
                op_r.placed.set(psn_lo)
            else:
                popped = [rq.popleft() for _ in range(n_chunks)]
                if uc:
                    wrs = popped
                    staging = None
                else:
                    wrs = popped
                    staging = rx_engine.stagings[0]
                    dma = rx_engine.dma
                    dma.busy_until = dma_busy
                    dma.bytes_copied += lens_total
                    dma.ops += n_chunks
                op_r.bitmap.set_range(psn_lo, n_chunks)
                op_r.placed.set_range(psn_lo, n_chunks)
            # Payload: the real path stages through slot memory (UD) or
            # places per packet (UC); byte-for-byte this is one slice copy.
            op_r.mr.buf[lo_off:lo_off + payload_total] = src
            op_r.stats["chunks_received"] += n_chunks
            op_r.ff_hold += 1
            rx.cursor = cursor
            rx.last_arrival = last_a
            if cursor > rx_engine.ff_resume_floor:
                rx_engine.ff_resume_floor = cursor
            seq += 1
            heappush(queue, (fin, seq, _Callback(finish,
                                                 (op_r, qp, wrs, staging))))
        sim._seq = seq
        # --- watchdog liveness over the folded window ---------------------
        if sim._wd_armed and sim._wd_interval > 0.0:
            step = sim._wd_interval / 2.0
            tick = t_hook + step
            while tick < fin_max:
                sim.post_at(tick, sim.note_progress)
                tick += step
        # --- telemetry -----------------------------------------------------
        self.ff_phases += 1
        self.ff_skipped_events += n_chunks * (len(chans) + 3 * len(rx_folds))
        self.ff_skipped_events += 2 * n_batches
        if trc is not None:
            trc.instant("engine.ff_exit", t_hook,
                        {"until": fin_max, "send_done": send_done})

    def _finish_fold(self, op_r: "OpState", qp, wrs: List[RecvWR],
                     staging) -> None:
        """The one committed event per receiver per fold: at the last
        chunk's done instant, restore the receive queue (the fold's
        reposts, in done order) and release the completion hold."""
        append = qp.recv_queue.append
        for wr in wrs:
            append(wr)
        if staging is not None:
            staging.reposts += len(wrs)
        op_r.ff_hold -= 1
        op_r.maybe_complete()


class _Vec1Session:
    """Deferred-commit vectorized session for the single-chunk Allgather
    chain (DESIGN §6f) — the path that makes 4096+-host allgathers CI-fast.

    The chain schedule serializes P phases, each a one-chunk multicast
    whose tree walk and P-1 receiver folds cost O(P) Python per phase in
    the generic fold — O(P²) interpreter time per collective.  This
    session exploits the schedule's structural invariants instead:

    * every phase crosses the same two-level tree (sender → its leaf →
      root → other leaves → hosts), so the per-switch fan-out reduces to
      one scalar up-chain plus one ``[n_leaves]`` vector of down-chains;
    * every host appears in exactly one leaf, so the P-1 receiver chains
      are independent elementwise recurrences over ``[P]`` arrays —
      computed by :class:`repro.sim.parallel.ShardCore`, optionally
      sharded across processes along the fabric partition;
    * phases are serialized by bypass-lane MSG_ACTIVATE control messages
      that never touch a channel's ``busy_until``, so **all** object-level
      commits (channel watermarks, counters, bitmaps, payload copies) can
      be deferred: arrays carry the state between phases, and the objects
      are written once — at each rank's completion instant and in one
      global flush at the last fold (or at an abort).

    Exactness: every expression replicates the generic fold's float
    arithmetic elementwise (numpy float64 ops are the same IEEE-754
    operations), so committed instants are bit-identical to the scalar
    engine for every shard count and backend.  Gate *strictness* may
    diverge (this session caches conservative bounds where the scalar
    fold recomputes); in exact mode that is invisible — the packet path
    the abort falls back to is itself bitwise-identical to the fold.

    Known seam: the scalar fold pops a receive WR per fold and re-posts
    it at the fold's finisher; this session leaves the queue untouched
    (the popped WR is field-for-field its own repost — UC dummies, UD
    cached staging WRs — so the rotation is unobservable).  After an
    abort, queue *depth* can therefore transiently exceed the scalar
    engine's until the pending finisher instants pass; a divergence would
    additionally require an RNR-drop in that window, i.e. a posted depth
    smaller than the phases in flight, which the no-RNR envelope gate
    refuses to fold in the first place.
    """

    def __init__(self) -> None:  # populated by build()
        self.done = False
        self.aborted = False

    # ------------------------------------------------------------ build

    @classmethod
    def build(cls, ff: "FlowFastForward", engine: "RankEngine",
              op: "OpState", participants: List[int], sess: _Session):
        """Probe the collective's shape and hoist every per-phase gate
        that is O(P) or O(tree); returns ``None`` (no state touched) when
        unsupported — the generic fold then takes over."""
        comm = ff.comm
        cfg = comm.config
        fabric = comm.fabric
        engines = comm.engines
        cid = op.coll_id
        ranks = list(participants)
        P = len(ranks)
        if P < 2 or len(set(ranks)) != P:
            return None
        uc = cfg.transport == "uc"
        header = engine.nic.header_bytes

        ops: List["OpState"] = []
        hosts: List[int] = []
        psn_set = set()
        for r in ranks:
            op_r = engines[r].ops.get(cid)
            if (op_r is None or op_r.aborted or op_r.stats["recoveries"]
                    or op_r.send_hi - op_r.send_lo != 1
                    or op_r.n_chunks != P):
                return None
            psn_set.add(op_r.send_lo)
            ops.append(op_r)
            hosts.append(comm.host_of(r))
        if len(psn_set) != P or len(set(hosts)) != P:
            return None

        # --- tree shape: a two-level star of switches ---------------------
        gid = comm.mcast_gids[0]
        tree: Dict[str, set] = {}
        for name, sw in fabric.switches.items():
            ports = sw.mcast_table.get(gid)
            if ports:
                if sw.dead:
                    return None
                tree[name] = set(ports)
        if not tree:
            return None
        sw_nbrs = {s: {p for p in ports if not is_host(p)}
                   for s, ports in tree.items()}
        if len(tree) == 1:
            root = next(iter(tree))
        else:
            root = None
            for s, nb in sw_nbrs.items():
                if len(nb) == len(tree) - 1:
                    root = s
                    break
            if root is None:
                return None
            for s, nb in sw_nbrs.items():
                if s != root and nb != {root}:
                    return None
        host_sw: Dict[int, str] = {}
        host_port: Dict[int, str] = {}
        for s, ports in tree.items():
            for p in ports:
                if is_host(p):
                    h = host_id(p)
                    if h in host_sw:
                        return None
                    host_sw[h] = s
                    host_port[h] = p
        if set(host_sw) != set(hosts):
            return None

        # --- partition-aware ordering -------------------------------------
        try:
            part = partition_fabric(fabric, ff._resolve_shards(P))
        except PartitionError:
            return None
        canon = {s: i for i, s in enumerate(fabric.topology.switch_names)}
        if any(s not in canon for s in tree):
            return None
        bswitches = sorted(tree, key=lambda s: (part.switch_shard[s],
                                                canon[s]))
        bpos = {s: i for i, s in enumerate(bswitches)}
        n_sh = part.n_shards
        leaf_slices: List[Tuple[int, int]] = []
        i = 0
        for k in range(n_sh):
            lo = i
            while (i < len(bswitches)
                   and part.switch_shard[bswitches[i]] == k):
                i += 1
            leaf_slices.append((lo, i))
        if i != len(bswitches):
            return None
        host_of_rank = dict(zip(ranks, hosts))
        perm = sorted(ranks, key=lambda r: (
            part.switch_shard[host_sw[host_of_rank[r]]],
            bpos[host_sw[host_of_rank[r]]], r))
        pos = {r: j for j, r in enumerate(perm)}
        rx_slices: List[Tuple[int, int]] = []
        i = 0
        for k in range(n_sh):
            lo = i
            while (i < P and part.switch_shard[
                    host_sw[host_of_rank[perm[i]]]] == k):
                i += 1
            rx_slices.append((lo, i))
        if i != P:
            return None

        self = cls()
        self.ff = ff
        self.comm = comm
        self.sim = ff.sim
        self.fabric = fabric
        self.sess = sess
        self.uc = uc
        self.P = P
        self.header = header
        self.perm = perm
        self.pos = pos
        self.rank_order = sorted(range(P), key=lambda j: perm[j])
        self.engines_p = [engines[r] for r in perm]
        self.ops = [engines[r].ops[cid] for r in perm]
        self.qps = [e.sub_qps[0] for e in self.engines_p]
        self.epoch0 = fabric.fault_epoch

        # --- per-rank geometry, channels, wire sizes ----------------------
        lens_i: List[int] = []
        wires_i: List[int] = []
        lo_offs: List[int] = []
        psns: List[int] = []
        hd_ch = []
        eg_ch = []
        # Fault presence is snapshotted here: a mid-session ``set_fault``
        # bumps ``fault_epoch`` and aborts before another fold commits, so
        # every folded phase ran under the build-time fault state — the
        # flush must keep ``_droppable_seq`` in lockstep with *that*.
        hd_fault = []
        eg_fault = []
        up_fault = []
        down_fault = []
        max_bypass = 0
        hd_busy = np.empty(P)
        hd_bw = np.empty(P)
        hd_lat = np.empty(P)
        eg_busy = np.empty(P)
        eg_bw = np.empty(P)
        eg_lat = np.empty(P)
        d_sw = np.empty(P)
        s_bpos = np.empty(P, dtype=np.intp)
        for j in range(P):
            op_j = self.ops[j]
            h = host_of_rank[perm[j]]
            sw_name = host_sw[h]
            off, ln = op_j.plan.bounds(op_j.send_lo)
            lens_i.append(ln)
            wires_i.append(ln + header)
            lo_offs.append(off)
            psns.append(op_j.send_lo)
            ch = fabric.switches[sw_name].ports.get(host_port[h])
            eg = self.engines_p[j].nic.egress
            if (ch is None or ch.down or not ch.fault_inert()
                    or eg is None or eg.down or not eg.fault_inert()
                    or eg.dst_name != sw_name):
                return None
            max_bypass = max(max_bypass, ch.ctrl_bypass_bytes,
                             eg.ctrl_bypass_bytes)
            hd_ch.append(ch)
            eg_ch.append(eg)
            hd_fault.append(ch.fault is not None)
            eg_fault.append(eg.fault is not None)
            hd_busy[j] = ch.busy_until
            hd_bw[j] = ch.bandwidth
            hd_lat[j] = ch.latency
            eg_busy[j] = eg.busy_until
            eg_bw[j] = eg.bandwidth
            eg_lat[j] = eg.latency
            d_sw[j] = fabric.switches[sw_name].forwarding_delay
            s_bpos[j] = bpos[sw_name]

        leaves = [s for s in bswitches if s != root]
        n_leaves = len(leaves)
        leaf_idx = {s: u for u, s in enumerate(leaves)}
        up_ch = []
        down_ch = []
        up_busy = np.empty(n_leaves)
        up_bw = np.empty(n_leaves)
        up_lat = np.empty(n_leaves)
        down_busy = np.empty(n_leaves)
        down_bw = np.empty(n_leaves)
        down_lat = np.empty(n_leaves)
        d_leaf = np.empty(n_leaves)
        for u, s in enumerate(leaves):
            upc = fabric.switches[s].ports.get(root)
            dnc = fabric.switches[root].ports.get(s)
            if (upc is None or upc.down or not upc.fault_inert()
                    or dnc is None or dnc.down or not dnc.fault_inert()):
                return None
            max_bypass = max(max_bypass, upc.ctrl_bypass_bytes,
                             dnc.ctrl_bypass_bytes)
            up_ch.append(upc)
            down_ch.append(dnc)
            up_fault.append(upc.fault is not None)
            down_fault.append(dnc.fault is not None)
            up_busy[u] = upc.busy_until
            up_bw[u] = upc.bandwidth
            up_lat[u] = upc.latency
            down_busy[u] = dnc.busy_until
            down_bw[u] = dnc.bandwidth
            down_lat[u] = dnc.latency
            d_leaf[u] = fabric.switches[s].forwarding_delay
        if min(wires_i) <= max_bypass:
            return None

        self.lens_i = lens_i
        self.wires_i = wires_i
        self.lens_f = [float(x) for x in lens_i]
        self.wires_f = [float(x) for x in wires_i]
        self.lo_offs = lo_offs
        self.psns = psns
        self.hd_ch = hd_ch
        self.eg_ch = eg_ch
        self.hd_fault = hd_fault
        self.eg_fault = eg_fault
        self.up_fault = up_fault
        self.down_fault = down_fault
        self.eg_busy = eg_busy
        self.eg_bw = eg_bw
        self.eg_lat = eg_lat
        self.d_sw = d_sw
        self.s_bpos = s_bpos
        self.s_leafidx = np.array(
            [leaf_idx.get(host_sw[host_of_rank[perm[j]]], -1)
             for j in range(P)], dtype=np.intp)
        self.root = root
        self.root_bpos = bpos[root]
        self.d_root = float(fabric.switches[root].forwarding_delay)
        self.n_leaves = n_leaves
        self.leaves = leaves
        self.up_ch = up_ch
        self.down_ch = down_ch
        self.up_busy = up_busy
        self.up_bw = up_bw
        self.up_lat = up_lat
        self.down_busy = down_busy
        self.down_bw = down_bw
        self.down_lat = down_lat
        self.d_leaf = d_leaf
        self.leaf_bidx = np.array([bpos[s] for s in leaves], dtype=np.intp)
        self.tree_sw = [(fabric.switches[s], len(tree[s])) for s in tree]
        self.chans_per_phase = 1 + sum(len(p) - 1 for p in tree.values())
        self.n_b = len(bswitches)
        self.b_scratch = np.empty(self.n_b)

        # --- hoisted per-phase gates --------------------------------------
        cost = engine.cost
        self.sb1 = cost.send_batch(1)
        self.init_min_qlen = min(len(qp.recv_queue) for qp in self.qps)
        if self.init_min_qlen < 1:
            return None
        md = _INF
        unarmed: List[int] = []
        expslack = np.zeros(P)
        n_workers = max(cfg.recv_workers or cfg.n_subgroups, 1)
        for j in range(P):
            d = self.ops[j].cutoff_deadline
            if d < _INF:
                if d < md:
                    md = d
            else:
                e = self.engines_p[j]
                sw_rate = (
                    e.cost.recv_rate(cfg.chunk_size, uc=uc) * n_workers
                    if e.cost.per_recv_chunk > 0
                    else _INF
                )
                recv_rate = min(fabric.link_bandwidth, sw_rate)
                expected = self.ops[j].plan.buffer_len / recv_rate
                slack = (e.cutoff.slack() if cfg.adaptive_cutoff
                         else cfg.cutoff_alpha)
                expslack[j] = expected + slack
                unarmed.append(j)
        self.md = md
        self.unarmed = unarmed
        self.expslack = expslack

        # --- schedule state -----------------------------------------------
        self.buffer_len = op.plan.buffer_len
        self.gather = np.empty(self.buffer_len, dtype=np.uint8)
        self.env = np.empty(P)
        self.ptr = 0
        self.nfolded = 0
        self.folded: List[int] = []
        self.sent = [False] * P
        self.completed = [False] * P

        # --- shard engine --------------------------------------------------
        backend = ("process"
                   if n_sh > 1 and (P >= 8192 or ff.force_process)
                   else "inline")
        state = {
            "uc": uc,
            "c1": cost.cqe_poll + cost.cqe_process,
            "c2": (cost.recv_repost if uc
                   else cost.copy_issue + cost.recv_repost),
            "min_deadline": _INF,  # deadline gating is coordinator-side
            "leaf_of": s_bpos,
            "bw": hd_bw,
            "lat": hd_lat,
            "hd_busy": hd_busy,
            "cursor": np.zeros(P),
            "last_arr": np.full(P, -_INF),
        }
        if not uc:
            state["dma_bw"] = np.array(
                [e.dma.bandwidth for e in self.engines_p])
            state["dma_lat"] = np.array(
                [e.dma.latency for e in self.engines_p])
            state["dma_busy"] = np.array(
                [e.dma.busy_until for e in self.engines_p])
        self.par = ff._get_par(rx_slices, backend)
        self.par.start_session(state, leaf_slices)
        return self

    # ------------------------------------------------------------ per phase

    def fold_phase(self, engine: "RankEngine",
                   op: "OpState") -> Optional[float]:
        """Fold one chain phase; returns the sender's ``run_send`` done
        instant, or ``None`` after flushing + aborting the session."""
        sim = self.sim
        t_hook = sim.now
        if self.done or self.aborted:
            return self.abort_flush()
        if self.fabric.fault_epoch != self.epoch0:
            return self.abort_flush()
        i = self.pos.get(engine.rank, -1)
        if i < 0 or self.sent[i] or op is not self.ops[i]:
            return self.abort_flush()
        if len(engine.send_cq):
            return self.abort_flush()
        # --- cutoff-deadline gate (conservative, O(#still-unarmed)) ------
        md = self.md
        un = self.unarmed
        if un:
            k = 0
            for idx in un:
                d = self.ops[idx].cutoff_deadline
                if d < _INF:
                    if d < md:
                        md = d
                else:
                    un[k] = idx
                    k += 1
            del un[k:]
            self.md = md
        md_eff = md
        if un:
            bound = t_hook + min(self.expslack[idx] for idx in un)
            if bound < md_eff:
                md_eff = bound
        if md_eff <= t_hook:
            return self.abort_flush()
        # --- no-RNR envelope: posted depth must cover phases in flight ---
        nf = self.nfolded
        env = self.env
        ptr = self.ptr
        while ptr < nf and env[ptr] <= t_hook:
            ptr += 1
        self.ptr = ptr
        if self.init_min_qlen - (nf - ptr) < 1:
            return self.abort_flush()

        w = self.wires_f[i]
        ln = self.lens_f[i]
        # --- sender egress: _fold_sender for a single 1-packet batch -----
        t0 = t_hook + self.sb1
        prev = self.eg_busy[i]
        start = t0 if t0 > prev else prev
        eg_new = start + w / self.eg_bw[i]
        send_done = eg_new if eg_new > t0 else t0
        arr0 = eg_new + self.eg_lat[i]
        # --- up-chain: sender's leaf, then (if distinct) the root --------
        d_as = self.d_sw[i]
        inj_as = arr0 + d_as if d_as > 0.0 else arr0
        u = self.s_leafidx[i]
        if u >= 0:
            ustart = inj_as if inj_as > self.up_busy[u] else self.up_busy[u]
            up_new = ustart + w / self.up_bw[u]
            arr_r = up_new + self.up_lat[u]
            inj_r = arr_r + self.d_root if self.d_root > 0.0 else arr_r
        else:
            up_new = 0.0
            inj_r = inj_as
        # --- root fan-out: [n_leaves] vector of down-chains --------------
        b = self.b_scratch
        if self.n_leaves:
            dstart = np.maximum(inj_r, self.down_busy)
            dnew = dstart + w / self.down_bw
            inj_l = (dnew + self.down_lat) + self.d_leaf
            if u >= 0:
                dnew[u] = self.down_busy[u]  # sender's leaf: no down hop
            b[self.leaf_bidx] = inj_l
        else:
            dnew = None
        b[self.root_bpos] = inj_r
        b[self.s_bpos[i]] = inj_as
        # --- shard sync: one lookahead window over the cut edges ---------
        want_fins = nf >= self.P - 2
        ok, fin_rx, fins = self.par.phase(w, ln, b, i, want_fins)
        if not ok:
            return self.abort_flush()
        fin_all = fin_rx if fin_rx > send_done else send_done
        if fin_all >= md_eff:
            return self.abort_flush()

        # ------------------------------------------------------- commit
        self.eg_busy[i] = eg_new
        if u >= 0:
            self.up_busy[u] = up_new
        if dnew is not None:
            self.down_busy = dnew
        self.sent[i] = True
        self.folded.append(i)
        env[nf] = fin_all if nf == 0 or fin_all > env[nf - 1] else env[nf - 1]
        self.nfolded = nf + 1
        lo = self.lo_offs[i]
        self.gather[lo:lo + self.lens_i[i]] = \
            op.mr.buf[lo:lo + self.lens_i[i]]

        # --- completions: delivered(r) == P-1 ----------------------------
        nf1 = nf + 1
        if nf1 >= self.P - 1:
            # Fixed ascending-rank order keeps the event heap identical
            # for every shard count.
            for j in self.rank_order:
                if self.completed[j]:
                    continue
                if nf1 - (1 if self.sent[j] else 0) == self.P - 1:
                    self.completed[j] = True
                    sim.post_at(float(fins[j]), self._complete_rx, j)
        if nf1 == self.P:
            state = self.par.final_state()
            self.par.end_session()
            self._flush_fabric(state)
            self.done = True
            self.sess.vec = None

        # --- watchdog liveness over the folded window --------------------
        if sim._wd_armed and sim._wd_interval > 0.0:
            step = sim._wd_interval / 2.0
            tick = t_hook + step
            while tick < fin_all:
                sim.post_at(tick, sim.note_progress)
                tick += step
        # --- telemetry ----------------------------------------------------
        ff = self.ff
        ff.ff_phases += 1
        ff.ff_skipped_events += self.chans_per_phase + 3 * (self.P - 1) + 2
        trc = engine.trace
        if trc is not None:
            trc.instant("engine.ff_enter", t_hook,
                        {"chunks": 1, "mode": ff.mode})
            trc.instant("engine.shard_sync", t_hook,
                        {"shards": self.par.n_shards, "phase": nf})
            trc.instant("engine.boundary_xfer", t_hook,
                        {"msgs": 2 * self.par.n_shards,
                         "bytes": 8 * self.n_b})
            trc.instant("engine.ff_exit", t_hook,
                        {"until": fin_all, "send_done": send_done})
        return send_done

    # --------------------------------------------------------- completion

    def _complete_rx(self, j: int) -> None:
        """One event per rank, at its exact ``data_done`` instant: commit
        its bitmap, payload and stats, then let the op complete."""
        op_r = self.ops[j]
        newly = op_r.bitmap.set_range(0, self.P)
        op_r.placed.set_range(0, self.P)
        lo = self.lo_offs[j]
        hi = lo + self.lens_i[j]
        buf = op_r.mr.buf
        buf[0:lo] = self.gather[0:lo]
        buf[hi:self.buffer_len] = self.gather[hi:self.buffer_len]
        op_r.stats["chunks_received"] += newly
        op_r.maybe_complete()

    # -------------------------------------------------------------- flush

    def abort_flush(self) -> None:
        """Commit every folded phase's deferred state *now* and retire the
        session: the packet path resumes from object state identical to
        what the generic fold would have committed eagerly (WR queue depth
        aside — see the class docstring)."""
        if self.done or self.aborted:
            return None
        self.aborted = True
        sim = self.sim
        now = sim.now
        self.par.rollback()  # drop any tentative (uncommitted) phase
        state = self.par.final_state()
        self.par.end_session()
        self._flush_fabric(state)
        # --- per-rank partial bitmap/payload from the folded psn runs -----
        runs = self._psn_runs()
        last_fin = state["last_fin"]
        for j in range(self.P):
            if self.completed[j]:
                continue  # its pending completion event commits everything
            op_r = self.ops[j]
            got = 0
            for psn0, cnt in runs:
                got += op_r.bitmap.set_range(psn0, cnt)
                op_r.placed.set_range(psn0, cnt)
                b0 = op_r.plan.bounds(psn0)[0]
                b1_off, b1_len = op_r.plan.bounds(psn0 + cnt - 1)
                op_r.mr.buf[b0:b1_off + b1_len] = \
                    self.gather[b0:b1_off + b1_len]
            op_r.stats["chunks_received"] += got
            lf = float(last_fin[j])
            if lf > now:
                # The last folded receive is still "in flight": hold
                # completion to its finisher instant, like the scalar fold.
                op_r.ff_hold += 1
                sim.post_at(lf, self._release_hold, j)
        self.sess.vec = None
        return None

    def _release_hold(self, j: int) -> None:
        op_r = self.ops[j]
        op_r.ff_hold -= 1
        op_r.maybe_complete()

    def _psn_runs(self) -> List[Tuple[int, int]]:
        psns = sorted(self.psns[j] for j in self.folded)
        runs: List[Tuple[int, int]] = []
        i = 0
        n = len(psns)
        while i < n:
            j = i + 1
            while j < n and psns[j] == psns[j - 1] + 1:
                j += 1
            runs.append((psns[i], j - i))
            i = j
        return runs

    def _flush_fabric(self, state: Dict[str, np.ndarray]) -> None:
        """Write every deferred fabric-level counter and watermark in one
        pass: closed forms over the folded phase set (all P phases on the
        happy path), identical totals to per-phase eager commits."""
        folded = self.folded
        nf = len(folded)
        header = self.header
        wires_i = self.wires_i
        lens_i = self.lens_i
        wf = sum(wires_i[j] for j in folded)
        lf_sum = sum(lens_i[j] for j in folded)
        leaf_w = [0] * self.n_leaves
        leaf_n = [0] * self.n_leaves
        for j in folded:
            u = self.s_leafidx[j]
            if u >= 0:
                leaf_w[u] += wires_i[j]
                leaf_n[u] += 1
        hd_busy = state["hd_busy"]
        cursors = state["cursor"]
        last_arr = state["last_arr"]
        dma_busy = state.get("dma_busy")
        sess_rx = self.sess.rx
        for j in range(self.P):
            sent_j = self.sent[j]
            pk = nf - (1 if sent_j else 0)
            own_w = wires_i[j] if sent_j else 0
            own_l = lens_i[j] if sent_j else 0
            e = self.engines_p[j]
            ch = self.hd_ch[j]
            ch.busy_until = float(hd_busy[j])
            ch.bytes_sent += wf - own_w
            ch.payload_bytes_sent += lf_sum - own_l
            ch.packets_sent += pk
            if self.hd_fault[j]:
                ch._droppable_seq += pk
            if sent_j:
                eg = self.eg_ch[j]
                eg.busy_until = float(self.eg_busy[j])
                eg.bytes_sent += wires_i[j]
                eg.payload_bytes_sent += lens_i[j]
                eg.packets_sent += 1
                if self.eg_fault[j]:
                    eg._droppable_seq += 1
                e.send_cq.total_pushed += 1
            nic = e.nic
            nic.packets_received += pk
            nic.bytes_received += lf_sum - own_l
            self.qps[j].recv_cq.total_pushed += pk
            if not self.uc:
                dma = e.dma
                dma.busy_until = float(dma_busy[j])
                dma.bytes_copied += lf_sum - own_l
                dma.ops += pk
                e.stagings[0].reposts += pk
            rank = self.perm[j]
            rx = sess_rx.get(rank)
            if rx is None:
                rx = sess_rx[rank] = _RxSession()
            rx.cursor = float(cursors[j])
            rx.last_arrival = float(last_arr[j])
            if rx.cursor > e.ff_resume_floor:
                e.ff_resume_floor = rx.cursor
        for u in range(self.n_leaves):
            upc = self.up_ch[u]
            upc.busy_until = float(self.up_busy[u])
            upc.bytes_sent += leaf_w[u]
            upc.payload_bytes_sent += leaf_w[u] - leaf_n[u] * header
            upc.packets_sent += leaf_n[u]
            if self.up_fault[u]:
                upc._droppable_seq += leaf_n[u]
            dnc = self.down_ch[u]
            dnc.busy_until = float(self.down_busy[u])
            dnc.bytes_sent += wf - leaf_w[u]
            dnc.payload_bytes_sent += \
                (wf - leaf_w[u]) - (nf - leaf_n[u]) * header
            dnc.packets_sent += nf - leaf_n[u]
            if self.down_fault[u]:
                dnc._droppable_seq += nf - leaf_n[u]
        # Every phase visits every tree switch with exactly one in-port,
        # so each forwards (tree-ports - 1) packets per folded phase.
        for sw, nports in self.tree_sw:
            sw.packets_forwarded += nf * (nports - 1)


def _count_trains(flags: List[bool], batch_sizes: List[int]) -> Tuple[int, int]:
    """(trains, train_packets) a channel would have recorded for the
    batches whose train flag survived the coalescing chain so far."""
    trains = 0
    train_pkts = 0
    for f, sz in zip(flags, batch_sizes):
        if f:
            trains += 1
            train_pkts += sz
    return trains, train_pkts


def _drain_cq(pending: List[float], lo: int, t: float) -> Tuple[float, int, int]:
    """Replay one ``send_cq.wait() + poll()`` round of ``run_send``.

    ``pending[lo:]`` holds undrained signaled-CQE push instants in
    increasing order.  If any are due at *t* the wait returns immediately
    and the poll drains all of them; otherwise the worker parks until the
    next push and drains exactly it.
    """
    if lo < len(pending) and pending[lo] <= t:
        k = 0
        while lo < len(pending) and pending[lo] <= t:
            lo += 1
            k += 1
        return t, k, lo
    t = pending[lo]
    return t, 1, lo + 1
