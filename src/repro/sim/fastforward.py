"""Flow-level fast-forward: analytic advance of fault-inert collective phases.

The packet-train and CQE-train fast paths coalesce *homogeneous runs* of
work into single events; this layer generalizes the idea to a whole
multicast phase.  When a sender's bulk transfer is provably fault-inert —
no drop machinery armed on any tree channel, no straggler window, no
pending crash, no concurrent collective that could contend — the entire
phase (send batching, per-link busy chains, switch relays, receive-worker
processing, staging DMA drain) is folded arithmetically and committed as
O(links) state mutations plus one "finisher" event per receiver, instead
of O(packets) simulated events.

Exactness contract (``fast_forward="exact"``)
---------------------------------------------
The fold replicates the **slow-path** float arithmetic expression by
expression — ``max`` written as the same branch shapes, costs summed in
the same order — so every committed instant (channel ``busy_until``, DMA
watermarks, CQE anchors, ``data_done``) is bit-identical to the
packet-level engine.  The train/CQE fast paths are themselves bit
identical to the slow paths (CI gates ``--per-packet`` / ``--per-cqe``),
so matching the slow path matches every engine mode.  Event counts and
receiver-batch telemetry (``cqe_batches`` / ``batched_cqes``) necessarily
*drop* under fast-forward — that is the point — so equivalence checks
compare virtual time, counters and payload digests, never event counts.

Banded mode (``fast_forward="banded"``)
---------------------------------------
Same gates, same committed byte/packet counters and payloads, but the
per-edge busy chains are collapsed to closed forms over uniform arrival
streams (O(1) per edge instead of O(chunks)): completion instants may
deviate by up to the declared ±0.5% virtual-time tolerance
(:data:`BANDED_TOLERANCE`).  This is what makes 1024–4096-host sweeps
tractable.

Eligibility gates (any failure falls back to packet level, permanently
for the rest of that collective so cursors stay exact):

* knob on, transport UD or UC, single subgroup, chunk fits one segment;
* exactly one active collective on the communicator;
* no dead ranks/hosts/switches/links and no pending crash schedule
  (:attr:`Fabric.pending_crashes`);
* allgather only with an effective single chain (the sequencer's own
  ``n_chains`` fallback arithmetic) and strictly non-interleaved arrivals
  per receiver;
* every tree channel up and :meth:`Channel.fault_inert`, and every data
  packet too large for the control bypass lane;
* every receiver straggler-inert over the folded window, with enough
  posted receive WRs for the whole fold (no RNR possible);
* no recovery ran on any participant, and the folded phase completes
  strictly before every armed (or arming) cutoff deadline — so no
  recovery or fetch can observe the eagerly-committed bitmap bits.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.sequencer import effective_chains
from repro.net.nic import RecvWR
from repro.net.topology import host_id, is_host
from repro.sim.engine import _Callback

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.communicator import Communicator
    from repro.core.ops import OpState
    from repro.core.progress import RankEngine

__all__ = ["FlowFastForward", "BANDED_TOLERANCE"]

#: declared virtual-time tolerance of ``fast_forward="banded"`` (relative)
BANDED_TOLERANCE = 5e-3

_INF = float("inf")


class _RxSession:
    """Per-receiver cross-fold cursor state (one per rank per collective)."""

    __slots__ = ("cursor", "last_arrival")

    def __init__(self) -> None:
        #: receive-worker virtual-time cursor after the last committed fold
        self.cursor = 0.0
        #: last folded packet-arrival instant (non-interleave gate)
        self.last_arrival = -_INF


class _Session:
    """Per-collective fast-forward state.

    ``poisoned`` latches on the first abort: once any phase of a
    collective ran at packet level, every later phase must too — the
    analytic worker cursors would otherwise drift from the real ones.
    """

    __slots__ = ("poisoned", "rx")

    def __init__(self) -> None:
        self.poisoned = False
        self.rx: Dict[int, _RxSession] = {}


class FlowFastForward:
    """Phase analyzer + analytic advancer for one communicator."""

    def __init__(self, comm: "Communicator") -> None:
        self.comm = comm
        self.sim = comm.sim
        self.mode = comm.config.fast_forward  # 'exact' | 'banded'
        # --- telemetry (summed into CollectiveResult.engine) ---
        self.ff_phases = 0  #: phases folded analytically
        self.ff_skipped_events = 0  #: estimated packet-level events avoided
        self.ff_aborts = 0  #: eligibility-gate bailouts (fell back)
        self._sessions: Dict[int, _Session] = {}

    # ------------------------------------------------------------ entry point

    def try_advance(self, engine: "RankEngine", op: "OpState",
                    participants: List[int]) -> Optional[float]:
        """Attempt to fold *op*'s multicast phase from ``engine`` (the
        sender).  Returns the sender's ``run_send`` completion instant on
        success (all state committed), or ``None`` to fall back to the
        packet-level path."""
        sess = self._session(op.coll_id)
        done = self._attempt(engine, op, participants, sess)
        if done is None:
            self.ff_aborts += 1
            sess.poisoned = True
        return done

    def _session(self, coll_id: int) -> _Session:
        sess = self._sessions.get(coll_id)
        if sess is None:
            # Coll-ids grow monotonically; prune finished collectives.
            # Engine op registration is the source of truth (handles are
            # tracked by handle_id, not coll_id, since the submit redesign).
            active = {c for e in self.comm.engines for c in e.ops}
            for cid in [c for c in self._sessions if c not in active]:
                del self._sessions[cid]
            sess = self._sessions[coll_id] = _Session()
        return sess

    # ------------------------------------------------------------------ gates

    def _attempt(self, engine: "RankEngine", op: "OpState",
                 participants: List[int], sess: _Session) -> Optional[float]:
        comm = self.comm
        cfg = comm.config
        fabric = comm.fabric
        sim = self.sim

        if sess.poisoned:
            return None
        if cfg.n_subgroups != 1 or cfg.transport not in ("ud", "uc"):
            return None
        if fabric.topology.rails != 1:
            # Multi-rail folds would need per-plane egress chains; the
            # striped datapath (n_subgroups > 1) is already gated above.
            return None
        if not comm.ff_exclusive(op.coll_id):
            return None
        if len(participants) < 2 or comm.size < 2:
            return None
        n_chunks = op.send_hi - op.send_lo
        if n_chunks <= 0:
            return None
        # One wire segment per chunk (the UC builder fragments at the MTU).
        if op.plan.chunk_size > fabric.mtu:
            return None
        if op.kind == "allgather":
            # The sequencer's own fallback arithmetic: concurrent chains
            # would contend on shared tree links, which the fold cannot
            # serialize correctly.
            if effective_chains(len(participants), cfg.n_chains) != 1:
                return None
        if (comm.dead_ranks or fabric.dead_hosts or fabric.dead_switches
                or fabric.dead_links or fabric.pending_crashes):
            return None
        if op.aborted or op.dead_ranks:
            return None
        engines = comm.engines
        cid = op.coll_id
        for r in participants:
            op_r = engines[r].ops.get(cid)
            if op_r is None or op_r.aborted or op_r.stats["recoveries"]:
                return None

        uc = cfg.transport == "uc"
        plan = op.plan
        header = engine.nic.header_bytes
        lens = [plan.bounds(psn)[1] for psn in range(op.send_lo, op.send_hi)]
        wires = [ln + header for ln in lens]
        gid = comm.mcast_gids[0]

        # --- sender fold: doorbell batching + egress busy chain -----------
        sender_fold = self._fold_sender(engine, op, wires)
        if sender_fold is None:
            return None
        send_done, egress_finishes, batch_sizes, n_batches = sender_fold
        egress = engine.nic.egress

        # --- tree walk: per-edge busy chains to every receiver ------------
        walk = self._walk(engine, gid, egress, egress_finishes,
                          wires, batch_sizes)
        if walk is None:
            return None
        chans, arrivals_by_host, switch_counts = walk

        # Receivers must be exactly the non-sender participants.
        rx_ranks: Dict[int, int] = {}
        for r in participants:
            if r != engine.rank:
                rx_ranks[comm.host_of(r)] = r
        if set(arrivals_by_host) != set(rx_ranks):
            return None

        # --- receiver folds: worker chain + staging DMA drain -------------
        t_hook = sim.now
        rx_folds = []
        fin_max = send_done
        for host, arrivals in arrivals_by_host.items():
            rank = rx_ranks[host]
            fold = self._fold_receiver(engines[rank], engines[rank].ops[cid],
                                       arrivals, lens, uc, sess, t_hook)
            if fold is None:
                return None
            rx_folds.append(fold)
            if fold[4] > fin_max:
                fin_max = fold[4]

        # --- global deadline gate: the fold must land before any armed
        # (or arming) cutoff can fire, so recovery/fetch never observes the
        # eagerly committed bitmap bits. ----------------------------------
        if not self._deadlines_clear(participants, cid, t_hook, fin_max):
            return None

        # --------------------------------------------------------- commit
        self._commit(engine, op, sess, chans, switch_counts, rx_folds,
                     lens, n_chunks, n_batches, send_done, fin_max, uc)
        return send_done

    # ---------------------------------------------------------- sender fold

    def _fold_sender(self, engine: "RankEngine", op: "OpState",
                     wires: List[int]):
        """Replicate ``run_send`` + the egress burst: per-batch doorbell
        cost, one busy-chain walk per batch, one signaled CQE per batch
        pushed at its last serialization finish, bounded outstanding
        batches replayed against the push instants."""
        cfg = engine.config
        cost = engine.cost
        egress = engine.nic.egress
        if egress is None or egress.down or not egress.fault_inert():
            return None
        bypass = egress.ctrl_bypass_bytes
        if min(wires) <= bypass:
            return None
        if len(engine.send_cq):  # stale completions would skew the replay
            return None
        bw = egress.bandwidth
        prev = egress.busy_until
        t = self.sim.now
        finishes: List[float] = []
        batch_sizes: List[int] = []
        pending: List[float] = []  # signaled-CQE push instants, increasing
        p_lo = 0  # drained prefix of `pending`
        outstanding = 0
        n = len(wires)
        max_out = cfg.max_outstanding_batches
        for i in range(0, n, cfg.batch_size):
            batch = wires[i:i + cfg.batch_size]
            batch_sizes.append(len(batch))
            t = t + cost.send_batch(len(batch))
            for w in batch:
                start = t if t > prev else prev
                prev = start + w / bw
                finishes.append(prev)
            pending.append(prev)
            outstanding += 1
            while outstanding >= max_out:
                t, k, p_lo = _drain_cq(pending, p_lo, t)
                outstanding -= k
        while outstanding > 0:
            t, k, p_lo = _drain_cq(pending, p_lo, t)
            outstanding -= k
        return t, finishes, batch_sizes, len(batch_sizes)

    # ------------------------------------------------------------- tree walk

    def _walk(self, engine: "RankEngine", gid: int, egress, egress_finishes,
              wires: List[int], batch_sizes: List[int]):
        """Advance every tree channel's busy chain and collect per-receiver
        arrival instants.

        Returns ``(chans, arrivals_by_host, switch_counts)`` where
        ``chans`` carries per-channel commit records.  ``None`` on any
        gate failure (downed/faulty channel, missing multicast route,
        unexpected receiver).
        """
        fabric = engine.fabric
        banded = self.mode == "banded"
        n = len(wires)
        min_wire = min(wires)
        # Per-chunk train membership: a batch rides the wire as one train
        # iff it has >= 2 packets and every channel from the root down had
        # coalescing enabled (a per-packet hop breaks the train for all
        # downstream hops).  When no batch can train (all singletons) the
        # flag lists are elided entirely — the single-chunk-per-phase
        # Allgather schedule hits this walk O(P) times per collective.
        base_flags = [sz >= 2 for sz in batch_sizes]
        has_trains = True in base_flags
        arrivals0 = [f + egress.latency for f in egress_finishes]
        chans: List[tuple] = []
        arrivals_by_host: Dict[int, List[float]] = {}
        switch_counts: Dict[object, int] = {}
        bytes_sum = sum(wires)
        payload_sum = bytes_sum - n * engine.nic.header_bytes

        if has_trains:
            eg_flags = [f and egress.coalescing for f in base_flags]
            eg_trains, eg_tp = _count_trains(eg_flags, batch_sizes)
        else:
            eg_flags = None
            eg_trains = eg_tp = 0
        chans.append((egress, egress.busy_until
                      if not egress_finishes else egress_finishes[-1],
                      n, bytes_sum, payload_sum, eg_trains, eg_tp))
        stack: List[Tuple[str, str, List[float], Optional[List[bool]]]] = [
            (egress.dst_name, egress.src_name, arrivals0, eg_flags)
        ]
        while stack:
            name, in_port, arr, flags = stack.pop()
            if is_host(name):
                h = host_id(name)
                if h in arrivals_by_host:
                    return None  # tree delivered twice: not a tree
                arrivals_by_host[h] = arr
                continue
            sw = fabric.switches.get(name)
            if sw is None or sw.dead:
                return None
            tree_ports = sw.mcast_table.get(gid)
            if tree_ports is None:
                return None
            d = sw.forwarding_delay
            inj = [a + d for a in arr] if d > 0.0 else arr
            for neighbor in sorted(tree_ports):
                if neighbor == in_port:
                    continue
                ch = sw.ports.get(neighbor)
                if ch is None or ch.down or not ch.fault_inert():
                    return None
                if min_wire <= ch.ctrl_bypass_bytes:
                    return None
                bw = ch.bandwidth
                lat = ch.latency
                prev = ch.busy_until
                if n == 1:
                    t_inj = inj[0]
                    start = t_inj if t_inj > prev else prev
                    prev = start + wires[0] / bw
                    outs_lat = [prev + lat]
                elif banded:
                    # Closed-form uniform-stream fold: O(1) per edge.
                    first_in, last_in = inj[0], inj[-1]
                    start0 = first_in if first_in > prev else prev
                    out_first = start0 + wires[0] / bw
                    serial = bytes_sum / bw
                    tail = last_in + wires[-1] / bw
                    queued = start0 + serial
                    out_last = tail if tail > queued else queued
                    step = (out_last - out_first) / (n - 1)
                    outs_lat = [out_first + i * step + lat for i in range(n)]
                    outs_lat[-1] = out_last + lat
                    prev = out_last
                else:
                    outs_lat = []
                    for i, t_inj in enumerate(inj):
                        start = t_inj if t_inj > prev else prev
                        prev = start + wires[i] / bw
                        outs_lat.append(prev + lat)
                if flags is not None:
                    ch_flags = [f and ch.coalescing for f in flags]
                    trains, tp = _count_trains(ch_flags, batch_sizes)
                else:
                    ch_flags = None
                    trains = tp = 0
                chans.append((ch, prev, n, bytes_sum, payload_sum,
                              trains, tp))
                switch_counts[sw] = switch_counts.get(sw, 0) + n
                stack.append((ch.dst_name, name, outs_lat, ch_flags))
        return chans, arrivals_by_host, switch_counts

    # --------------------------------------------------------- receiver fold

    def _fold_receiver(self, rx_engine: "RankEngine", op_r: "OpState",
                       arrivals: List[float], lens: List[int], uc: bool,
                       sess: _Session, t_hook: float):
        """Replicate the receive worker's per-CQE slow path and (UD) the
        staging DMA drain for one receiver over this fold's arrivals.

        Returns a flat tuple (not a dict): the Allgather chain schedule
        runs this O(P) times per phase, O(P^2) per collective, so the
        per-receiver constant is the scaling bottleneck.
        """
        qp = rx_engine.sub_qps[0]
        n = len(arrivals)
        # No-RNR gate: the NIC consumes one posted WR per arrival, and the
        # fold's own reposts all land after its last arrival — so the
        # currently posted depth alone must cover the fold.
        if n > len(qp.recv_queue):
            return None
        rx = sess.rx.get(rx_engine.rank)
        if rx is None:
            rx = sess.rx[rx_engine.rank] = _RxSession()
        # Strict non-interleave: FIFO busy chains guarantee later folds
        # arrive strictly after earlier ones; a tie means contention the
        # fold ordering cannot resolve.
        if arrivals[0] <= rx.last_arrival:
            return None
        cost = rx_engine.cost
        c1 = cost.cqe_poll + cost.cqe_process
        t = rx.cursor
        dma = rx_engine.dma
        dma_busy = dma.busy_until
        if uc:
            c2 = cost.recv_repost
            for a in arrivals:
                anchor = a if a > t else t
                t = (anchor + (c1 + 0.0))
                t = t + c2
            fin = t
        else:
            dma_bw = dma.bandwidth
            dma_lat = dma.latency
            c2 = cost.copy_issue + cost.recv_repost
            for a, ln in zip(arrivals, lens):
                anchor = a if a > t else t
                t = (anchor + (c1 + 0.0))
                t = t + c2
                start = t if t > dma_busy else dma_busy
                dma_busy = start + ln / dma_bw
            fin = dma_busy + dma_lat
        # Straggler veto over the whole folded window (every CQE-poll
        # stall sample in [t_hook, fin] must be zero).
        if not rx_engine.fabric.straggler_inert(rx_engine.nic.host,
                                                t_hook, fin):
            return None
        return (rx_engine, op_r, qp, rx, fin, t, dma_busy, arrivals[-1])

    def _deadlines_clear(self, participants: List[int], cid: int,
                         t_hook: float, fin_max: float) -> bool:
        comm = self.comm
        cfg = comm.config
        for r in participants:
            eng = comm.engines[r]
            op_r = eng.ops[cid]
            if op_r.data_done.triggered:
                continue
            if op_r.cutoff_deadline < _INF:
                deadline = op_r.cutoff_deadline
                if deadline <= t_hook:
                    return False
            else:
                # Not yet armed: it will arm at >= t_hook with at least
                # this expected + slack allowance (the controller's own
                # formula), so this is a conservative lower bound.
                n_workers = max(cfg.recv_workers or cfg.n_subgroups, 1)
                sw_rate = (
                    eng.cost.recv_rate(cfg.chunk_size,
                                       uc=cfg.transport == "uc") * n_workers
                    if eng.cost.per_recv_chunk > 0
                    else _INF
                )
                recv_rate = min(eng.fabric.link_bandwidth, sw_rate)
                expected = op_r.plan.buffer_len / recv_rate
                slack = (eng.cutoff.slack() if cfg.adaptive_cutoff
                         else cfg.cutoff_alpha)
                deadline = t_hook + expected + slack
            if fin_max >= deadline:
                return False
        return True

    # ---------------------------------------------------------------- commit

    def _commit(self, engine, op, sess, chans, switch_counts, rx_folds,
                lens, n_chunks, n_batches, send_done, fin_max, uc):
        sim = self.sim
        trc = engine.trace
        t_hook = sim.now
        if trc is not None:
            trc.instant("engine.ff_enter", t_hook,
                        {"chunks": n_chunks, "mode": self.mode})
        # --- channel + switch counters, busy watermarks -------------------
        for ch, busy, packets, ch_bytes, payload, trains, train_pkts in chans:
            ch.busy_until = busy
            ch.bytes_sent += ch_bytes
            ch.payload_bytes_sent += payload
            ch.packets_sent += packets
            ch.trains_sent += trains
            ch.train_packets += train_pkts
            if ch.fault is not None:
                # Data packets are always fault-affected kinds; keep the
                # droppable index in lockstep (the spec is inert, so no
                # RNG would have been consumed either way).
                ch._droppable_seq += packets
        for sw, count in switch_counts.items():
            sw.packets_forwarded += count
        # --- sender-side NIC/CQ state -------------------------------------
        engine.send_cq.total_pushed += n_batches
        # --- per-receiver state -------------------------------------------
        lo_off, ln0 = op.plan.bounds(op.send_lo)
        hi_off = op.plan.bounds(op.send_hi - 1)
        src = op.mr.buf[lo_off:hi_off[0] + hi_off[1]]
        payload_total = int(src.nbytes)
        lens_total = sum(lens)
        psn_lo = op.send_lo
        single = n_chunks == 1
        finish = self._finish_fold
        # Finisher scheduling bypasses ``Simulator.post_at``: the Allgather
        # chain posts one finisher per receiver per phase (O(P^2) over the
        # collective), and every ``fin`` is provably >= now, so the method
        # call + past-check overhead is pure constant-factor loss at scale.
        queue = sim._queue
        seq = sim._seq
        for rx_engine, op_r, qp, rx, fin, cursor, dma_busy, last_a in rx_folds:
            nic = rx_engine.nic
            nic.packets_received += n_chunks
            nic.bytes_received += payload_total
            qp.recv_cq.total_pushed += n_chunks
            # The NIC consumed one posted WR per arrival; the worker (UD:
            # the DMA-drain callback) re-posts each at its done instant.
            rq = qp.recv_queue
            if single:
                popped = rq.popleft()
                if uc:
                    # UC recv WRs are zero-length dummies; the consumed WR
                    # is field-for-field the repost the worker would build.
                    wrs = [popped]
                    staging = None
                else:
                    wrs = [popped]
                    staging = rx_engine.stagings[0]
                    dma = rx_engine.dma
                    dma.busy_until = dma_busy
                    dma.bytes_copied += lens_total
                    dma.ops += 1
                op_r.bitmap.set(psn_lo)
                op_r.placed.set(psn_lo)
            else:
                popped = [rq.popleft() for _ in range(n_chunks)]
                if uc:
                    wrs = popped
                    staging = None
                else:
                    wrs = popped
                    staging = rx_engine.stagings[0]
                    dma = rx_engine.dma
                    dma.busy_until = dma_busy
                    dma.bytes_copied += lens_total
                    dma.ops += n_chunks
                op_r.bitmap.set_range(psn_lo, n_chunks)
                op_r.placed.set_range(psn_lo, n_chunks)
            # Payload: the real path stages through slot memory (UD) or
            # places per packet (UC); byte-for-byte this is one slice copy.
            op_r.mr.buf[lo_off:lo_off + payload_total] = src
            op_r.stats["chunks_received"] += n_chunks
            op_r.ff_hold += 1
            rx.cursor = cursor
            rx.last_arrival = last_a
            if cursor > rx_engine.ff_resume_floor:
                rx_engine.ff_resume_floor = cursor
            seq += 1
            heappush(queue, (fin, seq, _Callback(finish,
                                                 (op_r, qp, wrs, staging))))
        sim._seq = seq
        # --- watchdog liveness over the folded window ---------------------
        if sim._wd_armed and sim._wd_interval > 0.0:
            step = sim._wd_interval / 2.0
            tick = t_hook + step
            while tick < fin_max:
                sim.post_at(tick, sim.note_progress)
                tick += step
        # --- telemetry -----------------------------------------------------
        self.ff_phases += 1
        self.ff_skipped_events += n_chunks * (len(chans) + 3 * len(rx_folds))
        self.ff_skipped_events += 2 * n_batches
        if trc is not None:
            trc.instant("engine.ff_exit", t_hook,
                        {"until": fin_max, "send_done": send_done})

    def _finish_fold(self, op_r: "OpState", qp, wrs: List[RecvWR],
                     staging) -> None:
        """The one committed event per receiver per fold: at the last
        chunk's done instant, restore the receive queue (the fold's
        reposts, in done order) and release the completion hold."""
        append = qp.recv_queue.append
        for wr in wrs:
            append(wr)
        if staging is not None:
            staging.reposts += len(wrs)
        op_r.ff_hold -= 1
        op_r.maybe_complete()


def _count_trains(flags: List[bool], batch_sizes: List[int]) -> Tuple[int, int]:
    """(trains, train_packets) a channel would have recorded for the
    batches whose train flag survived the coalescing chain so far."""
    trains = 0
    train_pkts = 0
    for f, sz in zip(flags, batch_sizes):
        if f:
            trains += 1
            train_pkts += sz
    return trains, train_pkts


def _drain_cq(pending: List[float], lo: int, t: float) -> Tuple[float, int, int]:
    """Replay one ``send_cq.wait() + poll()`` round of ``run_send``.

    ``pending[lo:]`` holds undrained signaled-CQE push instants in
    increasing order.  If any are due at *t* the wait returns immediately
    and the poll drains all of them; otherwise the worker parks until the
    next push and drains exactly it.
    """
    if lo < len(pending) and pending[lo] <= t:
        k = 0
        while lo < len(pending) and pending[lo] <= t:
            lo += 1
            k += 1
        return t, k, lo
    t = pending[lo]
    return t, 1, lo + 1
