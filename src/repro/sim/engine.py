"""The discrete-event simulation core.

A :class:`Simulator` owns a virtual clock and a priority queue of pending
events.  Time only advances when :meth:`Simulator.run` (or
:meth:`Simulator.step`) pops the next event; between events the model code
runs instantaneously in virtual time.

Determinism
-----------
Two events scheduled for the same instant fire in the order they were
*scheduled* (FIFO), enforced with a monotonically increasing sequence
number in the heap entries.  Model code must route all randomness through
:class:`repro.sim.random.RandomStreams`; given the same seed, a simulation
is bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import Event, Timeout

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for structural simulation errors (negative delays, running a
    finished simulator, an unhandled failure propagating out of a process)."""


class Simulator:
    """Event loop with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.

    Examples
    --------
    >>> sim = Simulator()
    >>> log = []
    >>> def actor(sim, name, period):
    ...     for _ in range(2):
    ...         yield Timeout(sim, period)
    ...         log.append((sim.now, name))
    >>> _ = sim.spawn(actor(sim, "a", 1.0))
    >>> _ = sim.spawn(actor(sim, "b", 1.5))
    >>> sim.run()
    >>> log
    [(1.0, 'a'), (1.5, 'b'), (2.0, 'a'), (3.0, 'b')]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now: float = float(start_time)
        self._seq = itertools.count()
        # Heap of (time, seq, event).  `seq` breaks ties deterministically.
        self._queue: List[Tuple[float, int, Event]] = []
        self._running = False
        self._processes: "List[Any]" = []  # live Process objects (for debugging)
        self.events_processed: int = 0

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -------------------------------------------------------------- scheduling

    def schedule(self, event: Event, delay: float = 0.0) -> Event:
        """Arm *event* to trigger ``delay`` seconds from now.

        The event's callbacks run when the clock reaches that instant.
        Returns the event for chaining.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), event))
        return event

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Invoke ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule at {when} < now {self._now}")
        ev = Event(self)
        ev.callbacks.append(lambda _ev: fn(*args))
        heapq.heappush(self._queue, (when, next(self._seq), ev))
        ev._value = None
        ev._ok = True
        ev._triggered = True
        return ev

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Invoke ``fn(*args)`` after ``delay`` seconds of virtual time."""
        return self.call_at(self._now + delay, fn, *args)

    def timeout(self, delay: float) -> Timeout:
        """Create a :class:`Timeout` waitable that fires ``delay`` from now."""
        return Timeout(self, delay)

    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event` bound to this simulator."""
        return Event(self)

    # -------------------------------------------------------------- processes

    def spawn(self, generator: Generator, name: Optional[str] = None):
        """Start a process from a generator; returns the :class:`Process`.

        The process begins execution at the current instant (before time
        advances), mirroring simpy semantics.
        """
        from repro.sim.process import Process  # local import to avoid a cycle

        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    # ------------------------------------------------------------------- run

    def step(self) -> float:
        """Process the single next event; returns its timestamp."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        event._fire()
        return when

    def peek(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        return self._queue[0][0] if self._queue else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the final virtual time.  ``until`` is exclusive for events
        scheduled strictly after it; the clock is advanced to ``until`` when
        the horizon is hit with events still pending.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        processed = 0
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self._now = until
                    break
                if max_events is not None and processed >= max_events:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if until is not None and not self._queue and self._now < until:
            self._now = until
        return self._now

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Spawn *generator*, run the simulation, and return its result.

        Convenience wrapper for "run this protocol to completion" call sites.
        Raises if the process fails or the simulation drains before the
        process finishes.
        """
        proc = self.spawn(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"simulation drained at t={self._now} before process "
                f"{proc.name!r} completed"
            )
        if not proc.ok:
            raise proc.value  # re-raise the process failure
        return proc.value

    def drain(self, events: Iterable[Event], until: Optional[float] = None) -> None:
        """Run until every event in *events* has triggered."""
        pending = [ev for ev in events if not ev.triggered]
        while pending:
            if not self._queue:
                raise SimulationError(
                    f"simulation drained at t={self._now} with {len(pending)} "
                    "events still pending"
                )
            if until is not None and self._queue[0][0] > until:
                raise SimulationError(f"horizon {until} reached with events pending")
            self.step()
            pending = [ev for ev in pending if not ev.triggered]
