"""The discrete-event simulation core.

A :class:`Simulator` owns a virtual clock and a priority queue of pending
events.  Time only advances when :meth:`Simulator.run` (or
:meth:`Simulator.step`) pops the next event; between events the model code
runs instantaneously in virtual time.

Determinism
-----------
Two events scheduled for the same instant fire in the order they were
*scheduled* (FIFO), enforced with a monotonically increasing sequence
number in the heap entries.  Model code must route all randomness through
:class:`repro.sim.random.RandomStreams`; given the same seed, a simulation
is bit-for-bit reproducible.

Hot path
--------
The run loop is the innermost loop of every experiment: one iteration per
simulated packet/CQE/timeout.  It therefore avoids attribute lookups
(local bindings for the heap and clock), uses a plain integer sequence
counter, and offers :meth:`Simulator.post_at` — a bare callback record
(:class:`_Callback`, two slots, no Event/lambda allocation) for internal
model plumbing that nobody ever waits on (packet delivery, DMA
completion, CQE pushes).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import Event, Timeout

__all__ = ["Simulator", "SimulationError", "WatchdogError"]


class SimulationError(RuntimeError):
    """Raised for structural simulation errors (negative delays, running a
    finished simulator, an unhandled failure propagating out of a process)."""


class WatchdogError(SimulationError):
    """Raised by the hang watchdog: the simulation kept firing events for a
    full watchdog interval without any registered real-work progress.

    Carries the joined per-rank diagnostic ``report`` so a hung run turns
    into a readable state dump instead of a timed-out CI job.
    """

    def __init__(self, message: str, report: str = "") -> None:
        super().__init__(message)
        self.report = report

    def __str__(self) -> str:
        base = super().__str__()
        return f"{base}\n{self.report}" if self.report else base


class _Callback:
    """A bare scheduled call: the cheapest thing the queue can hold.

    Quacks like an Event only as far as the run loop cares (``_fire``);
    it cannot be waited on — use :meth:`Simulator.call_at` for that.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        self.fn = fn
        self.args = args

    def _fire(self) -> None:
        self.fn(*self.args)


class _WakeAt(Event):
    """Event backing :meth:`Simulator.wake_at`.

    Pushed on the queue *untriggered* and flips to success exactly when
    its absolute instant arrives.  Unlike ``Timeout(when - now)`` the
    target instant is preserved bit-for-bit — no ``now + (when - now)``
    float round-trip — which is what lets a batched replay resume a
    process at the exact virtual time the per-item path would have.
    """

    __slots__ = ()

    def _fire(self) -> None:
        self._triggered = True
        self._ok = True
        Event._fire(self)


class _ScheduledCall(Event):
    """Event backing :meth:`Simulator.call_at`.

    Unlike a plain Event it is pushed on the queue *untriggered* and
    flips ``triggered``/``ok`` only when its instant arrives — so waiters
    (``yield``, :meth:`Simulator.drain`, ``AnyOf``) observe the correct
    state while the call is still pending.
    """

    __slots__ = ("fn", "args")

    def __init__(self, sim: "Simulator", fn: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        Event.__init__(self, sim)
        self.fn = fn
        self.args = args

    def _fire(self) -> None:
        self._triggered = True
        self._ok = True
        self.fn(*self.args)
        Event._fire(self)


class Simulator:
    """Event loop with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.

    Examples
    --------
    >>> sim = Simulator()
    >>> log = []
    >>> def actor(sim, name, period):
    ...     for _ in range(2):
    ...         yield Timeout(sim, period)
    ...         log.append((sim.now, name))
    >>> _ = sim.spawn(actor(sim, "a", 1.0))
    >>> _ = sim.spawn(actor(sim, "b", 1.5))
    >>> sim.run()
    >>> log
    [(1.0, 'a'), (1.5, 'b'), (2.0, 'a'), (3.0, 'b')]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now: float = float(start_time)
        self._seq: int = 0
        # Heap of (time, seq, event).  `seq` breaks ties deterministically.
        self._queue: List[Tuple[float, int, Any]] = []
        self._running = False
        self._processes: "List[Any]" = []  # live Process objects (for debugging)
        self.events_processed: int = 0
        # Observability hook: called as trace_hook(when) for every event the
        # loop fires.  None (the default) keeps the hot loops hook-free —
        # run() selects a separate tight loop so the common case pays zero
        # per-event cost.  Installed by Fabric.install_tracer().
        self.trace_hook: Optional[Callable[[float], None]] = None
        # Hang watchdog (opt-in via install_watchdog).  `progress` is a bare
        # counter model code bumps via note_progress() whenever real work
        # advances (a data chunk lands, a recovery fetch completes); the
        # armed watchdog re-checks it every interval of virtual time from a
        # regular queue entry, so the run loops stay untouched.
        self.progress: int = 0
        self._wd_interval: float = 0.0
        self._wd_last_progress: int = -1
        self._wd_armed = False
        self._wd_diagnostics: List[Callable[[], str]] = []
        self._wd_trace: Optional[Any] = None

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -------------------------------------------------------------- scheduling

    def schedule(self, event: Event, delay: float = 0.0) -> Event:
        """Arm *event* to trigger ``delay`` seconds from now.

        The event's callbacks run when the clock reaches that instant.
        Returns the event for chaining.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self._now + delay, seq, event))
        return event

    def post_at(self, when: float, fn: Callable[..., Any], *args: Any) -> None:
        """Invoke ``fn(*args)`` at absolute time ``when`` — fire-and-forget.

        The cheap sibling of :meth:`call_at`: schedules a bare callback
        record instead of an Event, so there is nothing to wait on.  Model
        internals (packet delivery, CQE pushes, DMA completions) use this.
        """
        if when < self._now:
            raise SimulationError(f"cannot schedule at {when} < now {self._now}")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (when, seq, _Callback(fn, args)))

    def post_later(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Invoke ``fn(*args)`` after ``delay`` seconds — fire-and-forget."""
        when = self._now + delay
        if when < self._now:
            raise SimulationError(f"cannot schedule at {when} < now {self._now}")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (when, seq, _Callback(fn, args)))

    def wake_at(self, when: float) -> Event:
        """A waitable that succeeds at the **absolute** virtual time ``when``.

        Used by batch fast paths that pre-compute a replay schedule: the
        consumer sleeps until the exact instant the per-item slow path
        would have finished, with no float drift from delay arithmetic.
        """
        if when < self._now:
            raise SimulationError(f"cannot schedule at {when} < now {self._now}")
        ev = _WakeAt(self)
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (when, seq, ev))
        return ev

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Invoke ``fn(*args)`` at absolute virtual time ``when``.

        Returns a waitable event that triggers when the call actually
        runs (not at schedule time).
        """
        if when < self._now:
            raise SimulationError(f"cannot schedule at {when} < now {self._now}")
        ev = _ScheduledCall(self, fn, args)
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (when, seq, ev))
        return ev

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Invoke ``fn(*args)`` after ``delay`` seconds of virtual time."""
        return self.call_at(self._now + delay, fn, *args)

    def timeout(self, delay: float) -> Timeout:
        """Create a :class:`Timeout` waitable that fires ``delay`` from now."""
        return Timeout(self, delay)

    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event` bound to this simulator."""
        return Event(self)

    # -------------------------------------------------------------- watchdog

    def note_progress(self) -> None:
        """Record that real work advanced (watchdog liveness signal)."""
        self.progress += 1

    def add_watchdog_diagnostic(self, provider: Callable[[], str]) -> None:
        """Register a callable whose string output joins the hang report."""
        self._wd_diagnostics.append(provider)

    def install_watchdog(self, interval: float, trace: Optional[Any] = None) -> None:
        """Arm the hang watchdog: every ``interval`` virtual seconds, verify
        that :meth:`note_progress` was called since the previous check.

        If the queue keeps firing events for a whole interval with no
        progress, the watchdog gathers every registered diagnostic provider's
        dump and raises :class:`WatchdogError` out of the run loop.  The
        watchdog stands down automatically when the queue would otherwise be
        empty, so a clean simulation still drains to completion.  Strictly
        opt-in: an un-armed simulator schedules nothing and the hot loops
        are unchanged.
        """
        if interval <= 0:
            raise SimulationError(f"watchdog interval must be > 0, got {interval}")
        self._wd_interval = interval
        self._wd_trace = trace
        self._wd_last_progress = self.progress - 1  # first check always passes
        if not self._wd_armed:
            self._wd_armed = True
            self.post_later(interval, self._watchdog_check)

    def _watchdog_check(self) -> None:
        if not self._queue:
            # Nothing else pending: the run is draining cleanly; stand down
            # rather than keep the queue alive forever.
            self._wd_armed = False
            return
        if self.progress == self._wd_last_progress:
            report = self.watchdog_report()
            if self._wd_trace is not None:
                self._wd_trace.instant("engine.watchdog", self._now,
                                       {"interval": self._wd_interval})
            self._wd_armed = False
            raise WatchdogError(
                f"no progress for {self._wd_interval} virtual seconds "
                f"(t={self._now}, {len(self._queue)} events queued)",
                report,
            )
        self._wd_last_progress = self.progress
        self.post_later(self._wd_interval, self._watchdog_check)

    def watchdog_report(self) -> str:
        """Join every registered diagnostic provider into one dump."""
        parts = []
        for provider in self._wd_diagnostics:
            try:
                parts.append(provider())
            except Exception as exc:  # diagnostics must never mask the hang
                parts.append(f"<diagnostic provider failed: {exc!r}>")
        return "\n".join(p for p in parts if p)

    # -------------------------------------------------------------- processes

    def spawn(self, generator: Generator, name: Optional[str] = None):
        """Start a process from a generator; returns the :class:`Process`.

        The process begins execution at the current instant (before time
        advances), mirroring simpy semantics.
        """
        from repro.sim.process import Process  # local import to avoid a cycle

        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    # ------------------------------------------------------------------- run

    def step(self) -> float:
        """Process the single next event; returns its timestamp."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        if self.trace_hook is not None:
            self.trace_hook(when)
        event._fire()
        return when

    def peek(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        return self._queue[0][0] if self._queue else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the final virtual time.  ``until`` is exclusive for events
        scheduled strictly after it; the clock is advanced to ``until`` when
        the horizon is hit with events still pending.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        processed = 0
        queue = self._queue
        heappop = heapq.heappop
        hook = self.trace_hook
        try:
            if until is None and max_events is None:
                if hook is None:
                    # The common full-drain case, zero per-iteration checks.
                    while queue:
                        entry = heappop(queue)
                        self._now = entry[0]
                        processed += 1
                        entry[2]._fire()
                else:
                    while queue:
                        entry = heappop(queue)
                        self._now = entry[0]
                        processed += 1
                        hook(entry[0])
                        entry[2]._fire()
            else:
                while queue:
                    if until is not None and queue[0][0] > until:
                        self._now = until
                        break
                    if max_events is not None and processed >= max_events:
                        break
                    entry = heappop(queue)
                    self._now = entry[0]
                    processed += 1
                    if hook is not None:
                        hook(entry[0])
                    entry[2]._fire()
        finally:
            self._running = False
            self.events_processed += processed
        if until is not None and not self._queue and self._now < until:
            self._now = until
        return self._now

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Spawn *generator*, run the simulation, and return its result.

        Convenience wrapper for "run this protocol to completion" call sites.
        Raises if the process fails or the simulation drains before the
        process finishes.
        """
        proc = self.spawn(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"simulation drained at t={self._now} before process "
                f"{proc.name!r} completed"
            )
        if not proc.ok:
            raise proc.value  # re-raise the process failure
        return proc.value

    def drain(self, events: Iterable[Event], until: Optional[float] = None) -> None:
        """Run until every event in *events* has triggered.

        Completion is tracked with a per-event callback and a counter —
        O(events + steps) instead of re-filtering the whole list after
        every step.
        """
        remaining = 0
        fired = [0]

        def _one_done(ev: Event) -> None:
            fired[0] += 1
            if ev._ok is False and not ev._defused:
                # Nobody else handled the failure; surface it like the
                # bare `_fire` of an unwaited event would.
                raise ev._value

        for ev in events:
            if not ev.triggered:
                remaining += 1
                ev.subscribe(_one_done)
        queue = self._queue
        heappop = heapq.heappop
        processed = 0
        hook = self.trace_hook
        try:
            if until is None and hook is None:
                # Common case (collective completion drains): no horizon
                # and no tracer, zero per-iteration checks.
                while fired[0] < remaining:
                    if not queue:
                        raise SimulationError(
                            f"simulation drained at t={self._now} with "
                            f"{remaining - fired[0]} events still pending"
                        )
                    entry = heappop(queue)
                    self._now = entry[0]
                    processed += 1
                    entry[2]._fire()
            else:
                while fired[0] < remaining:
                    if not queue:
                        raise SimulationError(
                            f"simulation drained at t={self._now} with "
                            f"{remaining - fired[0]} events still pending"
                        )
                    if until is not None and queue[0][0] > until:
                        raise SimulationError(f"horizon {until} reached with events pending")
                    entry = heappop(queue)
                    self._now = entry[0]
                    processed += 1
                    if hook is not None:
                        hook(entry[0])
                    entry[2]._fire()
        finally:
            self.events_processed += processed
