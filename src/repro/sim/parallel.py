"""Conservative parallel-DES engine for the vectorized fast-forward.

The hybrid fast-forward (DESIGN §6d) reduces a fault-inert multicast
phase to float chains: per-edge busy recurrences plus per-receiver
CQE/DMA chains.  This module shards the *host-level* part of that
computation — the leaf→host edges and every receiver's worker/DMA chain —
across worker processes, along the switch-boundary partition computed by
:func:`repro.net.plan.partition_fabric`.

Conservative synchronization (Chandy–Misra–Bryant)
--------------------------------------------------
Each shard owns the busy/cursor state of its hosts and their host links.
All cross-shard influence travels over *cut edges* (spine→leaf), whose
propagation latency is the partition's lookahead bound.  The coordinator
advances the shared part of the fabric (sender egress, up-links, the
root fan-out over the cut edges) and ships each shard the resulting
per-leaf injection stream — the boundary "train" for that phase.  Because
the boundary stream is computed *before* the shards advance, every shard
can safely run its whole phase without null messages: the lookahead
window always covers the phase.  Merging replies in fixed shard order
keeps the global result deterministic, and since the per-host kernels
are elementwise (`numpy` ``maximum``/adds — the same IEEE-754 operations
the sequential fold evaluates per receiver), the merged virtual times
are **bit-identical** for every shard count, pipes or not.

Protocol (one pipe round-trip per phase)
----------------------------------------
A ``phase`` request implicitly *commits* the shard's previous tentative
phase and computes the new one into pending buffers; the reply carries
the shard's gate verdict and local ``fin`` maximum.  If any shard (or a
coordinator-side gate) vetoes the phase, ``rollback`` drops every
shard's pending buffers — no state was mutated, exactly like the
sequential fold's gates-before-commit ordering.  ``state`` commits and
returns the final arrays for the coordinator's flush.

The process backend is worthwhile when the per-phase host-level work
dwarfs the ~0.1 ms pipe round-trip — packet-heavy shards or 10k+ hosts.
At CI scales the inline backend (same kernels, same slicing, no IPC) is
the default; both produce bitwise-identical state by construction.
"""

from __future__ import annotations

import atexit
import multiprocessing
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["ParallelEngine", "ShardCore"]

_NEG_INF = float("-inf")


class ShardCore:
    """Host-level chain state for one contiguous slice of receivers.

    All arrays are indexed by *local* receiver position.  ``leaf_of``
    maps each local receiver to the local index of its hosting switch in
    the boundary stream the coordinator ships each phase.
    """

    def __init__(self, state: Dict[str, np.ndarray]) -> None:
        self.uc = bool(state["uc"])
        self.c1 = float(state["c1"])
        self.c2 = float(state["c2"])
        self.min_deadline = float(state["min_deadline"])
        self.leaf_of = np.asarray(state["leaf_of"], dtype=np.intp)
        self.bw = np.asarray(state["bw"], dtype=np.float64)
        self.lat = np.asarray(state["lat"], dtype=np.float64)
        self.hd_busy = np.array(state["hd_busy"], dtype=np.float64)
        self.cursor = np.array(state["cursor"], dtype=np.float64)
        self.last_arr = np.array(state["last_arr"], dtype=np.float64)
        self.last_fin = np.full(len(self.hd_busy), _NEG_INF)
        if not self.uc:
            self.dma_busy = np.array(state["dma_busy"], dtype=np.float64)
            self.dma_bw = np.asarray(state["dma_bw"], dtype=np.float64)
            self.dma_lat = np.asarray(state["dma_lat"], dtype=np.float64)
        self._pending: Optional[Tuple[np.ndarray, ...]] = None

    # ------------------------------------------------------------- protocol

    def commit(self) -> None:
        p = self._pending
        if p is not None:
            if self.uc:
                (self.hd_busy, self.cursor, self.last_arr,
                 self.last_fin) = p
            else:
                (self.hd_busy, self.cursor, self.last_arr,
                 self.last_fin, self.dma_busy) = p
            self._pending = None

    def rollback(self) -> None:
        self._pending = None

    def phase(self, w: float, ln: float, leaf_inj: np.ndarray,
              sender_local: int, want_fins: bool):
        """Compute one phase into pending buffers (committing the previous
        pending phase first).  Returns ``(ok, fin_max, fins | None)``.

        Every expression below replicates the sequential fold's scalar
        arithmetic elementwise — same operation shapes, same order — so
        the committed instants are bit-identical to the per-receiver loop
        (DESIGN §6d exactness contract).
        """
        self.commit()
        s = sender_local
        if s >= 0:
            # The sender receives nothing: compute the full vectors, then
            # restore its lanes from the old state below.
            save = (self.hd_busy[s], self.cursor[s], self.last_arr[s],
                    self.last_fin[s],
                    None if self.uc else self.dma_busy[s])
        inj = leaf_inj[self.leaf_of]
        start = np.maximum(inj, self.hd_busy)
        hd_busy = start + w / self.bw
        a = hd_busy + self.lat
        # Strict non-interleave gate (sender lane exempt).
        ok_arr = a > self.last_arr
        if s >= 0:
            ok_arr[s] = True
        if not ok_arr.all():
            return False, _NEG_INF, None
        anchor = np.maximum(a, self.cursor)
        t = anchor + self.c1
        t = t + self.c2
        if self.uc:
            fins = t  # UC fin is the worker cursor itself
        else:
            d_start = np.maximum(t, self.dma_busy)
            dma_busy = d_start + ln / self.dma_bw
            fins = dma_busy + self.dma_lat
        if s >= 0:
            hd_busy[s] = save[0]
            t[s] = save[1]
            a[s] = save[2]
            if not self.uc:
                dma_busy[s] = save[4]
            last_fin = fins.copy()
            last_fin[s] = save[3]
            out_fins = last_fin.copy()
            out_fins[s] = _NEG_INF
        else:
            last_fin = fins
            out_fins = fins
        fin_max = float(out_fins.max()) if out_fins.size else _NEG_INF
        if fin_max >= self.min_deadline:
            return False, fin_max, None
        if self.uc:
            self._pending = (hd_busy, t, a, last_fin)
        else:
            self._pending = (hd_busy, t, a, last_fin, dma_busy)
        return True, fin_max, (out_fins if want_fins else None)

    def final_state(self) -> Dict[str, np.ndarray]:
        self.commit()
        out = {"hd_busy": self.hd_busy, "cursor": self.cursor,
               "last_arr": self.last_arr, "last_fin": self.last_fin}
        if not self.uc:
            out["dma_busy"] = self.dma_busy
        return out


def _worker_main(conn) -> None:  # pragma: no cover - exercised via pipes
    """Child process loop: serve one ShardCore over a duplex pipe."""
    core: Optional[ShardCore] = None
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        op = msg[0]
        if op == "phase":
            ok, fin_max, fins = core.phase(*msg[1:])
            conn.send((ok, fin_max, fins))
        elif op == "rollback":
            core.rollback()
            conn.send(True)
        elif op == "state":
            conn.send(core.final_state())
        elif op == "session":
            core = ShardCore(msg[1])
            conn.send(True)
        elif op == "end":
            core = None
            conn.send(True)
        elif op == "stop":
            conn.close()
            return


class ParallelEngine:
    """Coordinator for N host-level shards (inline or worker processes).

    ``slices`` gives each shard's contiguous [lo, hi) range over the
    session's permuted receiver index space; the coordinator keeps the
    permutation and slices every per-host array accordingly.
    """

    def __init__(self, slices: List[Tuple[int, int]],
                 backend: str = "inline") -> None:
        if backend not in ("inline", "process"):
            raise ValueError(f"unknown parallel backend {backend!r}")
        self.slices = slices
        self.backend = backend
        self.n_shards = len(slices)
        # --- telemetry (summed into CollectiveResult.engine) ---
        self.sync_rounds = 0  #: lookahead windows synchronized (phases)
        self.boundary_msgs = 0  #: boundary-stream messages over pipes
        self._cores: List[ShardCore] = []
        self._procs: List = []
        self._conns: List = []
        self._n_rx = 0
        if backend == "process":
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # non-POSIX: no fork, stay inline
                self.backend = "inline"
            else:
                for _ in slices:
                    parent, child = ctx.Pipe()
                    proc = ctx.Process(target=_worker_main, args=(child,),
                                       daemon=True)
                    proc.start()
                    child.close()
                    self._conns.append(parent)
                    self._procs.append(proc)
                atexit.register(self.close)

    # ------------------------------------------------------------ lifecycle

    def start_session(self, state: Dict[str, np.ndarray],
                      leaf_shard_slices: List[Tuple[int, int]]) -> None:
        """Ship each shard its slice of the per-receiver state arrays.

        ``leaf_shard_slices`` gives, per shard, the [lo, hi) range of the
        hosting-switch (boundary-stream) index space owned by that shard;
        ``state['leaf_of']`` is pre-localized by the caller.
        """
        self._leaf_slices = leaf_shard_slices
        self._n_rx = len(state["hd_busy"])
        per_rx = ("leaf_of", "bw", "lat", "hd_busy", "cursor", "last_arr",
                  "dma_bw", "dma_lat", "dma_busy")
        shard_states = []
        for (lo, hi), (llo, _lhi) in zip(self.slices, leaf_shard_slices):
            sub = {k: (v[lo:hi] if k in per_rx else v)
                   for k, v in state.items()}
            # Localize the hosting-switch indices to the shard's slice of
            # the boundary stream.
            sub["leaf_of"] = state["leaf_of"][lo:hi] - llo
            shard_states.append(sub)
        if self.backend == "process":
            for conn, sub in zip(self._conns, shard_states):
                conn.send(("session", sub))
            for conn in self._conns:
                conn.recv()
            self.boundary_msgs += 2 * self.n_shards
            self._cores = []
        else:
            self._cores = [ShardCore(sub) for sub in shard_states]

    def phase(self, w: float, ln: float, leaf_inj: np.ndarray,
              sender_rx: int, want_fins: bool):
        """Run one phase across every shard; deterministic shard-order
        merge.  Returns ``(ok, fin_max, fins | None)``; on any veto the
        committed shards are rolled back before returning."""
        self.sync_rounds += 1
        results = []
        if self.backend == "process":
            for k, ((lo, hi), (llo, lhi)) in enumerate(
                    zip(self.slices, self._leaf_slices)):
                s_local = sender_rx - lo if lo <= sender_rx < hi else -1
                self._conns[k].send(("phase", w, ln, leaf_inj[llo:lhi],
                                     s_local, want_fins))
            self.boundary_msgs += 2 * self.n_shards
            for conn in self._conns:
                results.append(conn.recv())
        else:
            for k, ((lo, hi), (llo, lhi)) in enumerate(
                    zip(self.slices, self._leaf_slices)):
                s_local = sender_rx - lo if lo <= sender_rx < hi else -1
                results.append(self._cores[k].phase(
                    w, ln, leaf_inj[llo:lhi], s_local, want_fins))
        if not all(r[0] for r in results):
            self.rollback()
            return False, _NEG_INF, None
        fin_max = max(r[1] for r in results)
        fins = None
        if want_fins:
            fins = np.empty(self._n_rx)
            for (lo, hi), r in zip(self.slices, results):
                fins[lo:hi] = r[2]
        return True, fin_max, fins

    def rollback(self) -> None:
        if self.backend == "process":
            for conn in self._conns:
                conn.send(("rollback",))
            for conn in self._conns:
                conn.recv()
            self.boundary_msgs += 2 * self.n_shards
        else:
            for core in self._cores:
                core.rollback()

    def final_state(self) -> Dict[str, np.ndarray]:
        """Commit pending work and merge every shard's arrays."""
        if self.backend == "process":
            for conn in self._conns:
                conn.send(("state",))
            parts = [conn.recv() for conn in self._conns]
            self.boundary_msgs += 2 * self.n_shards
        else:
            parts = [core.final_state() for core in self._cores]
        merged: Dict[str, np.ndarray] = {}
        for key in parts[0]:
            merged[key] = np.empty(self._n_rx)
            for (lo, hi), p in zip(self.slices, parts):
                merged[key][lo:hi] = p[key]
        return merged

    def end_session(self) -> None:
        if self.backend == "process":
            for conn in self._conns:
                conn.send(("end",))
            for conn in self._conns:
                conn.recv()
        else:
            self._cores = []

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - cleanup path
                proc.terminate()
        self._conns = []
        self._procs = []
