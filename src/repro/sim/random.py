"""Deterministic, named random streams.

Every stochastic component of the simulation (per-link fault injection,
adaptive-routing reordering, workload generators, ...) pulls randomness from
its *own* named stream so that adding a new random consumer never perturbs
the draws seen by existing components.  Streams are derived from a single
root seed with :class:`numpy.random.SeedSequence` spawning keyed by the
stream name, so ``RandomStreams(seed=7).stream("link:0->1")`` yields the
same sequence in every run and on every platform.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of reproducible per-component :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Root seed.  Two ``RandomStreams`` with the same seed produce
        identical streams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            # Key the child seed on a stable hash of the name; zlib.crc32 is
            # deterministic across processes (unlike built-in hash()).
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RandomStreams":
        """A new independent family of streams (e.g., per benchmark repeat)."""
        return RandomStreams(seed=(self.seed * 0x9E3779B1 + salt) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={len(self._streams)})"
