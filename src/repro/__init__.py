"""repro — network-offloaded bandwidth-optimal Broadcast and Allgather.

A simulation-backed, full-system reproduction of *"Network-Offloaded
Bandwidth-Optimal Broadcast and Allgather for Distributed AI"* (SC 2024):

* a packet-level discrete-event RDMA fabric (:mod:`repro.net` on
  :mod:`repro.sim`) with fat-tree topologies, switch multicast, UD/UC/RC
  transports, fault injection and per-port telemetry;
* the paper's reliable constant-time Broadcast and bandwidth-optimal
  Allgather protocols (:mod:`repro.core`) — staging ring, PSN bitmap,
  broadcast-chain sequencer, multicast subgroups, ring fetch recovery;
* P2P baselines and a SHARP-like in-network-compute Reduce-Scatter
  (:mod:`repro.core.baselines`, :mod:`repro.net.inc`);
* a cycle-approximate SmartNIC/DPA offload model (:mod:`repro.dpa`);
* the paper's closed-form models (:mod:`repro.models`) and experiment
  workloads (:mod:`repro.workloads`).

Quickstart
----------
>>> import numpy as np
>>> from repro import Communicator, Fabric, Simulator, Topology
>>> fabric = Fabric(Simulator(), Topology.leaf_spine(8, 2, 2))
>>> comm = Communicator(fabric)
>>> data = [np.full(64 * 1024, r, dtype=np.uint8) for r in range(comm.size)]
>>> result = comm.allgather(data)
>>> assert result.verify_allgather(data)
"""

from repro.core.communicator import (
    BaselineHandle,
    CollectiveConfig,
    CollectiveHandle,
    CollectiveKind,
    CollectiveRequest,
    CollectiveRequestError,
    CollectiveResult,
    Communicator,
    ComposedHandle,
    FailurePolicy,
    OpHandle,
    PhaseBreakdown,
    PhaseStats,
    RankStats,
    ReduceScatterHandle,
)
from repro.core.costmodel import HostCostModel
from repro.core.reliability import (
    CollectiveAbortedError,
    CutoffEstimator,
    PeerDeadError,
    ReliabilityError,
)
from repro.net.fabric import Fabric
from repro.net.faults import CrashSpec, GilbertElliott, StragglerSpec, Window
from repro.net.link import FaultSpec
from repro.net.topology import Topology, TopologyError, TopologySpec
from repro.net.plan import MulticastPlan, plan_mcast
from repro.obs import TraceConfig, Tracer, TraceView
from repro.sim.engine import Simulator, WatchdogError
from repro.sim.random import RandomStreams

__version__ = "1.0.0"

__all__ = [
    "BaselineHandle",
    "CollectiveAbortedError",
    "CollectiveConfig",
    "CollectiveHandle",
    "CollectiveKind",
    "CollectiveRequest",
    "CollectiveRequestError",
    "CollectiveResult",
    "Communicator",
    "ComposedHandle",
    "CrashSpec",
    "CutoffEstimator",
    "Fabric",
    "FailurePolicy",
    "FaultSpec",
    "GilbertElliott",
    "HostCostModel",
    "OpHandle",
    "PeerDeadError",
    "PhaseBreakdown",
    "PhaseStats",
    "RandomStreams",
    "RankStats",
    "ReduceScatterHandle",
    "ReliabilityError",
    "Simulator",
    "StragglerSpec",
    "MulticastPlan",
    "Topology",
    "TopologyError",
    "TopologySpec",
    "plan_mcast",
    "TraceConfig",
    "Tracer",
    "TraceView",
    "WatchdogError",
    "Window",
    "__version__",
]
