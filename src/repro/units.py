"""Unit helpers and constants used throughout the library.

All simulator-internal quantities are plain SI floats: **bytes** for sizes,
**seconds** for time, **bytes/second** for bandwidth.  These helpers keep
call sites readable (``link_bandwidth=gbit_per_s(200)``) and conversions
honest (1 KiB = 1024 B, 1 Gbit/s = 1e9 bit/s — network vendors use decimal
bits, memory uses binary bytes; the paper mixes both and so must we).
"""

from __future__ import annotations

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "kib",
    "mib",
    "gib",
    "gbit_per_s",
    "gib_per_s",
    "to_gbit_per_s",
    "to_gib_per_s",
    "US",
    "NS",
    "MS",
    "pretty_bytes",
    "pretty_rate",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

US = 1e-6  #: one microsecond, in seconds
NS = 1e-9  #: one nanosecond, in seconds
MS = 1e-3  #: one millisecond, in seconds


def kib(n: float) -> int:
    """*n* KiB in bytes."""
    return int(n * KiB)


def mib(n: float) -> int:
    """*n* MiB in bytes."""
    return int(n * MiB)


def gib(n: float) -> int:
    """*n* GiB in bytes."""
    return int(n * GiB)


def gbit_per_s(n: float) -> float:
    """*n* Gbit/s as bytes/second (decimal bits, as link vendors quote)."""
    return n * 1e9 / 8.0


def gib_per_s(n: float) -> float:
    """*n* GiB/s as bytes/second."""
    return n * GiB


def to_gbit_per_s(bytes_per_s: float) -> float:
    """bytes/second → Gbit/s."""
    return bytes_per_s * 8.0 / 1e9


def to_gib_per_s(bytes_per_s: float) -> float:
    """bytes/second → GiB/s."""
    return bytes_per_s / GiB


def pretty_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.4g} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    raise AssertionError("unreachable")


def pretty_rate(bytes_per_s: float) -> str:
    """Human-readable bandwidth in Gbit/s."""
    return f"{to_gbit_per_s(bytes_per_s):.4g} Gbit/s"
