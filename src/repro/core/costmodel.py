"""Software cost model for the host-driven progress engine.

The protocol's throughput ceiling is set by how fast a worker thread can
post work requests and consume completions (paper §II, Fig 5: a single
server-grade core cannot sustain a 200 Gbit/s UD datapath).  Every worker
loop in :mod:`repro.core.progress` charges virtual time according to this
model, so worker-count scaling and CPU-vs-SmartNIC comparisons come out of
the same protocol code.

Defaults are calibrated to a ~2.6 GHz server core running a Verbs datapath
(per-op costs in the few-hundred-nanosecond range, consistent with the
RDMA design-guideline literature the paper cites and with the cycle counts
of Table I scaled by clock ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["HostCostModel"]


@dataclass(frozen=True)
class HostCostModel:
    """Per-operation time costs (seconds) of the software datapath."""

    #: polling one CQE out of the completion queue (load + branch)
    cqe_poll: float = 110e-9
    #: per-chunk receive processing: PSN decode, bitmap update, bookkeeping
    cqe_process: float = 170e-9
    #: re-posting one cached receive WR (doorbell amortized)
    recv_repost: float = 80e-9
    #: issuing the staging→user DMA descriptor
    copy_issue: float = 60e-9
    #: writing one send WQE
    send_wqe: float = 110e-9
    #: ringing the send doorbell (per batch, paper §V-A batching)
    doorbell: float = 250e-9
    #: fixed overhead of a control-plane message (tag match, handler)
    ctrl_message: float = 500e-9

    # ------------------------------------------------------------ aggregates

    @property
    def per_recv_chunk(self) -> float:
        """Total worker time consumed by one received chunk (UD datapath)."""
        return self.cqe_poll + self.cqe_process + self.copy_issue + self.recv_repost

    @property
    def per_recv_chunk_uc(self) -> float:
        """UC datapath: data already placed, no staging copy to issue."""
        return self.cqe_poll + self.cqe_process + self.recv_repost

    def send_batch(self, n_wrs: int) -> float:
        """Time to post a batch of *n_wrs* multicast sends."""
        if n_wrs < 0:
            raise ValueError("n_wrs must be non-negative")
        return self.doorbell + n_wrs * self.send_wqe

    def recv_rate(self, chunk_size: int, uc: bool = False) -> float:
        """Sustained single-worker receive bandwidth (bytes/s)."""
        per = self.per_recv_chunk_uc if uc else self.per_recv_chunk
        return chunk_size / per

    def scaled(self, factor: float) -> "HostCostModel":
        """A model uniformly slower/faster by *factor* (CPU generation knob)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            cqe_poll=self.cqe_poll * factor,
            cqe_process=self.cqe_process * factor,
            recv_repost=self.recv_repost * factor,
            copy_issue=self.copy_issue * factor,
            send_wqe=self.send_wqe * factor,
            doorbell=self.doorbell * factor,
            ctrl_message=self.ctrl_message * factor,
        )

    @classmethod
    def free(cls) -> "HostCostModel":
        """Zero-cost model: isolates pure network behaviour in tests."""
        return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
