"""Adaptive reliability machinery for the slow path (paper §III-C).

The paper's cutoff timer is ``N/B + α`` with a *fixed* slack α.  A fixed
slack is wrong in both directions: on a healthy fabric it waits far longer
than delivery ever takes (adding the full α to every lossy collective's
tail), and on a degraded fabric it can fire spuriously and thrash the
recovery ring.  This module provides:

* :class:`CutoffEstimator` — a TCP-RTO-style adaptive slack: an EWMA of
  the observed slack (actual data-phase duration minus the ``N/B`` ideal)
  plus a weighted mean-deviation term (RFC 6298's SRTT/RTTVAR), with
  exponential backoff applied whenever an op needed recovery and decayed
  again by clean ops.  Karn's rule applies: ops that entered recovery do
  not contribute samples (their elapsed time measures the slow path, not
  delivery).
* :class:`ReliabilityError` — the typed, diagnostic-rich failure raised
  when an op's recovery deadline expires; the alternative is a silent
  simulation hang.
* :func:`backoff_delay` — bounded exponential backoff with deterministic
  jitter (the caller passes its named RNG stream) used between recovery
  rounds so retries neither thrash nor synchronize across ranks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "ReliabilityError",
    "PeerDeadError",
    "CollectiveAbortedError",
    "CutoffEstimator",
    "backoff_delay",
]


class ReliabilityError(RuntimeError):
    """An operation's recovery deadline expired.

    Carries the diagnostic counters a post-mortem needs; ``str()`` renders
    them so a failing simulation explains itself instead of hanging.
    """

    def __init__(
        self,
        message: str,
        *,
        rank: int,
        coll_id: int,
        kind: str,
        missing_chunks: int,
        n_chunks: int,
        elapsed: float,
        deadline: float,
        counters: Optional[Dict[str, int]] = None,
        phase: str = "recovery",
        retry_histogram: Optional[List[int]] = None,
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.coll_id = coll_id
        self.kind = kind
        self.missing_chunks = missing_chunks
        self.n_chunks = n_chunks
        self.elapsed = elapsed
        self.deadline = deadline
        self.counters = dict(counters or {})
        self.phase = phase
        #: fetch rounds spent per recovery invocation (op.retry_histogram)
        self.retry_histogram = list(retry_histogram or [])

    def __str__(self) -> str:
        base = super().__str__()
        diag = (
            f"rank={self.rank} coll_id={self.coll_id} kind={self.kind} "
            f"missing={self.missing_chunks}/{self.n_chunks} "
            f"elapsed={self.elapsed * 1e6:.1f}µs "
            f"deadline={self.deadline * 1e6:.1f}µs"
        )
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"{base} [{diag}{' ' + extra if extra else ''}]"


class PeerDeadError(RuntimeError):
    """The liveness layer confirmed one or more peers fail-stopped.

    Raised *inside* a rank's op controller when a blocking wait (barrier,
    activation, final handshake, fetch ACK) is resolved by death
    confirmation rather than by the expected message.  The controller
    catches it and either repairs (``FailurePolicy.DEGRADE``) or converts
    it into :class:`CollectiveAbortedError` (``FailurePolicy.ABORT``) —
    it never escapes a healthy run.
    """

    def __init__(self, message: str, *, rank: int, coll_id: int, phase: str, dead) -> None:
        super().__init__(message)
        self.rank = rank
        self.coll_id = coll_id
        self.phase = phase
        self.dead = frozenset(dead)

    def __str__(self) -> str:
        base = super().__str__()
        return (
            f"{base} [rank={self.rank} coll_id={self.coll_id} "
            f"phase={self.phase} dead={sorted(self.dead)}]"
        )


class CollectiveAbortedError(RuntimeError):
    """A collective was aborted because a participant fail-stopped and the
    communicator's :class:`~repro.core.communicator.FailurePolicy` is
    ``ABORT``.

    Unlike :class:`PeerDeadError` (an internal control-flow signal) this is
    the *user-facing* outcome: it names the dead ranks, the phase the
    survivor was in, and how much of the payload had landed.
    """

    def __init__(
        self,
        message: str,
        *,
        rank: int,
        coll_id: int,
        kind: str,
        phase: str,
        dead_ranks,
        missing_chunks: int = 0,
        n_chunks: int = 0,
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.coll_id = coll_id
        self.kind = kind
        self.phase = phase
        self.dead_ranks = tuple(sorted(dead_ranks))
        self.missing_chunks = missing_chunks
        self.n_chunks = n_chunks

    def __str__(self) -> str:
        base = super().__str__()
        return (
            f"{base} [rank={self.rank} coll_id={self.coll_id} kind={self.kind} "
            f"phase={self.phase} dead_ranks={list(self.dead_ranks)} "
            f"missing={self.missing_chunks}/{self.n_chunks}]"
        )


class CutoffEstimator:
    """Adaptive cutoff slack (RFC 6298 adapted to delivery slack).

    ``slack()`` is what the op controller adds to the ``N/B`` ideal when
    arming the cutoff timer.  With no history it equals the configured
    static α, so the first collective behaves exactly like the paper's
    fixed-timer protocol; every clean completion then tightens it toward
    ``SRTT + K·RTTVAR`` (clamped to ``[alpha_min, alpha_max]``).
    """

    def __init__(
        self,
        alpha0: float,
        alpha_min: float,
        alpha_max: float,
        gain: float = 0.125,
        var_gain: float = 0.25,
        var_weight: float = 4.0,
    ) -> None:
        if not 0.0 < alpha_min <= alpha_max:
            raise ValueError("need 0 < alpha_min <= alpha_max")
        self.alpha0 = alpha0
        self.alpha_min = alpha_min
        self.alpha_max = alpha_max
        self.gain = gain
        self.var_gain = var_gain
        self.var_weight = var_weight
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.backoff = 1.0
        self.samples = 0
        self.spurious = 0
        #: adaptation trace: (sample_or_nan, resulting slack) per update
        self.trace: List[Tuple[float, float]] = []

    def slack(self) -> float:
        if self.srtt is None:
            base = self.alpha0
        else:
            base = self.srtt + self.var_weight * self.rttvar
        # Floor before backing off (TCP's min-RTO still doubles): a
        # fully-tightened timer must still widen after spurious firings.
        return min(max(base, self.alpha_min) * self.backoff, self.alpha_max)

    def observe(self, sample: float) -> None:
        """Feed one clean (recovery-free) op's slack sample."""
        sample = max(float(sample), 0.0)
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar += self.var_gain * (abs(self.srtt - sample) - self.rttvar)
            self.srtt += self.gain * (sample - self.srtt)
        # A clean op halves any recovery backoff (slow-start style decay).
        self.backoff = max(1.0, self.backoff / 2.0)
        self.samples += 1
        self.trace.append((sample, self.slack()))

    def on_recovery(self) -> None:
        """An op needed the slow path: back the timer off (Karn — no
        sample is taken, the elapsed time measured recovery, not delivery)."""
        self.backoff = min(self.backoff * 2.0, 64.0)
        self.spurious += 1
        self.trace.append((float("nan"), self.slack()))


def backoff_delay(
    round_idx: int,
    base: float,
    factor: float,
    cap: float,
    jitter_frac: float,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Bounded exponential backoff with deterministic jitter.

    ``base · factor^round`` clamped to ``cap``, plus a uniform jitter of up
    to ``jitter_frac`` of the clamped delay drawn from *rng* (a named
    :class:`~repro.sim.random.RandomStreams` stream, so reruns are
    bit-identical and ranks don't retry in lockstep).
    """
    delay = min(base * (factor ** max(round_idx, 0)), cap)
    if jitter_frac > 0.0 and rng is not None:
        delay += float(rng.uniform(0.0, jitter_frac * delay))
    return delay
