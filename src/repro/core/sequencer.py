"""The distributed Broadcast sequencer (paper §IV-A, Appendix A).

Starting every Broadcast simultaneously would incast the multicast group;
serializing all of them wastes parallel tree capacity.  The paper splits
the ``P`` Allgather participants into ``M`` *broadcast chains* of length
``R = P / M``.  Within a chain, processes multicast one-by-one, activation
propagating along the chain; the ``M`` chains run in parallel.  At step
``i`` the active group is::

    G^i = { P_i, P_{R+i}, P_{2R+i}, ..., P_{(M-1)R+i} }

i.e. chain ``m`` owns ranks ``[m*R, (m+1)*R)`` and its step-``i`` root is
rank ``m*R + i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["BroadcastSequencer", "effective_chains"]


def effective_chains(n_ranks: int, n_chains: int) -> int:
    """The chain count the Allgather scheduler actually runs with.

    The communicator falls back to a single chain when ``M`` does not
    divide ``P`` (rather than rejecting the collective).  The flow-level
    fast-forward layer keys an eligibility gate on this same arithmetic:
    only a single-chain schedule has at most one active root, which is
    what makes a phase's tree traffic contention-free and foldable.
    """
    return n_chains if n_ranks % n_chains == 0 else 1


@dataclass(frozen=True)
class BroadcastSequencer:
    """Pure schedule arithmetic for the chain scheduler.

    Parameters
    ----------
    n_ranks:
        Total participants ``P``.
    n_chains:
        Parallel chains ``M``; must divide ``P``.
    """

    n_ranks: int
    n_chains: int = 1

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.n_chains < 1:
            raise ValueError("n_chains must be >= 1")
        if self.n_ranks % self.n_chains != 0:
            raise ValueError(
                f"P={self.n_ranks} must be divisible by M={self.n_chains} (Appendix A)"
            )

    @property
    def chain_length(self) -> int:
        """R = P / M — also the number of schedule steps."""
        return self.n_ranks // self.n_chains

    @property
    def n_steps(self) -> int:
        return self.chain_length

    def chain_of(self, rank: int) -> int:
        """Which chain owns *rank*."""
        self._check(rank)
        return rank // self.chain_length

    def step_of(self, rank: int) -> int:
        """At which step *rank* becomes a Broadcast root."""
        self._check(rank)
        return rank % self.chain_length

    def active_group(self, step: int) -> List[int]:
        """``G^step`` — the set of simultaneously multicasting roots."""
        if not 0 <= step < self.n_steps:
            raise IndexError(f"step {step} out of range ({self.n_steps})")
        r = self.chain_length
        return [m * r + step for m in range(self.n_chains)]

    def predecessor(self, rank: int) -> Optional[int]:
        """The rank whose completion activates *rank* (None for chain heads)."""
        if self.step_of(rank) == 0:
            return None
        return rank - 1

    def successor(self, rank: int) -> Optional[int]:
        """The rank that *rank* activates on completion (None for chain tails)."""
        if self.step_of(rank) == self.chain_length - 1:
            return None
        return rank + 1

    def schedule(self) -> List[List[int]]:
        """The full schedule: one active group per step."""
        return [self.active_group(i) for i in range(self.n_steps)]

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range ({self.n_ranks})")
