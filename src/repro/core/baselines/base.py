"""Shared machinery for the P2P baseline collectives.

:class:`P2PNet` provides the minimal rendezvous fabric every baseline
needs: lazily-created RC QP pairs between ranks, a shared per-rank receive
CQ, a pool of zero-length receives for write-with-immediate notifications,
and generator helpers that charge :class:`HostCostModel` time for the
software half of each operation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Sequence

import numpy as np

from repro.core.costmodel import HostCostModel
from repro.net.fabric import Fabric
from repro.net.nic import CQE, CompletionQueue, QueuePair, RecvWR, SendWR, Transport
from repro.sim.events import Timeout

__all__ = ["P2PNet", "BaselineResult", "PendingBaseline", "run_baseline"]

#: symmetric rkey space for baseline op buffers (disjoint from the
#: multicast protocol's RKEY_BASE = 1<<20 range)
BASELINE_RKEY_BASE = 1 << 22

_op_ids = itertools.count(0)


@dataclass
class BaselineResult:
    """Timing/traffic outcome of one baseline collective."""

    algorithm: str
    kind: str
    comm_size: int
    send_bytes: int
    t_begin: float
    t_end: float
    rank_times: List[float]
    buffers: List[np.ndarray]
    traffic: Dict[str, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_begin

    @property
    def throughput(self) -> float:
        """Collective payload over completion time (Fig 11 metric)."""
        total = self.send_bytes * self.comm_size if self.kind != "broadcast" else self.send_bytes
        return total / self.duration if self.duration > 0 else float("inf")


class P2PNet:
    """Per-collective P2P communication context over RC transport."""

    _DUMMY_POOL = 64  #: zero-length receives kept posted per QP

    def __init__(
        self,
        fabric: Fabric,
        hosts: Optional[Sequence[int]] = None,
        cost: Optional[HostCostModel] = None,
    ) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.hosts = list(hosts) if hosts is not None else list(range(fabric.n_hosts))
        self.size = len(self.hosts)
        self.cost = cost if cost is not None else HostCostModel()
        self.op_id = next(_op_ids)
        self.rkey = BASELINE_RKEY_BASE + self.op_id
        self._recv_cqs: Dict[int, CompletionQueue] = {}
        self._qps: Dict[tuple, QueuePair] = {}
        self._dummy_mrs: Dict[int, int] = {}  # rank -> mr key for 0-len recvs

    # ------------------------------------------------------------- plumbing

    def nic(self, rank: int):
        return self.fabric.nic(self.hosts[rank])

    def recv_cq(self, rank: int) -> CompletionQueue:
        cq = self._recv_cqs.get(rank)
        if cq is None:
            cq = self._recv_cqs[rank] = self.nic(rank).create_cq(f"p2p-r{rank}")
        return cq

    def register(self, rank: int, buf: np.ndarray):
        """Register *buf* as rank's op buffer under the symmetric rkey."""
        return self.nic(rank).memory.register(buf, key=self.rkey)

    def qp(self, a: int, b: int) -> QueuePair:
        """Rank *a*'s RC QP toward rank *b* (pair created on first use)."""
        qp = self._qps.get((a, b))
        if qp is not None:
            return qp
        qa = self.nic(a).create_qp(Transport.RC, recv_cq=self.recv_cq(a))
        qb = self.nic(b).create_qp(Transport.RC, recv_cq=self.recv_cq(b))
        qa.connect(self.hosts[b], qb.qpn)
        qb.connect(self.hosts[a], qa.qpn)
        self._qps[(a, b)] = qa
        self._qps[(b, a)] = qb
        self._post_dummies(a, qa)
        self._post_dummies(b, qb)
        return qa

    def _post_dummies(self, rank: int, qp: QueuePair) -> None:
        key = self._dummy_mrs.get(rank)
        if key is None:
            key = self.nic(rank).memory.register(1).key
            self._dummy_mrs[rank] = key
        for i in range(self._DUMMY_POOL):
            qp.post_recv(RecvWR(wr_id=i, mr_key=key, offset=0, length=0))

    def repost_dummy(self, rank: int, cqe: CQE) -> None:
        """Recycle the zero-length receive consumed by a write-with-imm."""
        qp = self.nic(rank).qps[cqe.qpn]
        qp.post_recv(RecvWR(wr_id=cqe.wr_id, mr_key=self._dummy_mrs[rank], offset=0, length=0))

    # ----------------------------------------------------------- primitives

    def post_write(self, a: int, b: int, offset: int, length: int, imm: int,
                   remote_offset: Optional[int] = None, signaled: bool = True) -> None:
        """Post (non-blocking) an RDMA write rank *a* → rank *b* between the
        symmetric op buffers, with an immediate notification."""
        self.qp(a, b).post_send(
            SendWR(
                wr_id=imm, verb="write", mr_key=self.rkey, offset=offset,
                length=length, imm=imm, remote_key=self.rkey,
                remote_offset=offset if remote_offset is None else remote_offset,
                signaled=signaled,
            )
        )

    def write(self, a: int, b: int, offset: int, length: int, imm: int,
              remote_offset: Optional[int] = None) -> Generator:
        """Generator: post a write and charge the post-side software cost."""
        yield Timeout(self.sim, self.cost.send_batch(1))
        self.post_write(a, b, offset, length, imm, remote_offset)

    def wait_notifications(self, rank: int, n: int,
                           on_cqe: Optional[Callable[[CQE], object]] = None) -> Generator:
        """Generator: consume *n* write-with-imm notifications on *rank*.

        ``on_cqe`` may return a generator to run per completion (e.g. the
        reduction compute of Reduce-Scatter).
        """
        cq = self.recv_cq(rank)
        got = 0
        while got < n:
            yield cq.wait()
            for cqe in cq.poll(max_entries=n - got):
                yield Timeout(self.sim, self.cost.cqe_poll + self.cost.cqe_process)
                self.repost_dummy(rank, cqe)
                if on_cqe is not None:
                    action = on_cqe(cqe)
                    if action is not None:
                        yield from action
                got += 1

    def drain_send_cq(self, a: int, b: int, n: int) -> Generator:
        """Generator: wait for *n* signaled send completions on QP a→b."""
        cq = self.qp(a, b).send_cq
        got = 0
        while got < n:
            yield cq.wait()
            got += len(cq.poll(max_entries=n - got))


def _telemetry(fabric: Fabric) -> Dict[str, int]:
    return {
        "switch_bytes": fabric.switch_egress_bytes(),
        "switch_payload_bytes": fabric.switch_egress_bytes(payload_only=True),
        "switch_port_traffic": fabric.switch_port_traffic(),
        "switch_port_payload": fabric.switch_port_traffic(payload_only=True),
        "host_injected_bytes": fabric.host_injected_bytes(payload_only=True),
    }


class PendingBaseline:
    """A baseline collective whose rank processes are running but not yet
    awaited — lets callers overlap several collectives on one fabric
    (the FSDP interleaving study of Appendix B)."""

    def __init__(self, fabric: Fabric, algorithm: str, kind: str,
                 hosts: Sequence[int], send_bytes: int,
                 buffers: List[np.ndarray], rank_procs: List[Generator]):
        self.postprocess = None  # optional fn(result) -> result
        self.fabric = fabric
        self.algorithm = algorithm
        self.kind = kind
        self.hosts = list(hosts)
        self.send_bytes = send_bytes
        self.buffers = buffers
        self._before = _telemetry(fabric)
        self.t_begin = fabric.sim.now
        self.procs = [fabric.sim.spawn(p, name=f"{algorithm}-r{i}")
                      for i, p in enumerate(rank_procs)]

    @property
    def complete(self) -> bool:
        return all(p.triggered for p in self.procs)

    def finish(self) -> BaselineResult:
        """Run the simulation until this collective completes; build the
        result (idempotent telemetry: delta since start)."""
        self.fabric.sim.drain(self.procs)
        for p in self.procs:
            if not p.ok:
                raise p.value
        after = _telemetry(self.fabric)
        rank_times = [p.value if isinstance(p.value, float) else self.fabric.sim.now
                      for p in self.procs]
        result = BaselineResult(
            algorithm=self.algorithm,
            kind=self.kind,
            comm_size=len(self.hosts),
            send_bytes=self.send_bytes,
            t_begin=self.t_begin,
            t_end=max(rank_times),
            rank_times=rank_times,
            buffers=self.buffers,
            traffic={k: after[k] - self._before[k] for k in self._before},
        )
        if self.postprocess is not None:
            result = self.postprocess(result)
        return result


def run_baseline(
    fabric: Fabric,
    algorithm: str,
    kind: str,
    hosts: Sequence[int],
    send_bytes: int,
    buffers: List[np.ndarray],
    rank_procs: List[Generator],
    defer: bool = False,
):
    """Spawn one process per rank; run to completion (default) or return a
    :class:`PendingBaseline` for overlapped execution (``defer=True``)."""
    pending = PendingBaseline(fabric, algorithm, kind, hosts, send_bytes,
                              buffers, rank_procs)
    if defer:
        return pending
    return pending.finish()
