"""Point-to-point baseline collectives (paper §VI-B comparators).

These are the algorithms the paper benchmarks its multicast protocol
against, implemented on the *same* simulated fabric so that time and
traffic comparisons are apples-to-apples:

* :func:`ring_allgather` — NCCL/UCC's bandwidth-optimal P2P Allgather.
* :func:`linear_allgather` — the naive P-1-destination variant.
* :func:`recursive_doubling_allgather` — log-step variant (P = 2^k).
* :func:`knomial_broadcast` — UCC's k-nomial tree Broadcast.
* :func:`binary_tree_broadcast` — pipelined binary-tree Broadcast.
* :func:`ring_reduce_scatter` — ring Reduce-Scatter (the FSDP companion).
* :func:`inc_reduce_scatter` — SHARP-like in-network-compute
  Reduce-Scatter running on the switch-reduction substrate
  (:mod:`repro.net.inc`).
* :func:`inc_reduce` — rooted Reduce on the same substrate (PSN
  ownership pinned to one rank).
* :func:`p2p_alltoall` — personalized exchange over RC writes (the MoE
  expert-parallel pattern).

All baselines use RC transport: RDMA writes with immediate notifications,
hardware reliability — the production configuration whose *send-path* cost
the paper's Insight 1 lower-bounds at Ω(N·(P−1)) bytes.
"""

from repro.core.baselines.base import BaselineResult, P2PNet
from repro.core.baselines.allgather import (
    linear_allgather,
    recursive_doubling_allgather,
    ring_allgather,
)
from repro.core.baselines.alltoall import p2p_alltoall
from repro.core.baselines.bcast import binary_tree_broadcast, knomial_broadcast
from repro.core.baselines.reduce import (
    inc_reduce,
    inc_reduce_scatter,
    ring_reduce_scatter,
)

__all__ = [
    "BaselineResult",
    "P2PNet",
    "binary_tree_broadcast",
    "inc_reduce",
    "inc_reduce_scatter",
    "knomial_broadcast",
    "p2p_alltoall",
    "linear_allgather",
    "recursive_doubling_allgather",
    "ring_allgather",
    "ring_reduce_scatter",
]
