"""All-to-all personalized exchange over unicast RC queue pairs.

The MoE expert-parallel traffic pattern (every rank sends a distinct
block to every other rank) has no multicast structure to exploit — each
byte has exactly one consumer — so the protocol rides the same P2P RC
substrate as the baselines, with the communicator's chunking discipline:
blocks are cut into chunk-sized RDMA writes with immediate notifications,
and each rank walks a rotation schedule (step *s* targets rank
``(r + s) mod P``) so the instantaneous traffic matrix stays a perfect
permutation and no receiver is hot-spotted.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.baselines.base import P2PNet, run_baseline
from repro.core.costmodel import HostCostModel
from repro.net.fabric import Fabric

__all__ = ["p2p_alltoall"]


def p2p_alltoall(
    fabric: Fabric,
    send_data: Sequence[np.ndarray],
    hosts: Optional[Sequence[int]] = None,
    cost: Optional[HostCostModel] = None,
    chunk_bytes: Optional[int] = None,
    defer: bool = False,
):
    """All-to-all: ``send_data[r]`` holds P equal blocks; block *i* lands
    as block *r* of rank *i*'s receive buffer.

    ``chunk_bytes`` bounds the RDMA write size (defaults to one whole
    block); blocks must divide evenly into chunks, and a block may not
    span more chunks than the RC receive pool holds notifications for.
    """
    net = P2PNet(fabric, hosts, cost)
    p = net.size
    if p < 2:
        raise ValueError("alltoall needs at least 2 ranks")
    payloads = [np.ascontiguousarray(d).reshape(-1).view(np.uint8)
                for d in send_data]
    nbytes = payloads[0].nbytes
    if nbytes == 0:
        raise ValueError("cannot alltoall empty buffers")
    if any(pl.nbytes != nbytes for pl in payloads):
        raise ValueError("all send buffers must have the same size")
    if nbytes % p:
        raise ValueError(f"send size {nbytes} must divide into {p} blocks")
    block = nbytes // p
    chunk = min(chunk_bytes if chunk_bytes else block, block)
    if block % chunk:
        raise ValueError(
            f"block size {block} must be a multiple of the chunk size {chunk}")
    chunks_per_block = block // chunk
    if chunks_per_block > P2PNet._DUMMY_POOL:
        raise ValueError(
            f"{chunks_per_block} chunks per block exceeds the per-QP "
            f"notification pool ({P2PNet._DUMMY_POOL}); use a larger chunk")

    # Per-rank layout under the symmetric rkey: [recv P·b | send P·b].
    # The local block never touches the wire (direct copy, like the
    # allgather roots placing their own shard).
    buffers: List[np.ndarray] = []
    for r in range(p):
        buf = np.zeros(2 * p * block, dtype=np.uint8)
        buf[p * block :] = payloads[r]
        buf[r * block : (r + 1) * block] = payloads[r][r * block : (r + 1) * block]
        net.register(r, buf)
        buffers.append(buf)
    send_base = p * block

    def rank_proc(r: int):
        for step in range(1, p):
            dst = (r + step) % p
            for c in range(chunks_per_block):
                yield from net.write(
                    r, dst,
                    offset=send_base + dst * block + c * chunk,
                    length=chunk,
                    imm=step * chunks_per_block + c,
                    remote_offset=r * block + c * chunk,
                )
        yield from net.wait_notifications(r, (p - 1) * chunks_per_block)
        return net.sim.now

    pending = run_baseline(fabric, "p2p_alltoall", "alltoall", net.hosts,
                           nbytes, buffers, [rank_proc(r) for r in range(p)],
                           defer=True)

    def _expose_recv(res):
        res.buffers = [buf[: p * block].copy() for buf in buffers]
        return res

    pending.postprocess = _expose_recv
    return pending if defer else pending.finish()
