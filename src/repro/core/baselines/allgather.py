"""P2P Allgather baselines: ring, linear, recursive doubling.

All three share the structure: every rank registers a ``P·N`` receive
buffer under a symmetric rkey, places its own shard, then moves shards
with RDMA writes + immediate notifications.  They differ only in the
communication schedule — which is precisely the paper's point: **no P2P
schedule can avoid sending each shard P−1 times** (Insight 1); they can
only trade step count against per-step message size.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.baselines.base import BaselineResult, P2PNet, run_baseline
from repro.core.costmodel import HostCostModel
from repro.net.fabric import Fabric

__all__ = ["ring_allgather", "linear_allgather", "recursive_doubling_allgather"]


def _prepare(net: P2PNet, send_data: Sequence[np.ndarray]):
    payloads = [np.ascontiguousarray(d).reshape(-1).view(np.uint8) for d in send_data]
    n = payloads[0].nbytes
    if any(p.nbytes != n for p in payloads):
        raise ValueError("all send buffers must have the same size")
    buffers = []
    for r in range(net.size):
        buf = np.zeros(n * net.size, dtype=np.uint8)
        buf[r * n : (r + 1) * n] = payloads[r]
        net.register(r, buf)
        buffers.append(buf)
    return n, buffers


def ring_allgather(
    fabric: Fabric,
    send_data: Sequence[np.ndarray],
    hosts: Optional[Sequence[int]] = None,
    cost: Optional[HostCostModel] = None,
    defer: bool = False,
):
    """The NCCL/UCC ring: P−1 lock-stepped neighbor exchanges.

    Step *s*: rank *r* writes shard ``(r−s) mod P`` to its right neighbor
    and waits for shard ``(r−s−1) mod P`` from its left neighbor.
    """
    net = P2PNet(fabric, hosts, cost)
    p = net.size
    n, buffers = _prepare(net, send_data)
    if p == 1:
        return run_baseline(fabric, "ring_allgather", "allgather", net.hosts, n,
                            buffers, [_trivial(net)])

    def rank_proc(r: int):
        right = (r + 1) % p
        net.qp(r, right)  # pre-connect
        for step in range(p - 1):
            blk = (r - step) % p
            yield from net.write(r, right, blk * n, n, imm=step)
            yield from net.wait_notifications(r, 1)
        yield from net.drain_send_cq(r, right, p - 1)
        return net.sim.now

    return run_baseline(fabric, "ring_allgather", "allgather", net.hosts, n,
                        buffers, [rank_proc(r) for r in range(p)], defer=defer)


def linear_allgather(
    fabric: Fabric,
    send_data: Sequence[np.ndarray],
    hosts: Optional[Sequence[int]] = None,
    cost: Optional[HostCostModel] = None,
) -> BaselineResult:
    """The naive schedule: every rank writes its shard to all P−1 peers."""
    net = P2PNet(fabric, hosts, cost)
    p = net.size
    n, buffers = _prepare(net, send_data)
    if p == 1:
        return run_baseline(fabric, "linear_allgather", "allgather", net.hosts, n,
                            buffers, [_trivial(net)])

    def rank_proc(r: int):
        for i in range(1, p):
            dst = (r + i) % p
            yield from net.write(r, dst, r * n, n, imm=r)
        yield from net.wait_notifications(r, p - 1)
        for i in range(1, p):
            yield from net.drain_send_cq(r, (r + i) % p, 1)
        return net.sim.now

    return run_baseline(fabric, "linear_allgather", "allgather", net.hosts, n,
                        buffers, [rank_proc(r) for r in range(p)])


def recursive_doubling_allgather(
    fabric: Fabric,
    send_data: Sequence[np.ndarray],
    hosts: Optional[Sequence[int]] = None,
    cost: Optional[HostCostModel] = None,
) -> BaselineResult:
    """log2(P) pairwise exchanges of doubling extents (P must be 2^k)."""
    net = P2PNet(fabric, hosts, cost)
    p = net.size
    if p & (p - 1):
        raise ValueError(f"recursive doubling requires a power-of-two size, got {p}")
    n, buffers = _prepare(net, send_data)
    if p == 1:
        return run_baseline(fabric, "recursive_doubling_allgather", "allgather",
                            net.hosts, n, buffers, [_trivial(net)])

    def rank_proc(r: int):
        k = 1
        step = 0
        while k < p:
            partner = r ^ k
            own_lo = (r // k) * k  # owned extent before this step
            yield from net.write(r, partner, own_lo * n, k * n, imm=step)
            yield from net.wait_notifications(r, 1)
            yield from net.drain_send_cq(r, partner, 1)
            k <<= 1
            step += 1
        return net.sim.now

    return run_baseline(fabric, "recursive_doubling_allgather", "allgather",
                        net.hosts, n, buffers, [rank_proc(r) for r in range(p)])


def _trivial(net: P2PNet):
    """Single-rank degenerate collective."""
    yield net.sim.timeout(0.0)
    return net.sim.now
