"""P2P Broadcast baselines: k-nomial tree and pipelined binary tree.

These are the Figure 11 comparators.  Both relabel ranks relative to the
root (``rel = (rank − root) mod P``) so any root works.

* **k-nomial** (UCC's default tree): ⌈log_k P⌉ rounds; each holder sends
  the *whole* buffer to its subtree roots in decreasing-span order.  Cheap
  for small messages, but interior nodes retransmit the full buffer k−1
  times per level.
* **binary tree, pipelined**: the buffer moves in segments; a node
  forwards segment *s* to both children as soon as it arrives.  Large-
  message throughput is bounded by the interior nodes' double send —
  the 2× send-path tax multicast avoids.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.baselines.base import BaselineResult, P2PNet, run_baseline
from repro.core.costmodel import HostCostModel
from repro.net.fabric import Fabric
from repro.units import kib

__all__ = ["knomial_broadcast", "binary_tree_broadcast", "knomial_tree"]


def knomial_tree(p: int, radix: int) -> Tuple[List[Optional[int]], List[List[int]]]:
    """Parent/children (in send order) of each *relative* rank.

    Built by recursive k-way splitting: the holder of a span hands the
    buffer to the sub-roots of the other k−1 parts (larger parts first),
    then each part recurses independently.
    """
    if radix < 2:
        raise ValueError("radix must be >= 2")
    parent: List[Optional[int]] = [None] * p
    children: List[List[int]] = [[] for _ in range(p)]

    def rec(lo: int, hi: int) -> None:
        n = hi - lo
        if n <= 1:
            return
        part = -(-n // radix)
        subs = []
        for i in range(radix):
            slo = lo + i * part
            if slo >= hi:
                break
            subs.append((slo, min(slo + part, hi)))
        for slo, _shi in subs[1:]:
            parent[slo] = lo
            children[lo].append(slo)
        for sub in subs:
            rec(*sub)

    rec(0, p)
    return parent, children


def knomial_broadcast(
    fabric: Fabric,
    root: int,
    data: np.ndarray,
    hosts: Optional[Sequence[int]] = None,
    cost: Optional[HostCostModel] = None,
    radix: int = 4,
) -> BaselineResult:
    """Non-pipelined k-nomial tree Broadcast (UCC's knomial)."""
    net = P2PNet(fabric, hosts, cost)
    p = net.size
    payload = np.ascontiguousarray(data).reshape(-1).view(np.uint8)
    n = payload.nbytes
    buffers = []
    for r in range(p):
        buf = payload if r == root else np.zeros(n, dtype=np.uint8)
        net.register(r, buf)
        buffers.append(buf)
    if p == 1:
        return run_baseline(fabric, "knomial_broadcast", "broadcast", net.hosts,
                            n, buffers, [_noop(net)])
    parent, children = knomial_tree(p, radix)

    def rank_proc(r: int):
        rel = (r - root) % p
        if parent[rel] is not None:
            yield from net.wait_notifications(r, 1)
        for child_rel in children[rel]:
            child = (child_rel + root) % p
            yield from net.write(r, child, 0, n, imm=0)
            yield from net.drain_send_cq(r, child, 1)
        return net.sim.now

    return run_baseline(fabric, "knomial_broadcast", "broadcast", net.hosts, n,
                        buffers, [rank_proc(r) for r in range(p)])


def binary_tree_broadcast(
    fabric: Fabric,
    root: int,
    data: np.ndarray,
    hosts: Optional[Sequence[int]] = None,
    cost: Optional[HostCostModel] = None,
    segment_bytes: int = kib(64),
    window: int = 8,
) -> BaselineResult:
    """Pipelined binary-tree Broadcast with bounded in-flight segments."""
    net = P2PNet(fabric, hosts, cost)
    p = net.size
    payload = np.ascontiguousarray(data).reshape(-1).view(np.uint8)
    n = payload.nbytes
    buffers = []
    for r in range(p):
        buf = payload if r == root else np.zeros(n, dtype=np.uint8)
        net.register(r, buf)
        buffers.append(buf)
    if p == 1:
        return run_baseline(fabric, "binary_tree_broadcast", "broadcast",
                            net.hosts, n, buffers, [_noop(net)])
    n_seg = max(1, -(-n // segment_bytes))

    def rank_proc(r: int):
        rel = (r - root) % p
        kids = [(c + root) % p for c in (2 * rel + 1, 2 * rel + 2) if c < p]
        has_parent = rel != 0
        sent = {k: 0 for k in kids}  # outstanding per child
        for s in range(n_seg):
            if has_parent:
                yield from net.wait_notifications(r, 1)
            off = s * segment_bytes
            ln = min(segment_bytes, n - off)
            for child in kids:
                yield from net.write(r, child, off, ln, imm=s)
                sent[child] += 1
                if sent[child] >= window:
                    yield from net.drain_send_cq(r, child, 1)
                    sent[child] -= 1
        for child in kids:
            yield from net.drain_send_cq(r, child, sent[child])
        return net.sim.now

    return run_baseline(fabric, "binary_tree_broadcast", "broadcast", net.hosts,
                        n, buffers, [rank_proc(r) for r in range(p)])


def _noop(net: P2PNet):
    yield net.sim.timeout(0.0)
    return net.sim.now
