"""Reduce-Scatter: the ring baseline and the in-network-compute version.

Reduce-Scatter is multicast Allgather's pipeline companion in FSDP
(paper §II-A): gradients are reduced and sharded after the backward pass.
Appendix B shows the {AG_mc, RS_inc} pair is up to ``2 − 2/P`` times
faster than {AG_ring, RS_ring} because the two bandwidth-optimal
algorithms stress *opposite* NIC directions.

Both implementations reduce real float32 data, so tests verify sums.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.baselines.base import P2PNet, run_baseline
from repro.core.costmodel import HostCostModel
from repro.net.fabric import Fabric
from repro.net.nic import RecvWR, Transport
from repro.sim.events import Timeout
from repro.units import gib_per_s

__all__ = ["ring_reduce_scatter", "inc_reduce_scatter", "inc_reduce"]

#: software reduction bandwidth (vectorized FMA on one core, DRAM bound)
REDUCE_BW = gib_per_s(20)


def _check_inputs(send_data: Sequence[np.ndarray], p: int) -> np.ndarray:
    arrays = [np.ascontiguousarray(d, dtype=np.float32).reshape(-1) for d in send_data]
    n = arrays[0].size
    if any(a.size != n for a in arrays):
        raise ValueError("all contributions must have the same length")
    if n % p:
        raise ValueError(f"element count {n} must divide evenly into {p} shards")
    return arrays


def ring_reduce_scatter(
    fabric: Fabric,
    send_data: Sequence[np.ndarray],
    hosts: Optional[Sequence[int]] = None,
    cost: Optional[HostCostModel] = None,
    defer: bool = False,
):
    """Ring Reduce-Scatter: P−1 steps; rank *r* ends with shard *r* reduced.

    Step *s*: send partial shard ``(r−s−1) mod P`` right, receive shard
    ``(r−s−2) mod P`` from the left into a scratch slot, accumulate.
    """
    net = P2PNet(fabric, hosts, cost)
    p = net.size
    arrays = _check_inputs(send_data, p)
    elems = arrays[0].size
    shard = elems // p
    shard_bytes = shard * 4
    buffers: List[np.ndarray] = []
    f32_views: List[np.ndarray] = []
    for r in range(p):
        # Layout: P working shards + 1 scratch slot for the incoming block.
        buf = np.zeros((p + 1) * shard_bytes, dtype=np.uint8)
        f32 = buf.view(np.float32)
        f32[: p * shard] = arrays[r]
        net.register(r, buf)
        buffers.append(buf)
        f32_views.append(f32)
    if p == 1:
        # Honor defer like the p >= 2 path: a deferred single-rank RS must
        # still hand back a PendingBaseline (the Communicator wrapper
        # relies on it), and finishing immediately stays bit-identical.
        pending = run_baseline(fabric, "ring_reduce_scatter", "reduce_scatter",
                               net.hosts, shard_bytes, buffers, [_noop(net)],
                               defer=True)

        def _expose_single(res):
            res.buffers = [f32_views[0][:shard].copy()]
            return res

        pending.postprocess = _expose_single
        return pending if defer else pending.finish()
    scratch_off = p * shard_bytes

    def rank_proc(r: int):
        right = (r + 1) % p
        left = (r - 1) % p
        net.qp(r, right)
        net.qp(r, left)
        f32 = f32_views[r]
        cq = net.recv_cq(r)
        # Credits guard the single scratch slot: the right neighbor grants
        # one credit (a 0-byte write-with-imm) after it has drained its
        # scratch, so a slow rank backpressures its sender (RTS/CTS).
        state = {"data": 0, "credit": 1}

        def wait_for(kind):
            while state[kind] == 0:
                yield cq.wait()
                for cqe in cq.poll():
                    yield Timeout(net.sim, net.cost.cqe_poll + net.cost.cqe_process)
                    net.repost_dummy(r, cqe)
                    state["data" if cqe.byte_len else "credit"] += 1
            state[kind] -= 1

        for step in range(p - 1):
            yield from wait_for("credit")
            send_blk = (r - step - 1) % p
            recv_blk = (r - step - 2) % p
            yield from net.write(r, right, send_blk * shard_bytes, shard_bytes,
                                 imm=step, remote_offset=scratch_off)
            yield from wait_for("data")
            # Accumulate the incoming partial into our working shard.
            yield Timeout(net.sim, shard_bytes / REDUCE_BW)
            lo = recv_blk * shard
            f32[lo : lo + shard] += f32[p * shard : p * shard + shard]
            if step < p - 2:
                yield from net.write(r, left, 0, 0, imm=step)  # grant credit
            yield from net.drain_send_cq(r, right, 1)
        return net.sim.now

    pending = run_baseline(fabric, "ring_reduce_scatter", "reduce_scatter",
                           net.hosts, p * shard_bytes, buffers,
                           [rank_proc(r) for r in range(p)], defer=True)

    def _expose_shards(res):
        # Expose each rank's reduced shard as its buffer.
        res.buffers = [f32_views[r][r * shard : (r + 1) * shard].copy()
                       for r in range(p)]
        return res

    pending.postprocess = _expose_shards
    return pending if defer else pending.finish()


def inc_reduce_scatter(
    fabric: Fabric,
    send_data: Sequence[np.ndarray],
    hosts: Optional[Sequence[int]] = None,
    cost: Optional[HostCostModel] = None,
    segment_bytes: int = 4096,
    defer: bool = False,
):
    """SHARP-like Reduce-Scatter on the switch-reduction substrate.

    Each rank injects its whole contribution once (N bytes up); the tree
    reduces; each rank receives only its shard (N/P down) — the traffic
    profile of paper Fig 3's "INC" column.
    """
    net = P2PNet(fabric, hosts, cost)
    p = net.size
    if p < 2:
        raise ValueError("INC reduce-scatter needs at least 2 ranks")
    if net.hosts != sorted(net.hosts):
        raise ValueError("INC reduce-scatter requires hosts in ascending order "
                         "(shard ownership follows host order)")
    arrays = _check_inputs(send_data, p)
    elems = arrays[0].size
    shard = elems // p
    shard_bytes = shard * 4
    cost_model = net.cost

    # Receive shard buffers under the symmetric rkey + notification QPs.
    buffers: List[np.ndarray] = []
    qps = {}
    for r in range(p):
        buf = np.zeros(shard_bytes, dtype=np.uint8)
        net.register(r, buf)
        buffers.append(buf)
        nic = net.nic(r)
        qp = nic.create_qp(Transport.RC, recv_cq=net.recv_cq(r))
        dummy = nic.memory.register(1)
        for i in range(64):
            qp.post_recv(RecvWR(wr_id=i, mr_key=dummy.key, offset=0, length=0))
        qps[r] = (qp, dummy.key)

    tree = fabric.create_inc_tree(
        members=[net.hosts[r] for r in range(p)],
        rkey=net.rkey,
        qpn_of={net.hosts[r]: qps[r][0].qpn for r in range(p)},
        shard_bytes=shard_bytes,
        segment_bytes=segment_bytes,
    )

    def rank_proc(r: int):
        data = arrays[r].view(np.uint8)
        # Inject every segment of the full contribution, batched like the
        # multicast send path and *paced at link rate* (real NICs arbitrate
        # the wire; an instantaneous post of the whole buffer would starve
        # concurrent collectives behind an infinite FIFO).
        for psn in range(tree.n_segments):
            owner, off = tree.owner_of(psn)
            seg_len = tree.seg_len(psn)
            src_off = (tree.members.index(owner) * shard_bytes) + off
            if psn % 32 == 0:
                yield Timeout(net.sim, cost_model.send_batch(min(32, tree.n_segments - psn)))
            finish = tree.inject(net.hosts[r], psn, data[src_off : src_off + seg_len])
            if finish > net.sim.now:
                yield Timeout(net.sim, finish - net.sim.now)
        # Await our own shard's segments.
        expected = tree.segs_per_shard
        got = 0
        cq = net.recv_cq(r)
        qp, dummy_key = qps[r]
        while got < expected:
            yield cq.wait()
            for cqe in cq.poll():
                yield Timeout(net.sim, cost_model.cqe_poll + cost_model.cqe_process)
                qp.post_recv(RecvWR(wr_id=cqe.wr_id, mr_key=dummy_key, offset=0, length=0))
                got += 1
        return net.sim.now

    pending = run_baseline(fabric, "inc_reduce_scatter", "reduce_scatter",
                           net.hosts, p * shard_bytes, buffers,
                           [rank_proc(r) for r in range(p)], defer=True)

    def _expose_shards(res):
        res.buffers = [buf.view(np.float32).copy() for buf in buffers]
        return res

    pending.postprocess = _expose_shards
    return pending if defer else pending.finish()


def inc_reduce(
    fabric: Fabric,
    send_data: Sequence[np.ndarray],
    root: int,
    hosts: Optional[Sequence[int]] = None,
    cost: Optional[HostCostModel] = None,
    segment_bytes: int = 4096,
    defer: bool = False,
):
    """Rooted Reduce on the switch-reduction substrate.

    Identical injection profile to :func:`inc_reduce_scatter` (every rank
    sends its whole contribution up the tree once), but the tree's PSN
    ownership is overridden so the *root* rank receives the entire reduced
    buffer — N bytes down one NIC instead of N/P down every NIC.
    """
    net = P2PNet(fabric, hosts, cost)
    p = net.size
    if p < 2:
        raise ValueError("INC reduce needs at least 2 ranks")
    if not 0 <= root < p:
        raise ValueError(f"root {root} out of range for {p} ranks")
    arrays = [np.ascontiguousarray(d, dtype=np.float32).reshape(-1)
              for d in send_data]
    elems = arrays[0].size
    if any(a.size != elems for a in arrays):
        raise ValueError("all contributions must have the same length")
    nbytes = elems * 4
    cost_model = net.cost
    root_host = net.hosts[root]

    # Only the root owns a result buffer and a notification QP; the other
    # members are pure contributors.
    result_buf = np.zeros(nbytes, dtype=np.uint8)
    net.register(root, result_buf)
    nic = net.nic(root)
    qp = nic.create_qp(Transport.RC, recv_cq=net.recv_cq(root))
    dummy = nic.memory.register(1)

    tree = fabric.create_inc_tree(
        members=list(net.hosts),
        rkey=net.rkey,
        qpn_of={root_host: qp.qpn},
        shard_bytes=nbytes,
        segment_bytes=segment_bytes,
        root_host=root_host,
    )
    # The root drains the whole reduced buffer (not one shard), so keep a
    # receive posted for every in-flight segment — the 64-slot pool of the
    # scatter path would RNR-drop reliable writes on large buffers.
    for i in range(max(64, tree.n_segments)):
        qp.post_recv(RecvWR(wr_id=i, mr_key=dummy.key, offset=0, length=0))

    def rank_proc(r: int):
        data = arrays[r].view(np.uint8)
        for psn in range(tree.n_segments):
            _, off = tree.owner_of(psn)
            seg_len = tree.seg_len(psn)
            if psn % 32 == 0:
                yield Timeout(net.sim, cost_model.send_batch(min(32, tree.n_segments - psn)))
            finish = tree.inject(net.hosts[r], psn, data[off : off + seg_len])
            if finish > net.sim.now:
                yield Timeout(net.sim, finish - net.sim.now)
        if r != root:
            return net.sim.now
        expected = tree.n_segments
        got = 0
        cq = net.recv_cq(r)
        while got < expected:
            yield cq.wait()
            for cqe in cq.poll():
                yield Timeout(net.sim, cost_model.cqe_poll + cost_model.cqe_process)
                qp.post_recv(RecvWR(wr_id=cqe.wr_id, mr_key=dummy.key,
                                    offset=0, length=0))
                got += 1
        return net.sim.now

    pending = run_baseline(fabric, "inc_reduce", "reduce", net.hosts,
                           nbytes, [result_buf], [rank_proc(r) for r in range(p)],
                           defer=True)

    def _expose_root(res):
        res.buffers = [result_buf.view(np.float32).copy() if r == root
                       else np.zeros(0, dtype=np.float32) for r in range(p)]
        return res

    pending.postprocess = _expose_root
    return pending if defer else pending.finish()


def _noop(net: P2PNet):
    yield net.sim.timeout(0.0)
    return net.sim.now
