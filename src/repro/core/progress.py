"""The per-rank collective progress engine (paper §IV-B/C, §V-A).

One :class:`RankEngine` is the software stack of one participant:

* per-subgroup multicast QPs (UD or UC) with staging rings (UD),
* **receive workers** — one process per worker, each draining the CQs of
  its assigned subgroups: decode immediate → (collective, PSN), update the
  bitmap, issue the staging→user DMA copy, re-post the receive
  (flow-direction and packet parallelism),
* a **send worker** path — the multicast scheduler: batched WQE posting
  with doorbell moderation and bounded outstanding batches,
* the **control plane** (RC): RNR barrier, chain activation, fetch
  ring, final handshake,
* the **op controller** — one process per collective: barrier → (optional)
  multicast send → cutoff-timed wait for data → recovery if needed →
  final handshake,
* a **fetch server** answering FETCH_REQ from the right ring neighbor.

Everything charges virtual time through :class:`HostCostModel`, so a
single engine parameterization covers both the "fast CPU, cheap ops" and
"starved CPU" regimes the paper studies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.core.chunking import ImmLayout
from repro.core.control import (
    MSG_ACTIVATE,
    MSG_BARRIER,
    MSG_FETCH_ACK,
    MSG_FETCH_REQ,
    MSG_FINAL,
    MSG_PING,
    MSG_PONG,
    MSG_DEATH,
    ControlPlane,
)
from repro.core.costmodel import HostCostModel
from repro.core.ops import OpState
from repro.core.reliability import (
    CollectiveAbortedError,
    CutoffEstimator,
    PeerDeadError,
    ReliabilityError,
    backoff_delay,
)
from repro.core.staging import StagingRing
from repro.net.dma import DmaEngine
from repro.net.nic import RecvWR, SendWR, Transport
from repro.sim.events import PASSIVE_WAIT, AnyOf, Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.communicator import Communicator

__all__ = ["RankEngine"]


class RankEngine:
    """The progress engine of one communicator rank."""

    def __init__(self, comm: "Communicator", rank: int) -> None:
        self.comm = comm
        self.rank = rank
        self.sim = comm.sim
        self.fabric = comm.fabric
        self.config = comm.config
        self.nic = comm.fabric.nic(comm.host_of(rank))
        self.cost: HostCostModel = comm.config.cost
        self.imm: ImmLayout = comm.imm
        self.dma = DmaEngine(self.sim)
        self.ops: Dict[int, OpState] = {}
        # Observability: this rank's track, or None when tracing is off.
        # Every tracepoint below guards on the local None check; recording
        # never schedules events, so traced and untraced runs are
        # bit-identical in virtual time and event counts.
        tracer = getattr(comm, "tracer", None)
        self.trace = tracer.track("rank", f"r{rank}") if tracer is not None else None

        self.ctrl = ControlPlane(
            self.sim,
            self.nic,
            rank,
            pair_fn=lambda peer: comm.ensure_ctrl_pair(rank, peer),
            per_message_cost=self.cost.ctrl_message,
        )

        cfg = self.config
        uc = cfg.transport == "uc"
        self.send_cq = self.nic.create_cq(f"send-r{rank}")
        self.sub_qps = []
        self.stagings: List[Optional[StagingRing]] = []
        self._dummy_mr = self.nic.memory.register(1)  # zero-length UC recvs
        host = comm.host_of(rank)
        for sg in range(cfg.n_subgroups):
            # Each subgroup's QP lives on the NIC of the plane its
            # multicast group was planned into (rail 0 everywhere on
            # single-rail fabrics — same NIC object as before, so the
            # single-rail datapath is untouched).
            if comm.size >= 2:
                gid = comm.mcast_gids[sg]
                nic_sg = comm.fabric.rail_nic(
                    host, comm.fabric.mcast_groups[gid].rail)
            else:
                gid = None
                nic_sg = self.nic
            qp = nic_sg.create_qp(
                Transport.UC if uc else Transport.UD,
                send_cq=self.send_cq,
                recv_cq=nic_sg.create_cq(f"recv-r{rank}-sg{sg}"),
                max_recv_wr=max(cfg.staging_slots, 16),
            )
            if gid is not None:
                qp.attach_mcast(gid)
            if uc:
                # UC places data directly; receives only consume immediates.
                qp.post_recv_batch([
                    RecvWR(wr_id=i, mr_key=self._dummy_mr.key, offset=0, length=0)
                    for i in range(cfg.staging_slots)
                ])
                self.stagings.append(None)
            else:
                ring = StagingRing(nic_sg, cfg.staging_slots, cfg.chunk_size)
                ring.prime(qp)
                self.stagings.append(ring)
            self.sub_qps.append(qp)

        from repro.core.subgroups import SubgroupPlan

        #: receiver-batch telemetry, summed into CollectiveResult.engine
        self.cqe_batches = 0
        self.batched_cqes = 0
        #: flow fast-forward: the folded receive-worker cursor.  A fold
        #: advances this rank's datapath without waking its workers; a
        #: worker that wakes for post-fold traffic must not anchor its
        #: cost chain before this instant (it was "busy" inside the fold).
        self.ff_resume_floor = 0.0
        self._recv_procs: Dict[int, object] = {}
        n_workers = cfg.recv_workers or cfg.n_subgroups
        mapping = [
            sgs for sgs in SubgroupPlan.worker_mapping(cfg.n_subgroups, n_workers)
        ]
        # The UD batch fast path pre-computes this rank's DMA chain; that
        # is only exact when no sibling worker can interleave copies on
        # the shared engine mid-replay.
        self._batch_ud_ok = sum(1 for sgs in mapping if sgs) == 1
        if cfg.recv_batching:
            # Opt single-QP workers' QPs into batched train delivery: the
            # NIC then pushes a whole train's CQEs in one event, stamped
            # with their exact per-packet arrival instants.  A multi-QP
            # worker must see cross-QP arrival interleaving, so its QPs
            # keep per-packet delivery.
            for sgs in mapping:
                if len(sgs) == 1:
                    self.sub_qps[sgs[0]].batch_delivery = True
        for worker_id, sgs in enumerate(mapping):
            if sgs:
                self._recv_procs[worker_id] = self.sim.spawn(
                    self._recv_worker(worker_id, sgs), name=f"rxw{worker_id}-r{rank}"
                )
        self._fetch_proc = self.sim.spawn(self._fetch_server(), name=f"fetchsrv-r{rank}")

        from repro.sim.primitives import Resource

        self._send_lock = Resource(self.sim, 1)
        # Serializes recoveries so read completions on the shared control
        # QP's send CQ are attributable to exactly one controller.
        self._recovery_lock = Resource(self.sim, 1)
        #: adaptive cutoff slack, persistent across this rank's collectives
        self.cutoff = CutoffEstimator(
            alpha0=cfg.cutoff_alpha,
            alpha_min=cfg.cutoff_alpha_min,
            alpha_max=cfg.cutoff_alpha_max,
            gain=cfg.cutoff_gain,
            var_gain=cfg.cutoff_var_gain,
            var_weight=cfg.cutoff_var_weight,
        )
        #: named stream — recovery jitter is reproducible and per-rank
        self._recovery_rng = self.fabric.streams.stream(f"recovery:r{rank}")
        self._fetch_nonce = 0

        # --- liveness layer (only active when config.failure_policy set) ---
        #: peers this rank knows to be dead (own probes or MSG_DEATH notices)
        self.confirmed_dead: Set[int] = set()
        self._probe_nonce = 0
        self._shutdown = False
        self.ctrl.on_death = self._on_death_notice

    # ------------------------------------------------------------- teardown

    def shutdown(self) -> None:
        """Fail-stop this engine: kill every software process.  Called when
        this rank's *own* host crashes — the NIC flags already black-hole
        the hardware; this kills the software that would otherwise keep
        polling dead CQs forever."""
        if self._shutdown:
            return
        self._shutdown = True
        for proc in self._recv_procs.values():
            if proc.alive:
                proc.kill()
        if self._fetch_proc.alive:
            self._fetch_proc.kill()
        if self.ctrl._dispatch_proc.alive:
            self.ctrl._dispatch_proc.kill()

    def rebind_subgroup(self, sg: int) -> None:
        """Re-home subgroup *sg*'s QP after a plan rail migration.

        When a whole plane dies, the planner fails the group over to a
        surviving rail; the QP object (receive queue, CQs, staging — all
        backed by the host's shared Memory) migrates to that rail's NIC
        so replays and future traffic flow through the surviving plane.
        No-op while the group stays on its original rail.
        """
        gids = self.comm.mcast_gids
        if sg >= len(gids):
            return
        group = self.fabric.mcast_groups.get(gids[sg])
        if group is None or group.plan is None:
            return
        nic = self.fabric.rail_nic(self.nic.host, group.plan.rail)
        qp = self.sub_qps[sg]
        if qp.nic is not nic:
            nic.adopt_qp(qp)

    # ------------------------------------------------------------- op table

    def register_op(self, op: OpState) -> None:
        if op.coll_id in self.ops:
            raise ValueError(f"collective id {op.coll_id} already active on rank {self.rank}")
        self.ops[op.coll_id] = op

    def release_op(self, coll_id: int) -> None:
        op = self.ops.pop(coll_id, None)
        if op is not None:
            self.nic.memory.deregister(op.mr.key)

    # ----------------------------------------------------------- recv worker

    def _recv_worker(self, worker_id: int, subgroups: List[int]):
        """Receive datapath (paper Fig 6): poll → bitmap → copy → re-post.

        Each wake polls a snapshot of CQEs per CQ.  When the receiver-batch
        eligibility gate holds for a prefix of the snapshot
        (:meth:`_try_recv_batch`), that prefix is consumed in **one**
        process wake — the per-CQE instants are replayed through bare
        callbacks and one absolute-time sleep — and any remainder falls
        back to the per-CQE slow path below, mid-batch, at the exact
        virtual time the slow path would have reached it.  Idle waits park
        on the CQ notify edge instead of allocating Event/AnyOf wrappers.
        """
        cfg = self.config
        cost = self.cost
        uc = cfg.transport == "uc"
        qps = [self.sub_qps[sg] for sg in subgroups]
        batching = cfg.recv_batching
        wake = self._recv_procs[worker_id].wake
        while True:
            if not any(len(qp.recv_cq) for qp in qps):
                for qp in qps:
                    qp.recv_cq.set_notify(wake)
                yield PASSIVE_WAIT
                if self.ff_resume_floor > self.sim.now:
                    # A flow-level fold advanced this worker's datapath
                    # past `now` without waking it; anchor post-fold CQE
                    # processing where the packet-level chain would have.
                    yield self.sim.wake_at(self.ff_resume_floor)
            for sg, qp in zip(subgroups, qps):
                cqes = qp.recv_cq.poll()
                start = 0
                if batching and len(cqes) >= 2:
                    batched, t_end = self._try_recv_batch(sg, qp, cqes, uc)
                    if batched:
                        start = batched
                        yield self.sim.wake_at(t_end)
                for idx in range(start, len(cqes)):
                    cqe = cqes[idx]
                    if cqe.timestamp > self.sim.now:
                        # Batch-delivered CQE whose packet has not "arrived"
                        # yet: hold processing to its true arrival instant
                        # (per-packet delivery would have parked us here).
                        yield self.sim.wake_at(cqe.timestamp)
                    # Straggler injection: a slow receiver pays extra per
                    # poll, so its staging ring backs up into RNR drops.
                    stall = self.fabric.straggler_delay(self.nic.host, self.sim.now)
                    yield Timeout(self.sim, cost.cqe_poll + cost.cqe_process + stall)
                    psn, cid = self.imm.decode(cqe.imm or 0)
                    op = self.ops.get(cid)
                    if uc:
                        # Data already placed by the NIC; recycle the WR.
                        yield Timeout(self.sim, cost.recv_repost)
                        qp.post_recv(RecvWR(wr_id=cqe.wr_id, mr_key=self._dummy_mr.key,
                                            offset=0, length=0))
                        if op is None:
                            continue
                        if op.bitmap.set(psn):
                            op.stats["chunks_received"] += 1
                            op.placed.set(psn)  # UC: NIC placed it already
                        else:
                            op.stats["duplicates"] += 1
                        op.maybe_complete()
                        continue
                    staging = self.stagings[sg]
                    assert staging is not None
                    slot = cqe.wr_id
                    view = staging.on_cqe(slot)
                    trc = self.trace
                    if trc is not None:
                        trc.counter("staging.hold", self.sim.now, staging.held)
                    if op is None or not op.bitmap.set(psn):
                        # Stray or duplicate chunk: recycle without copying.
                        if op is None:
                            self._count_stray(cid)
                        else:
                            op.stats["duplicates"] += 1
                        yield Timeout(self.sim, cost.recv_repost)
                        staging.repost(slot, qp)
                        if trc is not None:
                            trc.counter("staging.hold", self.sim.now, staging.held)
                        continue
                    op.stats["chunks_received"] += 1
                    off, ln = op.plan.bounds(psn)
                    yield Timeout(self.sim, cost.copy_issue + cost.recv_repost)
                    copy_done = self.dma.copy(view[:ln], op.mr.view(off, ln))
                    op.outstanding_copies += 1
                    copy_done.subscribe(
                        self._make_copy_callback(op, staging, slot, qp, psn)
                    )

    # ----------------------------------------------------- recv batch fast path

    def _try_recv_batch(self, sg: int, qp, cqes, uc: bool):
        """Gate + apply the receiver-batch fast path over a CQE snapshot.

        Returns ``(n_batched, t_end)``: the batched prefix length (0 when
        the gate fails outright) and the absolute instant the worker must
        resume — exactly where the per-CQE path would have finished the
        prefix.  The replayed schedule is additive in the same order the
        slow path adds its Timeouts, so every instant is bit-identical.

        Eligibility (any miss ⇒ the offending CQE and everything after it
        take the slow path):

        * no straggler window overlaps the projected replay window
          (stall terms are exactly ``0.0``, which is float-inert);
        * UD only: a single receive worker owns this rank's DMA engine,
          every CQE decodes to the *same* live op, carries an immediate,
          is neither a duplicate nor an in-batch repeat, and the op has no
          recovery active or armable inside the window (the bitmap has no
          concurrent reader/writer, so bits may be set eagerly at t0);
        * UC: per-CQE effects are replayed verbatim at their exact
          instants (duplicates included — they do not alter UC timing),
          so only the straggler check applies.
        """
        cost = self.cost
        now = self.sim.now
        c1 = cost.cqe_poll + cost.cqe_process
        if uc:
            c2 = cost.recv_repost
            decode = self.imm.decode
            t = now
            insts = []
            decoded = []
            for cqe in cqes:
                psn, cid = decode(cqe.imm or 0)
                op = self.ops.get(cid)
                if op is not None and psn >= op.bitmap.n_bits:
                    break  # corrupt PSN: let the slow path raise in-process
                a = cqe.timestamp  # anchor: arrival if the worker would idle
                if a < t:
                    a = t
                t = a + c1
                t = t + c2
                insts.append(t)
                decoded.append((cqe.wr_id, psn, cid))
            if len(decoded) < 2:
                return 0, 0.0
            t_end = insts[-1]
            if not self.fabric.straggler_inert(self.nic.host, now, t_end):
                return 0, 0.0
            post = self.sim.post_at
            replay = self._uc_replay
            for (wr_id, psn, cid), when in zip(decoded, insts):
                post(when, replay, qp, wr_id, psn, cid)
            k = len(decoded)
            self.cqe_batches += 1
            self.batched_cqes += k
            if self.trace is not None:
                self.trace.instant("cq.batch", now, {"cqes": k})
            return k, t_end

        if not self._batch_ud_ok:
            return 0, 0.0
        decode = self.imm.decode
        ops_map = self.ops
        c2 = cost.copy_issue + cost.recv_repost
        t = now
        op = None
        psns: List[int] = []
        issues: List[float] = []
        seen = set()
        for cqe in cqes:
            imm = cqe.imm
            if imm is None:
                break
            psn, cid = decode(imm)
            o = ops_map.get(cid)
            if o is None or (op is not None and o is not op):
                break
            if op is None:
                if o.stats["recoveries"]:
                    break  # a recovery may hold bitmap state mid-flight
                op = o
            if psn >= op.bitmap.n_bits or psn in seen or op.bitmap.test(psn):
                break
            seen.add(psn)
            psns.append(psn)
            a = cqe.timestamp  # anchor: arrival if the worker would idle
            if a < t:
                a = t
            t = a + c1
            t = t + c2
            issues.append(t)
        k = len(psns)
        if k < 2:
            return 0, 0.0
        t_end = issues[-1]
        if op.cutoff_deadline <= t_end:
            return 0, 0.0  # the cutoff could fire (and recover) mid-replay
        if not self.fabric.straggler_inert(self.nic.host, now, t_end):
            return 0, 0.0
        self._apply_ud_batch(sg, qp, op, cqes[:k], psns, issues)
        return k, t_end

    def _apply_ud_batch(self, sg: int, qp, op: OpState, cqes, psns, issues) -> None:
        """Consume an eligible UD CQE train at the current instant.

        Local-only state (bitmap bits, stats, outstanding-copy count,
        staging holds) moves to t0 in bulk — nothing can observe it before
        the replay's own instants, because the op's last copy is still
        outstanding until past ``t_end`` and the recovery gate excluded
        every other bitmap reader.  Externally visible effects keep their
        exact per-CQE instants: each slot's repost + ``placed`` bit ride
        its own DMA completion callback via :meth:`DmaEngine.copy_runs`.
        """
        k = len(psns)
        staging = self.stagings[sg]
        assert staging is not None
        slots = [cqe.wr_id for cqe in cqes]
        views = staging.on_cqe_batch(slots)
        bitmap = op.bitmap
        i = 0
        while i < k:  # contiguous ascending PSN runs take the bulk path
            j = i + 1
            while j < k and psns[j] == psns[j - 1] + 1:
                j += 1
            if j - i > 1:
                bitmap.set_range(psns[i], j - i)
            else:
                bitmap.set(psns[i])
            i = j
        op.stats["chunks_received"] += k
        op.outstanding_copies += k
        bounds = op.plan.bounds
        mr_view = op.mr.view
        slot_size = staging.slot_size
        done = self._batch_slot_done
        # Group adjacent slots (consecutive ring slots AND consecutive
        # full-size chunks) into spanning scatter-gather segments.
        segments = []
        seg_slot0 = seg_off0 = seg_len = -1
        seg_ops: List[tuple] = []
        for idx in range(k):
            psn = psns[idx]
            slot = slots[idx]
            off, ln = bounds(psn)
            entry = (ln, issues[idx], done, (op, staging, slot, qp, psn))
            if (seg_ops
                    and slot == seg_slot0 + len(seg_ops)
                    and off == seg_off0 + seg_len
                    and seg_ops[-1][0] == slot_size):
                seg_ops.append(entry)
                seg_len += ln
            else:
                if seg_ops:
                    segments.append((
                        staging.mr.view(seg_slot0 * slot_size, seg_len),
                        mr_view(seg_off0, seg_len),
                        seg_ops,
                    ))
                seg_slot0, seg_off0, seg_len = slot, off, ln
                seg_ops = [entry]
        segments.append((
            staging.mr.view(seg_slot0 * slot_size, seg_len),
            mr_view(seg_off0, seg_len),
            seg_ops,
        ))
        last_done = self.dma.copy_runs(segments)
        self.cqe_batches += 1
        self.batched_cqes += k
        trc = self.trace
        if trc is not None:
            now = self.sim.now
            trc.instant("cq.batch", now, {"cqes": k})
            trc.counter("staging.hold", now, staging.held)
            trc.complete("dma.copy_runs", issues[0], last_done - issues[0],
                         {"copies": k, "segments": len(segments)})

    def _batch_slot_done(self, op: OpState, staging: StagingRing, slot: int,
                         qp, psn: int) -> None:
        """DMA-completion bookkeeping for one batched slot, at the exact
        per-op completion instant (scheduled by :meth:`DmaEngine.copy_runs`
        as a bound method + args — no per-slot closure allocation)."""
        staging.repost(slot, qp)
        op.outstanding_copies -= 1
        op.placed.set(psn)
        if self.trace is not None:
            self.trace.counter("staging.hold", self.sim.now, staging.held)
        op.maybe_complete()

    def _uc_replay(self, qp, wr_id: int, psn: int, cid: int) -> None:
        """Exact-instant replay of one batched UC CQE's effects: recycle
        the WR, update bitmaps, maybe complete (a bare callback — no
        Timeout events, no process resume)."""
        qp.post_recv(RecvWR(wr_id=wr_id, mr_key=self._dummy_mr.key,
                            offset=0, length=0))
        op = self.ops.get(cid)
        if op is None:
            return
        if op.bitmap.set(psn):
            op.stats["chunks_received"] += 1
            op.placed.set(psn)
        else:
            op.stats["duplicates"] += 1
        op.maybe_complete()

    def _make_copy_callback(self, op: OpState, staging: StagingRing, slot: int, qp,
                            psn: int):
        trc = self.trace
        issued_at = self.sim.now if trc is not None else 0.0

        def _on_copy(_ev) -> None:
            staging.repost(slot, qp)
            op.outstanding_copies -= 1
            op.placed.set(psn)
            if trc is not None:
                now = self.sim.now
                trc.complete("dma.copy", issued_at, now - issued_at)
                trc.counter("staging.hold", now, staging.held)
            op.maybe_complete()

        return _on_copy

    def _count_stray(self, cid: int) -> None:
        # A chunk for an unknown collective (e.g. a late duplicate after
        # release); the RNR barrier prevents this on the ingest side, so
        # it is only counted, never fatal.
        self.stray_cqes = getattr(self, "stray_cqes", 0) + 1

    # ----------------------------------------------------------- send worker

    def run_send(self, op: OpState):
        """Multicast root datapath (§III-A): zero-copy fragmentation, batched
        posting, doorbell moderation, bounded outstanding batches."""
        cfg = self.config
        cost = self.cost
        yield self._send_lock.acquire()
        try:
            psns = list(range(op.send_lo, op.send_hi))
            outstanding = 0
            for i in range(0, len(psns), cfg.batch_size):
                batch = psns[i : i + cfg.batch_size]
                yield Timeout(self.sim, cost.send_batch(len(batch)))
                items = []
                for j, psn in enumerate(batch):
                    off, ln = op.plan.bounds(psn)
                    sg = op.subgroups.subgroup_of(psn - op.send_lo)
                    qp = self.sub_qps[sg]
                    imm = self.imm.encode(psn, op.coll_id % self.imm.max_collectives)
                    last = j == len(batch) - 1
                    if cfg.transport == "uc":
                        wr = SendWR(
                            wr_id=psn, verb="write", mr_key=op.mr.key, offset=off,
                            length=ln, imm=imm, mcast_gid=self.comm.mcast_gids[sg],
                            remote_key=op.mr.key, remote_offset=off, signaled=last,
                        )
                    else:
                        wr = SendWR(
                            wr_id=psn, verb="send", mr_key=op.mr.key, offset=off,
                            length=ln, imm=imm, mcast_gid=self.comm.mcast_gids[sg],
                            signaled=last,
                        )
                    items.append((qp, wr))
                # One doorbell for the whole batch: lets the NIC serialize
                # consecutive same-destination WRs as a single packet train.
                if self.fabric.topology.rails == 1:
                    self.nic.post_send_batch(items)
                else:
                    # Multi-rail: each WR leaves through the NIC its QP
                    # lives on; partition preserving per-NIC order (the
                    # planes are independent, so cross-NIC order is
                    # immaterial at this single posting instant).
                    per_nic: Dict[object, list] = {}
                    for item in items:
                        per_nic.setdefault(item[0].nic, []).append(item)
                    for nic, sub in per_nic.items():
                        nic.post_send_batch(sub)
                outstanding += 1
                trc = self.trace
                if trc is not None:
                    trc.counter("nic.outstanding", self.sim.now, outstanding)
                while outstanding >= cfg.max_outstanding_batches:
                    yield self.send_cq.wait()
                    outstanding -= len(self.send_cq.poll())
                    if trc is not None:
                        trc.counter("nic.outstanding", self.sim.now, outstanding)
            while outstanding > 0:
                yield self.send_cq.wait()
                outstanding -= len(self.send_cq.poll())
                if self.trace is not None:
                    self.trace.counter("nic.outstanding", self.sim.now, outstanding)
        finally:
            self._send_lock.release()

    # ------------------------------------------------------------- recovery

    def run_recovery(self, op: OpState, participants: List[int], deadline_abs: float,
                     monitor: Optional[List[int]] = None):
        """Slow path (§III-C), hardened: selective zero-copy fetch of
        missing chunks from ring neighbors.

        The fetch is **chunk-granular**: each round inspects which missing
        chunks the neighbor has *placed* (its own may still be recovering)
        and RDMA-READs exactly those.  Chunks a neighbor lacks propagate
        around the ring as it recovers them itself — the paper's "worst
        case degenerates to ring Allgather".  A whole-buffer ACK handshake
        would deadlock when every rank of an Allgather lost something.

        Hardening beyond the paper's description:

        * the FETCH_ACK rendezvous is timeout-bounded — an unresponsive
          neighbor costs ``fetch_ack_timeout``, not a hang;
        * a neighbor that yields nothing for ``fetch_stall_rounds`` rounds
          (unresponsive, or itself unrecovered) is **escalated past**: the
          requester rotates to the next-farther left ring neighbor;
        * re-polls back off exponentially with deterministic per-rank
          jitter so stalled ranks neither thrash nor retry in lockstep;
        * the whole recovery is bounded by *deadline_abs* — on expiry a
          :class:`ReliabilityError` with diagnostic counters is raised
          instead of hanging the simulation.

        When *monitor* is set (liveness layer active), any confirmed death
        among those ranks raises :class:`PeerDeadError` out of the loop so
        the controller can re-plan instead of fetching from a corpse.
        """
        op.stats["recoveries"] += 1
        ff = self.comm.ff
        if ff is not None:
            # An unscheduled crash (no fault_epoch hook between the crash
            # and this cutoff) can leave a deferred-commit session live;
            # recovery traffic must see fully committed channel state.
            ff.preempt_vec()
        trc = self.trace
        recovery_t0 = self.sim.now
        me = participants.index(self.rank)
        # Escalation order: the ring-left neighbor first, then progressively
        # farther-left ranks (under the chain schedule those are the ranks
        # most likely to already hold what we miss), wrapping the full ring.
        order = [
            participants[(me - d) % len(participants)]
            for d in range(1, len(participants))
        ]
        rounds_used = 0
        yield self._recovery_lock.acquire()
        try:
            attempt = 0
            while not op.data_done.triggered:
                if monitor is not None:
                    self._check_live(op, monitor, "data")
                self._check_recovery_deadline(op, deadline_abs)
                peer = order[attempt % len(order)]
                if attempt > 0 and len(order) > 1:
                    op.stats["neighbor_escalations"] += 1
                    if trc is not None:
                        trc.instant("reliability.escalate", self.sim.now,
                                    {"peer": peer})
                _progressed, rounds = yield from self._fetch_attempt(
                    op, peer, deadline_abs, monitor=monitor
                )
                rounds_used += rounds
                attempt += 1
        finally:
            self._recovery_lock.release()
            op.retry_histogram.append(rounds_used)
            if trc is not None:
                trc.complete("reliability.recover", recovery_t0,
                             self.sim.now - recovery_t0,
                             {"rounds": rounds_used})

    def _check_recovery_deadline(self, op: OpState, deadline_abs: float) -> None:
        if self.sim.now < deadline_abs:
            return
        started = op.phases.get("recovery", deadline_abs - self.config.recovery_deadline)
        raise ReliabilityError(
            f"recovery deadline exceeded on rank {self.rank}",
            rank=self.rank,
            coll_id=op.coll_id,
            kind=op.kind,
            missing_chunks=op.missing_chunks,
            n_chunks=op.n_chunks,
            elapsed=self.sim.now - started,
            deadline=self.config.recovery_deadline,
            counters=op.stats,
            retry_histogram=op.retry_histogram,
        )

    def _fetch_attempt(self, op: OpState, peer: int, deadline_abs: float,
                       monitor: Optional[List[int]] = None):
        """One bounded fetch session against *peer*.

        Returns ``(progressed, rounds)``; the caller escalates to the next
        ring neighbor when a session ends without the op completing.
        """
        cfg = self.config
        self._fetch_nonce = (self._fetch_nonce + 1) & 0xFF
        # Rendezvous key carries a nonce so a late ACK from an abandoned
        # attempt can never satisfy a newer one.
        key = (op.coll_id << 8) | self._fetch_nonce
        self.ctrl.send(peer, MSG_FETCH_REQ, key)
        ack = self.ctrl.recv(MSG_FETCH_ACK, key, peer)
        wait = min(cfg.fetch_ack_timeout, max(deadline_abs - self.sim.now, 1e-9))
        yield AnyOf(self.sim, [ack, op.data_done, Timeout(self.sim, wait)])
        if op.data_done.triggered:
            return True, 0
        if not ack.triggered:
            op.stats["fetch_ack_timeouts"] += 1
            if self.trace is not None:
                self.trace.instant("reliability.timeout", self.sim.now,
                                   {"peer": peer})
            if monitor is not None:
                # A silent fetch server is exactly what a fail-stopped host
                # looks like from the data phase — probe before escalating
                # so a dead peer is detected promptly, not only when some
                # rank blocks on it in a control-plane wait.
                if (yield from self._probe(peer)):
                    raise PeerDeadError(
                        f"peer {peer} fail-stopped during fetch",
                        rank=self.rank, coll_id=op.coll_id, phase="data",
                        dead=self._dead_in(monitor) or {peer},
                    )
            self._check_recovery_deadline(op, deadline_abs)
            return False, 0
        qp = self.comm.ensure_ctrl_pair(self.rank, peer)
        qp.send_cq.poll()  # discard stale completions of abandoned attempts
        peer_host = self.comm.host_of(peer)
        rtt = 2 * self.fabric.one_way_delay(self.nic.host, peer_host)
        stalls = 0
        rounds = 0
        progressed = False
        while not op.data_done.triggered:
            self._check_recovery_deadline(op, deadline_abs)
            rounds += 1
            op.stats["fetch_rounds"] += 1
            if self.trace is not None:
                self.trace.instant("reliability.fetch", self.sim.now,
                                   {"peer": peer})
            # Fetch the neighbor's bitmap (modeled as one small RDMA
            # read: RTT + bitmap bytes on the wire).
            bitmap_bytes = max(op.n_chunks // 8, 8)
            yield Timeout(
                self.sim, rtt + bitmap_bytes / self.fabric.link_bandwidth
            )
            peer_op = self.comm.engines[peer].ops.get(op.coll_id)
            runs = self._fetchable_runs(op, peer_op)
            if runs:
                got = yield from self._fetch_runs(op, qp, runs, deadline_abs)
                if got:
                    progressed = True
                    stalls = 0
                op.maybe_complete()
                if op.data_done.triggered:
                    break
            else:
                stalls += 1
                if stalls >= cfg.fetch_stall_rounds:
                    return progressed, rounds
            # Nothing (more) available yet: let the multicast path and the
            # neighbor's own recovery make progress, then retry — backing
            # off while stalled, waking immediately if the fast path
            # completes meanwhile.
            delay = backoff_delay(
                stalls, cfg.recovery_alpha, cfg.recovery_backoff,
                cfg.recovery_alpha_max, cfg.recovery_jitter, self._recovery_rng,
            )
            delay = min(delay, max(deadline_abs - self.sim.now, 1e-9))
            op.record_timer(delay, "recovery-rearm")
            yield AnyOf(self.sim, [op.data_done, Timeout(self.sim, delay)])
        return True, rounds

    @staticmethod
    def _fetchable_runs(op: OpState, peer_op: Optional[OpState]):
        """Intersect our missing runs with the neighbor's placed chunks,
        coalescing into contiguous fetchable pieces."""
        runs: List[tuple] = []
        if peer_op is None:
            return runs
        for start, count in op.bitmap.missing_runs():
            run = None
            for p in range(start, start + count):
                if peer_op.placed.test(p):
                    if run is None:
                        run = [p, 1]
                    else:
                        run[1] += 1
                elif run is not None:
                    runs.append(tuple(run))
                    run = None
            if run is not None:
                runs.append(tuple(run))
        return runs

    def _fetch_runs(self, op: OpState, qp, runs, deadline_abs: float):
        """RDMA-READ the given (start, count) chunk runs from the neighbor
        behind *qp*; returns the number of newly recovered chunks."""
        expected = 0
        for start, count in runs:
            offset = start * op.plan.chunk_size
            length = min(count * op.plan.chunk_size,
                         op.plan.buffer_len - offset)
            qp.post_send(
                SendWR(
                    wr_id=start, verb="read", mr_key=op.mr.key,
                    offset=offset, length=length,
                    remote_key=op.mr.key, remote_offset=offset,
                )
            )
            expected += 1
        while expected > 0:
            # READ responses ride RC, but a dead link (flap with
            # protect_reliable=False) would strand us — bound the wait.
            remaining = max(deadline_abs - self.sim.now, 1e-9)
            yield AnyOf(self.sim, [qp.send_cq.wait(), Timeout(self.sim, remaining)])
            done = len(qp.send_cq.poll())
            if done == 0:
                self._check_recovery_deadline(op, deadline_abs)
            expected -= done
        got = 0
        for start, count in runs:
            got += op.bitmap.set_range(start, count)
            op.placed.set_range(start, count)
        op.stats["recovered_chunks"] += got
        return got

    def _fetch_server(self):
        """Answer FETCH_REQs: acknowledge the rendezvous immediately — the
        requester then pulls whatever chunks are placed, re-polling as our
        own receive/recovery paths fill the buffer."""
        while True:
            msg = yield self.ctrl.recv(MSG_FETCH_REQ)
            self.ctrl.send(msg.src, MSG_FETCH_ACK, msg.key)

    # ------------------------------------------------------------- liveness

    def _on_death_notice(self, msg) -> None:
        """Reliable MSG_DEATH notice from a peer that confirmed a death.
        RC delivery makes membership agreement trivial: every survivor
        eventually holds the same (monotonically growing) dead set."""
        rank = msg.key
        if rank in self.confirmed_dead:
            return
        self.confirmed_dead.add(rank)
        if self.trace is not None:
            self.trace.instant("liveness.confirm", self.sim.now,
                               {"rank": rank, "via": "notice", "src": msg.src})
        self.comm.note_death(rank)

    def _suspicion_timeout(self) -> float:
        """No-progress suspicion timer: the configured floor, widened by the
        adaptive cutoff estimator so a congested-but-healthy fabric that
        legitimately slows delivery also slows suspicion.  Always larger
        than the fabric's SM reroute delay has to be assumed by the config
        (the default 2 ms floor clears the 1 ms sweep), so a switch-down
        blackout window cannot confirm a live peer dead."""
        return max(self.config.suspicion_timeout, 4.0 * self.cutoff.slack())

    def _probe(self, peer: int):
        """PING *peer* until it answers or the retry budget is exhausted.
        Returns True when the peer is (now) confirmed dead."""
        if peer in self.confirmed_dead:
            return True
        cfg = self.config
        peer_host = self.comm.host_of(peer)
        wait = max(cfg.liveness_probe_timeout,
                   4.0 * self.fabric.one_way_delay(self.nic.host, peer_host))
        for _ in range(cfg.liveness_probe_retries):
            self._probe_nonce = (self._probe_nonce + 1) & 0xFFFF
            key = self._probe_nonce
            pong = self.ctrl.recv(MSG_PONG, key, peer)
            self.ctrl.send(peer, MSG_PING, key)
            yield AnyOf(self.sim, [pong, Timeout(self.sim, wait)])
            if pong.triggered:
                return False
            if peer in self.confirmed_dead:
                return True  # someone else confirmed while we probed
        self._confirm_death(peer)
        return True

    def _confirm_death(self, peer: int) -> None:
        """Local death confirmation: record it, tell every other survivor
        (reliable RC notices → agreement), update the communicator.

        An *isolated* rank — one whose own NIC or access links are down, so
        every peer looks dead from its side — keeps its confirmation local:
        its notices could never leave the host, and the communicator-level
        membership update is a simulation shortcut that a partitioned
        minority must not be allowed to abuse (it would "kill" the healthy
        majority).  The isolated rank still repairs locally (degrading to a
        sole-survivor completion); the majority independently confirms *it*
        dead and excludes its result."""
        if peer in self.confirmed_dead:
            return
        self.confirmed_dead.add(peer)
        if self.trace is not None:
            self.trace.instant("liveness.confirm", self.sim.now,
                               {"rank": peer, "via": "probe"})
        if self.fabric.host_isolated(self.nic.host):
            return
        for r in range(self.comm.size):
            if r in (self.rank, peer) or r in self.comm.dead_ranks:
                continue
            self.ctrl.send(r, MSG_DEATH, peer)
        self.comm.note_death(peer)

    def _dead_in(self, participants: List[int]) -> Set[int]:
        return self.confirmed_dead.intersection(participants)

    def _check_live(self, op: OpState, participants: List[int], phase: str) -> None:
        dead = self._dead_in(participants)
        if dead:
            raise PeerDeadError(
                f"peer(s) fail-stopped during {phase}",
                rank=self.rank, coll_id=op.coll_id, phase=phase, dead=dead,
            )

    def _recv_live(self, op: OpState, participants: List[int], mtype: int,
                   key: int, src: int, phase: str,
                   escalate_live: Optional[int] = None,
                   min_timeout: Optional[float] = None):
        """Liveness-bounded control receive: wait for the message, but
        convert silence into a typed :class:`PeerDeadError`.

        Any confirmed death among *participants* aborts the wait — not just
        *src*'s: a rank blocked on a live peer that itself detoured into
        repair would otherwise wait forever, so every membership change
        sends everyone to the (idempotent) repair path.  Silence from *src*
        past the suspicion timer is checked against the heartbeat
        piggyback (any control message counts) before spending probes.

        ``escalate_live`` bounds waits whose message can be lost forever
        without the sender dying — an activation or final-handshake packet
        black-holed by a switch that hard-crashed before the SM sweep
        rerouted (the RC retransmission that would redeliver it is not
        modeled).  After that many probes *answered alive*, the wait gives
        up and returns ``None``; the caller proceeds without the message.
        ``min_timeout`` floors the first suspicion period — activation
        legitimately takes up to a full collective to arrive, so its wait
        starts at the op's own cutoff bound rather than the generic timer.
        """
        ev = self.ctrl.recv(mtype, key, src)
        suspicion = self._suspicion_timeout()
        cap = 16.0 * suspicion
        wait = max(suspicion, min_timeout or 0.0)
        live_probes = 0
        while True:
            self._check_live(op, participants, phase)
            yield AnyOf(self.sim, [ev, Timeout(self.sim, wait)])
            if ev.triggered:
                return ev.value
            self._check_live(op, participants, phase)
            if self.trace is not None:
                self.trace.instant("liveness.suspect", self.sim.now,
                                   {"rank": src, "phase": phase})
            last = self.ctrl.last_heard.get(src)
            if last is not None and self.sim.now - last < suspicion:
                # Heard from it recently on another signature — it is slow,
                # not dead.  Widen and keep waiting without spending probes.
                suspicion = min(suspicion * 2.0, cap)
                wait = suspicion
                continue
            if (yield from self._probe(src)):
                raise PeerDeadError(
                    f"peer {src} fail-stopped during {phase}",
                    rank=self.rank, coll_id=op.coll_id, phase=phase,
                    dead=self._dead_in(participants) or {src},
                )
            live_probes += 1
            if escalate_live is not None and live_probes >= escalate_live:
                return None  # sender alive, message presumably lost
            suspicion = min(suspicion * 2.0, cap)
            wait = suspicion

    def _barrier_live(self, op: OpState, tag: int, ranks: List[int]):
        """The control plane's dissemination barrier with every receive
        routed through :meth:`_recv_live` (same wire pattern and keys)."""
        me = ranks.index(self.rank)
        p = len(ranks)
        k = 1
        rnd = 0
        while k < p:
            dst = ranks[(me + k) % p]
            src = ranks[(me - k) % p]
            key = (tag << 6) | rnd
            self.ctrl.send(dst, MSG_BARRIER, key)
            # Escalation: a barrier token black-holed by a switch that died
            # mid-barrier (before the SM sweep reroutes) is lost forever —
            # RC retransmission is not modeled.  Once probes confirm the
            # peer alive, proceed without the token; if it genuinely has
            # not arrived yet, the cutoff/fetch recovery heals any chunks
            # multicast before its windows were posted.
            yield from self._recv_live(op, ranks, MSG_BARRIER, key, src,
                                       "sync", escalate_live=3)
            k <<= 1
            rnd += 1

    # ---------------------------------------------------------- op controller

    def run_op(
        self,
        op: OpState,
        participants: List[int],
        activation_pred: Optional[int] = None,
        activation_succ: Optional[int] = None,
    ):
        """The lifecycle of one collective on this rank (a process).

        barrier → [wait activation] → multicast → [activate successor] →
        cutoff-timed wait → recovery* → final handshake.

        With a :class:`~repro.core.communicator.FailurePolicy` configured,
        every blocking wait is liveness-bounded: a confirmed peer death
        raises :class:`PeerDeadError` out of the inner lifecycle, and this
        wrapper either aborts the collective (``ABORT``) or repairs the
        membership and completes degraded among the survivors
        (``DEGRADE``).  With the default ``failure_policy=None`` the inner
        lifecycle runs verbatim — event-for-event identical to the
        pre-liveness engine.
        """
        policy = self.config.failure_policy
        if policy is None:
            yield from self._run_op_inner(
                op, participants, activation_pred, activation_succ, live=False
            )
            return op
        try:
            yield from self._run_op_inner(
                op, participants, activation_pred, activation_succ, live=True
            )
        except PeerDeadError as err:
            yield from self._repair_and_complete(
                op, participants, activation_succ, err
            )
        return op

    def _run_op_inner(
        self,
        op: OpState,
        participants: List[int],
        activation_pred: Optional[int],
        activation_succ: Optional[int],
        live: bool,
    ):
        cfg = self.config
        op.mark_phase("start")
        if len(participants) > 1:
            if live:
                yield from self._barrier_live(op, op.coll_id, participants)
            else:
                yield from self.ctrl.barrier(tag=op.coll_id, ranks=participants)
        op.mark_phase("sync")
        # Cutoff timer (§III-C): N/B + α, where N bounds the bytes that
        # must cross the receive path.  For Allgather the chain schedule
        # serializes roots, so the whole op buffer is the right N.  B is
        # the *effective* receive rate: the link, or the progress engine's
        # software rate when the CPU is the bottleneck (a too-eager timer
        # would trigger spurious recoveries on weak cores).
        n_workers = max(cfg.recv_workers or cfg.n_subgroups, 1)
        sw_rate = (
            self.cost.recv_rate(cfg.chunk_size, uc=cfg.transport == "uc") * n_workers
            if self.cost.per_recv_chunk > 0
            else float("inf")
        )
        recv_rate = min(self.fabric.link_bandwidth, sw_rate)
        expected = op.plan.buffer_len / recv_rate
        # Adaptive slack (core/reliability.py): starts at the static α,
        # tightens toward SRTT + K·RTTVAR as clean ops accumulate, backs
        # off after spurious recoveries.  ``adaptive_cutoff=False``
        # reproduces the paper's fixed-α timer exactly.
        slack = self.cutoff.slack() if cfg.adaptive_cutoff else cfg.cutoff_alpha
        armed_at = self.sim.now
        deadline = armed_at + expected + slack
        op.cutoff_deadline = deadline  # published for the batch-eligibility gate
        op.record_timer(expected + slack, "cutoff-arm")
        trc = self.trace
        if trc is not None:
            trc.instant("reliability.arm", armed_at,
                        {"timeout": expected + slack})
        if op.is_sender and len(participants) > 1:
            if activation_pred is not None:
                if live:
                    # Floor the suspicion at the op's own cutoff bound —
                    # activation legitimately takes up to a full collective
                    # to arrive.  Escalation (None) means the predecessor is
                    # alive but the packet was black-holed (e.g. a switch
                    # died before the SM sweep): proceed and multicast
                    # anyway, exactly like the repair path's chain splice.
                    yield from self._recv_live(
                        op, participants, MSG_ACTIVATE,
                        op.coll_id, activation_pred, "activation",
                        escalate_live=2,
                        min_timeout=max(deadline - self.sim.now, 0.0),
                    )
                else:
                    yield self.ctrl.recv(MSG_ACTIVATE, op.coll_id, activation_pred)
            # Flow-level fast-forward: when the whole multicast phase is
            # provably fault-inert, fold it analytically (sender batching,
            # tree busy chains, receiver datapaths) and jump straight to
            # the send-done instant.  Any gate failure falls back to the
            # packet-level path below with no state committed.
            ff = self.comm.ff
            ff_done = (
                ff.try_advance(self, op, participants) if ff is not None else None
            )
            if ff_done is None:
                yield from self.run_send(op)
            elif ff_done > self.sim.now:
                yield self.sim.wake_at(ff_done)
            op.mark_phase("send_done")
            if activation_succ is not None:
                if trc is not None:
                    trc.instant("seq.activate", self.sim.now,
                                {"succ": activation_succ})
                self.ctrl.send(activation_succ, MSG_ACTIVATE, op.coll_id)
                op.mark_phase("activated")
        recovery_deadline_abs: Optional[float] = None
        while not op.data_done.triggered:
            if live:
                self._check_live(op, participants, "data")
            remaining = max(deadline - self.sim.now, 1e-9)
            yield AnyOf(self.sim, [op.data_done, Timeout(self.sim, remaining)])
            if op.data_done.triggered:
                break
            if live:
                self._check_live(op, participants, "data")
            if trc is not None:
                trc.instant("reliability.fire", self.sim.now)
            if recovery_deadline_abs is None:
                op.mark_phase("recovery")
                recovery_deadline_abs = self.sim.now + cfg.recovery_deadline
            yield from self.run_recovery(
                op, participants, recovery_deadline_abs,
                monitor=participants if live else None,
            )
            deadline = self.sim.now + cfg.recovery_alpha
            op.cutoff_deadline = deadline
        if cfg.adaptive_cutoff:
            if op.stats["recoveries"]:
                self.cutoff.on_recovery()
            else:
                # Karn's rule: only clean ops contribute slack samples.
                self.cutoff.observe((self.sim.now - armed_at) - expected)
        op.mark_phase("data")
        if len(participants) > 1:
            me = participants.index(self.rank)
            left = participants[(me - 1) % len(participants)]
            right = participants[(me + 1) % len(participants)]
            self.ctrl.send(left, MSG_FINAL, op.coll_id)
            if live:
                # Escalation here means the right neighbour is alive but its
                # MSG_FINAL was lost on a crashed element before reroute —
                # its data phase is done (it reached the final ring), so
                # completing without the token is safe.
                yield from self._recv_live(op, participants, MSG_FINAL,
                                           op.coll_id, right, "final",
                                           escalate_live=2)
            else:
                yield self.ctrl.recv(MSG_FINAL, op.coll_id, right)
        op.mark_phase("final")
        if trc is not None:
            # Per-phase spans (Fig 10 critical-path attribution), emitted
            # once the whole lifecycle is known so each span is closed.
            ph = op.phases
            t_start, t_sync = ph["start"], ph["sync"]
            t_data, t_final = ph["data"], ph["final"]
            trc.complete("phase.sync", t_start, t_sync - t_start)
            trc.complete("phase.multicast", t_sync, t_data - t_sync)
            trc.complete("phase.handshake", t_data, t_final - t_data)
        if not op.op_done.triggered:  # a death notice may have abandoned us
            op.op_done.succeed()
        return op

    # ------------------------------------------------------ fail-stop repair

    def _repair_and_complete(self, op: OpState, participants: List[int],
                             activation_succ: Optional[int], err: PeerDeadError):
        """Degraded-mode completion after a confirmed fail-stop.

        Loops until the dead set stops growing mid-repair: re-plans the
        topology, splices this rank into the broadcast chain if its
        activation never arrived, completes the data phase among the
        survivors (unrecoverable chunks voided with validity-mask
        bookkeeping), and finishes **without** a survivor barrier or final
        ring — peers that already completed the healthy lifecycle cannot
        participate in either, and agreement is already carried by the
        reliable MSG_DEATH notices.
        """
        cfg = self.config
        trc = self.trace
        if trc is not None:
            trc.instant("repair.replan", self.sim.now,
                        {"coll_id": op.coll_id, "phase": err.phase,
                         "dead": sorted(err.dead)})
        while True:
            if op.aborted:
                # A death notice voided this op from under us (e.g. a
                # partitioned rank the survivors agreed is dead) — nothing
                # left to repair.
                return op
            dead = set(self._dead_in(participants))
            survivors = [p for p in participants if p not in dead]
            if cfg.failure_policy == "abort":
                op.abandon()
                raise CollectiveAbortedError(
                    f"collective aborted on rank {self.rank}: peer(s) "
                    f"{sorted(dead)} fail-stopped",
                    rank=self.rank, coll_id=op.coll_id, kind=op.kind,
                    phase=err.phase, dead_ranks=dead,
                    missing_chunks=op.missing_chunks, n_chunks=op.n_chunks,
                )
            self.comm.repair_topology()
            try:
                if (op.is_sender and "send_done" not in op.phases
                        and len(survivors) > 1):
                    # Chain splice: our activation never arrived (the chain
                    # broke at the dead rank) — multicast now, over the
                    # repaired tree.
                    yield from self.run_send(op)
                    op.mark_phase("send_done")
                if (activation_succ is not None
                        and "activated" not in op.phases
                        and activation_succ in survivors):
                    # Keep the chain moving: our successor is still waiting
                    # on the activation we never got around to sending.
                    self.ctrl.send(activation_succ, MSG_ACTIVATE, op.coll_id)
                    op.mark_phase("activated")
                yield from self._degraded_fetch(op, survivors, dead)
                break
            except PeerDeadError as err2:
                err = err2  # the dead set grew mid-repair; replan
                continue
        op.dead_ranks |= dead
        if "sync" not in op.phases:
            op.mark_phase("sync")
        if "data" not in op.phases:
            op.mark_phase("data")
        op.mark_phase("final")
        if not op.op_done.triggered:  # a death notice may have abandoned us
            op.op_done.succeed()
        return op

    def _degraded_fetch(self, op: OpState, survivors: List[int], dead: Set[int]):
        """Finish the data phase among *survivors*: void chunks whose only
        source died, then pull everything else through the normal fetch
        ring restricted to the survivors."""
        cfg = self.config
        self._void_unrecoverable(op, survivors, dead)
        op.maybe_complete()
        if len(survivors) < 2 and not op.data_done.triggered:
            # Sole survivor: nothing left to fetch from — whatever is still
            # missing died with its only sources.
            for start, count in op.bitmap.missing_runs():
                op.mark_void(start, count)
            op.maybe_complete()
            return
        deadline_abs = self.sim.now + cfg.recovery_deadline
        while not op.data_done.triggered:
            yield from self.run_recovery(op, survivors, deadline_abs,
                                         monitor=survivors)
            # New chunks may have propagated to (or died with) peers since
            # the last sweep; re-derive what is permanently gone.
            self._void_unrecoverable(op, survivors, dead)
            op.maybe_complete()

    def _void_unrecoverable(self, op: OpState, survivors: List[int],
                            dead: Set[int]) -> None:
        """Void every missing chunk that (a) was a dead rank's to multicast
        and (b) no survivor holds placed — its last copy died with the
        host.  Chunks outside dead send ranges are never voided: their
        (surviving) owner will still multicast or serve them."""
        dead_ranges = []
        for d in sorted(dead):
            peer_op = self.comm.engines[d].ops.get(op.coll_id)
            if peer_op is not None and peer_op.send_hi > peer_op.send_lo:
                dead_ranges.append((peer_op.send_lo, peer_op.send_hi))
        if not dead_ranges:
            return
        surv_ops = [
            o for o in (
                self.comm.engines[s].ops.get(op.coll_id)
                for s in survivors if s != self.rank
            ) if o is not None
        ]
        voided = 0
        for start, count in op.bitmap.missing_runs():
            for lo, hi in dead_ranges:
                s, e = max(start, lo), min(start + count, hi)
                run_lo = None
                for p in range(s, e):
                    if any(o.placed.test(p) for o in surv_ops):
                        if run_lo is not None:
                            op.mark_void(run_lo, p - run_lo)
                            voided += p - run_lo
                            run_lo = None
                    elif run_lo is None:
                        run_lo = p
                if run_lo is not None:
                    op.mark_void(run_lo, e - run_lo)
                    voided += e - run_lo
        if voided and self.trace is not None:
            self.trace.instant("repair.void", self.sim.now,
                               {"coll_id": op.coll_id, "chunks": voided})
