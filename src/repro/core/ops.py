"""Per-rank state of one in-flight collective operation.

An :class:`OpState` is what the progress engine's workers update on every
completion: the reliability bitmap, outstanding staging-copy count, phase
timestamps and statistics.  The same structure backs both Broadcast and
Allgather — an Allgather is simply an op whose "send range" is the rank's
own shard of the global receive buffer and whose bitmap spans all shards
(paper §IV: Allgather as a composition of Broadcasts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.bitmap import Bitmap
from repro.core.chunking import ChunkPlan
from repro.core.subgroups import SubgroupPlan
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.memory import MemoryRegion
    from repro.sim.engine import Simulator

__all__ = ["OpState", "RKEY_BASE"]

#: Base of the symmetric rkey space: op buffers are registered with key
#: ``RKEY_BASE + coll_id`` on every participant, so the fetch layer can
#: RDMA-read a neighbor's buffer at the same (key, offset) it uses locally.
RKEY_BASE = 1 << 20


@dataclass
class OpState:
    """One collective operation as seen by one rank."""

    sim: "Simulator"
    coll_id: int
    kind: str  # 'broadcast' | 'allgather'
    rank: int
    comm_size: int
    mr: "MemoryRegion"  #: the op buffer (send buffer on a bcast root,
    #: receive buffer otherwise), symmetric rkey
    plan: ChunkPlan  #: global chunk plan over the op buffer
    subgroups: SubgroupPlan  #: partition of a *per-sender* block
    send_lo: int = 0  #: first PSN this rank multicasts
    send_hi: int = 0  #: one past the last PSN this rank multicasts
    root: Optional[int] = None  #: broadcast root rank (None for allgather)

    bitmap: Bitmap = field(init=False)
    #: chunks whose bytes have actually landed in the op buffer (a chunk is
    #: *tracked* in ``bitmap`` at CQE time but only *placed* once its
    #: staging→user DMA drained; the fetch layer may only read placed
    #: chunks from a neighbor)
    placed: Bitmap = field(init=False)
    outstanding_copies: int = field(init=False, default=0)
    data_done: Event = field(init=False)
    op_done: Event = field(init=False)
    phases: Dict[str, float] = field(init=False)
    stats: Dict[str, int] = field(init=False)
    #: fetch rounds spent per recovery invocation (index = invocation)
    retry_histogram: List[int] = field(init=False)
    #: cutoff/recovery timer decisions: (virtual time, timeout armed, why)
    timer_trace: List[Tuple[float, float, str]] = field(init=False)
    #: absolute instant the controller's cutoff timer will next fire
    #: (+inf until armed).  The receiver-batch eligibility gate refuses a
    #: batch whose replay window straddles this instant, so no recovery
    #: can read or mutate the bitmap mid-replay.
    cutoff_deadline: float = field(init=False, default=float("inf"))
    #: per-chunk validity (True = real payload landed).  ``None`` until the
    #: first :meth:`mark_void` — the healthy path never allocates it.
    valid_mask: Optional[np.ndarray] = field(init=False, default=None)
    #: ranks this op completed *without* (degraded-mode membership record)
    dead_ranks: Set[int] = field(init=False)
    #: set by :meth:`abandon`: the op was torn down (its rank died or the
    #: collective aborted) and its phase record is not meaningful
    aborted: bool = field(init=False, default=False)
    #: completion holds taken by the flow-level fast-forward layer: a fold
    #: commits its bitmap bits eagerly but the phase only *ends* at the
    #: fold's finisher event, so ``data_done`` must not fire in between
    ff_hold: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        n = self.plan.n_chunks
        if not 0 <= self.send_lo <= self.send_hi <= n:
            raise ValueError("invalid send range")
        self.bitmap = Bitmap(n)
        self.placed = Bitmap(n)
        self.data_done = Event(self.sim)
        self.op_done = Event(self.sim)
        self.phases = {}
        self.stats = {
            "duplicates": 0,
            "recovered_chunks": 0,
            "recoveries": 0,
            "stray_cqes": 0,
            "chunks_received": 0,
            "fetch_rounds": 0,
            "fetch_ack_timeouts": 0,
            "neighbor_escalations": 0,
        }
        self.retry_histogram = []
        self.timer_trace = []
        self.dead_ranks = set()
        # This rank's own chunks are present by construction.
        self.bitmap.set_range(self.send_lo, self.send_hi - self.send_lo)
        self.placed.set_range(self.send_lo, self.send_hi - self.send_lo)
        self.maybe_complete()

    # ------------------------------------------------------------ accessors

    @property
    def n_chunks(self) -> int:
        return self.plan.n_chunks

    @property
    def own_chunks(self) -> int:
        return self.send_hi - self.send_lo

    @property
    def expected_recv_bytes(self) -> int:
        """Bytes this rank must receive from the network."""
        own_lo_off = self.send_lo * self.plan.chunk_size
        own_hi_off = min(self.send_hi * self.plan.chunk_size, self.plan.buffer_len)
        return self.plan.buffer_len - (own_hi_off - own_lo_off)

    @property
    def is_sender(self) -> bool:
        return self.send_hi > self.send_lo

    @property
    def complete(self) -> bool:
        return self.data_done.triggered

    # -------------------------------------------------------------- updates

    def mark_phase(self, name: str) -> None:
        self.phases[name] = self.sim.now

    def record_timer(self, timeout: float, reason: str) -> None:
        """Log one cutoff/recovery timer decision for post-mortem telemetry."""
        self.timer_trace.append((self.sim.now, timeout, reason))

    @property
    def missing_chunks(self) -> int:
        return self.n_chunks - self.bitmap.count

    def maybe_complete(self) -> None:
        """Trigger ``data_done`` once every chunk is present *and* every
        staging copy has drained."""
        self.sim.progress += 1
        if self.ff_hold:
            return
        if (
            not self.data_done.triggered
            and self.bitmap.count == self.n_chunks
            and self.outstanding_copies == 0
        ):
            self.data_done.succeed()

    # ----------------------------------------------------------- fail-stop

    def mark_void(self, start: int, count: int) -> None:
        """Record chunks ``[start, start+count)`` as permanently missing.

        Used by degraded-mode completion when the chunks' only source fail-
        stopped: the *tracked* bitmap is filled (so ``data_done`` can fire)
        but ``placed`` is **not** — peers must never fetch the garbage —
        and ``valid_mask`` records the hole for the caller.
        """
        if count <= 0:
            return
        if self.valid_mask is None:
            self.valid_mask = np.ones(self.n_chunks, dtype=bool)
        self.valid_mask[start:start + count] = False
        self.bitmap.set_range(start, count)

    @property
    def void_chunks(self) -> int:
        """Chunks marked permanently missing by :meth:`mark_void`."""
        if self.valid_mask is None:
            return 0
        return int(self.n_chunks - int(self.valid_mask.sum()))

    def abandon(self) -> None:
        """Tear the op down without completing it (its rank died, or the
        failure policy aborted the collective).  Completion events are
        force-succeeded so communicator-level drains terminate."""
        self.aborted = True
        if not self.data_done.triggered:
            self.data_done.succeed()
        if not self.op_done.triggered:
            self.op_done.succeed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OpState {self.kind} cid={self.coll_id} rank={self.rank} "
            f"{self.bitmap.count}/{self.n_chunks}>"
        )
