"""Buffer fragmentation and immediate-data encoding.

The Broadcast root chunks its send buffer into MTU-sized datagrams and
tags each with a packet sequence number (PSN) carried in the 32-bit
immediate field of the RDMA send (paper §III-A).  The receive side uses
the PSN to place the chunk and to index the reliability bitmap — this is
what makes the datapath tolerant of out-of-order delivery.

:class:`ImmLayout` splits the 32 immediate bits between the PSN and a
collective id (paper Fig 7 analyses this trade-off: more PSN bits address
a larger receive buffer; the remaining bits distinguish concurrent
collectives).  :class:`ChunkPlan` enumerates chunk boundaries for a buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["ImmLayout", "ChunkPlan"]

IMM_BITS = 32


@dataclass(frozen=True)
class ImmLayout:
    """Bit allocation inside the 32-bit CQE immediate value.

    ``psn_bits`` low bits carry the chunk index within the collective's
    receive buffer; the remaining high bits carry the collective id.
    """

    psn_bits: int = 24

    def __post_init__(self) -> None:
        if not 1 <= self.psn_bits <= IMM_BITS:
            raise ValueError("psn_bits must be within [1, 32]")

    @property
    def id_bits(self) -> int:
        return IMM_BITS - self.psn_bits

    @property
    def max_psns(self) -> int:
        """Number of addressable chunks."""
        return 1 << self.psn_bits

    @property
    def max_collectives(self) -> int:
        """Number of distinguishable concurrent collectives."""
        return 1 << self.id_bits

    def max_buffer_bytes(self, chunk_size: int) -> int:
        """Largest receive buffer addressable with this layout (Fig 7)."""
        return self.max_psns * chunk_size

    def bitmap_bytes(self) -> int:
        """Bitmap size needed to track every addressable PSN (Fig 7)."""
        return self.max_psns // 8

    # -------------------------------------------------------------- encoding

    def encode(self, psn: int, coll_id: int = 0) -> int:
        if not 0 <= psn < self.max_psns:
            raise ValueError(f"PSN {psn} out of range for {self.psn_bits} bits")
        if not 0 <= coll_id < self.max_collectives:
            raise ValueError(f"collective id {coll_id} out of range for {self.id_bits} bits")
        return (coll_id << self.psn_bits) | psn

    def decode(self, imm: int) -> Tuple[int, int]:
        """``imm`` → ``(psn, coll_id)``."""
        if not 0 <= imm < (1 << IMM_BITS):
            raise ValueError("immediate value must fit in 32 bits")
        return imm & (self.max_psns - 1), imm >> self.psn_bits


@dataclass(frozen=True)
class ChunkPlan:
    """Chunk boundaries of a buffer: ``n_chunks`` pieces of ``chunk_size``
    (the final chunk may be short).  Fragmentation is zero-copy: consumers
    slice views out of the registered buffer using these bounds."""

    buffer_len: int
    chunk_size: int

    def __post_init__(self) -> None:
        if self.buffer_len < 0:
            raise ValueError("buffer_len must be non-negative")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    @property
    def n_chunks(self) -> int:
        return -(-self.buffer_len // self.chunk_size) if self.buffer_len else 0

    def bounds(self, i: int) -> Tuple[int, int]:
        """``(offset, length)`` of chunk *i*."""
        if not 0 <= i < self.n_chunks:
            raise IndexError(f"chunk {i} out of range (n_chunks={self.n_chunks})")
        off = i * self.chunk_size
        return off, min(self.chunk_size, self.buffer_len - off)

    def __iter__(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(psn, offset, length)`` triples."""
        for i in range(self.n_chunks):
            off, ln = self.bounds(i)
            yield i, off, ln

    def chunk_of_offset(self, offset: int) -> int:
        if not 0 <= offset < max(self.buffer_len, 1):
            raise IndexError("offset outside buffer")
        return offset // self.chunk_size
