"""RC control plane: synchronization and reliability-layer messaging.

The slow path of the protocol (paper §III-C) runs over reliable connected
QPs: the RNR synchronization barrier before multicasting, activation
signals between chain neighbors (§IV-A), fetch requests/ACKs of the
recovery layer, and the final-handshake packets in the virtual ring.

Design notes
------------
* Control QPs are created lazily and pairwise by the communicator; each
  rank's control QPs share one receive CQ drained by a single dispatcher
  process (mirroring the single progress thread of the UCC backend).
* Messages are tiny typed tuples sent as IB *inline* sends — no send-side
  buffer lifetime management.
* The RNR barrier is a dissemination barrier: ``⌈log2 P⌉`` rounds, round k
  sending to ``(me + 2^k) mod P`` and waiting on ``(me − 2^k) mod P``.
  (The paper uses recursive doubling; dissemination has the same round
  count and works for any P, including the 188-rank testbed.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.nic import CompletionQueue, QueuePair, RecvWR, SendWR
from repro.sim.events import Event
from repro.sim.primitives import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.nic import Nic
    from repro.sim.engine import Simulator

__all__ = [
    "ControlPlane",
    "CtrlMessage",
    "MSG_BARRIER",
    "MSG_ACTIVATE",
    "MSG_FETCH_REQ",
    "MSG_FETCH_ACK",
    "MSG_FINAL",
    "MSG_PING",
    "MSG_PONG",
    "MSG_DEATH",
]

MSG_BARRIER = 1
MSG_ACTIVATE = 2
MSG_FETCH_REQ = 3
MSG_FETCH_ACK = 4
MSG_FINAL = 5
#: liveness probe — answered by the dispatcher itself (auto-PONG), so a
#: host is "alive" iff its progress thread still drains its control CQ
MSG_PING = 6
MSG_PONG = 7
#: death notice: ``key`` = the communicator rank confirmed dead.  Consumed
#: by the engine-installed ``on_death`` callback, never by an inbox.
MSG_DEATH = 8

#: message types delivered to an any-source inbox (servers listen for
#: requests regardless of the requester's rank)
_ANY_SOURCE = {MSG_FETCH_REQ}

_SLOT_BYTES = 32
_SLOTS_PER_QP = 16
_WORDS = 6  # mtype, key, src_rank, a0, a1, a2


class CtrlMessage(tuple):
    """``(src_rank, mtype, key, args)`` — a decoded control message."""

    __slots__ = ()

    def __new__(cls, src_rank: int, mtype: int, key: int, args: Tuple[int, ...]):
        return super().__new__(cls, (src_rank, mtype, key, args))

    @property
    def src(self) -> int:
        return self[0]

    @property
    def mtype(self) -> int:
        return self[1]

    @property
    def key(self) -> int:
        return self[2]

    @property
    def args(self) -> Tuple[int, ...]:
        return self[3]


class ControlPlane:
    """Per-rank control-plane endpoint.

    Parameters
    ----------
    sim, nic:
        Simulator and this rank's NIC.
    rank:
        Communicator-relative rank of this endpoint.
    pair_fn:
        ``pair_fn(peer_rank) -> QueuePair`` — supplied by the communicator;
        creates/returns the local RC QP connected to *peer_rank*'s control
        plane (creating the remote end too).
    """

    def __init__(
        self,
        sim: "Simulator",
        nic: "Nic",
        rank: int,
        pair_fn: Callable[[int], QueuePair],
        per_message_cost: float = 0.0,
    ) -> None:
        self.sim = sim
        self.nic = nic
        self.rank = rank
        self._pair_fn = pair_fn
        self.per_message_cost = per_message_cost
        self.recv_cq: CompletionQueue = nic.create_cq(f"ctrl-r{rank}")
        self.qps: Dict[int, QueuePair] = {}
        self._slot_mr = None
        self._slot_qp: Dict[int, QueuePair] = {}
        self._n_slots = 0
        self._inboxes: Dict[tuple, Store] = {}
        self.messages_sent = 0
        self.messages_received = 0
        #: peer rank → virtual time of the last message heard from it.
        #: Every control message doubles as a liveness heartbeat, so the
        #: suspicion logic can often clear a peer without spending a probe.
        self.last_heard: Dict[int, float] = {}
        #: ``fn(msg: CtrlMessage)`` invoked for MSG_DEATH notices (installed
        #: by the progress engine); None drops them
        self.on_death: Optional[Callable[[CtrlMessage], None]] = None
        self._dispatch_proc = sim.spawn(self._dispatch_loop(), name=f"ctrl-dispatch-r{rank}")

    # -------------------------------------------------------------- plumbing

    def adopt_qp(self, peer_rank: int, qp: QueuePair) -> None:
        """Register a connected control QP toward *peer_rank* and post its
        receive slots (called by the communicator when pairing)."""
        if peer_rank in self.qps:
            raise ValueError(f"rank {self.rank}: ctrl QP to {peer_rank} already exists")
        self.qps[peer_rank] = qp
        base = self._n_slots
        self._n_slots += _SLOTS_PER_QP
        mr = self.nic.memory.register(_SLOTS_PER_QP * _SLOT_BYTES)
        for i in range(_SLOTS_PER_QP):
            slot = base + i
            self._slot_qp[slot] = qp
            qp.post_recv(
                RecvWR(wr_id=slot, mr_key=mr.key, offset=i * _SLOT_BYTES, length=_SLOT_BYTES)
            )
        # Keep per-QP MRs; remember via closure on the WRs (offsets local).
        if self._slot_mr is None:
            self._slot_mr = {}
        self._slot_mr[qp.qpn] = mr

    def _qp_to(self, peer_rank: int) -> QueuePair:
        qp = self.qps.get(peer_rank)
        if qp is None:
            qp = self._pair_fn(peer_rank)
        return qp

    # ------------------------------------------------------------- messaging

    def send(self, dst_rank: int, mtype: int, key: int, args: Sequence[int] = ()) -> None:
        """Post a control message (non-blocking, reliable, ordered per peer)."""
        if len(args) > _WORDS - 3:
            raise ValueError(f"control message supports up to {_WORDS - 3} args")
        words = np.zeros(_WORDS, dtype=np.uint32)
        words[0] = mtype
        words[1] = key
        words[2] = self.rank
        for i, a in enumerate(args):
            words[3 + i] = a
        qp = self._qp_to(dst_rank)
        qp.post_send(SendWR(wr_id=0, verb="send", inline_data=words, signaled=False))
        self.messages_sent += 1

    def _inbox(self, mtype: int, key: int, src: Optional[int]) -> Store:
        # Any-source types (servers) get one inbox per type; the message
        # itself carries the key and source.
        ib_key = (mtype,) if mtype in _ANY_SOURCE else (mtype, key, src)
        store = self._inboxes.get(ib_key)
        if store is None:
            store = self._inboxes[ib_key] = Store(self.sim)
        return store

    def recv(self, mtype: int, key: int = 0, src: Optional[int] = None) -> Event:
        """Event yielding the next :class:`CtrlMessage` of this signature.

        ``src`` is required except for any-source types (FETCH_REQ), whose
        single inbox receives requests from every rank and collective.
        """
        if mtype not in _ANY_SOURCE and src is None:
            raise ValueError(f"mtype {mtype} requires an explicit source rank")
        return self._inbox(mtype, key, src).get()

    def _dispatch_loop(self):
        mr_of = lambda qp: self._slot_mr[qp.qpn]  # noqa: E731
        while True:
            yield self.recv_cq.wait()
            for cqe in self.recv_cq.poll():
                if self.per_message_cost > 0.0:
                    # Progress-thread cycles spent on the control path.
                    from repro.sim.events import Timeout

                    yield Timeout(self.sim, self.per_message_cost)
                slot = cqe.wr_id
                qp = self._slot_qp[slot]
                mr = mr_of(qp)
                local = slot % _SLOTS_PER_QP
                words = mr.view(local * _SLOT_BYTES, _WORDS * 4).view(np.uint32)
                msg = CtrlMessage(
                    src_rank=int(words[2]),
                    mtype=int(words[0]),
                    key=int(words[1]),
                    args=tuple(int(w) for w in words[3:_WORDS]),
                )
                # Re-post the cached WR immediately (slot content consumed).
                qp.post_recv(
                    RecvWR(wr_id=slot, mr_key=mr.key, offset=local * _SLOT_BYTES,
                           length=_SLOT_BYTES)
                )
                self.messages_received += 1
                self.last_heard[msg.src] = self.sim.now
                if msg.mtype == MSG_PING:
                    # Liveness probe: the dispatcher answers directly — the
                    # PONG proves this rank's progress loop is alive, which
                    # is exactly the fail-stop property being tested.
                    self.send(msg.src, MSG_PONG, msg.key)
                    continue
                if msg.mtype == MSG_DEATH:
                    if self.on_death is not None:
                        self.on_death(msg)
                    continue
                self._inbox(msg.mtype, msg.key, msg.src).put(msg)

    # --------------------------------------------------------------- barrier

    def barrier(self, tag: int, ranks: Optional[List[int]] = None):
        """Dissemination barrier among *ranks* (generator; ``yield from`` it).

        ``tag`` must be unique per logical barrier instance (e.g. the
        collective id); rounds are disambiguated in the key's low bits.

        *ranks* is required: every participant must pass the **same**
        ordered list.  Deriving it from the set of already-created control
        QPs (as an earlier revision did) is wrong in general — lazy QP
        creation means different ranks can observe different peer sets,
        deadlocking the dissemination pattern.
        """
        if ranks is None:
            raise ValueError(
                "ControlPlane.barrier requires an explicit, identical `ranks` "
                "list on every participant; deriving it from the lazily "
                "created control QPs is unreliable"
            )
        me = ranks.index(self.rank)
        p = len(ranks)
        k = 1
        rnd = 0
        while k < p:
            dst = ranks[(me + k) % p]
            src = ranks[(me - k) % p]
            key = (tag << 6) | rnd
            self.send(dst, MSG_BARRIER, key)
            msg = yield self.recv(MSG_BARRIER, key, src)
            assert msg.mtype == MSG_BARRIER
            k <<= 1
            rnd += 1
        return None
