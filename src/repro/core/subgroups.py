"""Multicast subgroup partitioning — packet parallelism (paper §IV-C).

The Allgather receive path must absorb ``(P-1)×`` more bytes than the send
path injects.  To scale it, the traffic is spread over several *multicast
subgroups* (replicated multicast groups), each carrying a contiguous block
of every sender's buffer.  Each receive worker polls the CQ of one or more
subgroups, keeping bitmap updates thread-local.

:class:`SubgroupPlan` is the pure arithmetic: which chunk of a sender's
buffer travels on which subgroup, and how workers map to subgroups
(paper's example: 1 send worker serving 4 send QPs, 4 receive workers
mapped one-to-one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.chunking import ChunkPlan

__all__ = ["SubgroupPlan"]


@dataclass(frozen=True)
class SubgroupPlan:
    """Partition of a per-sender buffer across multicast subgroups.

    The buffer's chunks are divided into ``n_subgroups`` contiguous blocks;
    block *j* travels on subgroup *j*.  Contiguity is what keeps receive
    bitmaps thread-local (§IV-C).
    """

    n_chunks: int
    n_subgroups: int = 1

    def __post_init__(self) -> None:
        if self.n_subgroups < 1:
            raise ValueError("n_subgroups must be >= 1")
        if self.n_chunks < 0:
            raise ValueError("n_chunks must be non-negative")

    @property
    def chunks_per_subgroup(self) -> int:
        """Block size in chunks (last block may be short)."""
        return -(-self.n_chunks // self.n_subgroups) if self.n_chunks else 0

    def subgroup_of(self, psn: int) -> int:
        """Which subgroup carries chunk *psn* of a sender's buffer."""
        if not 0 <= psn < self.n_chunks:
            raise IndexError(f"psn {psn} out of range ({self.n_chunks})")
        return min(psn // max(self.chunks_per_subgroup, 1), self.n_subgroups - 1)

    def chunk_range(self, subgroup: int) -> Tuple[int, int]:
        """Half-open chunk index range ``[lo, hi)`` carried by *subgroup*."""
        if not 0 <= subgroup < self.n_subgroups:
            raise IndexError(f"subgroup {subgroup} out of range ({self.n_subgroups})")
        step = self.chunks_per_subgroup
        lo = min(subgroup * step, self.n_chunks)
        hi = min(lo + step, self.n_chunks)
        return lo, hi

    def chunks_in(self, subgroup: int) -> int:
        lo, hi = self.chunk_range(subgroup)
        return hi - lo

    def split(self, plan: ChunkPlan) -> List[Tuple[int, int, int]]:
        """Byte ranges per subgroup: ``(subgroup, offset, length)``."""
        out = []
        for sg in range(self.n_subgroups):
            lo, hi = self.chunk_range(sg)
            if hi <= lo:
                out.append((sg, 0, 0))
                continue
            off = lo * plan.chunk_size
            end_off, end_len = plan.bounds(hi - 1)
            out.append((sg, off, end_off + end_len - off))
        return out

    @staticmethod
    def worker_mapping(n_subgroups: int, n_workers: int) -> List[List[int]]:
        """Round-robin assignment of subgroups to receive workers.

        Returns ``n_workers`` lists of subgroup indices.  With
        ``n_workers == n_subgroups`` this is the paper's one-to-one map.
        """
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        mapping: List[List[int]] = [[] for _ in range(n_workers)]
        for sg in range(n_subgroups):
            mapping[sg % n_workers].append(sg)
        return mapping
