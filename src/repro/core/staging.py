"""Receive-side staging ring buffer (paper §III-B).

Out-of-order delivery means the user's receive buffer cannot be posted to
the network directly: chunk *i+1* would land in slot *i* after a drop or
reorder, corrupting the buffer.  Instead, every datagram is received into
a slot of a staging ring; the PSN in the completion's immediate data then
tells the datapath *where* in the user buffer the chunk belongs, and a
non-blocking DMA copy moves it there while further receives proceed.

Slot lifecycle::

    FREE --post_recv--> POSTED --CQE--> HELD --copy done, repost--> POSTED
"""

from __future__ import annotations

import collections
from typing import TYPE_CHECKING, Deque, Dict

import numpy as np

from repro.net.nic import QueuePair, RecvWR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.nic import Nic

__all__ = ["StagingRing"]

_FREE, _POSTED, _HELD = 0, 1, 2


class StagingRing:
    """A ring of receive slots backed by one registered memory region.

    The work-request id of each posted receive is the slot index, so a CQE
    maps back to its slot in O(1).  All receive WRs are cached and re-posted
    verbatim — the "fast re-posting" optimization of paper §V-A.
    """

    def __init__(self, nic: "Nic", n_slots: int, slot_size: int) -> None:
        if n_slots < 1 or slot_size < 1:
            raise ValueError("n_slots and slot_size must be >= 1")
        self.nic = nic
        self.n_slots = n_slots
        self.slot_size = slot_size
        self.mr = nic.memory.register(n_slots * slot_size)
        self._state = [_FREE] * n_slots
        self._free: Deque[int] = collections.deque(range(n_slots))
        #: cached receive work requests, one per slot (paper §V-A)
        self._wrs: Dict[int, RecvWR] = {
            s: RecvWR(wr_id=s, mr_key=self.mr.key, offset=s * slot_size, length=slot_size)
            for s in range(n_slots)
        }
        self.reposts = 0
        # Incremental occupancy counters: O(1) reads so per-CQE telemetry
        # (the staging.hold trace counter) never scans the slot array.
        self._posted_count = 0
        self._held_count = 0

    @property
    def nbytes(self) -> int:
        """Staging memory footprint (paper §III-D: 4 MiB sustains 200 Gbit/s)."""
        return self.n_slots * self.slot_size

    @property
    def posted(self) -> int:
        return self._posted_count

    @property
    def held(self) -> int:
        return self._held_count

    # ------------------------------------------------------------ lifecycle

    def prime(self, qp: QueuePair) -> int:
        """Post every free slot to *qp*'s receive queue; returns how many."""
        wrs = []
        while self._free:
            slot = self._free.popleft()
            wrs.append(self._wrs[slot])
            self._state[slot] = _POSTED
        if wrs:
            qp.post_recv_batch(wrs)
            self._posted_count += len(wrs)
        return len(wrs)

    def on_cqe_batch(self, slots) -> list:
        """Bulk :meth:`on_cqe`: mark every slot held, return their views.

        The receiver-batch fast path consumes a whole CQE train in one
        wake; marking the train's slots held in one call keeps the
        occupancy counters O(1) per batch instead of O(1) per slot."""
        views = []
        state = self._state
        for slot in slots:
            self._check(slot)
            if state[slot] != _POSTED:
                raise RuntimeError(f"slot {slot} completed but was not posted")
            state[slot] = _HELD
            views.append(self.slot_view(slot))
        self._posted_count -= len(views)
        self._held_count += len(views)
        return views

    def on_cqe(self, slot: int) -> np.ndarray:
        """Mark *slot* as held by the datapath; returns its memory view."""
        self._check(slot)
        if self._state[slot] != _POSTED:
            raise RuntimeError(f"slot {slot} completed but was not posted")
        self._state[slot] = _HELD
        self._posted_count -= 1
        self._held_count += 1
        return self.slot_view(slot)

    def repost(self, slot: int, qp: QueuePair) -> None:
        """Return a held slot to the receive queue (after its DMA drained)."""
        self._check(slot)
        if self._state[slot] != _HELD:
            raise RuntimeError(f"slot {slot} reposted but was not held")
        qp.post_recv_cached(self._wrs[slot])
        self._state[slot] = _POSTED
        self._held_count -= 1
        self._posted_count += 1
        self.reposts += 1

    def slot_view(self, slot: int, length: int | None = None) -> np.ndarray:
        self._check(slot)
        return self.mr.view(slot * self.slot_size, length or self.slot_size)

    def _check(self, slot: int) -> None:
        if not 0 <= slot < self.n_slots:
            raise IndexError(f"slot {slot} out of range ({self.n_slots})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StagingRing slots={self.n_slots}x{self.slot_size}B posted={self.posted}>"
