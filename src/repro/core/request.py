"""The unified collective submission surface.

Every collective a :class:`~repro.core.communicator.Communicator` can run
is described by one :class:`CollectiveRequest` — a validated, declarative
record of *what* to run (kind, payload, root, reduction op) plus the
substrate knobs the baseline-backed kinds need (cost model, segment/chunk
sizes).  ``Communicator.submit(request)`` dispatches on
:class:`CollectiveKind` and returns a :class:`CollectiveHandle`; the
per-kind convenience methods (``broadcast``, ``allgather``, …) are thin
wrappers that build the request for you.

Validation is *eager*: illegal kind/root/dtype/reduction-op combinations
raise :class:`CollectiveRequestError` at construction time, long before
any simulator state is touched — a rejected request never half-registers
buffers or burns a collective id.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

import numpy as np

__all__ = [
    "CollectiveKind",
    "CollectiveRequest",
    "CollectiveRequestError",
    "CollectiveHandle",
    "PhaseStats",
    "ROOTED_KINDS",
    "REDUCING_KINDS",
]


class CollectiveKind(str, enum.Enum):
    """The collectives a :class:`Communicator` can run.

    A ``str`` subclass so existing ``result.kind == "allgather"``
    comparisons keep working, while payload accounting dispatches on the
    enum and **raises** on unknown kinds instead of silently falling back
    to broadcast math.
    """

    BROADCAST = "broadcast"
    ALLGATHER = "allgather"
    REDUCE_SCATTER = "reduce_scatter"
    REDUCE = "reduce"
    ALLREDUCE = "allreduce"
    ALLTOALL = "alltoall"

    def __str__(self) -> str:  # "broadcast", not "CollectiveKind.BROADCAST"
        return self.value


#: kinds that take (and require) a root rank
ROOTED_KINDS = frozenset({CollectiveKind.BROADCAST, CollectiveKind.REDUCE})
#: kinds that apply a reduction operator to float payloads
REDUCING_KINDS = frozenset(
    {CollectiveKind.REDUCE_SCATTER, CollectiveKind.REDUCE, CollectiveKind.ALLREDUCE}
)


class CollectiveRequestError(ValueError):
    """A :class:`CollectiveRequest` combined fields illegally (unknown
    kind, missing/forbidden root, unsupported reduction op or dtype).

    A ``ValueError`` subclass so pre-existing ``except ValueError``
    call sites keep working, but typed so new code can catch request
    mistakes specifically.
    """


@dataclass(frozen=True)
class CollectiveRequest:
    """A validated description of one collective to submit.

    Parameters
    ----------
    kind:
        A :class:`CollectiveKind` or its string value.  Unknown strings
        raise :class:`CollectiveRequestError` — the old habit of threading
        raw ``kind=`` strings into op state is deprecated; requests are the
        one place a kind string may enter the system.
    data:
        Broadcast takes the root's single array; every other kind takes a
        sequence of per-rank contributions (length checked at submit time
        against the communicator size).
    root:
        Required for the rooted kinds (broadcast, reduce); must be left
        ``None`` for the symmetric kinds (allgather, reduce_scatter,
        allreduce, alltoall).  Range-checked at submit time.
    op:
        Reduction operator for the reducing kinds; only ``"sum"`` is
        supported (the INC substrate reduces float32 sums).  Must be left
        ``None`` for non-reducing kinds.
    algorithm:
        Substrate selector where one exists (reduce_scatter/allreduce:
        ``"inc"`` or ``"ring"``); ``None`` picks the kind's default.
    cost:
        Host cost model for the baseline-substrate kinds (RC P2P / INC
        datapaths are independent of the multicast engine's model).
    segment_bytes:
        INC tree segment size (reducing kinds).
    chunk_bytes:
        RDMA write size for alltoall blocks (defaults to one whole block).
    """

    kind: CollectiveKind
    data: Any
    root: Optional[int] = None
    op: Optional[str] = None
    algorithm: Optional[str] = None
    cost: Optional[Any] = None
    segment_bytes: int = 4096
    chunk_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        try:
            kind = CollectiveKind(self.kind)
        except ValueError:
            raise CollectiveRequestError(
                f"unknown collective kind {self.kind!r}; valid kinds: "
                f"{', '.join(k.value for k in CollectiveKind)}"
            ) from None
        object.__setattr__(self, "kind", kind)

        if kind in ROOTED_KINDS:
            if self.root is None:
                raise CollectiveRequestError(f"{kind} requires a root rank")
            if not isinstance(self.root, (int, np.integer)) or self.root < 0:
                raise CollectiveRequestError(
                    f"{kind} root must be a non-negative rank, got {self.root!r}"
                )
        elif self.root is not None:
            raise CollectiveRequestError(
                f"{kind} is rootless; root={self.root!r} is not allowed"
            )

        if kind in REDUCING_KINDS:
            op = self.op if self.op is not None else "sum"
            if op != "sum":
                raise CollectiveRequestError(
                    f"unsupported reduction op {op!r} for {kind} (only 'sum')"
                )
            object.__setattr__(self, "op", op)
            for arr in self._arrays():
                dt = np.asarray(arr).dtype
                if not (np.issubdtype(dt, np.floating) or np.issubdtype(dt, np.integer)):
                    raise CollectiveRequestError(
                        f"{kind} reduces float32 sums; dtype {dt} is not castable"
                    )
        elif self.op is not None:
            raise CollectiveRequestError(
                f"{kind} takes no reduction op, got op={self.op!r}"
            )

        if self.algorithm is not None and kind not in (
            CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLREDUCE
        ):
            raise CollectiveRequestError(
                f"{kind} has a fixed substrate; algorithm={self.algorithm!r} "
                "is not allowed"
            )
        if self.segment_bytes < 1:
            raise CollectiveRequestError("segment_bytes must be >= 1")
        if self.chunk_bytes is not None:
            if kind is not CollectiveKind.ALLTOALL:
                raise CollectiveRequestError(
                    f"chunk_bytes applies only to alltoall, not {kind}")
            if self.chunk_bytes < 1:
                raise CollectiveRequestError("chunk_bytes must be >= 1")

        if kind is CollectiveKind.BROADCAST:
            if not hasattr(self.data, "dtype"):
                raise CollectiveRequestError(
                    "broadcast takes the root's single ndarray payload"
                )
        else:
            if hasattr(self.data, "dtype") or not isinstance(self.data, Sequence):
                raise CollectiveRequestError(
                    f"{kind} takes a sequence of per-rank contributions"
                )
            if len(self.data) == 0:
                raise CollectiveRequestError(f"{kind} needs at least one contribution")

    def _arrays(self) -> List[Any]:
        if hasattr(self.data, "dtype"):
            return [self.data]
        return list(self.data) if isinstance(self.data, Sequence) else [self.data]


@dataclass
class PhaseStats:
    """One phase of a collective on the virtual timeline.

    Simple kinds report a single phase named after the kind; composed
    kinds (allreduce = reduce_scatter → allgather) report one entry per
    sub-collective, so ``result.phases`` has a uniform shape everywhere.
    """

    name: str  #: phase label ("reduce_scatter", "allgather", "broadcast", …)
    kind: str  #: CollectiveKind value of the sub-collective
    t_begin: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_begin


class CollectiveHandle:
    """The protocol every in-flight collective satisfies.

    One shape for all six kinds — engine-backed (:class:`OpHandle`),
    baseline-substrate (:class:`BaselineHandle`) and composed
    (:class:`ComposedHandle`) collectives all expose::

        handle.kind          # CollectiveKind
        handle.done()        # bool, non-blocking
        handle.wait()        # advance the simulation until complete
        handle.result()      # CollectiveResult (after completion)
        handle.phases        # launched sub-phases, uniform shape

    ``wait_events`` is the driver-facing face: the simulator events
    :meth:`Communicator.run` must drain for this handle.  The old
    negative-coll_id convention is gone — handles are tracked by a
    communicator-local ``handle_id`` and only engine-backed (sub-)ops
    carry an immediate-data ``coll_id``.
    """

    kind: CollectiveKind
    comm: Any = None
    handle_id: int = -1
    #: immediate-data collective id for engine-backed handles, else None
    coll_id: Optional[int] = None

    @property
    def complete(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def wait_events(self) -> List:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def phases(self) -> List[PhaseStats]:
        """Sub-phases launched so far (single entry for simple kinds)."""
        raise NotImplementedError  # pragma: no cover - overridden

    def done(self) -> bool:
        """Non-blocking completion check."""
        return self.complete

    def wait(self) -> None:
        """Advance the simulation until this handle completes."""
        self.comm.run(self)

    def result(self, traffic=None, engine=None):  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------- internals

    def exclusive_coll_id(self) -> Optional[int]:
        """The engine coll_id this handle is *solely* running right now, or
        ``None`` when it has no engine phase in flight (baseline substrate,
        or a composed collective currently in a baseline phase).  The
        flow-level fast-forward uses this for its single-collective gate."""
        return self.coll_id

    def on_crash(self, rank: int) -> None:
        """Fabric-crash notification (the dead host's software is already
        torn down by the communicator); handles with baseline-substrate
        phases use this to apply the communicator's failure policy."""

    def _release(self) -> None:
        """Free engine-side resources (rkeys, op registrations)."""
