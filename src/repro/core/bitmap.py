"""The receive bitmap — the protocol's only size-proportional state.

Each Broadcast leaf tracks every received chunk in a bitmap indexed by PSN
(paper §III-C).  The paper chooses a bitmap because it is compact (1 bit
per chunk: a 1.5 MB SmartNIC LLC addresses ≈ 50 GB of receive buffer at
4 KiB chunks, Fig 7) and cheap to update on the critical path.

The implementation stores bits in a ``numpy`` ``uint64`` word array.  The
hot operation — :meth:`Bitmap.set` — is O(1) with an incremental
population count, so completeness checks are O(1) too.  Scans for missing
chunks (the reliability slow path) are vectorized.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["Bitmap"]

_WORD_BITS = 64


class Bitmap:
    """Fixed-size bitmap with O(1) set/test and vectorized missing-scan."""

    __slots__ = ("n_bits", "_words", "_set_count")

    def __init__(self, n_bits: int) -> None:
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        self.n_bits = n_bits
        self._words = np.zeros((n_bits + _WORD_BITS - 1) // _WORD_BITS, dtype=np.uint64)
        self._set_count = 0

    # ------------------------------------------------------------- mutation

    def set(self, i: int) -> bool:
        """Set bit *i*; returns True if it was newly set (False if duplicate,
        which happens when a chunk is both multicast-received and fetched)."""
        if not 0 <= i < self.n_bits:
            raise IndexError(f"bit {i} out of range ({self.n_bits})")
        w, b = divmod(i, _WORD_BITS)
        mask = np.uint64(1 << b)
        if self._words[w] & mask:
            return False
        self._words[w] |= mask
        self._set_count += 1
        return True

    def clear(self, i: int) -> None:
        if not 0 <= i < self.n_bits:
            raise IndexError(f"bit {i} out of range ({self.n_bits})")
        w, b = divmod(i, _WORD_BITS)
        mask = np.uint64(1 << b)
        if self._words[w] & mask:
            self._words[w] &= ~mask
            self._set_count -= 1

    def reset(self) -> None:
        self._words[:] = 0
        self._set_count = 0

    # -------------------------------------------------------------- queries

    def test(self, i: int) -> bool:
        if not 0 <= i < self.n_bits:
            raise IndexError(f"bit {i} out of range ({self.n_bits})")
        w, b = divmod(i, _WORD_BITS)
        return bool(self._words[w] & np.uint64(1 << b))

    @property
    def count(self) -> int:
        """Number of set bits (O(1))."""
        return self._set_count

    def all_set(self, n: int | None = None) -> bool:
        """True if the first *n* bits (default: all) are set."""
        n = self.n_bits if n is None else n
        if n >= self.n_bits:
            return self._set_count == self.n_bits
        return not self.missing(n)

    def missing(self, n: int | None = None) -> List[int]:
        """Indices of unset bits among the first *n* (vectorized scan)."""
        n = self.n_bits if n is None else n
        if n <= 0:
            return []
        if n > self.n_bits:
            raise IndexError(f"n={n} exceeds bitmap size {self.n_bits}")
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")[:n]
        return np.flatnonzero(bits == 0).tolist()

    def missing_runs(self, n: int | None = None) -> List[tuple]:
        """Missing bits coalesced into ``(start, length)`` runs — the shape
        the fetch layer wants for issuing contiguous RDMA Reads."""
        miss = self.missing(n)
        runs: List[tuple] = []
        for i in miss:
            if runs and runs[-1][0] + runs[-1][1] == i:
                runs[-1] = (runs[-1][0], runs[-1][1] + 1)
            else:
                runs.append((i, 1))
        return runs

    @property
    def nbytes(self) -> int:
        """Memory footprint of the bit storage."""
        return int(self._words.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Bitmap {self._set_count}/{self.n_bits}>"
