"""The receive bitmap — the protocol's only size-proportional state.

Each Broadcast leaf tracks every received chunk in a bitmap indexed by PSN
(paper §III-C).  The paper chooses a bitmap because it is compact (1 bit
per chunk: a 1.5 MB SmartNIC LLC addresses ≈ 50 GB of receive buffer at
4 KiB chunks, Fig 7) and cheap to update on the critical path.

The implementation stores bits in a list of Python-int words: per-bit
``set``/``test`` with native int masks is ≈10× faster than numpy uint64
scalar arithmetic, and these run once per received packet — the hottest
protocol-side operation in the simulator.  Scans for missing chunks (the
reliability slow path) convert to numpy on demand and stay vectorized,
including the run-coalescing used by the fetch layer.  :meth:`set_range`
is the bulk path used when a coalesced packet train or a fetched run
lands many consecutive chunks at once.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["Bitmap"]

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


class Bitmap:
    """Fixed-size bitmap with O(1) set/test and vectorized missing-scan."""

    __slots__ = ("n_bits", "_words", "_set_count")

    def __init__(self, n_bits: int) -> None:
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        self.n_bits = n_bits
        self._words: List[int] = [0] * ((n_bits + _WORD_BITS - 1) // _WORD_BITS)
        self._set_count = 0

    # ------------------------------------------------------------- mutation

    def set(self, i: int) -> bool:
        """Set bit *i*; returns True if it was newly set (False if duplicate,
        which happens when a chunk is both multicast-received and fetched)."""
        if not 0 <= i < self.n_bits:
            raise IndexError(f"bit {i} out of range ({self.n_bits})")
        w = i >> 6
        mask = 1 << (i & 63)
        word = self._words[w]
        if word & mask:
            return False
        self._words[w] = word | mask
        self._set_count += 1
        return True

    def set_range(self, start: int, n: int) -> int:
        """Set bits ``[start, start + n)`` in bulk; returns how many were
        newly set.  The coalesced-train receive path and the fetch layer
        use this instead of ``n`` per-bit calls."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return 0
        end = start + n
        if not (0 <= start and end <= self.n_bits):
            raise IndexError(
                f"range [{start}, {end}) out of range ({self.n_bits})"
            )
        words = self._words
        newly = 0
        w_lo, b_lo = start >> 6, start & 63
        w_hi, b_hi = (end - 1) >> 6, ((end - 1) & 63) + 1
        for w in range(w_lo, w_hi + 1):
            mask = _WORD_MASK
            if w == w_lo:
                mask &= _WORD_MASK << b_lo
            if w == w_hi:
                mask &= _WORD_MASK >> (_WORD_BITS - b_hi)
            word = words[w]
            add = mask & ~word
            if add:
                words[w] = word | mask
                newly += bin(add).count("1")
        self._set_count += newly
        return newly

    def clear(self, i: int) -> None:
        if not 0 <= i < self.n_bits:
            raise IndexError(f"bit {i} out of range ({self.n_bits})")
        w = i >> 6
        mask = 1 << (i & 63)
        word = self._words[w]
        if word & mask:
            self._words[w] = word & ~mask
            self._set_count -= 1

    def reset(self) -> None:
        self._words = [0] * len(self._words)
        self._set_count = 0

    # -------------------------------------------------------------- queries

    def any_set_in_range(self, start: int, n: int) -> bool:
        """True if any bit in ``[start, start + n)`` is set — one masked
        word test per 64 bits.  The receiver-batch eligibility gate uses
        this as its duplicate probe over a contiguous PSN train instead of
        ``n`` per-bit :meth:`test` calls."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return False
        end = start + n
        if not (0 <= start and end <= self.n_bits):
            raise IndexError(
                f"range [{start}, {end}) out of range ({self.n_bits})"
            )
        words = self._words
        w_lo, b_lo = start >> 6, start & 63
        w_hi, b_hi = (end - 1) >> 6, ((end - 1) & 63) + 1
        for w in range(w_lo, w_hi + 1):
            mask = _WORD_MASK
            if w == w_lo:
                mask &= _WORD_MASK << b_lo
            if w == w_hi:
                mask &= _WORD_MASK >> (_WORD_BITS - b_hi)
            if words[w] & mask:
                return True
        return False

    def test(self, i: int) -> bool:
        if not 0 <= i < self.n_bits:
            raise IndexError(f"bit {i} out of range ({self.n_bits})")
        return bool(self._words[i >> 6] & (1 << (i & 63)))

    @property
    def count(self) -> int:
        """Number of set bits (O(1))."""
        return self._set_count

    def all_set(self, n: int | None = None) -> bool:
        """True if the first *n* bits (default: all) are set."""
        n = self.n_bits if n is None else n
        if n >= self.n_bits:
            return self._set_count == self.n_bits
        return not self.missing(n)

    def _missing_array(self, n: int) -> np.ndarray:
        words = np.array(self._words, dtype=np.uint64)
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")[:n]
        return np.flatnonzero(bits == 0)

    def missing(self, n: int | None = None) -> List[int]:
        """Indices of unset bits among the first *n* (vectorized scan)."""
        n = self.n_bits if n is None else n
        if n <= 0:
            return []
        if n > self.n_bits:
            raise IndexError(f"n={n} exceeds bitmap size {self.n_bits}")
        if self._set_count == self.n_bits:
            return []
        return self._missing_array(n).tolist()

    def missing_runs(self, n: int | None = None) -> List[tuple]:
        """Missing bits coalesced into ``(start, length)`` runs — the shape
        the fetch layer wants for issuing contiguous RDMA Reads.

        Vectorized: run boundaries are the places where the sorted missing
        indices jump by more than one.  The full bitmap is the common case
        on the clean path (every chunk delivered), so it short-circuits
        before touching numpy.
        """
        n = self.n_bits if n is None else n
        if n <= 0:
            return []
        if n > self.n_bits:
            raise IndexError(f"n={n} exceeds bitmap size {self.n_bits}")
        if self._set_count == self.n_bits:
            return []
        miss = self._missing_array(n)
        if miss.size == 0:
            return []
        breaks = np.flatnonzero(np.diff(miss) > 1)
        starts = miss[np.concatenate(([0], breaks + 1))]
        ends = miss[np.concatenate((breaks, [miss.size - 1]))]
        runs: List[Tuple[int, int]] = [
            (int(s), int(e - s + 1)) for s, e in zip(starts, ends)
        ]
        return runs

    def missing_runs_ref(self, n: int | None = None) -> List[tuple]:
        """Pure-Python reference for :meth:`missing_runs` — one linear
        bit walk, no numpy.  Kept as the executable specification the
        property tests compare the vectorized scan against."""
        n = self.n_bits if n is None else n
        if n <= 0:
            return []
        if n > self.n_bits:
            raise IndexError(f"n={n} exceeds bitmap size {self.n_bits}")
        runs: List[Tuple[int, int]] = []
        start = -1
        for i in range(n):
            if self._words[i >> 6] & (1 << (i & 63)):
                if start >= 0:
                    runs.append((start, i - start))
                    start = -1
            elif start < 0:
                start = i
        if start >= 0:
            runs.append((start, n - start))
        return runs

    @property
    def nbytes(self) -> int:
        """Memory footprint of the bit storage."""
        return len(self._words) * (_WORD_BITS // 8)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Bitmap {self._set_count}/{self.n_bits}>"
