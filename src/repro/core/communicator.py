"""User-facing collective API.

A :class:`Communicator` groups a set of fabric hosts, builds the protocol
resources (multicast subgroups, progress engines, control plane) and
exposes Broadcast and Allgather — synchronous wrappers plus ``*_async``
variants that return an :class:`OpHandle`, letting callers overlap several
collectives (the FSDP interleaving scenario of paper §II-A).

Example
-------
::

    sim = Simulator()
    fabric = Fabric(sim, Topology.leaf_spine(16, 2, 2))
    comm = Communicator(fabric)
    data = [np.full(64 * 1024, r, dtype=np.uint8) for r in range(comm.size)]
    result = comm.allgather(data)
    assert result.verify_allgather(data)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.chunking import ChunkPlan, ImmLayout
from repro.core.costmodel import HostCostModel
from repro.core.ops import OpState, RKEY_BASE
from repro.core.progress import RankEngine
from repro.core.sequencer import BroadcastSequencer
from repro.core.subgroups import SubgroupPlan
from repro.net.fabric import Fabric
from repro.net.nic import QueuePair, Transport
from repro.sim.events import AllOf

__all__ = [
    "CollectiveConfig",
    "Communicator",
    "OpHandle",
    "PhaseBreakdown",
    "RankStats",
    "CollectiveResult",
]


@dataclass
class CollectiveConfig:
    """Tunables of the multicast collective stack (paper §IV–V)."""

    #: chunk/datagram payload size; must be ≤ fabric MTU for UD transport
    chunk_size: int = 4096
    #: multicast subgroups — packet parallelism (§IV-C)
    n_subgroups: int = 1
    #: receive workers (default: one per subgroup, the paper's mapping)
    recv_workers: Optional[int] = None
    #: parallel broadcast chains M in the Allgather sequencer (§IV-A)
    n_chains: int = 1
    #: 'ud' (staging + copy) or 'uc' (direct placement, §V-B)
    transport: str = "ud"
    #: multicast send requests per doorbell (§V-A batching)
    batch_size: int = 32
    #: bounded in-flight batches on the send path
    max_outstanding_batches: int = 4
    #: staging-ring slots per subgroup (receive queue depth)
    staging_slots: int = 256
    #: immediate-data bits allocated to the PSN (Fig 7 trade-off)
    psn_bits: int = 24
    #: cutoff-timer slack α (§III-C): timeout = N/B_link + α
    cutoff_alpha: float = 200e-6
    #: re-arm slack between recovery rounds
    recovery_alpha: float = 200e-6
    #: adapt the cutoff slack from observed delivery (TCP-RTO-style EWMA);
    #: the first op always uses the static ``cutoff_alpha``
    adaptive_cutoff: bool = True
    #: clamp range for the adaptive slack
    cutoff_alpha_min: float = 20e-6
    cutoff_alpha_max: float = 2e-3
    #: EWMA gains and deviation weight (RFC 6298's α/β/K)
    cutoff_gain: float = 0.125
    cutoff_var_gain: float = 0.25
    cutoff_var_weight: float = 4.0
    #: exponential backoff of the re-arm delay across recovery rounds
    recovery_backoff: float = 2.0
    recovery_alpha_max: float = 2e-3
    #: deterministic jitter on recovery re-arms, as a fraction of the delay
    recovery_jitter: float = 0.25
    #: how long a requester waits for a neighbor's FETCH_ACK before
    #: treating it as unresponsive and escalating to the next neighbor
    fetch_ack_timeout: float = 500e-6
    #: fetch rounds with zero recovered chunks tolerated on one neighbor
    #: before escalating to the next ring neighbor
    fetch_stall_rounds: int = 3
    #: total virtual time an op may spend in recovery before raising a
    #: :class:`~repro.core.reliability.ReliabilityError` instead of hanging
    recovery_deadline: float = 0.25
    #: software datapath cost model
    cost: HostCostModel = field(default_factory=HostCostModel)

    def validate(self, fabric: Fabric) -> None:
        if self.transport not in ("ud", "uc"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.transport == "ud" and self.chunk_size > fabric.mtu:
            raise ValueError(
                f"UD chunk_size {self.chunk_size} exceeds fabric MTU {fabric.mtu}"
            )
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.n_subgroups < 1:
            raise ValueError("n_subgroups must be >= 1")
        if self.recv_workers is not None and self.recv_workers < 1:
            raise ValueError("recv_workers must be >= 1")
        if self.staging_slots < 1:
            raise ValueError("staging_slots must be >= 1")
        if self.cutoff_alpha < 0 or self.recovery_alpha < 0:
            raise ValueError("cutoff_alpha and recovery_alpha must be >= 0")
        if not 0 < self.cutoff_alpha_min <= self.cutoff_alpha_max:
            raise ValueError("need 0 < cutoff_alpha_min <= cutoff_alpha_max")
        if self.recovery_backoff < 1.0:
            raise ValueError("recovery_backoff must be >= 1")
        if self.recovery_jitter < 0:
            raise ValueError("recovery_jitter must be >= 0")
        if self.fetch_ack_timeout <= 0:
            raise ValueError("fetch_ack_timeout must be > 0")
        if self.fetch_stall_rounds < 1:
            raise ValueError("fetch_stall_rounds must be >= 1")
        if self.recovery_deadline <= 0:
            raise ValueError("recovery_deadline must be > 0")


@dataclass
class PhaseBreakdown:
    """Per-rank critical-path decomposition (paper Fig 10)."""

    sync: float  #: RNR synchronization barrier
    multicast: float  #: datapath (multicast + any recovery)
    handshake: float  #: final handshake in the reliable ring
    total: float

    @property
    def sync_fraction(self) -> float:
        return self.sync / self.total if self.total else 0.0


@dataclass
class RankStats:
    rank: int
    phases: Dict[str, float]
    breakdown: PhaseBreakdown
    counters: Dict[str, int]
    #: fetch rounds spent per recovery invocation on this rank
    retry_histogram: List[int] = field(default_factory=list)
    #: (virtual time, timeout armed, reason) — cutoff/recovery decisions
    timer_trace: List[tuple] = field(default_factory=list)


@dataclass
class CollectiveResult:
    """Outcome of one collective across all ranks."""

    kind: str
    comm_size: int
    send_bytes: int  #: per-rank contribution (bcast: buffer size)
    chunk_size: int
    transport: str
    t_begin: float
    t_end: float
    ranks: List[RankStats]
    buffers: List[np.ndarray]
    traffic: Dict[str, int]
    #: simulator engine telemetry for this collective: events processed,
    #: coalesced trains and train packets (fast-path coverage)
    engine: Dict[str, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_begin

    @property
    def recv_bytes_per_rank(self) -> int:
        if self.kind == "allgather":
            return self.send_bytes * (self.comm_size - 1)
        return self.send_bytes  # broadcast leaf

    @property
    def throughput(self) -> float:
        """Per-process receive throughput in bytes/s (paper Fig 11 metric:
        collective payload over completion time)."""
        total = (
            self.send_bytes * self.comm_size
            if self.kind == "allgather"
            else self.send_bytes
        )
        return total / self.duration if self.duration > 0 else float("inf")

    def phase_means(self) -> PhaseBreakdown:
        n = len(self.ranks)
        return PhaseBreakdown(
            sync=sum(r.breakdown.sync for r in self.ranks) / n,
            multicast=sum(r.breakdown.multicast for r in self.ranks) / n,
            handshake=sum(r.breakdown.handshake for r in self.ranks) / n,
            total=sum(r.breakdown.total for r in self.ranks) / n,
        )

    def counter_total(self, name: str) -> int:
        return sum(r.counters.get(name, 0) for r in self.ranks)

    def reliability_summary(self) -> Dict[str, object]:
        """Aggregate slow-path telemetry across ranks: recovery/round
        counters, escalations, and the merged per-rank retry histogram."""
        histogram: Dict[int, int] = {}
        for r in self.ranks:
            for invocation, rounds in enumerate(r.retry_histogram):
                histogram[invocation] = histogram.get(invocation, 0) + rounds
        return {
            "recoveries": self.counter_total("recoveries"),
            "recovered_chunks": self.counter_total("recovered_chunks"),
            "fetch_rounds": self.counter_total("fetch_rounds"),
            "fetch_ack_timeouts": self.counter_total("fetch_ack_timeouts"),
            "neighbor_escalations": self.counter_total("neighbor_escalations"),
            "retry_histogram": histogram,
            "max_timer_rearms": max(
                (len(r.timer_trace) for r in self.ranks), default=0
            ),
        }

    def verify_allgather(self, send_data: Sequence[np.ndarray]) -> bool:
        expected = np.concatenate([np.ascontiguousarray(d).view(np.uint8).ravel()
                                   for d in send_data])
        return all(np.array_equal(buf, expected) for buf in self.buffers)

    def verify_broadcast(self, data: np.ndarray) -> bool:
        expected = np.ascontiguousarray(data).view(np.uint8).ravel()
        return all(np.array_equal(buf, expected) for buf in self.buffers)


class OpHandle:
    """An in-flight collective: per-rank op states + an all-done event."""

    def __init__(self, comm: "Communicator", kind: str, coll_id: int,
                 ops: List[OpState], buffers: List[np.ndarray], send_bytes: int):
        self.comm = comm
        self.kind = kind
        self.coll_id = coll_id
        self.ops = ops
        self.buffers = buffers
        self.send_bytes = send_bytes
        self.t_submit = comm.sim.now
        self.done = AllOf(comm.sim, [op.op_done for op in ops])

    @property
    def complete(self) -> bool:
        return self.done.triggered

    def result(self, traffic: Optional[Dict[str, int]] = None,
               engine: Optional[Dict[str, int]] = None) -> CollectiveResult:
        if not self.complete:
            raise RuntimeError("collective has not completed")
        ranks = []
        for op in self.ops:
            ph = op.phases
            breakdown = PhaseBreakdown(
                sync=ph["sync"] - ph["start"],
                multicast=ph["data"] - ph["sync"],
                handshake=ph["final"] - ph["data"],
                total=ph["final"] - ph["start"],
            )
            ranks.append(
                RankStats(
                    op.rank, dict(ph), breakdown, dict(op.stats),
                    retry_histogram=list(op.retry_histogram),
                    timer_trace=list(op.timer_trace),
                )
            )
        t_begin = min(op.phases["start"] for op in self.ops)
        t_end = max(op.phases["final"] for op in self.ops)
        return CollectiveResult(
            kind=self.kind,
            comm_size=self.comm.size,
            send_bytes=self.send_bytes,
            chunk_size=self.comm.config.chunk_size,
            transport=self.comm.config.transport,
            t_begin=t_begin,
            t_end=t_end,
            ranks=ranks,
            buffers=self.buffers,
            traffic=traffic or {},
            engine=engine or {},
        )


class Communicator:
    """A group of ranks with a shared multicast collective stack."""

    def __init__(
        self,
        fabric: Fabric,
        hosts: Optional[Sequence[int]] = None,
        config: Optional[CollectiveConfig] = None,
    ) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.hosts: List[int] = list(hosts) if hosts is not None else list(range(fabric.n_hosts))
        if len(set(self.hosts)) != len(self.hosts):
            raise ValueError("duplicate hosts in communicator")
        self.size = len(self.hosts)
        self.config = config or CollectiveConfig()
        self.config.validate(fabric)
        self.imm = ImmLayout(self.config.psn_bits)
        # Replicated multicast groups — the subgroups of §IV-C.
        self.mcast_gids: List[int] = (
            [fabric.create_mcast_group(self.hosts) for _ in range(self.config.n_subgroups)]
            if self.size >= 2
            else []
        )
        self._ctrl_pairs: Dict[tuple, QueuePair] = {}
        self.engines: List[RankEngine] = []
        for r in range(self.size):
            self.engines.append(RankEngine(self, r))
        self._coll_ids = itertools.count(0)
        self._active: Dict[int, OpHandle] = {}

    # ------------------------------------------------------------- plumbing

    def host_of(self, rank: int) -> int:
        return self.hosts[rank]

    def ensure_ctrl_pair(self, a: int, b: int) -> QueuePair:
        """Return rank *a*'s control QP toward rank *b*, creating the
        connected pair (and posting its receive slots) on first use."""
        qp = self._ctrl_pairs.get((a, b))
        if qp is not None:
            return qp
        ea, eb = self.engines[a], self.engines[b]
        qa = ea.nic.create_qp(Transport.RC, recv_cq=ea.ctrl.recv_cq)
        qb = eb.nic.create_qp(Transport.RC, recv_cq=eb.ctrl.recv_cq)
        qa.connect(self.host_of(b), qb.qpn)
        qb.connect(self.host_of(a), qa.qpn)
        ea.ctrl.adopt_qp(b, qa)
        eb.ctrl.adopt_qp(a, qb)
        self._ctrl_pairs[(a, b)] = qa
        self._ctrl_pairs[(b, a)] = qb
        return qa

    def _next_coll_id(self) -> int:
        for _ in range(self.imm.max_collectives):
            cid = next(self._coll_ids) % self.imm.max_collectives
            if all(cid not in e.ops for e in self.engines):
                return cid
        raise RuntimeError("no free collective ids (too many in-flight collectives)")

    @staticmethod
    def _as_bytes(data: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(data)
        return arr.reshape(-1).view(np.uint8)

    # ------------------------------------------------------------ broadcast

    def broadcast_async(self, root: int, data: np.ndarray) -> OpHandle:
        """Start a Broadcast of *data* from rank *root*; returns a handle."""
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range")
        payload = self._as_bytes(data)
        nbytes = payload.nbytes
        if nbytes == 0:
            raise ValueError("cannot broadcast an empty buffer")
        cid = self._next_coll_id()
        plan = ChunkPlan(nbytes, self.config.chunk_size)
        if plan.n_chunks > self.imm.max_psns:
            raise ValueError("buffer needs more PSNs than the immediate layout provides")
        sub = SubgroupPlan(plan.n_chunks, self.config.n_subgroups)
        ops, buffers = [], []
        participants = list(range(self.size))
        for r in range(self.size):
            engine = self.engines[r]
            if r == root:
                buf = payload
            else:
                buf = np.zeros(nbytes, dtype=np.uint8)
            mr = engine.nic.memory.register(buf, key=RKEY_BASE + cid)
            op = OpState(
                sim=self.sim, coll_id=cid, kind="broadcast", rank=r,
                comm_size=self.size, mr=mr, plan=plan, subgroups=sub,
                send_lo=0, send_hi=plan.n_chunks if r == root else 0, root=root,
            )
            engine.register_op(op)
            self.sim.spawn(engine.run_op(op, participants), name=f"bcast-c{cid}-r{r}")
            ops.append(op)
            buffers.append(mr.buf)
        handle = OpHandle(self, "broadcast", cid, ops, buffers, nbytes)
        self._active[cid] = handle
        return handle

    # ------------------------------------------------------------ allgather

    def allgather_async(self, send_data: Sequence[np.ndarray]) -> OpHandle:
        """Start an Allgather; ``send_data[r]`` is rank *r*'s contribution.

        All contributions must have equal byte size, divisible by the chunk
        size so shard boundaries align with chunk boundaries.
        """
        if len(send_data) != self.size:
            raise ValueError(f"need {self.size} send buffers, got {len(send_data)}")
        payloads = [self._as_bytes(d) for d in send_data]
        nbytes = payloads[0].nbytes
        if nbytes == 0:
            raise ValueError("cannot allgather empty buffers")
        if any(p.nbytes != nbytes for p in payloads):
            raise ValueError("all send buffers must have the same size")
        # Small contributions shrink the chunk so shards stay chunk-aligned.
        chunk = min(self.config.chunk_size, nbytes)
        if self.size > 1 and nbytes % chunk != 0:
            raise ValueError(
                f"send size {nbytes} must be a multiple of the chunk size "
                f"{chunk} so shards align with chunk boundaries"
            )
        cid = self._next_coll_id()
        total = nbytes * self.size
        plan = ChunkPlan(total, chunk)
        if plan.n_chunks > self.imm.max_psns:
            raise ValueError("buffer needs more PSNs than the immediate layout provides")
        chunks_per_rank = max(nbytes // chunk, 1)
        sub = SubgroupPlan(chunks_per_rank, self.config.n_subgroups)
        seq = BroadcastSequencer(self.size, self.config.n_chains)
        ops, buffers = [], []
        participants = list(range(self.size))
        for r in range(self.size):
            engine = self.engines[r]
            buf = np.zeros(total, dtype=np.uint8)
            # Own shard is placed locally — the paper's roots never receive
            # their own multicast back (the tree excludes the ingress port).
            buf[r * nbytes : (r + 1) * nbytes] = payloads[r]
            mr = engine.nic.memory.register(buf, key=RKEY_BASE + cid)
            op = OpState(
                sim=self.sim, coll_id=cid, kind="allgather", rank=r,
                comm_size=self.size, mr=mr, plan=plan, subgroups=sub,
                send_lo=r * chunks_per_rank, send_hi=(r + 1) * chunks_per_rank,
            )
            engine.register_op(op)
            self.sim.spawn(
                engine.run_op(
                    op,
                    participants,
                    activation_pred=seq.predecessor(r),
                    activation_succ=seq.successor(r),
                ),
                name=f"ag-c{cid}-r{r}",
            )
            ops.append(op)
            buffers.append(mr.buf)
        handle = OpHandle(self, "allgather", cid, ops, buffers, nbytes)
        self._active[cid] = handle
        return handle

    # ------------------------------------------------------------ execution

    def run(self, *handles: OpHandle) -> None:
        """Advance the simulation until every handle completes."""
        targets = handles or tuple(self._active.values())
        self.sim.drain([h.done for h in targets])

    def release(self, handle: OpHandle) -> None:
        """Free the op's registered buffers and id (after completion)."""
        for engine in self.engines:
            engine.release_op(handle.coll_id)
        self._active.pop(handle.coll_id, None)

    def _snapshot(self) -> Dict[str, int]:
        return {
            "switch_bytes": self.fabric.switch_egress_bytes(),
            "switch_payload_bytes": self.fabric.switch_egress_bytes(payload_only=True),
            "host_injected_bytes": self.fabric.host_injected_bytes(),
            "fabric_drops": self.fabric.total_drops(),
            "rnr_drops": self.fabric.total_rnr_drops(),
        }

    def _engine_snapshot(self) -> Dict[str, int]:
        return {
            "sim_events": self.sim.events_processed,
            "trains": self.fabric.total_trains(),
            "train_packets": self.fabric.total_train_packets(),
        }

    def _run_sync(self, handle: OpHandle) -> CollectiveResult:
        before = self._snapshot()
        eng_before = self._engine_snapshot()
        self.run(handle)
        after = self._snapshot()
        eng_after = self._engine_snapshot()
        traffic = {k: after[k] - before[k] for k in before}
        engine = {k: eng_after[k] - eng_before[k] for k in eng_before}
        result = handle.result(traffic, engine)
        self.release(handle)
        return result

    def broadcast(self, root: int, data: np.ndarray) -> CollectiveResult:
        """Broadcast *data* from *root*; runs the simulation to completion."""
        return self._run_sync(self.broadcast_async(root, data))

    def allgather(self, send_data: Sequence[np.ndarray]) -> CollectiveResult:
        """Allgather; runs the simulation to completion."""
        return self._run_sync(self.allgather_async(send_data))
