"""User-facing collective API.

A :class:`Communicator` groups a set of fabric hosts, builds the protocol
resources (multicast subgroups, progress engines, control plane) and
exposes all six collectives through one submission surface:
``submit(CollectiveRequest) -> CollectiveHandle`` dispatches on
:class:`CollectiveKind`; the per-kind methods (``broadcast``,
``allgather``, ``reduce_scatter``, ``reduce``, ``allreduce``,
``alltoall`` plus their ``*_async`` variants) are thin wrappers that
build the request for you, letting callers overlap several collectives
(the FSDP interleaving scenario of paper §II-A).

Example
-------
::

    sim = Simulator()
    fabric = Fabric(sim, Topology.leaf_spine(16, 2, 2))
    comm = Communicator(fabric)
    data = [np.full(64 * 1024, r, dtype=np.uint8) for r in range(comm.size)]
    handle = comm.submit(CollectiveRequest(kind="allgather", data=data))
    handle.wait()
    result = handle.result()
    assert result.verify_allgather(data)
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

import numpy as np

from repro.core.chunking import ChunkPlan, ImmLayout
from repro.core.costmodel import HostCostModel
from repro.core.ops import OpState, RKEY_BASE
from repro.core.progress import RankEngine
from repro.core.reliability import CollectiveAbortedError
from repro.core.request import (
    ROOTED_KINDS,
    CollectiveHandle,
    CollectiveKind,
    CollectiveRequest,
    CollectiveRequestError,
    PhaseStats,
)
from repro.core.sequencer import BroadcastSequencer, effective_chains
from repro.core.subgroups import SubgroupPlan
from repro.net.fabric import Fabric
from repro.net.nic import QueuePair, Transport
from repro.net.topology import host_name
from repro.obs import trace as obs_trace
from repro.obs.trace import TraceConfig, Tracer, TraceView
from repro.sim.events import AllOf
from repro.sim.fastforward import FlowFastForward

__all__ = [
    "CollectiveConfig",
    "CollectiveKind",
    "CollectiveRequest",
    "CollectiveRequestError",
    "CollectiveHandle",
    "FailurePolicy",
    "Communicator",
    "OpHandle",
    "BaselineHandle",
    "ComposedHandle",
    "ReduceScatterHandle",
    "PhaseBreakdown",
    "PhaseStats",
    "RankStats",
    "CollectiveResult",
]


class FailurePolicy(str, enum.Enum):
    """What a collective does when a participant fail-stops mid-flight.

    ``ABORT`` raises a typed
    :class:`~repro.core.reliability.CollectiveAbortedError` on every
    survivor; ``DEGRADE`` completes the collective among the survivors
    (allgather results carry per-rank validity masks with the dead rank's
    shards marked missing; a broadcast whose root survives completes in
    full).  The config default of ``None`` disables the liveness layer
    entirely — a crash then surfaces as a recovery-deadline
    :class:`~repro.core.reliability.ReliabilityError` or a watchdog dump,
    exactly as before this layer existed.
    """

    ABORT = "abort"
    DEGRADE = "degrade"

    def __str__(self) -> str:
        return self.value


@dataclass
class CollectiveConfig:
    """Tunables of the multicast collective stack (paper §IV–V)."""

    #: chunk/datagram payload size; must be ≤ fabric MTU for UD transport
    chunk_size: int = 4096
    #: multicast subgroups — packet parallelism (§IV-C)
    n_subgroups: int = 1
    #: receive workers (default: one per subgroup, the paper's mapping)
    recv_workers: Optional[int] = None
    #: parallel broadcast chains M in the Allgather sequencer (§IV-A)
    n_chains: int = 1
    #: 'ud' (staging + copy) or 'uc' (direct placement, §V-B)
    transport: str = "ud"
    #: multicast send requests per doorbell (§V-A batching)
    batch_size: int = 32
    #: bounded in-flight batches on the send path
    max_outstanding_batches: int = 4
    #: staging-ring slots per subgroup (receive queue depth)
    staging_slots: int = 256
    #: immediate-data bits allocated to the PSN (Fig 7 trade-off)
    psn_bits: int = 24
    #: receiver-batch fast path: consume an eligible CQE train in one
    #: process wake (aggregated timeout, run-coalesced DMA, bulk WR
    #: repost).  Virtual-time results are bit-identical either way; off
    #: reproduces the per-CQE datapath event-for-event.
    recv_batching: bool = True
    #: flow-level fast-forward: analytically advance fault-inert multicast
    #: phases to the phase boundary in O(links) instead of O(packets).
    #: ``"off"`` — packet/train level everywhere.  ``"exact"`` —
    #: bit-identical virtual time to the packet-level engine (the fold
    #: replicates the slow-path float arithmetic; any eligibility-gate
    #: failure falls back transparently).  ``"banded"`` — per-edge busy
    #: chains collapse to closed forms with a declared ≤0.5% virtual-time
    #: tolerance; unlocks 1024–4096-host sweeps.
    fast_forward: str = "off"
    #: vectorized fold-commit (DESIGN §6f): compute the fast-forward's
    #: per-receiver CQE/DMA chains as numpy array ops over all receivers
    #: at once, and run the single-chunk Allgather chain as a
    #: deferred-commit session — O(P) instead of O(P²) interpreter time.
    #: Virtual time stays bit-identical (the arrays evaluate the same
    #: IEEE-754 operations the scalar fold does); off reproduces the
    #: scalar fold loop-for-loop.
    ff_vectorized: bool = True
    #: parallel-DES sharding of the vectorized session's host-level work
    #: (DESIGN §6f): ``"off"`` — single shard; ``"auto"`` — pick a shard
    #: count from the collective size and available cores; an integer —
    #: exactly that many shards (clamped to the host-bearing switch
    #: count).  Virtual time is bit-identical for every setting; shards
    #: engage worker processes only at scales where the per-phase work
    #: dwarfs the pipe round-trip.
    parallel: object = "off"
    #: cutoff-timer slack α (§III-C): timeout = N/B_link + α
    cutoff_alpha: float = 200e-6
    #: re-arm slack between recovery rounds
    recovery_alpha: float = 200e-6
    #: adapt the cutoff slack from observed delivery (TCP-RTO-style EWMA);
    #: the first op always uses the static ``cutoff_alpha``
    adaptive_cutoff: bool = True
    #: clamp range for the adaptive slack
    cutoff_alpha_min: float = 20e-6
    cutoff_alpha_max: float = 2e-3
    #: EWMA gains and deviation weight (RFC 6298's α/β/K)
    cutoff_gain: float = 0.125
    cutoff_var_gain: float = 0.25
    cutoff_var_weight: float = 4.0
    #: exponential backoff of the re-arm delay across recovery rounds
    recovery_backoff: float = 2.0
    recovery_alpha_max: float = 2e-3
    #: deterministic jitter on recovery re-arms, as a fraction of the delay
    recovery_jitter: float = 0.25
    #: how long a requester waits for a neighbor's FETCH_ACK before
    #: treating it as unresponsive and escalating to the next neighbor
    fetch_ack_timeout: float = 500e-6
    #: fetch rounds with zero recovered chunks tolerated on one neighbor
    #: before escalating to the next ring neighbor
    fetch_stall_rounds: int = 3
    #: total virtual time an op may spend in recovery before raising a
    #: :class:`~repro.core.reliability.ReliabilityError` instead of hanging
    recovery_deadline: float = 0.25
    #: fail-stop handling: ``None`` (liveness layer off, the default),
    #: :attr:`FailurePolicy.ABORT` or :attr:`FailurePolicy.DEGRADE`
    #: (accepts the strings "abort"/"degrade")
    failure_policy: Optional["FailurePolicy"] = None
    #: one PING round-trip allowance before a probe retry (scaled up by
    #: the fabric diameter at probe time)
    liveness_probe_timeout: float = 500e-6
    #: unanswered PINGs before a peer is confirmed dead
    liveness_probe_retries: int = 3
    #: floor on the no-progress suspicion timer; the effective timer is
    #: ``max(this, 4 × CutoffEstimator.slack())`` so a congested fabric
    #: that legitimately slows delivery also slows suspicion
    suspicion_timeout: float = 2e-3
    #: software datapath cost model
    cost: HostCostModel = field(default_factory=HostCostModel)

    def validate(self, fabric: Fabric) -> None:
        if self.transport not in ("ud", "uc"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.transport == "ud" and self.chunk_size > fabric.mtu:
            raise ValueError(
                f"UD chunk_size {self.chunk_size} exceeds fabric MTU {fabric.mtu}"
            )
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.n_subgroups < 1:
            raise ValueError("n_subgroups must be >= 1")
        if self.recv_workers is not None and self.recv_workers < 1:
            raise ValueError("recv_workers must be >= 1")
        if self.staging_slots < 1:
            raise ValueError("staging_slots must be >= 1")
        if self.cutoff_alpha < 0 or self.recovery_alpha < 0:
            raise ValueError("cutoff_alpha and recovery_alpha must be >= 0")
        if not 0 < self.cutoff_alpha_min <= self.cutoff_alpha_max:
            raise ValueError("need 0 < cutoff_alpha_min <= cutoff_alpha_max")
        if self.adaptive_cutoff and not (
            self.cutoff_alpha_min <= self.cutoff_alpha <= self.cutoff_alpha_max
        ):
            # The estimator clamps its *adapted* slack to this range; a
            # starting point outside it would be silently overridden from
            # the second op on — reject the contradiction instead.
            raise ValueError(
                f"cutoff_alpha {self.cutoff_alpha} outside the adaptive clamp "
                f"range [{self.cutoff_alpha_min}, {self.cutoff_alpha_max}]; "
                "widen the range or disable adaptive_cutoff"
            )
        if self.recovery_backoff < 1.0:
            raise ValueError("recovery_backoff must be >= 1")
        if self.recovery_jitter < 0:
            raise ValueError("recovery_jitter must be >= 0")
        if self.fetch_ack_timeout <= 0:
            raise ValueError("fetch_ack_timeout must be > 0")
        if self.fetch_stall_rounds < 1:
            raise ValueError("fetch_stall_rounds must be >= 1")
        if self.recovery_deadline <= 0:
            raise ValueError("recovery_deadline must be > 0")
        if self.failure_policy is not None:
            # Accept the plain strings; normalize so engines compare enums.
            self.failure_policy = FailurePolicy(self.failure_policy)
        if self.liveness_probe_timeout <= 0:
            raise ValueError("liveness_probe_timeout must be > 0")
        if self.liveness_probe_retries < 1:
            raise ValueError("liveness_probe_retries must be >= 1")
        if self.suspicion_timeout <= 0:
            raise ValueError("suspicion_timeout must be > 0")
        if self.fast_forward not in ("off", "exact", "banded"):
            raise ValueError(
                f"fast_forward must be 'off', 'exact' or 'banded', "
                f"got {self.fast_forward!r}"
            )
        if isinstance(self.parallel, bool) or not (
            self.parallel in ("off", "auto")
            or (isinstance(self.parallel, int) and self.parallel >= 1)
        ):
            raise ValueError(
                f"parallel must be 'off', 'auto' or an int >= 1, "
                f"got {self.parallel!r}"
            )


@dataclass
class PhaseBreakdown:
    """Per-rank critical-path decomposition (paper Fig 10)."""

    sync: float  #: RNR synchronization barrier
    multicast: float  #: datapath (multicast + any recovery)
    handshake: float  #: final handshake in the reliable ring
    total: float

    @property
    def sync_fraction(self) -> float:
        return self.sync / self.total if self.total else 0.0


@dataclass
class RankStats:
    rank: int
    phases: Dict[str, float]
    breakdown: PhaseBreakdown
    counters: Dict[str, int]
    #: fetch rounds spent per recovery invocation on this rank
    retry_histogram: List[int] = field(default_factory=list)
    #: (virtual time, timeout armed, reason) — cutoff/recovery decisions
    timer_trace: List[tuple] = field(default_factory=list)


@dataclass
class CollectiveResult:
    """Outcome of one collective across all ranks."""

    kind: str  #: a :class:`CollectiveKind` (str-valued for compatibility)
    comm_size: int
    send_bytes: int  #: per-rank contribution (bcast: buffer size)
    chunk_size: int
    transport: str
    t_begin: float
    t_end: float
    ranks: List[RankStats]
    buffers: List[np.ndarray]
    traffic: Dict[str, int]
    #: simulator engine telemetry for this collective: events processed,
    #: coalesced trains and train packets (fast-path coverage)
    engine: Dict[str, int] = field(default_factory=dict)
    #: trace snapshot clipped to this collective's window, when the
    #: communicator was built with ``trace=TraceConfig(...)``
    trace: Optional[TraceView] = None
    #: ranks that fail-stopped during (or before) this collective; their
    #: ``buffers`` entries are meaningless and absent from ``ranks``
    dead_ranks: List[int] = field(default_factory=list)
    #: per-rank chunk-validity masks for degraded completions:
    #: ``validity[r]`` is a bool array over chunks (True = real payload) or
    #: ``None`` when every chunk landed; dead ranks also get ``None``
    validity: Optional[List[Optional[np.ndarray]]] = None
    #: root rank for the rooted kinds (broadcast, reduce); ``None`` otherwise
    root: Optional[int] = None
    #: per-phase timeline — one entry per sub-collective for composed kinds
    #: (allreduce: reduce_scatter → allgather), else a single entry; see
    #: :attr:`phases`
    phase_stats: List[PhaseStats] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_begin

    @property
    def phases(self) -> List[PhaseStats]:
        """Uniform phase timeline across all six kinds: composed
        collectives report one entry per sub-collective, simple kinds a
        single entry spanning the whole window."""
        if self.phase_stats:
            return list(self.phase_stats)
        return [PhaseStats(str(self.kind), str(self.kind),
                           self.t_begin, self.t_end)]

    @property
    def degraded(self) -> bool:
        return bool(self.dead_ranks)

    @property
    def recv_bytes_per_rank(self) -> int:
        kind = CollectiveKind(self.kind)  # raises ValueError on unknown
        if kind is CollectiveKind.ALLGATHER:
            return self.send_bytes * (self.comm_size - 1)
        if kind is CollectiveKind.BROADCAST:
            return self.send_bytes  # broadcast leaf
        if kind is CollectiveKind.REDUCE_SCATTER:
            return self.send_bytes // self.comm_size  # one reduced shard
        if kind is CollectiveKind.REDUCE:
            return self.send_bytes  # the root drains the whole reduction
        if kind is CollectiveKind.ALLREDUCE:
            # RS shard down (N/P) + allgather of the other shards
            # (N·(P−1)/P) = the full reduced buffer.
            return self.send_bytes
        if kind is CollectiveKind.ALLTOALL:
            # every remote block; the local block never touches the wire
            return self.send_bytes - self.send_bytes // self.comm_size
        raise ValueError(f"no payload accounting for kind {kind!r}")

    @property
    def throughput(self) -> float:
        """Per-process receive throughput in bytes/s (paper Fig 11 metric:
        collective payload over completion time)."""
        kind = CollectiveKind(self.kind)  # raises ValueError on unknown
        if kind is CollectiveKind.BROADCAST:
            total = self.send_bytes
        elif kind in (CollectiveKind.ALLGATHER, CollectiveKind.REDUCE_SCATTER,
                      CollectiveKind.REDUCE, CollectiveKind.ALLREDUCE,
                      CollectiveKind.ALLTOALL):
            total = self.send_bytes * self.comm_size
        else:
            raise ValueError(f"no payload accounting for kind {kind!r}")
        return total / self.duration if self.duration > 0 else float("inf")

    def phase_means(self) -> PhaseBreakdown:
        n = len(self.ranks)
        if n == 0:
            return PhaseBreakdown(sync=0.0, multicast=0.0, handshake=0.0, total=0.0)
        return PhaseBreakdown(
            sync=sum(r.breakdown.sync for r in self.ranks) / n,
            multicast=sum(r.breakdown.multicast for r in self.ranks) / n,
            handshake=sum(r.breakdown.handshake for r in self.ranks) / n,
            total=sum(r.breakdown.total for r in self.ranks) / n,
        )

    def counter_total(self, name: str) -> int:
        return sum(r.counters.get(name, 0) for r in self.ranks)

    def reliability_summary(self) -> Dict[str, object]:
        """Aggregate slow-path telemetry across ranks: recovery/round
        counters, escalations, and the merged per-rank retry histogram."""
        histogram: Dict[int, int] = {}
        for r in self.ranks:
            for invocation, rounds in enumerate(r.retry_histogram):
                histogram[invocation] = histogram.get(invocation, 0) + rounds
        return {
            "recoveries": self.counter_total("recoveries"),
            "recovered_chunks": self.counter_total("recovered_chunks"),
            "fetch_rounds": self.counter_total("fetch_rounds"),
            "fetch_ack_timeouts": self.counter_total("fetch_ack_timeouts"),
            "neighbor_escalations": self.counter_total("neighbor_escalations"),
            "retry_histogram": histogram,
            "max_timer_rearms": max(
                (len(r.timer_trace) for r in self.ranks), default=0
            ),
        }

    def verify_allgather(self, send_data: Sequence[np.ndarray]) -> bool:
        expected = np.concatenate([np.ascontiguousarray(d).view(np.uint8).ravel()
                                   for d in send_data])
        dead = set(self.dead_ranks)
        return all(np.array_equal(buf, expected)
                   for r, buf in enumerate(self.buffers) if r not in dead)

    def verify_broadcast(self, data: np.ndarray) -> bool:
        expected = np.ascontiguousarray(data).view(np.uint8).ravel()
        dead = set(self.dead_ranks)
        return all(np.array_equal(buf, expected)
                   for r, buf in enumerate(self.buffers) if r not in dead)

    def verify_allgather_degraded(self, send_data: Sequence[np.ndarray]) -> bool:
        """Degraded-mode allgather check: on every *surviving* rank, every
        chunk marked valid must hold the contributor's bytes, and every
        chunk marked missing must belong to a dead rank's shard."""
        expected = np.concatenate([np.ascontiguousarray(d).view(np.uint8).ravel()
                                   for d in send_data])
        dead = set(self.dead_ranks)
        for r, buf in enumerate(self.buffers):
            if r in dead:
                continue
            mask = self.validity[r] if self.validity is not None else None
            if mask is None:
                if not np.array_equal(buf, expected):
                    return False
                continue
            n_chunks = len(mask)
            # Shards are chunk-aligned by construction, so the owner of
            # chunk i is i // (chunks per rank).
            chunks_per_rank = n_chunks // self.comm_size
            chunk = (len(expected) + n_chunks - 1) // n_chunks
            for i in range(n_chunks):
                lo = i * chunk
                hi = min(lo + chunk, len(expected))
                if mask[i]:
                    if not np.array_equal(buf[lo:hi], expected[lo:hi]):
                        return False
                elif i // chunks_per_rank not in dead:
                    return False  # hole outside any dead rank's shard
        return True

    def verify_reduce_scatter(self, send_data: Sequence[np.ndarray],
                              rtol: float = 1e-3, atol: float = 1e-3) -> bool:
        """True when each rank holds its reduced float32 shard (within
        floating-point accumulation-order tolerance)."""
        arrays = [np.ascontiguousarray(d, dtype=np.float32).reshape(-1)
                  for d in send_data]
        total = arrays[0].copy()
        for a in arrays[1:]:
            total += a
        shard = total.size // self.comm_size
        return all(
            np.allclose(self.buffers[r], total[r * shard:(r + 1) * shard],
                        rtol=rtol, atol=atol)
            for r in range(self.comm_size)
        )

    def verify_reduce(self, send_data: Sequence[np.ndarray],
                      rtol: float = 1e-3, atol: float = 1e-3) -> bool:
        """True when the root holds the full reduced float32 buffer and
        every other rank holds nothing (rooted Reduce)."""
        arrays = [np.ascontiguousarray(d, dtype=np.float32).reshape(-1)
                  for d in send_data]
        total = arrays[0].copy()
        for a in arrays[1:]:
            total += a
        for r, buf in enumerate(self.buffers):
            vals = np.asarray(buf)
            if vals.dtype != np.float32:
                vals = vals.view(np.float32)
            if r == self.root:
                if not np.allclose(vals, total, rtol=rtol, atol=atol):
                    return False
            elif vals.size:
                return False
        return True

    def verify_allreduce(self, send_data: Sequence[np.ndarray],
                         rtol: float = 1e-3, atol: float = 1e-3) -> bool:
        """True when every surviving rank holds the reduced float32 sum of
        all contributions.  Degraded completions (a rank fail-stopped during
        the allgather phase) are checked through the validity masks: valid
        chunks must match the reduction, missing chunks must belong to a
        dead rank's shard."""
        arrays = [np.ascontiguousarray(d, dtype=np.float32).reshape(-1)
                  for d in send_data]
        total = arrays[0].copy()
        for a in arrays[1:]:
            total += a
        dead = set(self.dead_ranks)
        for r, buf in enumerate(self.buffers):
            if r in dead:
                continue
            vals = np.asarray(buf)
            if vals.dtype != np.float32:
                vals = vals.view(np.float32)
            mask = self.validity[r] if self.validity is not None else None
            if mask is None:
                if not np.allclose(vals, total, rtol=rtol, atol=atol):
                    return False
                continue
            n_chunks = len(mask)
            chunks_per_rank = n_chunks // self.comm_size
            elems = (total.size + n_chunks - 1) // n_chunks
            for i in range(n_chunks):
                lo = i * elems
                hi = min(lo + elems, total.size)
                if mask[i]:
                    if not np.allclose(vals[lo:hi], total[lo:hi],
                                       rtol=rtol, atol=atol):
                        return False
                elif i // chunks_per_rank not in dead:
                    return False  # hole outside any dead rank's shard
        return True

    def verify_alltoall(self, send_data: Sequence[np.ndarray]) -> bool:
        """True when rank *r*'s receive buffer is the concatenation of
        block *r* of every rank's contribution."""
        payloads = [np.ascontiguousarray(d).reshape(-1).view(np.uint8)
                    for d in send_data]
        block = payloads[0].nbytes // self.comm_size
        dead = set(self.dead_ranks)
        for r, buf in enumerate(self.buffers):
            if r in dead:
                continue
            expected = np.concatenate(
                [pl[r * block:(r + 1) * block] for pl in payloads])
            if not np.array_equal(np.asarray(buf).view(np.uint8), expected):
                return False
        return True


class OpHandle(CollectiveHandle):
    """An in-flight engine-backed collective: per-rank op states + an
    all-done event."""

    def __init__(self, comm: "Communicator", kind: Union[str, CollectiveKind],
                 coll_id: int, ops: List[OpState], buffers: List[np.ndarray],
                 send_bytes: int, root: Optional[int] = None):
        self.comm = comm
        self.kind = CollectiveKind(kind)
        self.coll_id = coll_id
        self.ops = ops
        self.buffers = buffers
        self.send_bytes = send_bytes
        self.root = root
        self.t_submit = comm.sim.now
        #: all-ranks-finished event (``done()`` — the protocol method —
        #: answers the non-blocking bool; this is the raw simulator event)
        self.done_event = AllOf(comm.sim, [op.op_done for op in ops])

    @property
    def complete(self) -> bool:
        return self.done_event.triggered

    @property
    def wait_events(self) -> List:
        """The events :meth:`Communicator.run` must drain for this handle."""
        return [self.done_event]

    @property
    def phases(self) -> List[PhaseStats]:
        return [PhaseStats(str(self.kind), str(self.kind), self.t_submit,
                           self.comm.sim.now)]

    def _release(self) -> None:
        for engine in self.comm.engines:
            engine.release_op(self.coll_id)
        self.comm._op_procs.pop(self.coll_id, None)

    def result(self, traffic: Optional[Dict[str, int]] = None,
               engine: Optional[Dict[str, int]] = None) -> CollectiveResult:
        if not self.complete:
            raise RuntimeError("collective has not completed")
        # Dead ranks' ops are abandoned, not completed — their phase records
        # stop at the crash instant and are excluded from the statistics.
        live_ops = [op for op in self.ops if not op.aborted]
        if not live_ops:
            raise RuntimeError("collective has no surviving ranks")
        ranks = []
        for op in live_ops:
            ph = op.phases
            breakdown = PhaseBreakdown(
                sync=ph["sync"] - ph["start"],
                multicast=ph["data"] - ph["sync"],
                handshake=ph["final"] - ph["data"],
                total=ph["final"] - ph["start"],
            )
            ranks.append(
                RankStats(
                    op.rank, dict(ph), breakdown, dict(op.stats),
                    retry_histogram=list(op.retry_histogram),
                    timer_trace=list(op.timer_trace),
                )
            )
        t_begin = min(op.phases["start"] for op in live_ops)
        t_end = max(op.phases["final"] for op in live_ops)
        dead = sorted(
            {op.rank for op in self.ops if op.aborted}
            | {r for op in live_ops for r in op.dead_ranks}
        )
        validity = None
        if any(op.valid_mask is not None for op in live_ops):
            by_rank = {op.rank: op for op in live_ops}
            validity = [
                (by_rank[r].valid_mask.copy()
                 if r in by_rank and by_rank[r].valid_mask is not None else None)
                for r in range(self.comm.size)
            ]
        tracer = self.comm.tracer
        return CollectiveResult(
            kind=self.kind,
            comm_size=self.comm.size,
            send_bytes=self.send_bytes,
            chunk_size=self.comm.config.chunk_size,
            transport=self.comm.config.transport,
            t_begin=t_begin,
            t_end=t_end,
            ranks=ranks,
            buffers=self.buffers,
            traffic=traffic or {},
            engine=engine or {},
            trace=tracer.view(t_begin, t_end) if tracer is not None else None,
            dead_ranks=dead,
            validity=validity,
            root=self.root,
            phase_stats=[PhaseStats(str(self.kind), str(self.kind),
                                    t_begin, t_end)],
        )


class BaselineHandle(CollectiveHandle):
    """An in-flight baseline-substrate collective (Reduce-Scatter, rooted
    Reduce, Alltoall — anything running on the RC P2P / INC datapaths
    rather than the multicast engine).

    Quacks like :class:`OpHandle` (``complete`` / ``wait_events`` /
    ``result()``) so every kind rides the one Communicator surface —
    including mixed waits like ``comm.run(ag_handle, rs_handle)`` for the
    FSDP {AG, RS} pair.  ``wait_events`` exposes the underlying rank
    processes directly (a :class:`~repro.sim.process.Process` *is* an
    Event), deliberately not wrapping them in an ``AllOf``: resolution of
    an AllOf schedules one extra simulator event, which would perturb the
    exact event counts the speedometer perf gate pins.

    ``coll_id`` is ``None``: baseline collectives own no immediate-data id
    (the old negative-id convention is gone); handles are tracked by their
    communicator-local ``handle_id``.

    A fail-stop during a baseline collective tears down the dead rank's
    process unconditionally (software dies with the host).  When the
    communicator has a :class:`FailurePolicy`, the *whole* collective is
    failed fast at the crash instant — a reduction missing a contributor
    poisons every element, and the unicast exchange has no validity-mask
    story — and :meth:`result` raises a typed
    :class:`~repro.core.reliability.CollectiveAbortedError`.  Without a
    policy, survivors hang until the watchdog fires, exactly like the
    engine path with the liveness layer off.
    """

    def __init__(self, comm: "Communicator", kind: Union[str, CollectiveKind],
                 pending, transport: str = "rc",
                 root: Optional[int] = None) -> None:
        self.comm = comm
        self.kind = CollectiveKind(kind)
        self.coll_id = None
        self.pending = pending
        self.send_bytes = pending.send_bytes
        self.root = root
        self.transport = transport
        self.t_submit = comm.sim.now
        self._base = None
        self._crash_dead: Set[int] = set()
        self._crash_aborted = False

    @property
    def complete(self) -> bool:
        return self.pending.complete

    @property
    def wait_events(self) -> List:
        return list(self.pending.procs)

    @property
    def phases(self) -> List[PhaseStats]:
        t_end = self._base.t_end if self._base is not None else self.comm.sim.now
        return [PhaseStats(str(self.kind), str(self.kind),
                           self.pending.t_begin, t_end)]

    def on_crash(self, rank: int) -> None:
        procs = self.pending.procs
        if self.complete or rank >= len(procs):
            return
        if procs[rank].alive:
            procs[rank].kill()
        if self.comm.config.failure_policy is not None:
            self._crash_dead.add(rank)
            self._crash_aborted = True
            for p in procs:
                if p.alive:
                    p.kill()

    def _finish(self):
        """Materialize the baseline result (idempotent; a no-op drain when
        everything already triggered — bit-identical payloads either way)."""
        if self._base is None:
            self._base = self.pending.finish()
        return self._base

    def result(self, traffic: Optional[Dict[str, int]] = None,
               engine: Optional[Dict[str, int]] = None) -> CollectiveResult:
        if not self.complete:
            raise RuntimeError("collective has not completed")
        if self._crash_aborted:
            dead = sorted(self._crash_dead)
            raise CollectiveAbortedError(
                f"{self.kind} aborted: rank(s) {dead} fail-stopped "
                "mid-collective and the baseline substrate cannot degrade",
                rank=-1, coll_id=-1, kind=str(self.kind),
                phase=str(self.kind), dead_ranks=dead,
            )
        base = self._finish()
        ranks = []
        for r, t in enumerate(base.rank_times):
            elapsed = t - base.t_begin
            ranks.append(
                RankStats(
                    r,
                    {"start": base.t_begin, "final": t},
                    PhaseBreakdown(sync=0.0, multicast=elapsed,
                                   handshake=0.0, total=elapsed),
                    {},
                )
            )
        tracer = self.comm.tracer
        return CollectiveResult(
            kind=self.kind,
            comm_size=base.comm_size,
            send_bytes=base.send_bytes,
            chunk_size=self.comm.config.chunk_size,
            transport=self.transport,
            t_begin=base.t_begin,
            t_end=base.t_end,
            ranks=ranks,
            buffers=base.buffers,
            traffic=dict(base.traffic) if traffic is None else traffic,
            engine=engine or {},
            trace=(tracer.view(base.t_begin, base.t_end)
                   if tracer is not None else None),
            root=self.root,
            phase_stats=[PhaseStats(str(self.kind), str(self.kind),
                                    base.t_begin, base.t_end)],
        )


class ReduceScatterHandle(BaselineHandle):
    """Back-compat constructor: a Reduce-Scatter :class:`BaselineHandle`."""

    def __init__(self, comm: "Communicator", pending) -> None:
        super().__init__(comm, CollectiveKind.REDUCE_SCATTER, pending)


class ComposedHandle(CollectiveHandle):
    """A collective composed from a plan of sub-collectives run
    back-to-back inside one submission — allreduce is the INC
    reduce-scatter chained into the multicast allgather, the reduced
    shards serving directly as the allgather's staging buffers
    (paper Appendix B).

    A driver process walks the plan: it launches phase *k+1* at the exact
    instant phase *k*'s last rank process completes — the same instant a
    caller chaining ``comm.reduce_scatter(...)`` then
    ``comm.allgather(...)`` observes from ``run()`` — so the composed
    collective is **bit-identical in virtual time** to manual chaining.
    The driver itself never advances the clock (process resumption is a
    zero-delay callback at the completion instant); it only sequences
    launches.  Each phase reuses the full per-phase machinery: the
    reliability/liveness layer and the flow-level fast-forward see one
    ordinary collective at a time.
    """

    def __init__(self, comm: "Communicator", kind: Union[str, CollectiveKind],
                 plan: List, send_bytes: int) -> None:
        self.comm = comm
        self.kind = CollectiveKind(kind)
        self.coll_id = None
        self.send_bytes = send_bytes
        self.t_submit = comm.sim.now
        self._plan = list(plan)
        self._subs: List = []  # launched (name, handle) pairs
        self._current: Optional[CollectiveHandle] = None
        self._abort_dead: Optional[Set[int]] = None
        self._proc = comm.sim.spawn(self._drive(), name=f"{self.kind}-driver")

    def _drive(self):
        prev = None
        for name, factory in self._plan:
            sub = factory(prev)
            self._subs.append((name, sub))
            self._current = sub
            for ev in sub.wait_events:
                yield ev
            self._current = None
            if self._abort_dead is not None:
                break
            prev = sub
        if self._abort_dead is not None:
            dead = sorted(self._abort_dead)
            phase = self._subs[-1][0]
            raise CollectiveAbortedError(
                f"{self.kind} aborted: rank(s) {dead} fail-stopped during "
                f"the {phase} phase (reductions cannot degrade)",
                rank=-1, coll_id=-1, kind=str(self.kind), phase=phase,
                dead_ranks=dead,
            )
        return self.comm.sim.now

    @property
    def complete(self) -> bool:
        return self._proc.triggered

    @property
    def wait_events(self) -> List:
        return [self._proc]

    @property
    def phases(self) -> List[PhaseStats]:
        return [PhaseStats(name, str(sub.kind), sub.t_submit,
                           self.comm.sim.now)
                for name, sub in self._subs]

    def exclusive_coll_id(self) -> Optional[int]:
        sub = self._current
        return sub.exclusive_coll_id() if sub is not None else None

    def on_crash(self, rank: int) -> None:
        sub = self._current
        if sub is None or self.complete:
            return
        sub.on_crash(rank)
        if getattr(sub, "_crash_aborted", False):
            # Baseline (reduction) phase: the sub-handle already tore all
            # ranks down; surface the abort from the driver.  Engine-phase
            # crashes are handled by the liveness protocol instead.
            dead = set(sub._crash_dead)
            self._abort_dead = (self._abort_dead or set()) | dead

    def _release(self) -> None:
        for _name, sub in self._subs:
            sub._release()

    def result(self, traffic: Optional[Dict[str, int]] = None,
               engine: Optional[Dict[str, int]] = None) -> CollectiveResult:
        if not self.complete:
            raise RuntimeError("collective has not completed")
        if not self._proc.ok:
            raise self._proc.value
        (rs_name, rs), (ag_name, ag) = self._subs[0], self._subs[-1]
        rs_base = rs._finish()
        ag_res = ag.result()
        tracer = self.comm.tracer
        # The allgather ran over the reduced shards, so every surviving
        # rank's gather buffer *is* the full reduced vector.
        buffers = [np.asarray(b).view(np.float32) for b in ag_res.buffers]
        return CollectiveResult(
            kind=self.kind,
            comm_size=self.comm.size,
            send_bytes=self.send_bytes,
            chunk_size=self.comm.config.chunk_size,
            transport=f"rc+{self.comm.config.transport}",
            t_begin=rs_base.t_begin,
            t_end=ag_res.t_end,
            ranks=ag_res.ranks,
            buffers=buffers,
            traffic=traffic or {},
            engine=engine or {},
            trace=(tracer.view(rs_base.t_begin, ag_res.t_end)
                   if tracer is not None else None),
            dead_ranks=ag_res.dead_ranks,
            validity=ag_res.validity,
            phase_stats=[
                PhaseStats(rs_name, str(rs.kind), rs_base.t_begin,
                           rs_base.t_end),
                PhaseStats(ag_name, str(ag.kind), ag_res.t_begin,
                           ag_res.t_end),
            ],
        )


class Communicator:
    """A group of ranks with a shared multicast collective stack."""

    def __init__(
        self,
        fabric: Fabric,
        hosts: Optional[Sequence[int]] = None,
        config: Union[CollectiveConfig, str, None] = None,
        trace: Optional[TraceConfig] = None,
    ) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.hosts: List[int] = list(hosts) if hosts is not None else list(range(fabric.n_hosts))
        if len(set(self.hosts)) != len(self.hosts):
            raise ValueError("duplicate hosts in communicator")
        self.size = len(self.hosts)
        if isinstance(config, str):
            # config="auto": resolve the tuned profile for this fabric
            # through the persistent store (falls back to the stock
            # default when no profile matches — see repro.tune).
            if config != "auto":
                raise ValueError(
                    f"unknown config preset {config!r} (only 'auto')")
            from repro.tune.search import resolve_config

            config = resolve_config(fabric, n_hosts=self.size)
        self.config = config or CollectiveConfig()
        self.config.validate(fabric)
        # Observability plane (DESIGN.md §8): build + install the tracer
        # before the engines so each RankEngine picks up its rank track.
        self.tracer: Optional[Tracer] = None
        if trace is not None and trace.enabled and obs_trace.ENABLED:
            self.tracer = Tracer(trace)
            fabric.install_tracer(self.tracer)
        self.imm = ImmLayout(self.config.psn_bits)
        # Replicated multicast groups — the subgroups of §IV-C.
        self.mcast_gids: List[int] = (
            [fabric.create_mcast_group(self.hosts) for _ in range(self.config.n_subgroups)]
            if self.size >= 2
            else []
        )
        self._ctrl_pairs: Dict[tuple, QueuePair] = {}
        self.engines: List[RankEngine] = []
        for r in range(self.size):
            self.engines.append(RankEngine(self, r))
        self._coll_ids = itertools.count(0)
        self._handle_ids = itertools.count(0)
        #: in-flight handles by handle_id (one id space for every kind;
        #: engine-backed sub-ops additionally carry an immediate-data
        #: coll_id, but that is an engine detail, not the tracking key)
        self._active: Dict[int, CollectiveHandle] = {}
        self._api_track = None  # lazy obs track for submission tracepoints
        #: flow-level fast-forward engine (None when the knob is off)
        self.ff: Optional[FlowFastForward] = (
            FlowFastForward(self) if self.config.fast_forward != "off" else None
        )
        # --- fail-stop state -------------------------------------------
        #: ranks whose hosts fail-stopped (grows monotonically)
        self.dead_ranks: Set[int] = set()
        #: op-controller processes by coll_id, as (rank, process) pairs —
        #: a crash must tear down the dead host's software immediately
        self._op_procs: Dict[int, List[tuple]] = {}
        self._repair_key = None
        self._repair_track = None
        #: rail currently carrying the RC control plane (multi-rail only;
        #: migrated by the SM sweep when its plane stops spanning the
        #: survivors — IB-style automatic path migration)
        self._ctrl_rail = 0
        fabric.on_crash(self._on_fabric_crash)
        fabric.sweep_listeners.append(self._on_sm_sweep)
        self.sim.add_watchdog_diagnostic(self._watchdog_diagnostic)

    # ------------------------------------------------------------- plumbing

    def host_of(self, rank: int) -> int:
        return self.hosts[rank]

    def ensure_ctrl_pair(self, a: int, b: int) -> QueuePair:
        """Return rank *a*'s control QP toward rank *b*, creating the
        connected pair (and posting its receive slots) on first use."""
        qp = self._ctrl_pairs.get((a, b))
        if qp is not None:
            return qp
        ea, eb = self.engines[a], self.engines[b]
        # Create on the control plane's *current* NIC — after a rail
        # migration, lazily-created pairs must land on the surviving plane.
        qa = ea.ctrl.nic.create_qp(Transport.RC, recv_cq=ea.ctrl.recv_cq)
        qb = eb.ctrl.nic.create_qp(Transport.RC, recv_cq=eb.ctrl.recv_cq)
        qa.connect(self.host_of(b), qb.qpn)
        qb.connect(self.host_of(a), qa.qpn)
        ea.ctrl.adopt_qp(b, qa)
        eb.ctrl.adopt_qp(a, qb)
        self._ctrl_pairs[(a, b)] = qa
        self._ctrl_pairs[(b, a)] = qb
        return qa

    # ------------------------------------------------------------ fail-stop

    @property
    def survivors(self) -> List[int]:
        return [r for r in range(self.size) if r not in self.dead_ranks]

    def _on_fabric_crash(self, spec) -> None:
        """Fabric listener, invoked at the crash instant.

        Only the *dead* host's local software is torn down here (software
        dies with the host); surviving ranks must learn about the death
        through the liveness protocol — PING probes and reliable MSG_DEATH
        notices — never from this oracle.
        """
        if spec.host is None:
            return
        host = self.fabric._resolve_host(spec.host)
        try:
            rank = self.hosts.index(host)
        except ValueError:
            return  # crashed host is not a member of this communicator
        self.dead_ranks.add(rank)
        engine = self.engines[rank]
        engine.shutdown()
        for procs in self._op_procs.values():
            for r, proc in procs:
                if r == rank and proc.alive:
                    proc.kill()
        for op in list(engine.ops.values()):
            op.abandon()
        # Baseline-substrate and composed handles manage their own rank
        # processes; let each apply the failure policy to its current phase.
        for handle in list(self._active.values()):
            handle.on_crash(rank)

    def _on_sm_sweep(self) -> None:
        """SM sweep listener (multi-rail only): when the plane carrying the
        RC control plane no longer spans the surviving hosts, migrate every
        survivor's control QPs to the lowest plane that does — the model's
        analogue of IB automatic path migration, driven by the omniscient
        subnet manager rather than the (now partitioned) control plane
        itself.  Data-plane subgroup QPs follow their group's re-planned
        rail in the same pass, so a whole-plane death heals end to end:
        sweep re-plans trees onto survivors, this listener re-homes QPs,
        and cutoff/fetch recovery re-delivers what the dead plane ate."""
        topo = self.fabric.topology
        if topo.rails <= 1 or not self.engines:
            return
        live = [r for r in self.survivors
                if not self.fabric.host_isolated(self.hosts[r])]
        if len(live) >= 2:
            dead = self.fabric.dead_node_names()
            rail = topo.connected_rail(
                [self.hosts[r] for r in live], dead, prefer=self._ctrl_rail)
            if rail is not None and rail != self._ctrl_rail:
                self._migrate_ctrl_plane(rail, live)
        # Groups may have been re-planned onto another rail by the sweep.
        for r in live:
            for sg in range(len(self.mcast_gids)):
                self.engines[r].rebind_subgroup(sg)

    def _migrate_ctrl_plane(self, rail: int, live: List[int]) -> None:
        """Re-home every live rank's control QPs onto *rail*'s NIC and
        re-connect the pairs with their migrated QPNs (both ends move —
        planes only meet at hosts, so a half-migrated pair is unroutable)."""
        live_set = set(live)
        for r in live:
            eng = self.engines[r]
            nic = self.fabric.rail_nic(self.hosts[r], rail)
            for qp in eng.ctrl.qps.values():
                nic.adopt_qp(qp)
            eng.ctrl.nic = nic
        for r in live:
            for peer, qp in self.engines[r].ctrl.qps.items():
                if peer in live_set:
                    peer_qp = self.engines[peer].ctrl.qps.get(r)
                    if peer_qp is not None:
                        qp.connect(self.hosts[peer], peer_qp.qpn)
        self._ctrl_rail = rail
        if self.tracer is not None:
            if self._repair_track is None:
                self._repair_track = self.tracer.track("comm", "repair")
            self._repair_track.instant(
                "repair.ctrl_migrate", self.sim.now, {"rail": rail})

    def note_death(self, rank: int) -> None:
        """Protocol-level death confirmation (called by a survivor's engine
        after probes went unanswered).  Idempotent."""
        self.dead_ranks.add(rank)
        engine = self.engines[rank]
        for op in list(engine.ops.values()):
            if not op.aborted:
                op.abandon()

    def repair_topology(self) -> None:
        """Re-plan routing and every multicast tree around the current dead
        set (idempotent per dead-set value; survivors racing into repair
        after the same confirmation do the work once)."""
        key = (frozenset(self.fabric.dead_node_names()), frozenset(self.dead_ranks))
        if key == self._repair_key:
            return
        self._repair_key = key
        self.fabric.reroute_unicast()
        # Hosts orphaned by an access-switch death are unreachable even
        # though their rank is not (yet) confirmed dead — planning around
        # them now keeps the surviving tree spanning; the liveness
        # protocol confirms their death and re-repairs afterwards.
        live_hosts = [self.hosts[r] for r in self.survivors
                      if not self.fabric.host_isolated(self.hosts[r])]
        exclude = self.fabric.dead_node_names()
        for gid in self.mcast_gids:
            if len(live_hosts) >= 2:
                try:
                    self.fabric.rebuild_mcast_group(gid, live_hosts, exclude)
                except ValueError:
                    # Partitioned group (no surviving tree spans the
                    # members): leave the stale tree; the collective layer
                    # degrades or aborts through the normal policy.
                    pass
        if self.fabric.topology.rails > 1:
            # A re-plan may have failed a group over to a surviving plane
            # (whole-rail death): migrate survivors' QPs to the new rail.
            for r in self.survivors:
                for sg in range(len(self.mcast_gids)):
                    self.engines[r].rebind_subgroup(sg)
        if self.tracer is not None:
            if self._repair_track is None:
                self._repair_track = self.tracer.track("comm", "repair")
            self._repair_track.instant(
                "repair.replan", self.sim.now,
                {"dead_ranks": sorted(self.dead_ranks),
                 "dead_nodes": sorted(exclude)},
            )

    def _watchdog_diagnostic(self) -> str:
        """Per-rank state dump for the simulator hang watchdog."""
        lines = [f"communicator: size={self.size} dead_ranks={sorted(self.dead_ranks)}"]
        for r, engine in enumerate(self.engines):
            host = self.hosts[r]
            status = "DEAD" if r in self.dead_ranks else "live"
            lines.append(
                f"rank {r} ({host_name(host)}, {status}): "
                f"ctrl sent={engine.ctrl.messages_sent} "
                f"recv={engine.ctrl.messages_received}"
            )
            for cid, op in sorted(engine.ops.items()):
                holes = op.bitmap.missing_runs()
                hole_str = ", ".join(f"[{lo},{lo + n})" for lo, n in holes[:4])
                if len(holes) > 4:
                    hole_str += f", … (+{len(holes) - 4} runs)"
                last_phase = max(op.phases.items(), key=lambda kv: kv[1])[0] \
                    if op.phases else "-"
                last_timer = op.timer_trace[-1] if op.timer_trace else None
                lines.append(
                    f"  op c{cid} {op.kind}: {op.bitmap.count}/{op.n_chunks} chunks "
                    f"({op.placed.count} placed, {op.outstanding_copies} copies in "
                    f"flight), holes: {hole_str or 'none'}; last phase: {last_phase}; "
                    f"last timer: {last_timer}"
                )
        return "\n".join(lines)

    def _next_coll_id(self) -> int:
        for _ in range(self.imm.max_collectives):
            cid = next(self._coll_ids) % self.imm.max_collectives
            if all(cid not in e.ops for e in self.engines):
                return cid
        raise RuntimeError("no free collective ids (too many in-flight collectives)")

    @staticmethod
    def _as_bytes(data: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(data)
        return arr.reshape(-1).view(np.uint8)

    # ------------------------------------------------------------ submission

    def submit(self, request: CollectiveRequest) -> CollectiveHandle:
        """Launch the collective described by *request*; returns a handle.

        The one entry point for all six kinds: the request has already
        validated its field combinations eagerly; this checks the parts
        that need the communicator (root range, contribution count) and
        dispatches on :class:`CollectiveKind`.  The per-kind methods are
        thin wrappers over this.
        """
        if not isinstance(request, CollectiveRequest):
            raise CollectiveRequestError(
                f"submit() takes a CollectiveRequest, got "
                f"{type(request).__name__}; build one instead of passing "
                "raw kind strings"
            )
        kind = request.kind
        if kind in ROOTED_KINDS and not 0 <= request.root < self.size:
            raise CollectiveRequestError(
                f"root {request.root} out of range for {self.size} ranks")
        if kind is not CollectiveKind.BROADCAST and len(request.data) != self.size:
            raise CollectiveRequestError(
                f"{kind} needs {self.size} send buffers, got {len(request.data)}")
        if kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.REDUCE,
                    CollectiveKind.ALLREDUCE, CollectiveKind.ALLTOALL) \
                and self.dead_ranks:
            # The baseline substrates have no degraded mode: a reduction
            # missing a contributor poisons every element, and the INC tree
            # would wait forever for the dead rank's segments.  Fail the
            # submission instead of hanging the simulation.
            raise CollectiveAbortedError(
                f"{kind} cannot start: rank(s) {sorted(self.dead_ranks)} "
                "already fail-stopped and the substrate cannot degrade",
                rank=-1, coll_id=-1, kind=str(kind), phase="submit",
                dead_ranks=sorted(self.dead_ranks),
            )
        if self.ff is not None:
            # A deferred-commit fast-forward session must flush before a
            # second collective's packets can observe channel state; the
            # overlap is only detected at the *next* fold hook — too late.
            self.ff.preempt_vec()
        if kind is CollectiveKind.BROADCAST:
            handle = self._launch_broadcast(request.root, request.data)
        elif kind is CollectiveKind.ALLGATHER:
            handle = self._launch_allgather(request.data)
        elif kind is CollectiveKind.REDUCE_SCATTER:
            handle = self._launch_reduce_scatter(
                request.data, request.algorithm or "inc", request.cost,
                request.segment_bytes)
        elif kind is CollectiveKind.REDUCE:
            handle = self._launch_reduce(request.data, request.root,
                                         request.cost, request.segment_bytes)
        elif kind is CollectiveKind.ALLREDUCE:
            handle = self._launch_allreduce(
                request.data, request.algorithm or "inc", request.cost,
                request.segment_bytes)
        elif kind is CollectiveKind.ALLTOALL:
            handle = self._launch_alltoall(request.data, request.cost,
                                           request.chunk_bytes)
        else:  # pragma: no cover - CollectiveRequest already validated
            raise CollectiveRequestError(f"no dispatch for kind {kind!r}")
        return self._register(handle)

    def _register(self, handle: CollectiveHandle) -> CollectiveHandle:
        handle.handle_id = next(self._handle_ids)
        self._active[handle.handle_id] = handle
        if self.tracer is not None:
            if self._api_track is None:
                self._api_track = self.tracer.track("comm", "api")
            self._api_track.instant(
                "comm.submit", self.sim.now,
                {"kind": str(handle.kind), "handle": handle.handle_id},
            )
        return handle

    # ------------------------------------------------------------ broadcast

    def _launch_broadcast(self, root: int, data: np.ndarray) -> OpHandle:
        """Build + start a Broadcast of *data* from rank *root*."""
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range")
        payload = self._as_bytes(data)
        nbytes = payload.nbytes
        if nbytes == 0:
            raise ValueError("cannot broadcast an empty buffer")
        cid = self._next_coll_id()
        plan = ChunkPlan(nbytes, self.config.chunk_size)
        if plan.n_chunks > self.imm.max_psns:
            raise ValueError("buffer needs more PSNs than the immediate layout provides")
        sub = SubgroupPlan(plan.n_chunks, self.config.n_subgroups)
        if root in self.dead_ranks:
            raise ValueError(f"broadcast root {root} fail-stopped earlier")
        ops, buffers, procs = [], [], []
        participants = self.survivors
        for r in range(self.size):
            engine = self.engines[r]
            if r == root:
                buf = payload
            else:
                buf = np.zeros(nbytes, dtype=np.uint8)
            mr = engine.nic.memory.register(buf, key=RKEY_BASE + cid)
            op = OpState(
                sim=self.sim, coll_id=cid, kind="broadcast", rank=r,
                comm_size=self.size, mr=mr, plan=plan, subgroups=sub,
                send_lo=0, send_hi=plan.n_chunks if r == root else 0, root=root,
            )
            if r in self.dead_ranks:
                op.abandon()  # a dead host runs no software
            else:
                engine.register_op(op)
                proc = self.sim.spawn(engine.run_op(op, participants),
                                      name=f"bcast-c{cid}-r{r}")
                procs.append((r, proc))
            ops.append(op)
            buffers.append(mr.buf)
        self._op_procs[cid] = procs
        return OpHandle(self, "broadcast", cid, ops, buffers, nbytes, root=root)

    def broadcast_async(self, root: int, data: np.ndarray) -> OpHandle:
        """Start a Broadcast of *data* from rank *root*; returns a handle."""
        return self.submit(CollectiveRequest(
            kind=CollectiveKind.BROADCAST, data=data, root=root))

    # ------------------------------------------------------------ allgather

    def _launch_allgather(self, send_data: Sequence[np.ndarray]) -> OpHandle:
        """Build + start an Allgather over per-rank contributions.

        All contributions must have equal byte size, divisible by the chunk
        size so shard boundaries align with chunk boundaries.
        """
        if len(send_data) != self.size:
            raise ValueError(f"need {self.size} send buffers, got {len(send_data)}")
        payloads = [self._as_bytes(d) for d in send_data]
        nbytes = payloads[0].nbytes
        if nbytes == 0:
            raise ValueError("cannot allgather empty buffers")
        if any(p.nbytes != nbytes for p in payloads):
            raise ValueError("all send buffers must have the same size")
        # Small contributions shrink the chunk so shards stay chunk-aligned.
        chunk = min(self.config.chunk_size, nbytes)
        if self.size > 1 and nbytes % chunk != 0:
            raise ValueError(
                f"send size {nbytes} must be a multiple of the chunk size "
                f"{chunk} so shards align with chunk boundaries"
            )
        cid = self._next_coll_id()
        total = nbytes * self.size
        plan = ChunkPlan(total, chunk)
        if plan.n_chunks > self.imm.max_psns:
            raise ValueError("buffer needs more PSNs than the immediate layout provides")
        chunks_per_rank = max(nbytes // chunk, 1)
        sub = SubgroupPlan(chunks_per_rank, self.config.n_subgroups)
        participants = self.survivors
        if len(participants) < 1:
            raise RuntimeError("allgather has no surviving ranks")
        # The chain schedule runs over the *survivors*; ranks that died
        # before submission never multicast and their shards are voided
        # up front on every survivor.
        n_chains = effective_chains(len(participants), self.config.n_chains)
        seq = BroadcastSequencer(len(participants), n_chains)
        chain_index = {r: i for i, r in enumerate(participants)}
        ops, buffers, procs = [], [], []
        for r in range(self.size):
            engine = self.engines[r]
            buf = np.zeros(total, dtype=np.uint8)
            # Own shard is placed locally — the paper's roots never receive
            # their own multicast back (the tree excludes the ingress port).
            buf[r * nbytes : (r + 1) * nbytes] = payloads[r]
            mr = engine.nic.memory.register(buf, key=RKEY_BASE + cid)
            op = OpState(
                sim=self.sim, coll_id=cid, kind="allgather", rank=r,
                comm_size=self.size, mr=mr, plan=plan, subgroups=sub,
                send_lo=r * chunks_per_rank, send_hi=(r + 1) * chunks_per_rank,
            )
            if r in self.dead_ranks:
                op.abandon()
                ops.append(op)
                buffers.append(mr.buf)
                continue
            for d in sorted(self.dead_ranks):
                op.mark_void(d * chunks_per_rank, chunks_per_rank)
                op.dead_ranks.add(d)
            op.maybe_complete()
            idx = chain_index[r]
            pred = seq.predecessor(idx)
            succ = seq.successor(idx)
            engine.register_op(op)
            proc = self.sim.spawn(
                engine.run_op(
                    op,
                    participants,
                    activation_pred=participants[pred] if pred is not None else None,
                    activation_succ=participants[succ] if succ is not None else None,
                ),
                name=f"ag-c{cid}-r{r}",
            )
            procs.append((r, proc))
            ops.append(op)
            buffers.append(mr.buf)
        self._op_procs[cid] = procs
        return OpHandle(self, "allgather", cid, ops, buffers, nbytes)

    def allgather_async(self, send_data: Sequence[np.ndarray]) -> OpHandle:
        """Start an Allgather; ``send_data[r]`` is rank *r*'s contribution."""
        return self.submit(CollectiveRequest(
            kind=CollectiveKind.ALLGATHER, data=send_data))

    # -------------------------------------------------------- reduce-scatter

    def _launch_reduce_scatter(
        self,
        send_data: Sequence[np.ndarray],
        algorithm: str,
        cost: Optional[HostCostModel],
        segment_bytes: int,
    ) -> ReduceScatterHandle:
        from repro.core.baselines.reduce import (
            inc_reduce_scatter,
            ring_reduce_scatter,
        )

        if algorithm == "inc":
            pending = inc_reduce_scatter(
                self.fabric, send_data, self.hosts, cost,
                segment_bytes=segment_bytes, defer=True,
            )
        elif algorithm == "ring":
            pending = ring_reduce_scatter(
                self.fabric, send_data, self.hosts, cost, defer=True,
            )
        else:
            raise ValueError(f"unknown reduce-scatter algorithm {algorithm!r}")
        return ReduceScatterHandle(self, pending)

    def reduce_scatter_async(
        self,
        send_data: Sequence[np.ndarray],
        algorithm: str = "inc",
        cost: Optional[HostCostModel] = None,
        segment_bytes: int = 4096,
    ) -> ReduceScatterHandle:
        """Start a Reduce-Scatter; ``send_data[r]`` is rank *r*'s float32
        contribution and rank *r* ends up with reduced shard *r*.

        ``algorithm`` picks the substrate: ``"inc"`` (in-network compute,
        paper Fig 3 — the FSDP companion of multicast Allgather) or
        ``"ring"``.  ``cost`` defaults to the baseline
        :class:`HostCostModel` (RS runs on the RC P2P datapath, not this
        communicator's multicast engine, so its cost model is independent).
        """
        return self.submit(CollectiveRequest(
            kind=CollectiveKind.REDUCE_SCATTER, data=send_data,
            algorithm=algorithm, cost=cost, segment_bytes=segment_bytes))

    def reduce_scatter(
        self,
        send_data: Sequence[np.ndarray],
        algorithm: str = "inc",
        cost: Optional[HostCostModel] = None,
        segment_bytes: int = 4096,
    ) -> CollectiveResult:
        """Reduce-Scatter; runs the simulation to completion."""
        return self._run_sync(
            self.reduce_scatter_async(send_data, algorithm=algorithm,
                                      cost=cost, segment_bytes=segment_bytes)
        )

    # ---------------------------------------------------------------- reduce

    def _launch_reduce(
        self,
        send_data: Sequence[np.ndarray],
        root: int,
        cost: Optional[HostCostModel],
        segment_bytes: int,
    ) -> BaselineHandle:
        from repro.core.baselines.reduce import inc_reduce

        pending = inc_reduce(self.fabric, send_data, root, self.hosts, cost,
                             segment_bytes=segment_bytes, defer=True)
        return BaselineHandle(self, CollectiveKind.REDUCE, pending, root=root)

    def reduce_async(
        self,
        send_data: Sequence[np.ndarray],
        root: int,
        cost: Optional[HostCostModel] = None,
        segment_bytes: int = 4096,
    ) -> BaselineHandle:
        """Start a rooted Reduce on the INC substrate: every rank
        contributes float32 data; rank *root* ends up with the full
        reduced buffer (everyone else holds nothing)."""
        return self.submit(CollectiveRequest(
            kind=CollectiveKind.REDUCE, data=send_data, root=root,
            cost=cost, segment_bytes=segment_bytes))

    def reduce(
        self,
        send_data: Sequence[np.ndarray],
        root: int,
        cost: Optional[HostCostModel] = None,
        segment_bytes: int = 4096,
    ) -> CollectiveResult:
        """Rooted Reduce; runs the simulation to completion."""
        return self._run_sync(
            self.reduce_async(send_data, root, cost=cost,
                              segment_bytes=segment_bytes)
        )

    # ------------------------------------------------------------- allreduce

    def _launch_allreduce(
        self,
        send_data: Sequence[np.ndarray],
        algorithm: str,
        cost: Optional[HostCostModel],
        segment_bytes: int,
    ) -> ComposedHandle:
        if algorithm not in ("inc", "ring"):
            raise ValueError(f"unknown allreduce algorithm {algorithm!r}")
        arrays = [np.ascontiguousarray(d, dtype=np.float32).reshape(-1)
                  for d in send_data]
        elems = arrays[0].size
        if any(a.size != elems for a in arrays):
            raise ValueError("all contributions must have the same length")
        if elems % self.size:
            raise ValueError(
                f"element count {elems} must divide into {self.size} shards")
        shard_bytes = (elems // self.size) * 4
        chunk = min(self.config.chunk_size, shard_bytes) if shard_bytes else 0
        if self.size > 1 and shard_bytes % max(chunk, 1):
            raise ValueError(
                f"allreduce shard size {shard_bytes} must be a multiple of "
                f"the chunk size {chunk} so the allgather phase stays "
                "chunk-aligned")

        def rs_phase(_prev) -> BaselineHandle:
            return self._launch_reduce_scatter(arrays, algorithm, cost,
                                               segment_bytes)

        def ag_phase(rs_handle) -> OpHandle:
            # The reduced float32 shards feed the allgather directly —
            # byte-for-byte the buffers a manual RS → AG chain would pass.
            return self._launch_allgather(rs_handle._finish().buffers)

        return ComposedHandle(
            self, CollectiveKind.ALLREDUCE,
            [("reduce_scatter", rs_phase), ("allgather", ag_phase)],
            send_bytes=elems * 4,
        )

    def allreduce_async(
        self,
        send_data: Sequence[np.ndarray],
        algorithm: str = "inc",
        cost: Optional[HostCostModel] = None,
        segment_bytes: int = 4096,
    ) -> ComposedHandle:
        """Start an Allreduce composed as reduce-scatter → allgather inside
        one submission (paper Appendix B): the INC tree reduces and shards,
        then the multicast engine gathers the reduced shards.  ``algorithm``
        picks the reduce-scatter substrate ("inc" or "ring")."""
        return self.submit(CollectiveRequest(
            kind=CollectiveKind.ALLREDUCE, data=send_data,
            algorithm=algorithm, cost=cost, segment_bytes=segment_bytes))

    def allreduce(
        self,
        send_data: Sequence[np.ndarray],
        algorithm: str = "inc",
        cost: Optional[HostCostModel] = None,
        segment_bytes: int = 4096,
    ) -> CollectiveResult:
        """Allreduce; runs the simulation to completion."""
        return self._run_sync(
            self.allreduce_async(send_data, algorithm=algorithm, cost=cost,
                                 segment_bytes=segment_bytes)
        )

    # -------------------------------------------------------------- alltoall

    def _launch_alltoall(
        self,
        send_data: Sequence[np.ndarray],
        cost: Optional[HostCostModel],
        chunk_bytes: Optional[int],
    ) -> BaselineHandle:
        from repro.core.baselines.alltoall import p2p_alltoall
        from repro.core.baselines.base import P2PNet

        if chunk_bytes is None and self.size:
            # Default to the communicator's chunking discipline when it
            # divides the block evenly and fits the RC notification pool;
            # otherwise fall back to one write per block.
            nbytes = int(np.ascontiguousarray(send_data[0]).nbytes)
            block = nbytes // self.size
            c = min(self.config.chunk_size, block) if block else 0
            if c and block % c == 0 and block // c <= P2PNet._DUMMY_POOL:
                chunk_bytes = c
        pending = p2p_alltoall(self.fabric, send_data, self.hosts, cost,
                               chunk_bytes=chunk_bytes, defer=True)
        return BaselineHandle(self, CollectiveKind.ALLTOALL, pending)

    def alltoall_async(
        self,
        send_data: Sequence[np.ndarray],
        cost: Optional[HostCostModel] = None,
        chunk_bytes: Optional[int] = None,
    ) -> BaselineHandle:
        """Start an Alltoall (MoE expert-parallel traffic): ``send_data[r]``
        holds P equal blocks; block *i* lands as block *r* of rank *i*'s
        receive buffer.  Runs over unicast RC QPs with a rotation schedule
        so the instantaneous traffic matrix stays a permutation."""
        return self.submit(CollectiveRequest(
            kind=CollectiveKind.ALLTOALL, data=send_data, cost=cost,
            chunk_bytes=chunk_bytes))

    def alltoall(
        self,
        send_data: Sequence[np.ndarray],
        cost: Optional[HostCostModel] = None,
        chunk_bytes: Optional[int] = None,
    ) -> CollectiveResult:
        """Alltoall; runs the simulation to completion."""
        return self._run_sync(
            self.alltoall_async(send_data, cost=cost, chunk_bytes=chunk_bytes)
        )

    # ------------------------------------------------------------ execution

    def run(self, *handles: CollectiveHandle) -> None:
        """Advance the simulation until every handle completes."""
        targets = handles or tuple(self._active.values())
        self.sim.drain([ev for h in targets for ev in h.wait_events])

    def release(self, handle: CollectiveHandle) -> None:
        """Free the op's registered buffers and id (after completion)."""
        handle._release()
        self._active.pop(handle.handle_id, None)

    def ff_exclusive(self, coll_id: int) -> bool:
        """True when engine op *coll_id* is the only collective in flight —
        the flow-level fast-forward's single-collective gate (the fold
        cannot serialize link contention between concurrent collectives).
        A composed collective counts as exclusive while its *current* phase
        is exactly this engine op."""
        if len(self._active) != 1:
            return False
        (handle,) = tuple(self._active.values())
        return handle.exclusive_coll_id() == coll_id

    def _snapshot(self) -> Dict[str, int]:
        return {
            "switch_bytes": self.fabric.switch_egress_bytes(),
            "switch_payload_bytes": self.fabric.switch_egress_bytes(payload_only=True),
            "host_injected_bytes": self.fabric.host_injected_bytes(),
            "fabric_drops": self.fabric.total_drops(),
            "rnr_drops": self.fabric.total_rnr_drops(),
        }

    def _engine_snapshot(self) -> Dict[str, int]:
        ff = self.ff
        return {
            "sim_events": self.sim.events_processed,
            "trains": self.fabric.total_trains(),
            "train_packets": self.fabric.total_train_packets(),
            "cqe_batches": sum(e.cqe_batches for e in self.engines),
            "batched_cqes": sum(e.batched_cqes for e in self.engines),
            "ff_phases": ff.ff_phases if ff is not None else 0,
            "ff_skipped_events": ff.ff_skipped_events if ff is not None else 0,
            "ff_aborts": ff.ff_aborts if ff is not None else 0,
            "sync_rounds": ff.total_sync_rounds() if ff is not None else 0,
            "boundary_msgs": ff.total_boundary_msgs() if ff is not None else 0,
        }

    def _run_sync(self, handle: CollectiveHandle) -> CollectiveResult:
        before = self._snapshot()
        eng_before = self._engine_snapshot()
        self.run(handle)
        after = self._snapshot()
        eng_after = self._engine_snapshot()
        traffic = {k: after[k] - before[k] for k in before}
        engine = {k: eng_after[k] - eng_before[k] for k in eng_before}
        # Shard count is a gauge, not a counter: report the engine's
        # sharding only when this run actually synchronized shards.
        engine["shards"] = (
            self.ff.par.n_shards
            if self.ff is not None and self.ff.par is not None
            and engine["sync_rounds"] > 0 else 0
        )
        result = handle.result(traffic, engine)
        self.release(handle)
        return result

    def broadcast(self, root: int, data: np.ndarray) -> CollectiveResult:
        """Broadcast *data* from *root*; runs the simulation to completion."""
        return self._run_sync(self.broadcast_async(root, data))

    def allgather(self, send_data: Sequence[np.ndarray]) -> CollectiveResult:
        """Allgather; runs the simulation to completion."""
        return self._run_sync(self.allgather_async(send_data))
