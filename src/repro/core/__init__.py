"""The paper's contribution: multicast Broadcast + bandwidth-optimal Allgather.

Layering (bottom-up):

* :mod:`repro.core.chunking` — zero-copy buffer fragmentation and the
  32-bit immediate-data layout carrying (collective id, PSN).
* :mod:`repro.core.bitmap` — the receive bitmap, the only reliability state
  that grows with the buffer (paper §III-D, Fig 7).
* :mod:`repro.core.staging` — staging ring buffer between the wire and the
  user buffer (paper §III-B), tolerant of out-of-order delivery.
* :mod:`repro.core.sequencer` — broadcast-chain scheduling (Appendix A).
* :mod:`repro.core.subgroups` — multicast subgroup partitioning (§IV-C).
* :mod:`repro.core.control` — the RC control plane: dissemination barrier
  (RNR sync), activation signals, fetch requests, final handshake.
* :mod:`repro.core.broadcast` / :mod:`repro.core.reliability` — the
  constant-time reliable Broadcast datapaths (§III).
* :mod:`repro.core.allgather` — Allgather as a composition of Broadcasts
  (§IV).
* :mod:`repro.core.communicator` — the user-facing API.
* :mod:`repro.core.baselines` — P2P algorithms used for comparison.
"""

from repro.core.bitmap import Bitmap
from repro.core.chunking import ChunkPlan, ImmLayout
from repro.core.communicator import (
    CollectiveConfig,
    CollectiveResult,
    Communicator,
    FailurePolicy,
    PhaseBreakdown,
    RankStats,
)
from repro.core.costmodel import HostCostModel
from repro.core.sequencer import BroadcastSequencer
from repro.core.staging import StagingRing
from repro.core.subgroups import SubgroupPlan

__all__ = [
    "Bitmap",
    "BroadcastSequencer",
    "ChunkPlan",
    "CollectiveConfig",
    "CollectiveResult",
    "Communicator",
    "FailurePolicy",
    "HostCostModel",
    "ImmLayout",
    "PhaseBreakdown",
    "RankStats",
    "StagingRing",
    "SubgroupPlan",
]
